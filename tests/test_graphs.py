"""Tests for the graph-analytics subsystem (repro.graphs).

Three layers of evidence:

* property tests comparing the machine algorithms against independent host
  oracles (flood fill, frontier BFS, dense-numpy power iteration) on random
  seeded generator graphs;
* phase-tree conservation: per-iteration ``round_###`` spans sum exactly to
  the flat :class:`MachineStats` counters — also under a fault plan, where
  recovery inflates the costs but never the results;
* contract checks: symmetry validation, convergence-cap errors, generator
  invariants, and the ``repro.apps`` back-compat surface.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validate import check_symmetric_adjacency
from repro.graphs import (
    GENERATORS,
    GraphConvergenceError,
    bfs_distances,
    bfs_reference,
    cc_reference,
    connected_components,
    degree_table,
    generate_graph,
    grid2d_coo,
    iteration_costs,
    pagerank,
    pagerank_reference,
    powerlaw_coo,
    rmat_coo,
)
from repro.machine import FaultPlan, SpatialMachine
from repro.spmv.coo import COOMatrix

#: (kind, n) pool for the property tests — perfect squares so every
#: generator (including the mesh) accepts them, small so the machine runs
#: stay sub-second
GRAPH_CASES = [(kind, n) for kind in ("rmat", "grid", "powerlaw") for n in (9, 16, 25)]


def _graph(kind: str, n: int, seed: int) -> COOMatrix:
    return generate_graph(kind, n, np.random.default_rng(seed))


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------
class TestGenerators:
    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_invariants(self, kind):
        A = _graph(kind, 16, 3)
        assert A.n == 16 and A.nnz >= 1
        check_symmetric_adjacency(A)  # does not raise
        assert not np.any(np.asarray(A.rows) == np.asarray(A.cols)), "self-loop"
        assert np.all(np.asarray(A.vals) == 1.0), "non-unit weight"
        # deduplicated: every (row, col) pair appears once
        keys = np.asarray(A.rows) * A.n + np.asarray(A.cols)
        assert len(np.unique(keys)) == A.nnz

    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_deterministic_given_seed(self, kind):
        a, b = _graph(kind, 16, 7), _graph(kind, 16, 7)
        assert np.array_equal(a.rows, b.rows) and np.array_equal(a.cols, b.cols)

    def test_grid_shape(self):
        A = grid2d_coo(16)
        # interior degree 4, corner degree 2: the 4x4 mesh has 24 directed entries
        assert A.nnz == 48

    def test_grid_rejects_non_square(self):
        with pytest.raises(ValueError, match="perfect-square"):
            grid2d_coo(15)

    def test_rmat_rejects_tiny(self):
        with pytest.raises(ValueError, match="n >= 2"):
            rmat_coo(1, np.random.default_rng(0))

    def test_powerlaw_rejects_bad_gamma(self):
        with pytest.raises(ValueError, match="exceed 1"):
            powerlaw_coo(16, np.random.default_rng(0), gamma=1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown graph generator"):
            generate_graph("petersen", 16, np.random.default_rng(0))


# ---------------------------------------------------------------------------
# machine algorithms vs host oracles
# ---------------------------------------------------------------------------
class TestAgainstReferences:
    @settings(max_examples=12, deadline=None)
    @given(case=st.sampled_from(GRAPH_CASES), seed=st.integers(0, 2**16))
    def test_connected_components(self, case, seed):
        kind, n = case
        A = _graph(kind, n, seed)
        labels = connected_components(SpatialMachine(), A)
        assert np.array_equal(labels, cc_reference(A))

    @settings(max_examples=12, deadline=None)
    @given(case=st.sampled_from(GRAPH_CASES), seed=st.integers(0, 2**16))
    def test_bfs(self, case, seed):
        kind, n = case
        A = _graph(kind, n, seed)
        source = seed % n
        dist = bfs_distances(SpatialMachine(), A, source)
        assert np.array_equal(dist, bfs_reference(A, source))

    @settings(max_examples=8, deadline=None)
    @given(case=st.sampled_from(GRAPH_CASES), seed=st.integers(0, 2**16))
    def test_pagerank(self, case, seed):
        kind, n = case
        A = _graph(kind, n, seed)
        res = pagerank(SpatialMachine(), A, tol=0.0, max_rounds=3)
        ref = pagerank_reference(A, tol=0.0, max_rounds=3)
        np.testing.assert_allclose(res.ranks, ref.ranks, rtol=1e-9, atol=1e-12)
        assert res.rounds == ref.rounds == 3
        assert np.isclose(res.ranks.sum(), 1.0)

    def test_pagerank_converges_on_tolerance(self):
        A = _graph("rmat", 16, 0)
        res = pagerank(SpatialMachine(), A, tol=1e-10, max_rounds=200)
        assert res.converged and res.residual <= 1e-10
        ref = pagerank_reference(A, tol=1e-10, max_rounds=200)
        assert abs(res.rounds - ref.rounds) <= 1

    def test_degree_table(self):
        A = _graph("powerlaw", 16, 5)
        deg = degree_table(SpatialMachine(), A)
        expect = np.zeros(16)
        np.add.at(expect, np.asarray(A.rows), np.asarray(A.vals))
        assert np.array_equal(deg, expect.astype(np.int64))


# ---------------------------------------------------------------------------
# per-iteration cost attribution
# ---------------------------------------------------------------------------
class TestPhaseAttribution:
    def test_rounds_sum_to_flat_counters(self):
        A = grid2d_coo(16)
        m = SpatialMachine()
        connected_components(m, A)
        total = m.cost_tree.total()
        assert total.energy == m.stats.energy
        assert total.messages == m.stats.messages
        rows = iteration_costs(m.cost_tree, "cc")
        # grid 4x4 from vertex-0 labels: diameter 6, +1 detection round
        assert len(rows) == 7
        assert [r["round"] for r in rows] == list(range(7))
        cc = m.cost_tree.node("cc")
        assert sum(r["energy"] for r in rows) + cc.energy == cc.inclusive_cost()["energy"]
        # everything this machine did happened inside the cc phase
        assert cc.inclusive_cost()["energy"] == m.stats.energy

    def test_pagerank_tree_has_degrees_and_normalize(self):
        A = _graph("rmat", 16, 1)
        m = SpatialMachine()
        res = pagerank(m, A, tol=0.0, max_rounds=2)
        assert res.rounds == 2
        paths = m.cost_tree.paths()
        assert "pagerank/degrees" in paths
        assert "pagerank/round_000/normalize" in paths
        assert "pagerank/round_001/spmv" in paths
        rows = iteration_costs(m.cost_tree, "pagerank")
        assert len(rows) == 2
        node = m.cost_tree.node("pagerank")
        degrees = m.cost_tree.node("pagerank/degrees")
        split = (
            node.energy
            + degrees.inclusive_cost()["energy"]
            + sum(r["energy"] for r in rows)
        )
        assert split == node.inclusive_cost()["energy"] == m.stats.energy

    def test_conservation_under_fault_plan(self):
        A = grid2d_coo(16)
        clean = SpatialMachine()
        labels_clean = connected_components(clean, A)

        plan = FaultPlan.seeded(11, drop_prob=0.02, corrupt_prob=0.01)
        faulty = SpatialMachine(faults=plan)
        labels_faulty = connected_components(faulty, A)

        # fault recovery is result-transparent...
        assert np.array_equal(labels_clean, labels_faulty)
        assert np.array_equal(labels_faulty, cc_reference(A))
        # ...costs strictly inflate, and the tree still decomposes exactly
        assert faulty.stats.energy > clean.stats.energy
        assert faulty.cost_tree.total().energy == faulty.stats.energy
        rows_c = iteration_costs(clean.cost_tree, "cc")
        rows_f = iteration_costs(faulty.cost_tree, "cc")
        assert len(rows_c) == len(rows_f)
        flat = faulty.cost_tree.flatten()
        assert sum(r["self_energy"] for r in flat) == faulty.stats.energy

    def test_iteration_costs_missing_phase(self):
        m = SpatialMachine()
        assert iteration_costs(m.cost_tree, "cc") == []


# ---------------------------------------------------------------------------
# contracts and error paths
# ---------------------------------------------------------------------------
class TestContracts:
    def _directed(self) -> COOMatrix:
        return COOMatrix(
            np.array([0, 1, 1]), np.array([1, 0, 2]), np.ones(3), 4
        )

    @pytest.mark.parametrize(
        "call",
        [
            lambda m, A: connected_components(m, A),
            lambda m, A: bfs_distances(m, A, 0),
            lambda m, A: pagerank(m, A),
        ],
        ids=["cc", "bfs", "pagerank"],
    )
    def test_asymmetric_adjacency_rejected(self, call):
        with pytest.raises(ValueError, match="not symmetric"):
            call(SpatialMachine(), self._directed())

    def test_symmetry_error_names_the_edge(self):
        with pytest.raises(ValueError, match=r"\(1, 2\)"):
            check_symmetric_adjacency(self._directed())

    def test_round_cap_raises_not_truncates(self):
        A = grid2d_coo(16)  # diameter 6: needs 7 rounds
        with pytest.raises(GraphConvergenceError, match="did not converge") as exc:
            connected_components(SpatialMachine(), A, max_rounds=2)
        assert exc.value.algo == "connected_components" and exc.value.rounds == 2
        with pytest.raises(GraphConvergenceError):
            bfs_distances(SpatialMachine(), A, 0, max_rounds=2)

    def test_default_cap_always_converges(self):
        # worst case for label propagation: long path embedded in the mesh
        A = grid2d_coo(25)
        labels = connected_components(SpatialMachine(), A)
        assert np.array_equal(labels, np.zeros(25, dtype=np.int64))

    def test_bad_arguments_rejected(self):
        A = grid2d_coo(16)
        m = SpatialMachine()
        with pytest.raises(ValueError, match="max_rounds >= 1"):
            connected_components(m, A, max_rounds=0)
        with pytest.raises(ValueError, match="out of range"):
            bfs_distances(m, A, source=16)
        with pytest.raises(ValueError, match="damping"):
            pagerank(m, A, damping=1.0)
        with pytest.raises(ValueError, match="max_rounds >= 1"):
            pagerank(m, A, max_rounds=0)

    def test_pagerank_reports_non_convergence(self):
        A = grid2d_coo(16)
        res = pagerank(SpatialMachine(), A, tol=1e-12, max_rounds=1)
        assert not res.converged and res.rounds == 1 and res.residual > 1e-12

    def test_empty_graph_trivial_answers(self):
        empty = COOMatrix(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([]),
            4,
        )
        m = SpatialMachine()
        assert np.array_equal(connected_components(m, empty), np.arange(4))
        d = bfs_distances(m, empty, 1)
        assert d[1] == 0.0 and np.isinf(d[[0, 2, 3]]).all()
        res = pagerank(m, empty)
        assert res.converged and np.allclose(res.ranks, 0.25)
        assert m.stats.energy == 0  # nothing ever touched the machine

    def test_apps_shim_reexports(self):
        import repro.apps as apps
        import repro.apps.graph as shim
        from repro.graphs import algorithms

        for name in ("connected_components", "bfs_distances", "pagerank",
                     "degree_table", "GraphConvergenceError", "PageRankResult"):
            assert getattr(shim, name) is getattr(algorithms, name)
            assert getattr(apps, name) is getattr(algorithms, name)
