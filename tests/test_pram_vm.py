"""Tests for the PRAM virtual machine and example programs (Section VII substrate)."""

import numpy as np
import pytest

from repro.pram import (
    NO_ACCESS,
    ConflictError,
    FanInMaxCRCW,
    PrefixDoublingScanEREW,
    PRAMProgram,
    SpMVCRCW,
    TreeSumEREW,
    run_reference,
)


class TestTreeSum:
    @pytest.mark.parametrize("p", (1, 2, 8, 64, 256))
    def test_sum(self, p, rng):
        x = rng.standard_normal(p)
        mem, _ = run_reference(TreeSumEREW(x), "EREW")
        assert mem[0] == pytest.approx(x.sum())

    def test_non_pow2_rejected(self):
        with pytest.raises(ValueError):
            TreeSumEREW(np.ones(3))

    def test_step_count_logarithmic(self):
        assert TreeSumEREW(np.ones(64)).steps == 6


class TestPrefixScan:
    @pytest.mark.parametrize("p", (1, 4, 32, 128))
    def test_prefix(self, p, rng):
        x = rng.standard_normal(p)
        mem, _ = run_reference(PrefixDoublingScanEREW(x), "EREW")
        assert np.allclose(mem, np.cumsum(x))


class TestFanInMax:
    def test_converges_via_records(self, rng):
        v = rng.standard_normal(32)
        rounds = FanInMaxCRCW.records_needed(v)
        mem, _ = run_reference(FanInMaxCRCW(v, rounds=rounds), "CRCW")
        assert mem[0] == v.max()

    def test_single_round_first_record(self, rng):
        v = rng.standard_normal(16)
        mem, _ = run_reference(FanInMaxCRCW(v, rounds=1), "CRCW")
        assert mem[0] == v[0]  # lowest pid beats -inf first

    def test_erew_mode_rejects_concurrency(self, rng):
        v = rng.standard_normal(4)
        with pytest.raises(ConflictError):
            run_reference(FanInMaxCRCW(v, rounds=1), "EREW")


class TestSpMVProgram:
    def test_matches_dense(self, rng):
        n, nnz = 20, 60
        rows = rng.integers(0, n, nnz)
        cols = rng.integers(0, n, nnz)
        vals = rng.standard_normal(nnz)
        x = rng.standard_normal(n)
        prog = SpMVCRCW(rows, cols, vals, n, x)
        mem, _ = run_reference(prog, "CRCW")
        want = np.zeros(n)
        np.add.at(want, rows, vals * x[cols])
        assert np.allclose(mem[n + prog.nnz :], want)

    def test_single_row(self, rng):
        n = 4
        rows = np.zeros(6, dtype=int)
        cols = rng.integers(0, n, 6)
        vals = rng.standard_normal(6)
        x = rng.standard_normal(n)
        prog = SpMVCRCW(rows, cols, vals, n, x)
        mem, _ = run_reference(prog, "CRCW")
        assert mem[n + 6] == pytest.approx((vals * x[cols]).sum())

    def test_log_steps(self):
        prog = SpMVCRCW(np.zeros(64, dtype=int), np.zeros(64, dtype=int),
                        np.ones(64), 4, np.ones(4))
        assert prog.steps <= 2 + int(np.ceil(np.log2(64)))


class TestConflictDetection:
    class _ConcurrentRead(PRAMProgram):
        processors = 2
        memory_cells = 2
        steps = 1

        def initial_memory(self):
            return np.zeros(2)

        def initial_state(self):
            return {}

        def read_addrs(self, t, state):
            return np.zeros(2, dtype=np.int64)

        def step(self, t, state, read_values):
            return np.full(2, NO_ACCESS, dtype=np.int64), np.zeros(2)

    class _ConcurrentWrite(_ConcurrentRead):
        def read_addrs(self, t, state):
            return np.full(2, NO_ACCESS, dtype=np.int64)

        def step(self, t, state, read_values):
            return np.zeros(2, dtype=np.int64), np.array([1.0, 2.0])

    def test_erew_rejects_concurrent_read(self):
        with pytest.raises(ConflictError):
            run_reference(self._ConcurrentRead(), "EREW")

    def test_erew_rejects_concurrent_write(self):
        with pytest.raises(ConflictError):
            run_reference(self._ConcurrentWrite(), "EREW")

    def test_crcw_lowest_pid_wins(self):
        mem, _ = run_reference(self._ConcurrentWrite(), "CRCW")
        assert mem[0] == 1.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_reference(self._ConcurrentRead(), "QRQW")
