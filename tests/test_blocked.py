"""Tests for the blocked-memory scan extension (Section I.D future work)."""

import numpy as np
import pytest

from repro.core.blocked import blocked_scan, blocks_region
from repro.core.ops import MAX
from repro.machine import Region, SpatialMachine


class TestBlockedScanCorrectness:
    @pytest.mark.parametrize("block", (1, 4, 16, 64))
    def test_cumsum(self, block, rng):
        n = 1024
        x = rng.standard_normal(n)
        m = SpatialMachine()
        res = blocked_scan(m, x, block=block)
        assert np.allclose(res.prefix, np.cumsum(x))

    def test_max_monoid(self, rng):
        x = rng.standard_normal(256)
        m = SpatialMachine()
        res = blocked_scan(m, x, block=4, monoid=MAX)
        assert np.allclose(res.prefix, np.maximum.accumulate(x))

    def test_block_one_equals_plain_scan(self, rng):
        from repro.core.scan import scan

        n = 256
        x = rng.standard_normal(n)
        m1 = SpatialMachine()
        res = blocked_scan(m1, x, block=1)
        m2 = SpatialMachine()
        region = Region(0, 0, 16, 16)
        plain = scan(m2, m2.place_zorder(x, region), region)
        assert np.allclose(res.prefix, plain.inclusive.payload)
        assert m1.stats.energy == m2.stats.energy

    def test_whole_array_one_block(self, rng):
        x = rng.standard_normal(64)
        m = SpatialMachine()
        res = blocked_scan(m, x, block=64)
        assert np.allclose(res.prefix, np.cumsum(x))
        assert m.stats.energy == 0  # single PE: all local

    def test_bad_block_rejected(self, rng):
        with pytest.raises(ValueError):
            blocked_scan(SpatialMachine(), rng.random(64), block=3)

    def test_non_pow4_blocks_rejected(self, rng):
        with pytest.raises(ValueError):
            blocked_scan(SpatialMachine(), rng.random(96), block=3)

    def test_custom_region(self, rng):
        x = rng.standard_normal(64)
        region = Region(10, 10, 4, 4)
        m = SpatialMachine()
        res = blocked_scan(m, x, block=4, region=region)
        assert np.allclose(res.prefix, np.cumsum(x))


class TestBlockedScanCosts:
    def test_energy_inverse_in_block(self, rng):
        """Θ(n/B): quadrupling B divides energy by ~4."""
        n = 4096
        x = rng.standard_normal(n)
        energies = []
        for b in (1, 4, 16):
            m = SpatialMachine()
            blocked_scan(m, x, block=b)
            energies.append(m.stats.energy)
        assert 3 < energies[0] / energies[1] < 5
        assert 3 < energies[1] / energies[2] < 5

    def test_depth_shrinks(self, rng):
        n = 4096
        x = rng.standard_normal(n)
        depths = []
        for b in (1, 16, 256):
            m = SpatialMachine()
            res = blocked_scan(m, x, block=b)
            depths.append(res.max_depth())
        assert depths == sorted(depths, reverse=True)

    def test_distance_halves_per_block_quadrupling(self, rng):
        n = 4096
        x = rng.standard_normal(n)
        d1 = blocked_scan(SpatialMachine(), x, block=1).max_dist()
        d4 = blocked_scan(SpatialMachine(), x, block=4).max_dist()
        assert 1.5 < d1 / d4 < 2.8


class TestBlocksRegion:
    def test_sizes(self):
        assert blocks_region(64, 4) == Region(0, 0, 4, 4)
        assert blocks_region(64, 64) == Region(0, 0, 1, 1)

    def test_rejects_non_pow4(self):
        with pytest.raises(ValueError):
            blocks_region(64, 2)  # 32 blocks is not a power of 4
