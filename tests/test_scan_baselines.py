"""Tests for the Section IV.C scan baselines and the three-way trade-off."""

import numpy as np
import pytest

from repro.core.ops import MAX
from repro.core.scan import scan
from repro.core.scan_baselines import sequential_scan, tree_scan_1d
from repro.machine import Region, SpatialMachine


class TestSequentialScan:
    @pytest.mark.parametrize("n", (4, 64, 1024))
    def test_correct(self, n, rng):
        x = rng.standard_normal(n)
        m = SpatialMachine()
        side = int(np.sqrt(n))
        region = Region(0, 0, side, side)
        out = sequential_scan(m, m.place_zorder(x, region), region)
        assert np.allclose(out.payload, np.cumsum(x))

    def test_max_accumulate(self, rng):
        x = rng.standard_normal(64)
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        out = sequential_scan(m, m.place_zorder(x, region), region, MAX)
        assert np.allclose(out.payload, np.maximum.accumulate(x))

    def test_linear_energy(self):
        for n in (64, 1024):
            m = SpatialMachine()
            side = int(np.sqrt(n))
            region = Region(0, 0, side, side)
            sequential_scan(m, m.place_zorder(np.ones(n), region), region)
            assert m.stats.energy <= 2 * n  # Observation 1 envelope

    def test_linear_depth(self):
        n = 256
        m = SpatialMachine()
        region = Region(0, 0, 16, 16)
        out = sequential_scan(m, m.place_zorder(np.ones(n), region), region)
        assert out.max_depth() == n - 1


class TestTreeScan1D:
    @pytest.mark.parametrize("n", (4, 16, 64, 256, 1024))
    def test_correct(self, n, rng):
        x = rng.standard_normal(n)
        m = SpatialMachine()
        side = int(np.sqrt(n))
        region = Region(0, 0, side, side)
        out = tree_scan_1d(m, m.place_rowmajor(x, region), region)
        assert np.allclose(out.payload, np.cumsum(x))

    def test_log_depth(self):
        n = 1024
        m = SpatialMachine()
        region = Region(0, 0, 32, 32)
        out = tree_scan_1d(m, m.place_rowmajor(np.ones(n), region), region)
        assert out.max_depth() <= 3 * int(np.log2(n))

    def test_superlinear_energy(self):
        """The 1D tree pays Ω(n log n): energy/n grows with n."""
        ratios = []
        for n in (256, 1024, 4096, 16384):
            m = SpatialMachine()
            side = int(np.sqrt(n))
            region = Region(0, 0, side, side)
            tree_scan_1d(m, m.place_rowmajor(np.ones(n), region), region)
            ratios.append(m.stats.energy / n)
        assert ratios[-1] > ratios[0] * 1.5  # clearly superlinear


class TestTradeoffOrdering:
    """Section IV.C's punchline: the 2D scan dominates both baselines."""

    def test_energy_ordering(self, rng):
        n = 4096
        side = 64
        region = Region(0, 0, side, side)
        x = rng.standard_normal(n)

        m2d = SpatialMachine()
        scan(m2d, m2d.place_zorder(x, region), region)
        mseq = SpatialMachine()
        sequential_scan(mseq, mseq.place_zorder(x, region), region)
        mtree = SpatialMachine()
        tree_scan_1d(mtree, mtree.place_rowmajor(x, region), region)

        # 2D scan beats the 1D tree by a growing factor; sequential is also
        # linear-energy but has no parallelism
        assert m2d.stats.energy < mtree.stats.energy / 2
        assert m2d.stats.energy < 4 * mseq.stats.energy

    def test_depth_ordering(self, rng):
        n = 4096
        side = 64
        region = Region(0, 0, side, side)
        x = rng.standard_normal(n)

        m2d = SpatialMachine()
        r2d = scan(m2d, m2d.place_zorder(x, region), region)
        mseq = SpatialMachine()
        rseq = sequential_scan(mseq, mseq.place_zorder(x, region), region)

        assert r2d.inclusive.max_depth() <= 2 * int(np.log2(n))
        assert rseq.max_depth() == n - 1
