"""Tests for the reusable SpMV plan (repro.spmv.planned)."""

import numpy as np
import pytest

from repro.core.ops import MIN
from repro.machine import SpatialMachine
from repro.spmv import banded_coo, permutation_coo, plan_spmv, random_coo, spmv_spatial
from repro.spmv.coo import COOMatrix


class TestPlanCorrectness:
    @pytest.mark.parametrize("n,factor", [(8, 2), (16, 4), (32, 3)])
    def test_matches_dense(self, n, factor, rng):
        A = random_coo(n, factor * n, rng)
        m = SpatialMachine()
        plan = plan_spmv(m, A)
        for _ in range(3):
            x = rng.standard_normal(n)
            y = plan.apply(x)
            assert np.allclose(y.payload, A.multiply_dense(x))

    def test_matches_unplanned(self, rng):
        A = random_coo(16, 64, rng)
        x = rng.standard_normal(16)
        m1 = SpatialMachine()
        y1 = plan_spmv(m1, A).apply(x)
        m2 = SpatialMachine()
        y2 = spmv_spatial(m2, A, x)
        assert np.allclose(y1.payload, y2.payload)

    def test_repeated_applies_consistent(self, rng):
        A = random_coo(16, 48, rng)
        x = rng.standard_normal(16)
        m = SpatialMachine()
        plan = plan_spmv(m, A)
        y1 = plan.apply(x)
        y2 = plan.apply(x)
        assert np.allclose(y1.payload, y2.payload)
        assert plan.applies == 2

    def test_empty_rows(self, rng):
        A = COOMatrix(np.array([1, 1]), np.array([0, 2]), np.array([1.0, 2.0]), 4)
        m = SpatialMachine()
        plan = plan_spmv(m, A)
        x = rng.standard_normal(4)
        y = plan.apply(x)
        assert y.payload[0] == 0 and y.payload[3] == 0
        assert y.payload[1] == pytest.approx(x[0] + 2 * x[2])

    def test_permutation_matrix(self, rng):
        perm = rng.permutation(16)
        P = permutation_coo(perm)
        m = SpatialMachine()
        plan = plan_spmv(m, P)
        x = rng.standard_normal(16)
        assert np.allclose(plan.apply(x).payload, x[perm])

    def test_banded(self, rng):
        A = banded_coo(16, 2, rng)
        m = SpatialMachine()
        plan = plan_spmv(m, A)
        x = rng.standard_normal(16)
        assert np.allclose(plan.apply(x).payload, A.multiply_dense(x))

    def test_semiring_apply(self, rng):
        from repro.spmv import graph_adjacency_coo

        A = graph_adjacency_coo(16, rng)
        labels = np.arange(16, dtype=float)
        m = SpatialMachine()
        plan = plan_spmv(m, A)
        y = plan.apply(labels, combine=MIN, multiply=lambda a, x: x)
        ref = spmv_spatial(SpatialMachine(), A, labels, combine=MIN,
                           multiply=lambda a, x: x)
        assert np.allclose(y.payload, ref.payload)

    def test_empty_matrix_rejected(self):
        A = COOMatrix(np.array([], dtype=int), np.array([], dtype=int), np.array([]), 4)
        with pytest.raises(ValueError):
            plan_spmv(SpatialMachine(), A)


class TestPlanCosts:
    def test_apply_far_cheaper_than_unplanned(self, rng):
        A = random_coo(32, 128, rng)
        x = rng.standard_normal(32)
        m = SpatialMachine()
        plan = plan_spmv(m, A)
        before = m.snapshot()
        plan.apply(x)
        apply_energy = m.stats.energy - before.energy
        m2 = SpatialMachine()
        spmv_spatial(m2, A, x)
        assert apply_energy * 20 < m2.stats.energy

    def test_apply_energy_stable_across_vectors(self, rng):
        A = random_coo(16, 64, rng)
        m = SpatialMachine()
        plan = plan_spmv(m, A)
        costs = []
        for _ in range(3):
            before = m.snapshot()
            plan.apply(rng.standard_normal(16))
            costs.append(m.stats.energy - before.energy)
        assert costs[0] == costs[1] == costs[2]  # routing is data-oblivious

    def test_apply_depth_logarithmic(self, rng):
        """Per-apply critical path is scans + a hop: far below the sort's."""
        A = random_coo(32, 128, rng)
        x = rng.standard_normal(32)
        m = SpatialMachine()
        plan = plan_spmv(m, A)
        plan_depth = m.stats.max_depth
        y = plan.apply(x)
        # new depth contributed by the apply is small (the result's depth is
        # dominated by the plan's sorting chain it depends on)
        assert int(y.depth.max()) <= plan_depth + 12 * np.log2(A.nnz)
