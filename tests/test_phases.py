"""Phase-scoped cost accounting (machine.phase spans + CostTree)."""

import numpy as np
import pytest

from repro.core.sorting.mergesort2d import sort_values
from repro.machine import CostTree, SpatialMachine

from .conftest import square


def _hop(m, length=2):
    """One unit batch: a single message travelling ``length`` Manhattan."""
    ta = m.place(np.array([1.0]), [0], [0])
    m.send(ta, np.array([0]), np.array([length]))


class TestSpans:
    def test_nesting_builds_paths(self, machine):
        m = machine
        with m.phase("outer"):
            assert m.current_phase == "outer"
            with m.phase("inner"):
                assert m.current_phase == "outer/inner"
            assert m.current_phase == "outer"
        assert m.current_phase == ""
        assert m.cost_tree.node("outer/inner") is not None

    def test_charges_land_on_active_phase(self, machine):
        m = machine
        _hop(m, 3)  # outside any phase -> root self
        with m.phase("a"):
            _hop(m, 5)
            with m.phase("b"):
                _hop(m, 7)
        tree = m.cost_tree
        assert tree.root.energy == 3
        assert tree.node("a").energy == 5
        assert tree.node("a/b").energy == 7
        assert tree.node("a").inclusive_cost()["energy"] == 12

    def test_reentry_accumulates_one_node(self, machine):
        m = machine
        for _ in range(3):
            with m.phase("loop"):
                _hop(m)
        node = m.cost_tree.node("loop")
        assert node.energy == 6
        assert node.sends == 3
        assert len(m.cost_tree.paths()) == 2  # root + loop, no loop_2

    def test_exception_restores_phase(self, machine):
        m = machine
        with pytest.raises(RuntimeError):
            with m.phase("doomed"):
                raise RuntimeError("boom")
        assert m.current_phase == ""

    def test_span_reuse_after_sibling(self, machine):
        m = machine
        with m.phase("p"):
            with m.phase("x"):
                _hop(m)
            with m.phase("y"):
                _hop(m)
            with m.phase("x"):
                _hop(m)
        assert m.cost_tree.node("p/x").sends == 2
        assert m.cost_tree.node("p/y").sends == 1


class TestTreeInvariants:
    def test_root_inclusive_equals_flat_stats_mergesort(self, rng):
        m = SpatialMachine()
        sort_values(m, rng.random(256), square(256))
        total = m.cost_tree.total()
        assert total.energy == m.stats.energy
        assert total.messages == m.stats.messages
        assert total.depth == m.stats.max_depth
        assert total.distance == m.stats.max_distance

    def test_inclusive_is_self_plus_children_everywhere(self, rng):
        m = SpatialMachine()
        sort_values(m, rng.random(256), square(256))
        for node, _ in m.cost_tree.root.walk():
            inc = node.inclusive_cost()
            assert inc["energy"] == node.energy + sum(
                c.inclusive_cost()["energy"] for c in node.children.values()
            )
            assert inc["messages"] == node.messages + sum(
                c.inclusive_cost()["messages"] for c in node.children.values()
            )

    def test_rounds_equals_total_sends(self, rng):
        m = SpatialMachine()
        sort_values(m, rng.random(64), square(64))
        assert m.cost_tree.root.inclusive_cost()["sends"] == m.stats.rounds

    def test_node_lookup_and_flatten_agree(self, machine):
        m = machine
        with m.phase("a"):
            with m.phase("b"):
                _hop(m, 4)
        rows = {r["path"]: r for r in m.cost_tree.flatten()}
        assert rows["a/b"]["self_energy"] == 4
        assert rows["a"]["self_energy"] == 0
        assert rows["a"]["inclusive_energy"] == 4
        assert rows["total"]["inclusive_energy"] == 4
        assert m.cost_tree.node("a/nope") is None

    def test_as_dict_schema(self, machine):
        m = machine
        with m.phase("a"):
            _hop(m)
        d = m.cost_tree.as_dict()
        assert d["name"] == "total"
        assert d["children"][0]["path"] == "a"
        assert set(d["self"]) == {"energy", "messages", "sends", "max_depth", "max_distance"}


class TestMeasureIntegration:
    def test_measure_exposes_per_phase_delta(self, machine):
        m = machine
        with m.phase("warmup"):
            _hop(m, 9)
        with m.measure() as res:
            with m.phase("work"):
                _hop(m, 5)
        assert isinstance(res.per_phase, CostTree)
        assert res.per_phase.node("work").energy == 5
        assert res.per_phase.node("warmup").energy == 0  # pre-measure charge excluded
        assert res.per_phase.total().energy == res.energy

    def test_phases_disabled_machine(self, rng):
        m = SpatialMachine(phases=False)
        sort_values(m, rng.random(64), square(64))
        assert m.stats.energy > 0
        assert m.cost_tree.total().energy == 0
        # spans are no-ops, not errors
        with m.phase("ignored"):
            assert m.current_phase == ""


class TestRoundsRegression:
    def test_zero_move_send_is_not_a_round(self, machine):
        """Regression: all-self-send batches must not count as rounds."""
        m = machine
        ta = m.place(np.arange(3.0), [0, 1, 2], [0, 0, 0])
        m.send(ta, np.array([0, 1, 2]), np.array([0, 0, 0]))  # nobody moves
        assert m.stats.rounds == 0
        assert m.stats.messages == 0
        m.send(ta, np.array([0, 1, 2]), np.array([1, 1, 1]))
        assert m.stats.rounds == 1

    def test_zero_move_relay_is_not_a_round(self, machine):
        m = machine
        m.relay((0, 0), np.array([0]), np.array([0]))  # stays put
        assert m.stats.rounds == 0
        m.relay((0, 0), np.array([0, 0]), np.array([2, 3]))
        assert m.stats.rounds == 1


class TestCliReport:
    def test_report_per_phase_matches_flat_run(self, capsys):
        """Acceptance: the CLI's printed root totals equal an identical
        run's flat MachineStats counters."""
        from repro.cli import main

        assert main(["report", "--algo", "sort", "--n", "64", "--per-phase"]) == 0
        out = capsys.readouterr().out

        from repro.analysis import make_workload
        from repro.core.sorting.mergesort2d import sort_values as sv

        rng = np.random.default_rng(0)
        m = SpatialMachine()
        sv(m, make_workload("uniform", 64, rng), square(64))

        first = out.splitlines()[0]
        assert f"energy={m.stats.energy} " in first
        assert f"messages={m.stats.messages} " in first
        # the rendered tree's "total" row shows the same inclusive energy
        total_row = next(l for l in out.splitlines() if l.startswith("total"))
        assert str(m.stats.energy) in total_row
        assert "mergesort2d" in out

    def test_trace_cli_writes_jsonl(self, tmp_path):
        from repro.cli import main
        from repro.machine.tracer import Tracer

        path = tmp_path / "t.jsonl"
        assert main(["trace", "--algo", "scan", "--n", "64", "--out", str(path)]) == 0
        t = Tracer.from_jsonl(path)
        assert t.total_messages() > 0
        assert any(b.phase.startswith("scan") for b in t.batches)
