"""Unit tests for grid layouts (repro.machine.layout)."""

import numpy as np
import pytest

from repro.machine.geometry import Region
from repro.machine.layout import (
    permutation_to_rowmajor,
    rowmajor_layout,
    square_plus_l_layout,
    zorder_layout,
)


class TestBasicLayouts:
    def test_rowmajor(self):
        rows, cols = rowmajor_layout(Region(0, 0, 2, 3), 4)
        assert rows.tolist() == [0, 0, 0, 1]
        assert cols.tolist() == [0, 1, 2, 0]

    def test_zorder(self):
        rows, cols = zorder_layout(Region(0, 0, 2, 2), 4)
        assert list(zip(rows.tolist(), cols.tolist())) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_permutation_target(self):
        rows, cols = permutation_to_rowmajor(Region(0, 0, 2, 2), 4)
        assert rows.tolist() == [0, 0, 1, 1]


class TestSquarePlusL:
    def test_fig3_shape(self):
        # 4x4 region: 9 elements in a 3x3 square, 7 in the mirrored L
        region = Region(0, 0, 4, 4)
        (sr, sc), (lr, lc) = square_plus_l_layout(region, 9, 7)
        assert len(sr) == 9 and len(lr) == 7
        # the square occupies the top-left 3x3 block
        assert sr.max() <= 2 and sc.max() <= 2
        # the L cells avoid the square entirely
        square_cells = set(zip(sr.tolist(), sc.tolist()))
        l_cells = set(zip(lr.tolist(), lc.tolist()))
        assert not square_cells & l_cells
        assert len(square_cells | l_cells) == 16

    def test_l_is_rowmajor_outside_square(self):
        region = Region(0, 0, 4, 4)
        (_, _), (lr, lc) = square_plus_l_layout(region, 4, 5)
        # square is 2x2; first L cells fill row 0, cols 2..3, then row 1 etc.
        assert (lr[0], lc[0]) == (0, 2)
        assert (lr[1], lc[1]) == (0, 3)
        assert (lr[2], lc[2]) == (1, 2)

    def test_zero_square(self):
        region = Region(0, 0, 2, 2)
        (sr, _), (lr, lc) = square_plus_l_layout(region, 0, 3)
        assert len(sr) == 0 and len(lr) == 3
        assert (lr[0], lc[0]) == (0, 0)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            square_plus_l_layout(Region(0, 0, 2, 2), 3, 3)

    def test_square_too_big_rejected(self):
        with pytest.raises(ValueError):
            square_plus_l_layout(Region(0, 0, 2, 8), 9, 0)

    def test_offset_region(self):
        region = Region(5, 5, 2, 2)
        (sr, sc), (lr, lc) = square_plus_l_layout(region, 1, 3)
        assert (sr[0], sc[0]) == (5, 5)
        assert np.concatenate([lr, [0]]).min() >= 0
