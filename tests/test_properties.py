"""Cross-cutting property-based tests (hypothesis) on model invariants.

These check laws that must hold for *every* input, not just the sampled
workloads: metric axioms of the cost accounting, permutation-closure of the
sorters, agreement between independent implementations, and monotonicity of
the counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scan import scan
from repro.core.selection import rank_select
from repro.core.sorting.allpairs import allpairs_sort
from repro.core.sorting.bitonic import bitonic_sort
from repro.core.sorting.mergesort2d import sort_values
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine

floats16 = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
    min_size=16,
    max_size=16,
)
floats64 = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
    min_size=64,
    max_size=64,
)


class TestSorterAgreement:
    @given(floats64)
    @settings(max_examples=40, deadline=None)
    def test_three_sorters_agree(self, xs):
        """Mergesort, bitonic and all-pairs must produce identical outputs."""
        x = np.asarray(xs, dtype=np.float64)
        region = Region(0, 0, 8, 8)
        m1 = SpatialMachine()
        a = sort_values(m1, x, region).payload[:, 0]
        m2 = SpatialMachine()
        b = bitonic_sort(
            m2, m2.place_rowmajor(as_sort_payload(x), region), region
        ).payload[:, 0]
        m3 = SpatialMachine()
        c = allpairs_sort(
            m3, m3.place_rowmajor(as_sort_payload(x), region), region
        ).payload[:, 0]
        assert np.array_equal(a, b) and np.array_equal(b, c)

    @given(floats64)
    @settings(max_examples=40, deadline=None)
    def test_sort_is_permutation(self, xs):
        """Output multiset == input multiset (nothing lost or duplicated)."""
        x = np.asarray(xs, dtype=np.float64)
        m = SpatialMachine()
        out = sort_values(m, x, Region(0, 0, 8, 8)).payload[:, 0]
        assert np.array_equal(np.sort(out), np.sort(x))

    @given(floats64, st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_selection_agrees_with_sort(self, xs, k):
        x = np.asarray(xs, dtype=np.float64)
        region = Region(0, 0, 8, 8)
        m = SpatialMachine()
        res = rank_select(
            m, m.place_zorder(x, region), region, k, np.random.default_rng(0)
        )
        assert res.value == np.sort(x)[k - 1]


class TestCostAxioms:
    @given(floats16)
    @settings(max_examples=50, deadline=None)
    def test_counters_monotone_nonnegative(self, xs):
        x = np.asarray(xs, dtype=np.float64)
        region = Region(0, 0, 4, 4)
        m = SpatialMachine()
        e0 = m.stats.energy
        res = scan(m, m.place_zorder(x, region), region)
        assert m.stats.energy >= e0 >= 0
        assert (res.inclusive.depth >= 0).all()
        assert (res.inclusive.dist >= res.inclusive.depth).all()

    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=4, max_size=4
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_send_energy_exact(self, dests):
        """energy == Σ |Δr| + |Δc| for any batch of destinations."""
        m = SpatialMachine()
        ta = m.place(np.arange(4.0), [0, 1, 2, 3], [0, 1, 2, 3])
        dr = np.array([d[0] for d in dests])
        dc = np.array([d[1] for d in dests])
        m.send(ta, dr, dc)
        want = int(np.abs(dr - np.array([0, 1, 2, 3])).sum()
                   + np.abs(dc - np.array([0, 1, 2, 3])).sum())
        assert m.stats.energy == want

    @given(floats16)
    @settings(max_examples=30, deadline=None)
    def test_scan_cost_is_data_independent(self, xs):
        """Scan routing is oblivious: identical costs for every input."""
        x = np.asarray(xs, dtype=np.float64)
        region = Region(0, 0, 4, 4)
        m1 = SpatialMachine()
        scan(m1, m1.place_zorder(x, region), region)
        m2 = SpatialMachine()
        scan(m2, m2.place_zorder(np.zeros(16), region), region)
        assert m1.stats.energy == m2.stats.energy
        assert m1.stats.messages == m2.stats.messages
        assert m1.stats.max_depth == m2.stats.max_depth


class TestScanVsBlocked:
    @given(floats64, st.sampled_from([1, 4, 16]))
    @settings(max_examples=40, deadline=None)
    def test_blocked_scan_agrees(self, xs, block):
        from repro.core.blocked import blocked_scan

        x = np.asarray(xs, dtype=np.float64)
        m = SpatialMachine()
        res = blocked_scan(m, x, block=block)
        assert np.allclose(res.prefix, np.cumsum(x), rtol=1e-9, atol=1e-6)


class TestMergeProperties:
    @given(
        st.lists(st.integers(-100, 100), min_size=16, max_size=16),
        st.lists(st.integers(-100, 100), min_size=16, max_size=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_any_sorted_pair(self, xs, ys):
        from repro.core.sorting.merge2d import merge_sorted_2d

        a = np.sort(np.asarray(xs, dtype=np.float64))
        b = np.sort(np.asarray(ys, dtype=np.float64))
        m = SpatialMachine()
        A = m.place_rowmajor(as_sort_payload(a), Region(0, 0, 4, 4))
        B = m.place_rowmajor(as_sort_payload(b), Region(0, 4, 4, 4))
        out = merge_sorted_2d(m, A, B, Region(0, 0, 4, 8), base_case=4)
        assert np.array_equal(out.payload[:, 0], np.sort(np.concatenate([a, b])))


class TestCollectivesProperties:
    @given(
        st.sampled_from([1, 2, 4, 8, 16]),
        st.sampled_from([1, 2, 4, 8, 16]),
        st.integers(0, 50),
        st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_broadcast_covers_any_power2_region(self, h, w, row, col):
        from repro.core.collectives import broadcast, broadcast_1d

        m = SpatialMachine()
        region = Region(row, col, h, w)
        v = m.place(np.array([9.0]), [row], [col])
        out = (
            broadcast_1d(m, v, region)
            if (h == 1 or w == 1)
            else broadcast(m, v, region)
        )
        assert len(out) == h * w
        assert (out.payload == 9.0).all()
        cells = set(zip(out.rows.tolist(), out.cols.tolist()))
        assert len(cells) == h * w
        assert all(region.contains(np.array([r]), np.array([c]))[0] for r, c in cells)

    @given(
        st.sampled_from([(2, 2), (4, 4), (8, 8), (8, 2), (2, 8), (16, 4)]),
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
            min_size=64,
            max_size=64,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_reduce_matches_numpy(self, shape, xs):
        from repro.core.collectives import reduce
        from repro.core.ops import ADD

        h, w = shape
        m = SpatialMachine()
        region = Region(0, 0, h, w)
        x = np.asarray(xs[: h * w], dtype=np.float64)
        total = reduce(m, m.place_rowmajor(x, region), region, ADD)
        assert total.payload[0] == pytest.approx(x.sum(), rel=1e-12, abs=1e-9)


class TestGatherProperties:
    @given(st.lists(st.booleans(), min_size=64, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_gather_preserves_masked_subsequence(self, mask_bits):
        from repro.core.gather import gather_masked

        mask = np.asarray(mask_bits, dtype=bool)
        if not mask.any():
            return
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        x = np.arange(64.0)
        ta = m.place_zorder(x, region)
        out = gather_masked(m, ta, mask, region)
        assert np.array_equal(out.payload, x[mask])
