"""Tests for the spatial PRAM simulations (Section VII, Lemmas VII.1-VII.2)."""

import numpy as np
import pytest

from repro.machine import SpatialMachine
from repro.pram import (
    ConflictError,
    FanInMaxCRCW,
    PrefixDoublingScanEREW,
    SpMVCRCW,
    TreeSumEREW,
    run_reference,
    simulate,
    simulate_crcw,
    simulate_erew,
)


class TestEREWSimulation:
    @pytest.mark.parametrize("p", (4, 16, 64, 256))
    def test_treesum_matches_reference(self, p, rng):
        x = rng.standard_normal(p)
        ref, _ = run_reference(TreeSumEREW(x), "EREW")
        m = SpatialMachine()
        mem, _ = simulate_erew(m, TreeSumEREW(x))
        assert np.allclose(mem.payload, ref)

    @pytest.mark.parametrize("p", (4, 64))
    def test_prefix_matches_reference(self, p, rng):
        x = rng.standard_normal(p)
        m = SpatialMachine()
        mem, _ = simulate_erew(m, PrefixDoublingScanEREW(x))
        assert np.allclose(mem.payload, np.cumsum(x))

    def test_conflicting_program_rejected(self, rng):
        m = SpatialMachine()
        with pytest.raises(ConflictError):
            simulate_erew(m, FanInMaxCRCW(rng.random(4), rounds=1))

    def test_lemma_vii1_depth_linear_in_steps(self, rng):
        """O(T) depth: a constant number of message hops per step."""
        for p in (16, 64, 256):
            x = rng.standard_normal(p)
            prog = TreeSumEREW(x)
            m = SpatialMachine()
            simulate_erew(m, prog)
            assert m.stats.max_depth <= 3 * prog.steps + 2

    def test_lemma_vii1_energy_envelope(self, rng):
        """O(p (sqrt(p) + sqrt(m)) T) energy."""
        for p in (16, 64, 256):
            x = rng.standard_normal(p)
            prog = TreeSumEREW(x)
            m = SpatialMachine()
            simulate_erew(m, prog)
            bound = 8 * p * 2 * np.sqrt(p) * max(prog.steps, 1)
            assert m.stats.energy <= bound

    def test_memory_metadata_tracks_writes(self, rng):
        """Reading a cell must depend on the write that produced it."""
        x = rng.standard_normal(16)
        prog = TreeSumEREW(x)
        m = SpatialMachine()
        mem, _ = simulate_erew(m, prog)
        # cell 0 was written at the last step: its depth reflects the chain
        assert mem.depth[0] >= prog.steps


class TestCRCWSimulation:
    def test_fanin_matches_reference(self, rng):
        v = rng.standard_normal(16)
        ref, _ = run_reference(FanInMaxCRCW(v, rounds=2), "CRCW")
        m = SpatialMachine()
        mem, _ = simulate_crcw(m, FanInMaxCRCW(v, rounds=2))
        assert np.allclose(mem.payload, ref)

    def test_erew_program_runs_under_crcw(self, rng):
        x = rng.standard_normal(16)
        m = SpatialMachine()
        mem, _ = simulate_crcw(m, TreeSumEREW(x))
        assert mem.payload[0] == pytest.approx(x.sum())

    def test_spmv_program(self, rng):
        n = 8
        nnz = 16
        rows = rng.integers(0, n, nnz)
        cols = rng.integers(0, n, nnz)
        vals = rng.standard_normal(nnz)
        x = rng.standard_normal(n)
        prog = SpMVCRCW(rows, cols, vals, n, x)
        m = SpatialMachine()
        mem, _ = simulate_crcw(m, prog)
        want = np.zeros(n)
        np.add.at(want, rows, vals * x[cols])
        assert np.allclose(mem.payload[n + nnz :], want)

    def test_non_pow4_processor_count_padded(self, rng):
        """Odd processor counts are padded with idle processors."""
        v = rng.random(8)
        ref, _ = run_reference(FanInMaxCRCW(v, rounds=1), "CRCW")
        m = SpatialMachine()
        mem, _ = simulate_crcw(m, FanInMaxCRCW(v, rounds=1))
        assert np.allclose(mem.payload, ref)

    def test_padding_helper(self, rng):
        from repro.pram.simulate import pad_processors

        prog = FanInMaxCRCW(rng.random(10), rounds=1)
        padded = pad_processors(prog)
        assert padded.processors == 16
        already = FanInMaxCRCW(rng.random(16), rounds=1)
        assert pad_processors(already) is already

    def test_lemma_vii2_depth_polylog_per_step(self, rng):
        """O(T log³ p) depth — much deeper than EREW but still polylog."""
        v = rng.standard_normal(64)
        prog = FanInMaxCRCW(v, rounds=2)
        m = SpatialMachine()
        simulate_crcw(m, prog)
        lp = np.log2(64)
        assert m.stats.max_depth <= prog.steps * 4 * lp**3

    def test_crcw_depth_exceeds_erew(self, rng):
        """The sorting machinery costs a polylog depth factor (Lemma VII.2
        vs Lemma VII.1)."""
        x = rng.standard_normal(64)
        prog = TreeSumEREW(x)
        m_e = SpatialMachine()
        simulate_erew(m_e, prog)
        m_c = SpatialMachine()
        simulate_crcw(m_c, TreeSumEREW(x))
        assert m_c.stats.max_depth > 3 * m_e.stats.max_depth


class TestDispatch:
    def test_simulate_dispatch(self, rng):
        x = rng.standard_normal(16)
        m = SpatialMachine()
        mem, _ = simulate(m, TreeSumEREW(x), "EREW")
        assert mem.payload[0] == pytest.approx(x.sum())
        with pytest.raises(ValueError):
            simulate(m, TreeSumEREW(x), "CREW")
