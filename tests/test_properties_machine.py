"""Property-based tests of the cost model (hypothesis).

The Spatial Computer charges are simple invariants over arbitrary message
patterns — exactly the shape of claim property-based testing is good at:

* energy is the sum of Manhattan distances over all messages ever sent;
* per-value depth/distance metadata never decreases through a send;
* local combination takes the elementwise max of the inputs' metadata;
* zero-length sends are free on every counter;
* the phase tree is a lossless decomposition: every node's inclusive cost
  is its self cost plus its children's, and the root's inclusive totals
  equal the flat machine counters.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import SpatialMachine

GRID = 32  # coordinates drawn from a GRID x GRID board

coord = st.integers(min_value=0, max_value=GRID - 1)


@st.composite
def placements(draw, max_len=24):
    """A batch of values with start coordinates and 1-3 destination hops."""
    n = draw(st.integers(min_value=1, max_value=max_len))
    rows = draw(st.lists(coord, min_size=n, max_size=n))
    cols = draw(st.lists(coord, min_size=n, max_size=n))
    hops = draw(st.integers(min_value=1, max_value=3))
    dests = [
        (
            draw(st.lists(coord, min_size=n, max_size=n)),
            draw(st.lists(coord, min_size=n, max_size=n)),
        )
        for _ in range(hops)
    ]
    return np.array(rows), np.array(cols), dests


def _manhattan(r0, c0, r1, c1):
    return int(np.abs(np.asarray(r1) - np.asarray(r0)).sum()
               + np.abs(np.asarray(c1) - np.asarray(c0)).sum())


@settings(max_examples=60, deadline=None)
@given(placements())
def test_energy_is_sum_of_manhattan_distances(batch):
    rows, cols, dests = batch
    m = SpatialMachine()
    ta = m.place(np.arange(float(len(rows))), rows, cols)
    expected = 0
    for dr, dc in dests:
        expected += _manhattan(ta.rows, ta.cols, dr, dc)
        ta = m.send(ta, np.array(dr), np.array(dc))
    assert m.stats.energy == expected


@settings(max_examples=60, deadline=None)
@given(placements())
def test_metadata_monotone_through_sends(batch):
    rows, cols, dests = batch
    m = SpatialMachine()
    ta = m.place(np.arange(float(len(rows))), rows, cols)
    for dr, dc in dests:
        before_depth, before_dist = ta.depth.copy(), ta.dist.copy()
        moved = (np.array(dr) != ta.rows) | (np.array(dc) != ta.cols)
        ta = m.send(ta, np.array(dr), np.array(dc))
        assert (ta.depth >= before_depth).all()
        assert (ta.dist >= before_dist).all()
        # exactly the movers pay +1 depth; stayers' metadata is unchanged
        assert (ta.depth[moved] == before_depth[moved] + 1).all()
        assert (ta.depth[~moved] == before_depth[~moved]).all()
        assert (ta.dist[~moved] == before_dist[~moved]).all()


@settings(max_examples=60, deadline=None)
@given(placements())
def test_send_depth_increment_is_exactly_one_for_movers(batch):
    rows, cols, dests = batch
    m = SpatialMachine()
    ta = m.place(np.zeros(len(rows)), rows, cols)
    dr, dc = dests[0]
    moved = (np.array(dr) != rows) | (np.array(dc) != cols)
    out = m.send(ta, np.array(dr), np.array(dc))
    assert (out.depth[moved] == 1).all()
    assert (out.depth[~moved] == 0).all()
    d = np.abs(np.array(dr) - rows) + np.abs(np.array(dc) - cols)
    assert (out.dist == d).all()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=16),
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=16),
)
def test_combine_metadata_is_elementwise_max(d1, d2):
    n = min(len(d1), len(d2))
    d1, d2 = np.array(d1[:n]), np.array(d2[:n])
    m = SpatialMachine()
    a = m.place(np.zeros(n), np.zeros(n, dtype=int), np.arange(n))
    b = m.place(np.zeros(n), np.ones(n, dtype=int), np.arange(n))
    a.depth[:], a.dist[:] = d1, d2
    b.depth[:], b.dist[:] = d2, d1
    c = a.combined_with(b, payload=a.payload)
    assert (c.depth == np.maximum(d1, d2)).all()
    assert (c.dist == np.maximum(d1, d2)).all()


@settings(max_examples=40, deadline=None)
@given(st.lists(coord, min_size=1, max_size=24), st.lists(coord, min_size=1, max_size=24))
def test_zero_length_sends_are_free(rows, cols):
    n = min(len(rows), len(cols))
    rows, cols = np.array(rows[:n]), np.array(cols[:n])
    m = SpatialMachine()
    ta = m.place(np.arange(float(n)), rows, cols)
    out = m.send(ta, rows, cols)  # everyone "sends" to itself
    assert m.stats.energy == 0
    assert m.stats.messages == 0
    assert m.stats.rounds == 0
    assert m.stats.max_depth == 0
    assert (out.depth == 0).all() and (out.dist == 0).all()
    assert m.cost_tree.total().energy == 0


@settings(max_examples=40, deadline=None)
@given(coord, coord, st.integers(min_value=0, max_value=20),
       st.integers(min_value=0, max_value=20))
def test_empty_relay_is_noop(r, c, depth0, dist0):
    """A relay with no stops is a complete no-op: no counter moves and the
    caller's metadata passes through unchanged (regression — this used to
    charge a round)."""
    e = np.empty(0, dtype=np.int64)
    for m in (SpatialMachine(), SpatialMachine(fast=False)):
        got = m.relay((r, c), e, e, depth0, dist0)
        assert got == (depth0, dist0)
        assert m.stats.energy == 0
        assert m.stats.messages == 0
        assert m.stats.rounds == 0
        assert m.stats.max_depth == 0
        assert m.stats.max_distance == 0
        assert m.cost_tree.total().energy == 0


phase_names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def phase_programs(draw):
    """A random sequence of push / pop / send operations."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("push"), phase_names),
                st.tuples(st.just("pop"), st.just("")),
                st.tuples(st.just("send"), st.integers(min_value=0, max_value=9)),
            ),
            min_size=1,
            max_size=30,
        )
    )


@settings(max_examples=60, deadline=None)
@given(phase_programs())
def test_phase_tree_is_lossless_decomposition(program):
    m = SpatialMachine()
    stack = []
    for op, arg in program:
        if op == "push":
            span = m.phase(arg)
            span.__enter__()
            stack.append(span)
        elif op == "pop" and stack:
            stack.pop().__exit__(None, None, None)
        elif op == "send":
            ta = m.place(np.array([1.0]), [0], [0])
            m.send(ta, np.array([0]), np.array([arg]))
    while stack:
        stack.pop().__exit__(None, None, None)

    tree = m.cost_tree
    # root inclusive == flat counters
    total = tree.total()
    assert total.energy == m.stats.energy
    assert total.messages == m.stats.messages
    assert tree.root.inclusive_cost()["sends"] == m.stats.rounds
    # every node: inclusive == self + sum(children inclusive)
    for node, _ in tree.root.walk():
        inc = node.inclusive_cost()
        assert inc["energy"] == node.energy + sum(
            c.inclusive_cost()["energy"] for c in node.children.values()
        )
        assert inc["messages"] == node.messages + sum(
            c.inclusive_cost()["messages"] for c in node.children.values()
        )
    # clone + delta round-trip: delta against a fresh clone is all zeros
    zero = tree.delta(tree.clone())
    assert zero.total().energy == 0
    assert zero.total().messages == 0
