"""Integration tests: primitives composed on one machine, cross-module flows,
and whole-model invariants."""

import numpy as np
import pytest

from repro import (
    ADD,
    Region,
    SpatialMachine,
    all_reduce,
    merge_sorted_2d,
    rank_select,
    scan,
    sort_values,
    spmv_spatial,
)
from repro.spmv import random_coo


class TestComposedPipelines:
    def test_sort_then_scan(self, rng):
        """Sort values, then prefix-sum the sorted sequence (one machine)."""
        n = 256
        region = Region(0, 0, 16, 16)
        x = rng.random(n)
        m = SpatialMachine()
        sorted_ta = sort_values(m, x, region)
        # re-park row-major results along the Z-curve for the scan
        zta = m.place_zorder(np.zeros(n), region)
        moved = m.send(sorted_ta.with_payload(sorted_ta.payload[:, 0]), zta.rows, zta.cols)
        res = scan(m, moved, region)
        assert np.allclose(res.inclusive.payload, np.cumsum(np.sort(x)))
        # depth of the final result exceeds the sort's (chained dependency)
        assert res.inclusive.max_depth() > sorted_ta.max_depth()

    def test_select_equals_sort_readoff(self, rng):
        n = 1024
        region = Region(0, 0, 32, 32)
        x = rng.standard_normal(n)
        k = 300
        m1 = SpatialMachine()
        res = rank_select(
            m1, m1.place_zorder(x, region), region, k, np.random.default_rng(9)
        )
        m2 = SpatialMachine()
        out = sort_values(m2, x, region)
        assert res.value == pytest.approx(out.payload[k - 1, 0])
        # and selection is far cheaper
        assert m1.stats.energy < m2.stats.energy / 5

    def test_spmv_power_iteration(self, rng):
        """Three chained SpMVs on one machine approximate A³x."""
        n = 16
        A = random_coo(n, 3 * n, rng)
        x = rng.standard_normal(n)
        m = SpatialMachine()
        y = x.copy()
        for _ in range(3):
            y_ta = spmv_spatial(m, A, y)
            y = y_ta.payload.copy()
        want = x.copy()
        for _ in range(3):
            want = A.multiply_dense(want)
        assert np.allclose(y, want)

    def test_merge_of_two_mergesorts(self, rng):
        """Sort two independent arrays then merge them — the mergesort's own
        composition, exercised explicitly at the API level."""
        side = 8
        m = SpatialMachine()
        a = rng.random(side * side)
        b = rng.random(side * side)
        sa = sort_values(m, a, Region(0, 0, side, side))
        sb = sort_values(m, b, Region(0, side, side, side))
        merged = merge_sorted_2d(m, sa, sb, Region(0, 0, side, 2 * side))
        assert np.allclose(
            merged.payload[:, 0], np.sort(np.concatenate([a, b]))
        )


class TestModelInvariants:
    def test_energy_equals_trace_sum(self, rng):
        """The global energy counter exactly equals the per-message sum
        (sends and relayed probe chains are both traced)."""
        n = 64
        region = Region(0, 0, 8, 8)
        m = SpatialMachine(trace=True)
        sort_values(m, rng.random(n), region)
        assert m.tracer.total_energy() == m.stats.energy
        assert m.tracer.total_messages() == m.stats.messages

    def test_depth_never_exceeds_messages(self, rng):
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        sort_values(m, rng.random(64), region)
        assert m.stats.max_depth <= m.stats.messages

    def test_distance_never_exceeds_energy(self, rng):
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        scan(m, m.place_zorder(rng.random(64), region), region)
        assert m.stats.max_distance <= m.stats.energy

    def test_depth_le_distance(self, rng):
        """Every hop has distance >= 1, so chain depth <= chain distance."""
        m = SpatialMachine()
        region = Region(0, 0, 16, 16)
        res = scan(m, m.place_zorder(rng.random(256), region), region)
        assert (res.inclusive.depth <= res.inclusive.dist).all()

    def test_allreduce_then_dependent_work(self, rng):
        """Control threading: work gated on an all-reduce inherits its depth."""
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        x = m.place_rowmajor(rng.random(64), region)
        totals = all_reduce(m, x, region, ADD)
        gated = x.depending_on(totals)
        assert (gated.depth >= totals.depth.min()).all()

    def test_costs_deterministic_given_seed(self, rng):
        """Same input, same seed => identical measured costs."""
        n = 256
        region = Region(0, 0, 16, 16)
        x = rng.standard_normal(n)
        stats = []
        for _ in range(2):
            m = SpatialMachine()
            rank_select(
                m, m.place_zorder(x, region), region, 99, np.random.default_rng(4)
            )
            stats.append((m.stats.energy, m.stats.messages, m.stats.max_depth))
        assert stats[0] == stats[1]


class TestTableIOrdering:
    """The paper's Table I relationships between the four problems."""

    def test_scan_cheaper_than_selection_cheaper_than_sort(self, rng):
        n = 1024
        region = Region(0, 0, 32, 32)
        x = rng.standard_normal(n)

        m_scan = SpatialMachine()
        scan(m_scan, m_scan.place_zorder(x, region), region)
        m_sel = SpatialMachine()
        rank_select(
            m_sel, m_sel.place_zorder(x, region), region, n // 2, np.random.default_rng(1)
        )
        m_sort = SpatialMachine()
        sort_values(m_sort, x, region)

        assert m_scan.stats.energy < m_sel.stats.energy < m_sort.stats.energy

    def test_spmv_tracks_sort_energy(self, rng):
        """SpMV energy is sort-dominated: same order of magnitude as sorting
        its nonzeros."""
        n = 64
        A = random_coo(n, 4 * n, rng)
        x = rng.standard_normal(n)
        m_spmv = SpatialMachine()
        spmv_spatial(m_spmv, A, x)
        side = 1
        while side * side < A.nnz:
            side *= 2
        m_sort = SpatialMachine()
        sort_values(m_sort, rng.random(side * side), Region(0, 0, side, side))
        ratio = m_spmv.stats.energy / m_sort.stats.energy
        assert 0.5 < ratio < 10
