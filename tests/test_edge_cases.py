"""Edge-case tests across modules: tiny inputs, offset regions, degenerate
shapes, and boundary parameters."""

import numpy as np
import pytest

from repro.core.collectives import all_reduce, broadcast, reduce
from repro.core.ops import ADD, MAX
from repro.core.scan import scan, segmented_scan
from repro.core.sorting import allpairs_sort, mergesort_2d, sort_values
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine
from repro.spmv import SpMVLayout, random_coo, spmv_spatial
from repro.spmv.coo import COOMatrix


class TestOneByOne:
    def test_scan_single(self):
        m = SpatialMachine()
        region = Region(0, 0, 1, 1)
        res = scan(m, m.place_zorder(np.array([5.0]), region), region)
        assert res.inclusive.payload[0] == 5.0
        assert m.stats.energy == 0

    def test_reduce_single(self):
        m = SpatialMachine()
        region = Region(0, 0, 1, 1)
        total = reduce(m, m.place_rowmajor(np.array([3.0]), region), region, ADD)
        assert total.payload[0] == 3.0

    def test_broadcast_single(self):
        m = SpatialMachine()
        region = Region(0, 0, 1, 1)
        out = broadcast(m, m.place(np.array([2.0]), [0], [0]), region)
        assert len(out) == 1 and m.stats.energy == 0

    def test_sort_single(self):
        m = SpatialMachine()
        out = sort_values(m, np.array([1.0]), Region(0, 0, 1, 1))
        assert out.payload[0, 0] == 1.0

    def test_coo_one_by_one(self, rng):
        A = COOMatrix(np.array([0]), np.array([0]), np.array([2.0]), 1)
        m = SpatialMachine()
        y = spmv_spatial(m, A, np.array([3.0]))
        assert y.payload[0] == 6.0


class TestOffsetRegions:
    def test_scan_far_from_origin(self, rng):
        m = SpatialMachine()
        region = Region(1000, 2000, 8, 8)
        x = rng.standard_normal(64)
        res = scan(m, m.place_zorder(x, region), region)
        assert np.allclose(res.inclusive.payload, np.cumsum(x))
        # costs identical to the origin-anchored run (translation invariance)
        m0 = SpatialMachine()
        scan(m0, m0.place_zorder(x, Region(0, 0, 8, 8)), region=Region(0, 0, 8, 8))
        assert m.stats.energy == m0.stats.energy

    def test_sort_far_from_origin(self, rng):
        m = SpatialMachine()
        region = Region(500, 500, 8, 8)
        x = rng.random(64)
        out = sort_values(m, x, region)
        assert np.allclose(out.payload[:, 0], np.sort(x))

    def test_allreduce_translation_invariant(self, rng):
        x = rng.random(16)
        costs = []
        for anchor in ((0, 0), (77, 33)):
            m = SpatialMachine()
            region = Region(anchor[0], anchor[1], 4, 4)
            all_reduce(m, m.place_rowmajor(x, region), region, MAX)
            costs.append(m.stats.energy)
        assert costs[0] == costs[1]


class TestDegenerateSegments:
    def test_segmented_scan_alternating_flags(self, rng):
        n = 64
        x = rng.standard_normal(n)
        flags = np.tile([1.0, 0.0], n // 2)
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        res = segmented_scan(m, flags, m.place_zorder(x, region), region)
        want = x.copy()
        want[1::2] = x[0::2] + x[1::2]
        assert np.allclose(res.inclusive.payload, want)

    def test_segment_of_length_n(self, rng):
        n = 16
        x = rng.standard_normal(n)
        flags = np.zeros(n)
        flags[0] = 1
        m = SpatialMachine()
        region = Region(0, 0, 4, 4)
        res = segmented_scan(m, flags, m.place_zorder(x, region), region)
        assert np.allclose(res.inclusive.payload, np.cumsum(x))


class TestSortPayloadShapes:
    def test_multiple_satellite_columns(self, rng):
        n = 64
        x = rng.random(n)
        payload = np.column_stack([x, np.arange(n), np.arange(n) * 2.0])
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        out = mergesort_2d(m, m.place_rowmajor(payload, region), region, key_cols=1)
        order = out.payload[:, 1].astype(int)
        assert np.allclose(x[order], np.sort(x))
        assert np.allclose(out.payload[:, 2], out.payload[:, 1] * 2)

    def test_two_key_columns(self, rng):
        n = 64
        k1 = rng.integers(0, 3, n).astype(float)
        k2 = rng.random(n)
        payload = np.column_stack([k1, k2])
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        out = mergesort_2d(m, m.place_rowmajor(payload, region), region, key_cols=2)
        got = [tuple(r) for r in out.payload]
        assert got == sorted(zip(k1, k2))

    def test_allpairs_1d_payload_rejected(self, rng):
        m = SpatialMachine()
        ta = m.place_rowmajor(rng.random(16), Region(0, 0, 4, 4))
        with pytest.raises(ValueError):
            allpairs_sort(m, ta)


class TestSpMVLayouts:
    def test_custom_layout(self, rng):
        A = random_coo(16, 48, rng)
        layout = SpMVLayout(
            entry_region=Region(100, 100, 8, 8),
            x_region=Region(100, 108, 4, 4),
            y_region=Region(104, 108, 4, 4),
        )
        m = SpatialMachine()
        x = rng.standard_normal(16)
        y = spmv_spatial(m, A, x, layout=layout)
        assert np.allclose(y.payload, A.multiply_dense(x))
        assert y.rows.min() >= 104

    def test_default_layout_regions_disjoint(self):
        layout = SpMVLayout.default(64, 256)
        e, xr, yr = layout.entry_region, layout.x_region, layout.y_region
        # x and y sit beside/below the entry grid, not inside it
        assert xr.col >= e.col_end
        assert yr.row >= xr.row_end


class TestAsSortPayloadDtype:
    def test_int_input_coerced(self):
        p = as_sort_payload(np.array([3, 1, 2]))
        assert p.dtype == np.float64 and p.shape == (3, 1)
