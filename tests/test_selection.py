"""Tests for randomized rank selection (Section VI, Theorem VI.3)."""

import numpy as np
import pytest

from repro.analysis import make_workload
from repro.core.selection import rank_select
from repro.machine import Region, SpatialMachine


def _select(x, k, seed=0, **kw):
    n = len(x)
    side = int(np.sqrt(n))
    m = SpatialMachine()
    region = Region(0, 0, side, side)
    ta = m.place_zorder(np.asarray(x, dtype=np.float64), region)
    res = rank_select(m, ta, region, k, np.random.default_rng(seed), **kw)
    return m, res


class TestSelectionCorrectness:
    @pytest.mark.parametrize("n", (16, 64, 256, 1024))
    def test_median(self, n, rng):
        x = rng.standard_normal(n)
        _, res = _select(x, n // 2)
        assert res.value == pytest.approx(np.sort(x)[n // 2 - 1])

    @pytest.mark.parametrize("k_frac", (0.01, 0.1, 0.5, 0.9, 1.0))
    def test_rank_sweep(self, k_frac, rng):
        n = 1024
        x = rng.standard_normal(n)
        k = max(1, int(k_frac * n))
        _, res = _select(x, k, seed=3)
        assert res.value == pytest.approx(np.sort(x)[k - 1])

    def test_extremes(self, rng):
        n = 256
        x = rng.standard_normal(n)
        _, res_min = _select(x, 1)
        _, res_max = _select(x, n)
        assert res_min.value == pytest.approx(x.min())
        assert res_max.value == pytest.approx(x.max())

    @pytest.mark.parametrize("kind", ("reversed", "sorted", "few_distinct", "zipf"))
    def test_workloads(self, kind, rng):
        n = 256
        x = make_workload(kind, n, rng)
        k = n // 3
        _, res = _select(x, k, seed=5)
        assert res.value == pytest.approx(np.sort(x)[k - 1])

    def test_all_duplicates(self):
        x = np.full(64, 2.5)
        _, res = _select(x, 17)
        assert res.value == 2.5

    def test_many_seeds(self, rng):
        n = 256
        x = rng.standard_normal(n)
        k = 77
        want = np.sort(x)[k - 1]
        for seed in range(25):
            _, res = _select(x, k, seed=seed)
            assert res.value == pytest.approx(want), seed

    def test_bad_rank_rejected(self, rng):
        x = rng.random(16)
        with pytest.raises(ValueError):
            _select(x, 0)
        with pytest.raises(ValueError):
            _select(x, 17)


class TestTheoremVI3Costs:
    def test_linear_energy(self):
        """Θ(n) energy: energy/n bounded as n grows."""
        rng = np.random.default_rng(0)
        per = []
        for n in (1024, 4096, 16384):
            x = rng.standard_normal(n)
            m, res = _select(x, n // 2, seed=1)
            per.append(m.stats.energy / n)
        assert max(per) < 300
        assert per[-1] <= per[0] * 1.5  # not growing

    def test_constant_iterations(self):
        """Lemma VI.2: N shrinks polynomially, so O(1) iterations suffice."""
        rng = np.random.default_rng(0)
        for n in (1024, 4096, 16384):
            x = rng.standard_normal(n)
            _, res = _select(x, n // 2, seed=2)
            assert res.iterations <= 8

    def test_polylog_depth(self):
        rng = np.random.default_rng(0)
        for n in (1024, 4096):
            x = rng.standard_normal(n)
            m, _ = _select(x, n // 2, seed=4)
            assert m.stats.max_depth <= 8 * np.log2(n) ** 2

    def test_sqrt_distance(self):
        rng = np.random.default_rng(0)
        ds = []
        for n in (1024, 4096, 16384):
            x = rng.standard_normal(n)
            m, _ = _select(x, n // 2, seed=6)
            ds.append(m.stats.max_distance / np.sqrt(n))
        assert max(ds) < 200
        assert ds[-1] < ds[0] * 1.5

    def test_energy_far_below_sorting(self):
        """Section VI's headline: polynomial energy separation vs sorting."""
        from repro.core.sorting.mergesort2d import sort_values

        rng = np.random.default_rng(0)
        n = 1024
        x = rng.standard_normal(n)
        msel, _ = _select(x, n // 2, seed=7)
        msort = SpatialMachine()
        sort_values(msort, x, Region(0, 0, 32, 32))
        assert msel.stats.energy * 10 < msort.stats.energy

    def test_fallback_rare(self):
        """Lemma VI.1: pivot misses are rare — none across seeds here."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1024)
        fallbacks = 0
        for seed in range(20):
            _, res = _select(x, 512, seed=seed)
            fallbacks += res.fell_back
        assert fallbacks <= 1

    def test_fallback_path_correct(self, rng):
        """Force the fallback branch (c tiny -> pivots frequently miss) and
        check it still returns the exact rank."""
        n = 256
        x = rng.standard_normal(n)
        k = 100
        fell_back = False
        for seed in range(40):
            _, res = _select(x, k, seed=seed, c=1.0)
            assert res.value == pytest.approx(np.sort(x)[k - 1])
            fell_back |= res.fell_back
        # with c=1 the miss probability is substantial; expect at least one
        assert fell_back


class TestLemmaVI2Shrinkage:
    def test_history_recorded(self, rng):
        x = rng.standard_normal(1024)
        _, res = _select(x, 512, seed=11)
        assert res.active_history is not None
        assert res.active_history[0] == 1024
        assert len(res.active_history) == res.iterations + 1

    def test_history_monotone_decreasing(self, rng):
        x = rng.standard_normal(4096)
        _, res = _select(x, 1000, seed=12)
        h = res.active_history
        assert all(b <= a for a, b in zip(h[:-1], h[1:]))

    def test_shrinkage_bound(self, rng):
        """Lemma VI.2 with generous ε: every observed step contracts at
        least to (1+1) N^{3/4} sqrt(ln n)."""
        n = 4096
        x = rng.standard_normal(n)
        ln_n = np.log(n)
        for seed in range(8):
            _, res = _select(x, n // 2, seed=seed)
            for a, b in zip(res.active_history[:-1], res.active_history[1:]):
                assert b <= 2.0 * a**0.75 * np.sqrt(ln_n) + 1


class TestExtremeRankRegression:
    def test_rank_n_does_not_fall_back(self, rng):
        """Regression: k = n used to trip the step-5 guard immediately
        (the w.l.o.g. k <= ceil(n/2) flip must happen before the loop)."""
        n = 1024
        x = rng.standard_normal(n)
        for k in (n, n - 1, (n + 1) // 2 + 1):
            m, res = _select(x, k, seed=1)
            assert res.value == pytest.approx(np.sort(x)[k - 1])
            assert not res.fell_back, k
            assert m.stats.energy < 1_000_000  # linear regime, not the sort
