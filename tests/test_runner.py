"""Tests for the repro.runner subsystem: specs, registry, cache, executor.

The failure-path tests register synthetic suites from a temporary benchmarks
directory so a crash/timeout/exception in a worker is exercised for real
(separate processes), with tiny timeouts and backoffs to keep the suite fast.
"""

import textwrap

import pytest

from repro.runner import (
    ExperimentSpec,
    PointResult,
    PointSpec,
    ResultCache,
    RunConfig,
    SweepGrid,
    build_bench_result,
    canonical_json,
    load_suites,
    run_points,
    spec_hash,
    validate_bench_result,
)

SYNTH_BENCH = textwrap.dedent(
    """
    import os
    import time

    from repro.runner import register_suite

    def _metrics(n):
        return {
            "metrics": {"energy": n * 10, "messages": n, "rounds": 1,
                        "max_depth": 2, "max_distance": 3},
            "phases": [],
            "extra": {"n2": n * n},
        }

    @register_suite("rt_ok", artifact="synthetic", grid={"n": [4, 8]},
                    quick={"n": [4]})
    def _ok(params, rng):
        return _metrics(params["n"])

    @register_suite("rt_crash", grid={"n": [4]})
    def _crash(params, rng):
        os._exit(13)

    @register_suite("rt_sleep", grid={"n": [4]})
    def _sleep(params, rng):
        time.sleep(60)

    @register_suite("rt_raise", grid={"n": [4]})
    def _raise(params, rng):
        raise ValueError("synthetic failure")

    @register_suite("rt_mixed", grid={"n": [3, 4, 5]})
    def _mixed(params, rng):
        if params["n"] == 4:
            raise ValueError("only the middle point fails")
        return _metrics(params["n"])
    """
)


@pytest.fixture
def synth_dir(tmp_path):
    (tmp_path / "bench_synth.py").write_text(SYNTH_BENCH)
    return tmp_path


@pytest.fixture
def synth(synth_dir):
    return load_suites(synth_dir)


FAST = dict(timeout=10.0, retries=2, backoff=0.01)


class TestSpec:
    def test_grid_cross_product(self):
        g = SweepGrid(params={"a": [1, 2], "b": ["x"]}, seeds=(0, 1), repeats=2)
        pts = g.points("s")
        assert len(pts) == 2 * 1 * 2 * 2
        assert pts[0].identity() == {
            "suite": "s", "params": {"a": 1, "b": "x"}, "seed": 0, "repeat": 0,
        }

    def test_grid_explicit_points(self):
        g = SweepGrid(params=[{"p": 16, "mode": "erew"}, {"p": 16, "mode": "crcw"}])
        assert [p.params["mode"] for p in g.points("s")] == ["erew", "crcw"]

    def test_hash_is_order_insensitive(self):
        a = spec_hash({"x": 1, "y": [1, 2]})
        b = spec_hash({"y": [1, 2], "x": 1})
        assert a == b
        assert a != spec_hash({"x": 1, "y": [2, 1]})

    def test_canonical_json_deterministic(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_experiment_spec_roundtrip(self):
        spec = ExperimentSpec("s", SweepGrid(params={"n": [4]}))
        assert spec.as_dict()["grid"]["params"] == {"n": [4]}
        assert spec.hash() == spec.hash()


class TestRegistry:
    def test_real_benchmarks_all_register(self):
        suites = load_suites()
        assert len(suites) >= 24
        for expected in ("table1_scan", "table1_sort", "table1_selection",
                         "table1_spmv", "pram", "phase_overhead"):
            assert expected in suites
        for s in suites.values():
            assert s.grid.seeds, f"{s.name} has no seeds"
            assert s.quick.points(s.name), f"{s.name} has an empty quick grid"

    def test_load_is_idempotent(self, synth_dir):
        first = load_suites(synth_dir)
        second = load_suites(synth_dir)
        assert first["rt_ok"].fn is second["rt_ok"].fn

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_suites(tmp_path / "nope")


class TestCache:
    def _point(self, n=4):
        return PointSpec(suite="rt_ok", params={"n": n}, seed=0)

    def _result(self, n=4):
        return PointResult(
            params={"n": n}, seed=0, repeat=0, status="ok",
            metrics={"energy": 1, "messages": 1, "rounds": 1,
                     "max_depth": 1, "max_distance": 1},
        )

    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key_for(self._point(), "v1")
        assert cache.get(key) is None
        cache.put(key, self._result())
        hit = cache.get(key)
        assert hit is not None and hit.cached and hit.ok

    def test_spec_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(cache.key_for(self._point(4), "v1"), self._result(4))
        assert cache.get(cache.key_for(self._point(8), "v1")) is None

    def test_code_version_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(cache.key_for(self._point(), "v1"), self._result())
        assert cache.get(cache.key_for(self._point(), "v2")) is None
        assert cache.get(cache.key_for(self._point(), "v1")) is not None

    def test_failed_results_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key_for(self._point(), "v1")
        cache.put(key, PointResult(params={"n": 4}, seed=0, repeat=0,
                                   status="failed", error="boom"))
        assert cache.get(key) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key_for(self._point(), "v1")
        cache.put(key, self._result())
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None


class TestExecutor:
    def test_ok_sweep(self, synth, synth_dir):
        suite = synth["rt_ok"]
        results = run_points(suite, suite.spec().points(), RunConfig(jobs=2, **FAST),
                             bench_dir=synth_dir)
        assert [r.status for r in results] == ["ok", "ok"]
        assert results[0].metrics["energy"] == 40
        assert results[0].extra["n2"] == 16

    def test_crash_retry_exhaustion(self, synth, synth_dir):
        suite = synth["rt_crash"]
        results = run_points(suite, suite.spec().points(),
                             RunConfig(jobs=1, timeout=10.0, retries=2, backoff=0.01),
                             bench_dir=synth_dir)
        (r,) = results
        assert r.status == "failed"
        assert r.attempts == 3  # initial + 2 retries
        assert "exit code 13" in r.error

    def test_timeout_produces_failed_record_without_killing_sweep(
        self, synth, synth_dir
    ):
        # one hanging point amid ok points: the sweep must complete, with
        # exactly the hanging point recorded as failed (timeout)
        sleep = synth["rt_sleep"]
        ok = synth["rt_ok"]
        cfg = RunConfig(jobs=2, timeout=1.0, retries=0, backoff=0.01)
        slow = run_points(sleep, sleep.spec().points(), cfg, bench_dir=synth_dir)
        fast = run_points(ok, ok.spec().points(), cfg, bench_dir=synth_dir)
        assert slow[0].status == "failed" and "timeout" in slow[0].error
        assert all(r.ok for r in fast)

    def test_exception_is_recorded_not_retried(self, synth, synth_dir):
        suite = synth["rt_raise"]
        results = run_points(suite, suite.spec().points(), RunConfig(jobs=1, **FAST),
                             bench_dir=synth_dir)
        (r,) = results
        assert r.status == "failed"
        assert r.attempts == 1
        assert "synthetic failure" in r.error

    def test_partial_failure_keeps_other_points(self, synth, synth_dir):
        suite = synth["rt_mixed"]
        results = run_points(suite, suite.spec().points(), RunConfig(jobs=2, **FAST),
                             bench_dir=synth_dir)
        assert [r.status for r in results] == ["ok", "failed", "ok"]

    def test_cache_hits_skip_execution(self, synth, synth_dir, tmp_path):
        suite = synth["rt_ok"]
        cache = ResultCache(tmp_path / "c")
        cfg = RunConfig(jobs=2, **FAST)
        points = suite.spec().points()
        first = run_points(suite, points, cfg, cache=cache, code_ver="v1",
                           bench_dir=synth_dir)
        second = run_points(suite, points, cfg, cache=cache, code_ver="v1",
                            bench_dir=synth_dir)
        assert not any(r.cached for r in first)
        assert all(r.cached for r in second)
        assert [r.metrics for r in second] == [r.metrics for r in first]
        # a code-version bump invalidates every entry
        third = run_points(suite, points, cfg, cache=cache, code_ver="v2",
                           bench_dir=synth_dir)
        assert not any(r.cached for r in third)


class TestSchema:
    def _doc(self, synth, synth_dir):
        suite = synth["rt_ok"]
        spec = suite.spec()
        results = run_points(suite, spec.points(), RunConfig(jobs=2, **FAST),
                             bench_dir=synth_dir)
        return build_bench_result(suite.name, suite.artifact, spec.as_dict(),
                                  "v1", {"jobs": 2}, results)

    def test_valid_document(self, synth, synth_dir):
        doc = self._doc(synth, synth_dir)
        assert validate_bench_result(doc) == []
        assert doc["summary"] == {
            "total": 2, "ok": 2, "failed": 0, "cached": 0,
            "wall_time_s": doc["summary"]["wall_time_s"],
        }

    def test_validator_flags_problems(self, synth, synth_dir):
        doc = self._doc(synth, synth_dir)
        doc["points"][0]["metrics"].pop("energy")
        doc["points"][1]["status"] = "failed"
        doc["points"][1]["error"] = None
        errs = validate_bench_result(doc)
        assert any("metrics.energy" in e for e in errs)
        assert any("without an error message" in e for e in errs)
        assert any("summary.ok" in e for e in errs)

    def test_validator_rejects_non_objects(self):
        assert validate_bench_result([]) == ["document is not a JSON object"]
        assert "schema_version must be 1" in validate_bench_result({})[0]


class TestCacheTornWrites:
    """Concurrency hardening: torn writes are discarded, never loaded."""

    def _point(self, n=4):
        return PointSpec(suite="rt_ok", params={"n": n}, seed=0)

    def _result(self, n=4):
        return PointResult(params={"n": n}, seed=0, repeat=0, status="ok",
                           metrics={"energy": 10})

    def test_torn_write_is_discarded_not_loaded(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key_for(self._point(), "v1")
        cache.put(key, self._result())
        path = cache.path_for(key)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # simulated torn write
        assert cache.get(key) is None
        assert not path.exists()  # corrupt entry removed, not just skipped
        # the slot is clean: a fresh put works and reads back
        cache.put(key, self._result())
        assert cache.get(key) is not None

    def test_structurally_invalid_entry_discarded(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key_for(self._point(), "v1")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"valid_json": "but not a PointResult"}')
        assert cache.get(key) is None
        assert not path.exists()

    def test_no_stale_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key_for(self._point(), "v1")
        cache.put(key, self._result())
        leftovers = [p for p in (tmp_path / "c").rglob("*.tmp")]
        assert leftovers == []

    def test_writers_serialize_on_entry_lock(self, tmp_path):
        import threading
        import time as _time

        try:
            import fcntl
        except ImportError:
            pytest.skip("no fcntl on this platform")
        cache = ResultCache(tmp_path / "c")
        key = cache.key_for(self._point(), "v1")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_fh = open(path.with_suffix(".lock"), "w")
        fcntl.flock(lock_fh, fcntl.LOCK_EX)
        done = threading.Event()

        def writer():
            cache.put(key, self._result())
            done.set()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        assert not done.wait(0.3)  # blocked while we hold the entry lock
        fcntl.flock(lock_fh, fcntl.LOCK_UN)
        lock_fh.close()
        assert done.wait(5.0)
        t.join(5.0)
        assert cache.get(key) is not None


class TestRetryJitter:
    """Crash-retry backoff carries deterministic, seeded jitter."""

    def test_deterministic_for_same_inputs(self):
        from repro.runner.executor import retry_delay

        cfg = RunConfig(backoff=0.25, jitter=0.5)
        assert retry_delay(cfg, 7, 3, 1) == retry_delay(cfg, 7, 3, 1)

    def test_within_jitter_envelope(self):
        from repro.runner.executor import retry_delay

        cfg = RunConfig(backoff=0.25, jitter=0.5)
        for attempt in range(3):
            base = 0.25 * 2**attempt
            d = retry_delay(cfg, 0, 0, attempt)
            assert base <= d <= base * 1.5

    def test_zero_jitter_is_pure_exponential(self):
        from repro.runner.executor import retry_delay

        cfg = RunConfig(backoff=0.25, jitter=0.0)
        assert retry_delay(cfg, 0, 0, 2) == 1.0

    def test_distinct_points_desynchronize(self):
        from repro.runner.executor import retry_delay

        cfg = RunConfig(backoff=0.25, jitter=0.5)
        delays = {retry_delay(cfg, seed, idx, 0) for seed in range(4) for idx in range(4)}
        assert len(delays) > 1  # not all in lockstep

    def test_crash_retries_still_succeed_with_jitter(self, synth, synth_dir):
        suite = synth["rt_crash"]
        pts = suite.spec().points()
        cfg = RunConfig(jobs=2, timeout=10.0, retries=2, backoff=0.01, jitter=0.5,
                        use_cache=False)
        res = run_points(suite, pts, cfg, bench_dir=synth_dir)
        assert all(r.status == "failed" for r in res)
        assert all(r.attempts == 3 for r in res)
