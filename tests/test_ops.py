"""Unit + property tests for monoids and segmented operators (repro.core.ops)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import ADD, MAX, MIN, Monoid, pack_segmented, segmented, unpack_segmented

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestBasicMonoids:
    def test_add(self):
        out = ADD(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert out.tolist() == [4.0, 6.0]
        assert ADD.identity(2).tolist() == [0.0, 0.0]

    def test_max_min(self):
        assert MAX(np.array([1.0]), np.array([5.0]))[0] == 5.0
        assert MIN(np.array([1.0]), np.array([5.0]))[0] == 1.0
        assert MAX.identity(1)[0] == -np.inf
        assert MIN.identity(1)[0] == np.inf

    def test_identity_like_2d(self):
        like = np.zeros((3, 2))
        ident = ADD.identity(4, like=like)
        assert ident.shape == (4, 2)
        assert (ident == 0).all()

    def test_identity_laws(self):
        x = np.array([3.0, -2.0])
        for m in (ADD, MAX, MIN):
            i = m.identity(2, like=x)
            assert np.allclose(m(i, x), x)
            assert np.allclose(m(x, i), x)


class TestPackUnpack:
    def test_roundtrip(self):
        flags = np.array([1, 0, 1])
        vals = np.array([1.5, 2.5, 3.5])
        packed = pack_segmented(flags, vals)
        f, v = unpack_segmented(packed)
        assert f.tolist() == [True, False, True]
        assert v.tolist() == [1.5, 2.5, 3.5]


class TestSegmentedOperator:
    def test_identity(self):
        seg = segmented(ADD)
        ident = seg.identity(2)
        assert ident.shape == (2, 2)
        x = pack_segmented(np.array([1, 0]), np.array([5.0, 7.0]))
        assert np.allclose(seg(ident, x), x)

    def test_flag_resets(self):
        seg = segmented(ADD)
        a = pack_segmented(np.array([0]), np.array([10.0]))
        b_flagged = pack_segmented(np.array([1]), np.array([3.0]))
        out = seg(a, b_flagged)
        assert out[0, 1] == 3.0  # right operand starts a new segment
        assert out[0, 0] == 1.0

    def test_no_flag_combines(self):
        seg = segmented(ADD)
        a = pack_segmented(np.array([1]), np.array([10.0]))
        b = pack_segmented(np.array([0]), np.array([3.0]))
        out = seg(a, b)
        assert out[0, 1] == 13.0
        assert out[0, 0] == 1.0

    @given(
        st.lists(st.tuples(st.booleans(), finite), min_size=3, max_size=3)
    )
    @settings(max_examples=300, deadline=None)
    def test_associativity_property(self, triples):
        """The segmented operator must be associative for the scan to work."""
        seg = segmented(ADD)
        xs = [
            pack_segmented(np.array([float(f)]), np.array([v]))
            for f, v in triples
        ]
        left = seg(seg(xs[0], xs[1]), xs[2])
        right = seg(xs[0], seg(xs[1], xs[2]))
        assert np.allclose(left, right)

    @given(st.lists(st.tuples(st.booleans(), finite), min_size=3, max_size=3))
    @settings(max_examples=200, deadline=None)
    def test_associativity_max(self, triples):
        seg = segmented(MAX)
        xs = [
            pack_segmented(np.array([float(f)]), np.array([v]))
            for f, v in triples
        ]
        left = seg(seg(xs[0], xs[1]), xs[2])
        right = seg(xs[0], seg(xs[1], xs[2]))
        assert np.allclose(left, right)

    def test_custom_monoid(self):
        mul = Monoid("mul", np.multiply, 1.0)
        assert mul(np.array([3.0]), np.array([4.0]))[0] == 12.0
        assert mul.identity(1)[0] == 1.0
