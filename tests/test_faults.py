"""Fault injection, recovery accounting, and strict model validation.

The acceptance bar (ISSUE 3): every primitive returns bit-identical results
under at least three distinct seeded fault plans per fault class, recovery
costs surface as a top-level ``recovery`` phase of the CostTree, energy
inflation stays a constant factor, and strict mode rejects programs that
violate the model's O(1) word budget.
"""

import numpy as np
import pytest

from repro.core.scan import scan
from repro.machine import (
    RECOVERY_PHASE,
    FaultConfigError,
    FaultPlan,
    ModelViolation,
    Region,
    SpatialMachine,
)
from repro.machine.faults import (
    backoff_ticks,
    detour_extras,
    resolve_spares,
    sample_failures,
    spare_extras,
)
from repro.runner.chaos import CHAOS_ALGOS, CHAOS_PROFILES, run_chaos_pair

SEEDS = (0, 1, 2)  # three distinct fault-plan seeds per profile


# ---------------------------------------------------------------------------
# bit-identical results + bounded inflation, every primitive x plan x seed
# ---------------------------------------------------------------------------
class TestRecoveryTransparency:
    @pytest.mark.parametrize("algo", sorted(CHAOS_ALGOS))
    @pytest.mark.parametrize("profile", CHAOS_PROFILES)
    def test_bit_identical_and_bounded(self, algo, profile):
        for seed in SEEDS:
            r, clean_m, faulty_m = run_chaos_pair(algo, profile, side=4, seed=seed)
            assert r["exact_match"], (
                f"{algo} under {profile} (seed {seed}) diverged from fault-free run"
            )
            # recovery is a constant-factor tax, never an asymptotic change
            assert r["energy_inflation"] < 3.0
            assert r["depth_inflation"] < 3.0
            # the flat counters and the cost tree must agree under faults too
            tot = faulty_m.cost_tree.total()
            assert tot.energy == faulty_m.stats.energy
            assert tot.messages == faulty_m.stats.messages
            # the recovery phase carries exactly the retry + detour energy
            node = faulty_m.cost_tree.node(RECOVERY_PHASE)
            rec = faulty_m.recovery
            if rec.total_recovery_energy:
                assert node is not None
                assert node.energy == rec.total_recovery_energy

    @pytest.mark.parametrize("algo", ("spmv", "mergesort", "allpairs", "quicksort"))
    @pytest.mark.parametrize("profile", ("dead", "mixed"))
    def test_side8_dead_regions(self, algo, profile):
        """Regression: at side=8 the dead region is 2x2, and sparing that
        rewrote delivered coordinates broke coordinate-arithmetic regrouping
        inside the All-Pairs Sort ("replication/broadcast cell mismatch").
        Address-transparent sparing keeps logical coordinates intact."""
        r, _, faulty_m = run_chaos_pair(algo, profile, side=8, seed=0)
        assert r["exact_match"], f"{algo} under {profile} diverged at side=8"
        assert r["energy_inflation"] < 3.0
        tot = faulty_m.cost_tree.total()
        assert tot.energy == faulty_m.stats.energy

    def test_faults_actually_fire(self):
        """The sweep above is vacuous if no plan ever injects anything."""
        fired = {"retries": 0, "detoured": 0, "spared": 0, "corrupted": 0, "dropped": 0}
        for profile in CHAOS_PROFILES:
            for seed in SEEDS:
                r, _, m = run_chaos_pair("select", profile, side=4, seed=seed)
                for k in fired:
                    fired[k] += r["recovery"][k]
        assert all(v > 0 for v in fired.values()), fired

    def test_deterministic_costs(self):
        a, _, ma = run_chaos_pair("mergesort", "mixed", side=4, seed=3)
        b, _, mb = run_chaos_pair("mergesort", "mixed", side=4, seed=3)
        assert a["faulty_energy"] == b["faulty_energy"]
        assert ma.recovery.as_dict() == mb.recovery.as_dict()
        assert a["exact_match"] and b["exact_match"]

    def test_no_plan_no_recovery_phase(self, rng):
        m = SpatialMachine()
        region = Region(0, 0, 4, 4)
        scan(m, m.place_zorder(rng.random(16), region), region)
        assert m.cost_tree.node(RECOVERY_PHASE) is None
        assert m.recovery.total_recovery_energy == 0


# ---------------------------------------------------------------------------
# strict mode: O(1) word budget, coordinate and payload guards
# ---------------------------------------------------------------------------
class TestStrictMode:
    def _fan_in(self, m, senders):
        ta = m.place(
            np.arange(float(senders)),
            np.arange(senders, dtype=np.int64),
            np.full(senders, 5, dtype=np.int64),
        )
        return m.send(ta, np.zeros(senders, dtype=np.int64), np.zeros(senders, dtype=np.int64))

    def test_occupancy_violation_raises(self):
        m = SpatialMachine(strict=True)
        with pytest.raises(ModelViolation, match="word budget"):
            self._fan_in(m, 12)

    def test_within_budget_passes(self):
        m = SpatialMachine(strict=True)
        out = self._fan_in(m, 6)
        assert len(out) == 6

    def test_custom_word_budget(self):
        m = SpatialMachine(strict=True, word_budget=2)
        with pytest.raises(ModelViolation):
            self._fan_in(m, 3)

    def test_non_strict_does_not_audit(self):
        # explicit strict=False so the test also holds under REPRO_STRICT=1
        m = SpatialMachine(strict=False)
        assert len(self._fan_in(m, 20)) == 20

    def test_env_flag_enables_strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT", "1")
        assert SpatialMachine().strict
        monkeypatch.setenv("REPRO_STRICT", "0")
        assert not SpatialMachine().strict

    def test_nan_payload_rejected(self):
        m = SpatialMachine(strict=True)
        with pytest.raises(ValueError, match="NaN"):
            m.place(np.array([1.0, np.nan]), np.array([0, 0]), np.array([0, 1]))

    def test_nan_payload_allowed_when_lenient(self):
        # explicit strict=False so the test also holds under REPRO_STRICT=1
        m = SpatialMachine(strict=False)
        ta = m.place(np.array([1.0, np.nan]), np.array([0, 0]), np.array([0, 1]))
        assert np.isnan(ta.payload[1])

    def test_inf_payload_always_allowed(self):
        m = SpatialMachine(strict=True)
        ta = m.place(np.array([1.0, np.inf]), np.array([0, 0]), np.array([0, 1]))
        assert np.isinf(ta.payload[1])

    def test_non_integral_coords_rejected(self):
        m = SpatialMachine(strict=True)
        with pytest.raises(ValueError, match="integral"):
            m.place(np.array([1.0]), np.array([0.5]), np.array([0.0]))

    def test_non_finite_coords_rejected(self):
        m = SpatialMachine(strict=True)
        with pytest.raises(ValueError, match="finite"):
            m.place(np.array([1.0]), np.array([np.inf]), np.array([0.0]))

    def test_bounds_enforced(self):
        m = SpatialMachine(strict=True, bounds=Region(0, 0, 4, 4))
        with pytest.raises(ValueError, match="outside"):
            m.place(np.array([1.0]), np.array([7]), np.array([0]))

    def test_core_entry_guards(self, rng):
        from repro.core.blocked import blocked_scan
        from repro.core.sorting.mergesort2d import sort_values
        from repro.core.sorting.quicksort2d import quicksort_2d
        from repro.spmv import random_coo, spmv_spatial

        bad = rng.random(16)
        bad[3] = np.nan
        region = Region(0, 0, 4, 4)
        m = SpatialMachine(strict=True)
        with pytest.raises(ValueError, match="NaN"):
            sort_values(m, bad, region)
        with pytest.raises(ValueError, match="NaN"):
            blocked_scan(SpatialMachine(strict=True), bad, block=4)
        with pytest.raises(ValueError, match="NaN"):
            quicksort_2d(SpatialMachine(strict=True), bad, region, rng)
        A = random_coo(8, 24, rng)
        x = rng.random(8)
        x[0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            spmv_spatial(SpatialMachine(strict=True), A, x)

    def test_strict_mode_accepts_fault_free_primitives(self):
        """Strict mode must not reject any legitimate core algorithm."""
        for algo in sorted(CHAOS_ALGOS):
            m = SpatialMachine(strict=True)
            CHAOS_ALGOS[algo](m, 4, np.random.default_rng(0))


# ---------------------------------------------------------------------------
# FaultPlan validation
# ---------------------------------------------------------------------------
class TestFaultPlanValidation:
    def test_requires_generator(self):
        with pytest.raises(FaultConfigError, match="Generator"):
            FaultPlan(rng=42)

    def test_prob_ranges(self):
        with pytest.raises(FaultConfigError):
            FaultPlan.seeded(0, drop_prob=1.0)
        with pytest.raises(FaultConfigError):
            FaultPlan.seeded(0, corrupt_prob=-0.1)

    def test_retry_and_backoff_ranges(self):
        with pytest.raises(FaultConfigError):
            FaultPlan.seeded(0, max_retries=0)
        with pytest.raises(FaultConfigError):
            FaultPlan.seeded(0, backoff_base=-1)

    def test_empty_dead_region_rejected(self):
        with pytest.raises(FaultConfigError, match="non-empty"):
            FaultPlan.seeded(0, dead_regions=(Region(0, 0, 0, 4),))

    def test_describe_is_jsonable(self):
        import json

        plan = FaultPlan.seeded(0, drop_prob=0.1, dead_regions=(Region(1, 1, 2, 2),))
        doc = json.loads(json.dumps(plan.describe()))
        assert doc["drop_prob"] == 0.1
        assert doc["dead_regions"] == [[1, 1, 2, 2]]


# ---------------------------------------------------------------------------
# mechanism unit tests: sparing, detours, failure sampling, backoff
# ---------------------------------------------------------------------------
class TestSparing:
    def test_nearest_exit_with_tiebreak(self):
        plan = FaultPlan.seeded(0, dead_regions=(Region(1, 1, 2, 2),))
        r, c, spared = resolve_spares(plan, np.array([1, 0]), np.array([1, 0]))
        # (1,1) exits left to column 0 (left wins ties); (0,0) is live
        assert (r.tolist(), c.tolist()) == ([1, 0], [0, 0])
        assert spared.tolist() == [True, False]

    def test_inputs_never_mutated(self):
        plan = FaultPlan.seeded(0, dead_regions=(Region(0, 0, 1, 1),))
        rows, cols = np.array([0]), np.array([0])
        resolve_spares(plan, rows, cols)
        assert rows[0] == 0 and cols[0] == 0

    def test_spare_extras_distances(self):
        plan = FaultPlan.seeded(0, dead_regions=(Region(2, 2, 2, 2),))
        rows = np.array([2, 3, 0], dtype=np.int64)
        cols = np.array([2, 3, 0], dtype=np.int64)
        extra, spared = spare_extras(plan, rows, cols)
        assert spared.tolist() == [True, True, False]
        # (2,2) exits left to (2,1); (3,3) exits right to (3,4); (0,0) is live
        assert extra.tolist() == [1, 1, 0]

    def test_send_keeps_logical_coordinates(self):
        """Sparing is address-transparent: outputs keep the requested
        coordinates while the wire to/from the physical spare is charged."""
        plan = FaultPlan.seeded(0, dead_regions=(Region(1, 1, 2, 2),))
        m = SpatialMachine(faults=plan)
        src_r = np.zeros(4, dtype=np.int64)
        src_c = np.arange(4, dtype=np.int64)
        ta = m.place(np.arange(4.0), src_r, src_c)
        rows = np.array([1, 1, 2, 2], dtype=np.int64)
        cols = np.array([1, 2, 1, 2], dtype=np.int64)
        out = m.send(ta, rows, cols)
        assert out.rows.tolist() == rows.tolist()
        assert out.cols.tolist() == cols.tolist()
        assert m.recovery.spared == 4
        assert m.recovery.spare_energy > 0
        clean = SpatialMachine()
        clean.send(clean.place(np.arange(4.0), src_r, src_c), rows, cols)
        assert m.stats.energy > clean.stats.energy

    def test_unsatisfiable_ping_pong_rejected(self):
        # (0,2) spares left into B, whose nearest exit is right back into A
        plan = FaultPlan.seeded(
            0, dead_regions=(Region(0, 2, 1, 2), Region(0, 0, 1, 2))
        )
        with pytest.raises(FaultConfigError, match="spare"):
            resolve_spares(plan, np.array([0]), np.array([2]))


class TestDetours:
    def test_vertical_leg_detour(self):
        extra = detour_extras(
            (Region(1, 0, 2, 2),),
            np.array([0]), np.array([0]), np.array([4]), np.array([0]),
        )
        assert extra.tolist() == [2]  # shift one column out and back

    def test_clear_route_costs_nothing(self):
        extra = detour_extras(
            (Region(10, 10, 2, 2),),
            np.array([0]), np.array([0]), np.array([4]), np.array([4]),
        )
        assert extra.tolist() == [0]

    def test_crossing_k_rects_pays_k_detours(self):
        regs = (Region(1, 0, 1, 1), Region(3, 0, 1, 1))
        extra = detour_extras(
            regs, np.array([0]), np.array([0]), np.array([6]), np.array([0])
        )
        assert extra.tolist() == [4]


class TestFailureSampling:
    def test_capped_and_consistent(self):
        plan = FaultPlan.seeded(7, drop_prob=0.5, corrupt_prob=0.3, max_retries=4)
        failures, dropped, corrupted = sample_failures(plan, 500)
        assert failures.max() <= 4
        assert np.array_equal(failures, dropped + corrupted)
        assert failures.min() >= 0

    def test_deterministic_for_seed(self):
        a = sample_failures(FaultPlan.seeded(9, drop_prob=0.2), 100)[0]
        b = sample_failures(FaultPlan.seeded(9, drop_prob=0.2), 100)[0]
        assert np.array_equal(a, b)

    def test_zero_prob_is_all_zero(self):
        failures, dropped, corrupted = sample_failures(FaultPlan.seeded(0), 10)
        assert not failures.any() and not dropped.any() and not corrupted.any()

    def test_backoff_ticks_geometric_sum(self):
        plan = FaultPlan.seeded(0, drop_prob=0.1, backoff_base=1)
        assert backoff_ticks(plan, np.array([0, 1, 2])) == 0 + 1 + 3
        plan2 = FaultPlan.seeded(0, drop_prob=0.1, backoff_base=3)
        assert backoff_ticks(plan2, np.array([2])) == 9


# ---------------------------------------------------------------------------
# relay under faults
# ---------------------------------------------------------------------------
class TestRelayRecovery:
    def test_relay_charges_retries(self):
        stops_r = np.arange(1, 9, dtype=np.int64)
        stops_c = np.zeros(8, dtype=np.int64)
        plan = FaultPlan.seeded(11, drop_prob=0.4)
        m = SpatialMachine(faults=plan)
        depth, dist = m.relay((0, 0), stops_r, stops_c)
        clean = SpatialMachine()
        cdepth, cdist = clean.relay((0, 0), stops_r, stops_c)
        assert depth >= cdepth and dist >= cdist
        assert m.stats.energy >= clean.stats.energy
        assert m.recovery.retries > 0  # p=0.4 over 8 hops, seeded: fires
        assert m.cost_tree.node(RECOVERY_PHASE).energy == m.recovery.total_recovery_energy
        tot = m.cost_tree.total()
        assert tot.energy == m.stats.energy

    def test_relay_spared_through_dead_region(self):
        plan = FaultPlan.seeded(0, dead_regions=(Region(2, 0, 1, 1),))
        m = SpatialMachine(faults=plan)
        m.relay((0, 0), np.array([1, 2, 3], dtype=np.int64), np.zeros(3, dtype=np.int64))
        assert m.recovery.spared >= 1
