"""Failure-injection tests: degenerate randomness, adversarial inputs, and
resource-edge behaviour.  The algorithms must stay *correct* (possibly at
higher cost) when their probabilistic assumptions are sabotaged."""

import numpy as np

from repro.core.selection import rank_select
from repro.core.sorting.quicksort2d import quicksort_2d
from repro.machine import Region, SpatialMachine


class _NeverSampleRng:
    """rng.random always 1.0: the selection never samples anything."""

    def random(self, n=None):
        return np.ones(n) if n is not None else 1.0


class _AlwaysSampleRng:
    """rng.random always 0.0: every active element is sampled each round."""

    def random(self, n=None):
        return np.zeros(n) if n is not None else 0.0


class TestSelectionDegenerateRandomness:
    def test_never_sampling_still_correct(self, rng):
        """With no samples ever, iterations burn out and the epilogue sorts
        the entire active set — slow but exact."""
        n = 256
        region = Region(0, 0, 16, 16)
        x = rng.standard_normal(n)
        m = SpatialMachine()
        res = rank_select(
            m,
            m.place_zorder(x, region),
            region,
            100,
            _NeverSampleRng(),
            max_iterations=5,
        )
        assert res.value == np.sort(x)[99]
        assert res.iterations == 5  # all iterations wasted

    def test_always_sampling_still_correct(self, rng):
        """Sampling everything makes the 'sample' the whole input; pivots are
        then exact and the loop converges immediately."""
        n = 256
        region = Region(0, 0, 16, 16)
        x = rng.standard_normal(n)
        m = SpatialMachine()
        res = rank_select(
            m, m.place_zorder(x, region), region, 77, _AlwaysSampleRng()
        )
        assert res.value == np.sort(x)[76]

    def test_tiny_c_always_falls_back_eventually(self, rng):
        """c below the theorem's c >= 3 still returns exact answers."""
        n = 256
        region = Region(0, 0, 16, 16)
        x = rng.standard_normal(n)
        for seed in range(10):
            m = SpatialMachine()
            res = rank_select(
                m,
                m.place_zorder(x, region),
                region,
                128,
                np.random.default_rng(seed),
                c=0.5,
            )
            assert res.value == np.sort(x)[127]

    def test_never_sampling_cost_blowup_is_bounded(self, rng):
        """Even the pathological run pays at most iterations x O(n) plus one
        full sort — no runaway loop."""
        n = 256
        region = Region(0, 0, 16, 16)
        x = rng.standard_normal(n)
        m = SpatialMachine()
        rank_select(
            m, m.place_zorder(x, region), region, 1, _NeverSampleRng(), max_iterations=3
        )
        assert m.stats.energy < 10_000_000


class TestQuicksortDegenerateRandomness:
    def test_never_sampling_rng(self, rng):
        """The quicksort's internal selections inherit the fallback safety."""
        x = rng.standard_normal(64)
        m = SpatialMachine()
        out = quicksort_2d(m, x, Region(0, 0, 8, 8), _NeverSampleRng())
        assert np.allclose(out.payload, np.sort(x))


class TestAdversarialInputs:
    def test_selection_on_constant_plateau_with_spikes(self, rng):
        """Pivots almost always equal the plateau value: tie paths dominate."""
        n = 1024
        x = np.zeros(n)
        x[:5] = -1.0
        x[5:10] = 1.0
        region = Region(0, 0, 32, 32)
        for k in (1, 5, 6, 512, 1020, 1024):
            m = SpatialMachine()
            res = rank_select(
                m, m.place_zorder(x, region), region, k, np.random.default_rng(k)
            )
            assert res.value == np.sort(x)[k - 1], k

    def test_sort_infinities(self):
        from repro.core.sorting.mergesort2d import sort_values

        x = np.zeros(64)
        x[0] = np.inf
        x[1] = -np.inf
        m = SpatialMachine()
        out = sort_values(m, x, Region(0, 0, 8, 8))
        assert out.payload[0, 0] == -np.inf and out.payload[-1, 0] == np.inf

    def test_sort_denormals_and_negzero(self, rng):
        from repro.core.sorting.mergesort2d import sort_values

        x = np.concatenate([[-0.0, 0.0, 5e-324, -5e-324], rng.standard_normal(60)])
        m = SpatialMachine()
        out = sort_values(m, x, Region(0, 0, 8, 8))
        assert np.array_equal(np.sort(x), out.payload[:, 0])

    def test_spmv_extreme_values(self, rng):
        from repro.spmv import random_coo, spmv_spatial

        A = random_coo(16, 48, rng)
        x = rng.standard_normal(16) * 1e150
        m = SpatialMachine()
        y = spmv_spatial(m, A, x)
        assert np.allclose(y.payload, A.multiply_dense(x), rtol=1e-9)


# ---------------------------------------------------------------------------
# property-based chaos: randomized FaultPlans must never change results
# ---------------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scan import scan
from repro.machine import FaultPlan

fault_plans = st.builds(
    lambda seed, drop, corrupt, dead: FaultPlan.seeded(
        seed,
        drop_prob=drop,
        corrupt_prob=corrupt,
        dead_regions=(Region(1, 1, 2, 2),) if dead else (),
    ),
    seed=st.integers(0, 2**31 - 1),
    drop=st.floats(0.0, 0.3),
    corrupt=st.floats(0.0, 0.3),
    dead=st.booleans(),
)


class TestRandomizedFaultPlans:
    """Hypothesis sweep: for arbitrary plans, results equal the fault-free
    run bit for bit and recovery only ever adds cost."""

    @given(plan=fault_plans, algo_seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_scan_matches_fault_free(self, plan, algo_seed):
        region = Region(0, 0, 4, 4)
        x = np.random.default_rng(algo_seed).standard_normal(16)
        clean_m = SpatialMachine()
        clean = scan(clean_m, clean_m.place_zorder(x, region), region)
        m = SpatialMachine(faults=plan)
        res = scan(m, m.place_zorder(x, region), region)
        assert np.array_equal(res.inclusive.payload, clean.inclusive.payload)
        assert np.array_equal(res.exclusive.payload, clean.exclusive.payload)
        assert m.stats.energy >= clean_m.stats.energy
        assert m.cost_tree.total().energy == m.stats.energy

    @given(plan=fault_plans, algo_seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_rank_select_matches_fault_free(self, plan, algo_seed):
        n = 16
        region = Region(0, 0, 4, 4)
        arng = np.random.default_rng(algo_seed)
        x = arng.standard_normal(n)
        k = int(arng.integers(1, n + 1))
        clean_m = SpatialMachine()
        want = rank_select(
            clean_m, clean_m.place_zorder(x, region), region, k,
            np.random.default_rng(algo_seed + 1),
        )
        m = SpatialMachine(faults=plan)
        got = rank_select(
            m, m.place_zorder(x, region), region, k,
            np.random.default_rng(algo_seed + 1),
        )
        assert got.value == want.value == np.sort(x)[k - 1]
        assert m.stats.energy >= clean_m.stats.energy
