"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import Region, SpatialMachine


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def machine() -> SpatialMachine:
    return SpatialMachine()


@pytest.fixture
def traced_machine() -> SpatialMachine:
    return SpatialMachine(trace=True)


def square(n: int, row: int = 0, col: int = 0) -> Region:
    """Square region holding exactly n cells (n a perfect power-of-two square)."""
    side = 1
    while side * side < n:
        side *= 2
    assert side * side == n, f"{n} is not a power-of-4 cell count"
    return Region(row, col, side, side)
