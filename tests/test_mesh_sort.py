"""Tests for the Shearsort mesh baseline (Section II.B discussion)."""

import numpy as np
import pytest

from repro.analysis import make_workload
from repro.core.sorting.mesh_sort import shearsort
from repro.core.sorting.mergesort2d import sort_values
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine


def _run(x, side):
    m = SpatialMachine()
    region = Region(0, 0, side, side)
    out = shearsort(m, m.place_rowmajor(as_sort_payload(x), region), region)
    return m, out


class TestShearsortCorrectness:
    @pytest.mark.parametrize("n", (4, 16, 64, 256))
    def test_uniform(self, n, rng):
        side = int(np.sqrt(n))
        m, out = _run(rng.standard_normal(n), side)
        assert np.allclose(out.payload[:, 0], np.sort(out.payload[:, 0]))

    @pytest.mark.parametrize("kind", ("uniform", "reversed", "sorted", "few_distinct"))
    def test_workloads(self, kind, rng):
        x = make_workload(kind, 64, rng)
        m, out = _run(x, 8)
        assert np.allclose(out.payload[:, 0], np.sort(x))

    def test_rowmajor_output(self, rng):
        x = rng.random(64)
        m, out = _run(x, 8)
        region = Region(0, 0, 8, 8)
        rows, cols = region.rowmajor_coords(64)
        assert (out.rows == rows).all() and (out.cols == cols).all()


class TestMeshRegime:
    def test_sqrt_depth(self):
        """Mesh algorithms are stuck at Ω(sqrt(n)) depth; shearsort's depth
        grows like sqrt(n) log n — a power, unlike the mergesort's polylog."""
        rng = np.random.default_rng(0)
        depths = {}
        for side in (4, 8, 16, 32):
            m, out = _run(rng.random(side * side), side)
            depths[side] = out.max_depth()
        # doubling the side roughly doubles the depth (sqrt regime)
        assert 1.7 < depths[32] / depths[16] < 2.6
        assert depths[32] >= 32  # at least sqrt(n) rounds

    def test_neighbour_distance_only(self):
        """Every round is unit-distance: chain distance tracks depth."""
        rng = np.random.default_rng(1)
        m, out = _run(rng.random(64), 8)
        assert out.max_dist() <= 2 * out.max_depth() + 16

    def test_depth_crossover_vs_mergesort(self):
        """Section II.B: the 2D mergesort's polylog depth beats the mesh's
        Θ(sqrt(n)) depth once n is large enough."""
        rng = np.random.default_rng(2)
        side = 32
        n = side * side
        x = rng.random(n)
        m_mesh, out_mesh = _run(x, side)
        m_ms = SpatialMachine()
        out_ms = sort_values(m_ms, x, Region(0, 0, side, side))
        assert out_ms.max_depth() < out_mesh.max_depth()
        # the mesh pays much less energy per element moved (constant-distance
        # hops), which is exactly the trade-off the paper discusses
        assert m_mesh.stats.energy < m_ms.stats.energy
