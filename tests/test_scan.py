"""Tests for the energy-optimal scan (paper Section IV.C, Lemma IV.3, Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import ADD, MAX, MIN, Monoid
from repro.core.scan import scan, segmented_broadcast, segmented_scan
from repro.machine import Region, SpatialMachine
from repro.machine.zorder import zorder_coords

SIZES = (1, 4, 16, 64, 256, 1024)


def _run_scan(x, monoid=ADD):
    n = len(x)
    side = int(np.sqrt(n))
    m = SpatialMachine()
    region = Region(0, 0, side, side)
    ta = m.place_zorder(np.asarray(x, dtype=np.float64), region)
    return m, region, scan(m, ta, region, monoid)


class TestScanCorrectness:
    @pytest.mark.parametrize("n", SIZES)
    def test_inclusive_matches_cumsum(self, n, rng):
        x = rng.standard_normal(n)
        _, _, res = _run_scan(x)
        assert np.allclose(res.inclusive.payload, np.cumsum(x))

    @pytest.mark.parametrize("n", SIZES)
    def test_exclusive_matches(self, n, rng):
        x = rng.standard_normal(n)
        _, _, res = _run_scan(x)
        expect = np.concatenate([[0.0], np.cumsum(x)[:-1]])
        assert np.allclose(res.exclusive.payload, expect)

    def test_total(self, rng):
        x = rng.standard_normal(64)
        _, _, res = _run_scan(x)
        assert res.total.payload[0] == pytest.approx(x.sum())

    def test_max_monoid(self, rng):
        x = rng.standard_normal(256)
        _, _, res = _run_scan(x, MAX)
        assert np.allclose(res.inclusive.payload, np.maximum.accumulate(x))

    def test_min_monoid(self, rng):
        x = rng.standard_normal(64)
        _, _, res = _run_scan(x, MIN)
        assert np.allclose(res.inclusive.payload, np.minimum.accumulate(x))

    def test_results_at_input_cells(self, rng):
        """The i-th result lands where the i-th input lived (paper spec)."""
        n = 64
        x = rng.random(n)
        m, region, res = _run_scan(x)
        zr, zc = zorder_coords(region)
        assert (res.inclusive.rows == zr).all()
        assert (res.inclusive.cols == zc).all()

    def test_non_pow4_rejected(self):
        m = SpatialMachine()
        region = Region(0, 0, 4, 2)
        ta = m.place_zorder(np.arange(8.0), region)
        with pytest.raises(ValueError):
            scan(m, ta, region)

    def test_noncommutative_left_fold(self):
        """Scan must fold strictly left-to-right (segmented ops rely on it)."""

        def subtract_like(a, b):  # (a, b) -> b: "last" semigroup, associative
            return b

        last = Monoid("last", subtract_like, np.nan, commutative=False)
        x = np.arange(16.0)
        _, _, res = _run_scan(x, last)
        assert np.allclose(res.inclusive.payload, x)  # prefix-last == self

    @given(st.lists(st.integers(-100, 100), min_size=16, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_cumsum_property(self, xs):
        x = np.asarray(xs, dtype=np.float64)
        _, _, res = _run_scan(x)
        assert np.allclose(res.inclusive.payload, np.cumsum(x))


class TestScanCosts:
    def test_linear_energy(self):
        """Lemma IV.3: Θ(n) energy — energy/n stays bounded as n grows."""
        per_elem = []
        for n in (64, 256, 1024, 4096, 16384):
            x = np.ones(n)
            m, _, _ = _run_scan(x)
            per_elem.append(m.stats.energy / n)
        assert max(per_elem) < 6.0
        # converged: last two within 5%
        assert per_elem[-1] == pytest.approx(per_elem[-2], rel=0.05)

    def test_logarithmic_depth_exact(self):
        """Depth is exactly 2*log4(n): one up-sweep + one down-sweep hop per level."""
        for n in (4, 16, 64, 256, 4096):
            m, _, res = _run_scan(np.ones(n))
            assert res.inclusive.max_depth() == 2 * int(np.log2(n) / 2)

    def test_sqrt_distance(self):
        for n in (256, 4096, 16384):
            m, _, res = _run_scan(np.ones(n))
            assert res.inclusive.max_dist() <= 4 * np.sqrt(n)

    def test_message_count_linear(self):
        for n in (256, 4096):
            m, _, _ = _run_scan(np.ones(n))
            # up-sweep 4/3 n + down-sweep 4/3 n messages
            assert m.stats.messages <= 3 * n


class TestSegmentedScan:
    def _expected(self, x, flags):
        out = np.empty(len(x))
        start = 0
        for i in range(len(x)):
            if flags[i]:
                start = i
            out[i] = x[start : i + 1].sum()
        return out

    @pytest.mark.parametrize("n", (16, 64, 256))
    def test_random_segments(self, n, rng):
        x = rng.standard_normal(n)
        flags = (rng.random(n) < 0.2).astype(float)
        flags[0] = 1
        m = SpatialMachine()
        side = int(np.sqrt(n))
        region = Region(0, 0, side, side)
        ta = m.place_zorder(x, region)
        res = segmented_scan(m, flags, ta, region)
        assert np.allclose(res.inclusive.payload, self._expected(x, flags))

    def test_single_segment_equals_scan(self, rng):
        x = rng.standard_normal(64)
        flags = np.zeros(64)
        flags[0] = 1
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        res = segmented_scan(m, flags, m.place_zorder(x, region), region)
        assert np.allclose(res.inclusive.payload, np.cumsum(x))

    def test_all_flags_identity(self, rng):
        x = rng.standard_normal(64)
        flags = np.ones(64)
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        res = segmented_scan(m, flags, m.place_zorder(x, region), region)
        assert np.allclose(res.inclusive.payload, x)

    def test_same_cost_as_plain_scan(self, rng):
        """Segmented scan reuses the same algorithm: identical message cost."""
        n = 256
        x = rng.standard_normal(n)
        flags = (rng.random(n) < 0.3).astype(float)
        flags[0] = 1
        region = Region(0, 0, 16, 16)
        m1 = SpatialMachine()
        segmented_scan(m1, flags, m1.place_zorder(x, region), region)
        m2 = SpatialMachine()
        scan(m2, m2.place_zorder(x, region), region)
        assert m1.stats.energy == m2.stats.energy
        assert m1.stats.messages == m2.stats.messages

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(-50, 50)), min_size=64, max_size=64
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_segmented_property(self, pairs):
        flags = np.array([float(f) for f, _ in pairs])
        flags[0] = 1
        x = np.array([float(v) for _, v in pairs])
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        res = segmented_scan(m, flags, m.place_zorder(x, region), region)
        assert np.allclose(res.inclusive.payload, self._expected(x, flags))


class TestSegmentedBroadcast:
    def test_spreads_head_values(self, rng):
        n = 64
        x = rng.standard_normal(n)
        flags = np.zeros(n)
        flags[[0, 7, 33]] = 1
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        out = segmented_broadcast(m, flags, m.place_zorder(x, region), region)
        expect = np.empty(n)
        for i in range(n):
            expect[i] = x[i] if flags[i] else expect[i - 1]
        assert np.allclose(out.payload, expect)

    def test_head_only(self):
        n = 16
        x = np.arange(float(n))
        flags = np.zeros(n)
        flags[0] = 1
        m = SpatialMachine()
        region = Region(0, 0, 4, 4)
        out = segmented_broadcast(m, flags, m.place_zorder(x, region), region)
        assert (out.payload == 0.0).all()


class TestScanAny:
    @pytest.mark.parametrize("n", (1, 3, 7, 50, 100, 1000))
    def test_arbitrary_lengths(self, n, rng):
        from repro.core.scan import scan_any

        x = rng.standard_normal(n)
        m = SpatialMachine()
        got = scan_any(m, x)
        assert np.allclose(got, np.cumsum(x))

    def test_max_monoid(self, rng):
        from repro.core.scan import scan_any

        x = rng.standard_normal(37)
        got = scan_any(SpatialMachine(), x, MAX)
        assert np.allclose(got, np.maximum.accumulate(x))

    def test_empty(self):
        from repro.core.scan import scan_any

        assert len(scan_any(SpatialMachine(), np.array([]))) == 0

    def test_energy_linear_in_padded_grid(self, rng):
        from repro.core.scan import scan_any

        m = SpatialMachine()
        scan_any(m, rng.random(1000))  # pads to 1024
        assert m.stats.energy <= 6 * 1024
