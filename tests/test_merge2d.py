"""Tests for the rank-splitting 2D merge (Section V.C(b), Fig. 3, Lemma V.7)."""

import numpy as np
import pytest

from repro.analysis import fit_power_law
from repro.core.sorting.merge2d import merge_sorted_2d, merge_subregions
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine


def _merge(a, b, side, base_case=16):
    """Merge two sorted arrays living on adjacent side x side squares."""
    m = SpatialMachine()
    A = m.place_rowmajor(as_sort_payload(a), Region(0, 0, side, side))
    B = m.place_rowmajor(as_sort_payload(b), Region(0, side, side, side))
    out_region = Region(0, 0, side, 2 * side)
    out = merge_sorted_2d(m, A, B, out_region, base_case=base_case)
    return m, out, out_region


class TestSubregions:
    def test_square_quadrants(self):
        subs = merge_subregions(Region(0, 0, 4, 4))
        assert subs == Region(0, 0, 4, 4).quadrants()

    def test_wide_strips(self):
        subs = merge_subregions(Region(0, 0, 4, 8))
        assert [s.col for s in subs] == [0, 2, 4, 6]
        assert all(s.height == 4 and s.width == 2 for s in subs)

    def test_tall_strips(self):
        subs = merge_subregions(Region(0, 0, 8, 4))
        assert [s.row for s in subs] == [0, 2, 4, 6]

    def test_bad_aspect_rejected(self):
        with pytest.raises(ValueError):
            merge_subregions(Region(0, 0, 2, 8))

    def test_shapes_closed_under_recursion(self):
        """Every sub-region is again square or 2:1 (the family invariant)."""
        frontier = [Region(0, 0, 16, 32)]
        for _ in range(3):
            nxt = []
            for r in frontier:
                for s in merge_subregions(r):
                    assert s.height == s.width or {s.height, s.width} == {
                        min(s.height, s.width),
                        2 * min(s.height, s.width),
                    }
                    nxt.append(s)
            frontier = nxt


class TestMergeCorrectness:
    @pytest.mark.parametrize("side", (2, 4, 8, 16))
    def test_uniform(self, side, rng):
        a = np.sort(rng.standard_normal(side * side))
        b = np.sort(rng.standard_normal(side * side))
        _, out, _ = _merge(a, b, side)
        assert np.allclose(out.payload[:, 0], np.sort(np.concatenate([a, b])))

    def test_duplicates(self, rng):
        side = 8
        a = np.sort(rng.integers(0, 5, side * side)).astype(float)
        b = np.sort(rng.integers(0, 5, side * side)).astype(float)
        _, out, _ = _merge(a, b, side)
        assert np.allclose(out.payload[:, 0], np.sort(np.concatenate([a, b])))

    def test_interleaved(self):
        side = 8
        a = np.arange(0.0, 128.0, 2.0)
        b = np.arange(1.0, 129.0, 2.0)
        _, out, _ = _merge(a, b, side)
        assert np.allclose(out.payload[:, 0], np.arange(128.0))

    def test_disjoint(self):
        side = 8
        a = np.arange(64.0)
        b = np.arange(64.0) + 100
        _, out, _ = _merge(a, b, side)
        assert np.allclose(out.payload[:, 0], np.concatenate([a, b]))

    def test_base_case_4(self, rng):
        side = 4
        a = np.sort(rng.random(16))
        b = np.sort(rng.random(16))
        _, out, _ = _merge(a, b, side, base_case=4)
        assert np.allclose(out.payload[:, 0], np.sort(np.concatenate([a, b])))

    def test_output_rowmajor(self, rng):
        side = 4
        a = np.sort(rng.random(16))
        b = np.sort(rng.random(16))
        _, out, region = _merge(a, b, side)
        rows, cols = region.rowmajor_coords(32)
        assert (out.rows == rows).all() and (out.cols == cols).all()

    def test_square_output_region(self, rng):
        """Merging the two halves of a square (the mergesort's final merge)."""
        m = SpatialMachine()
        a = np.sort(rng.random(32))
        b = np.sort(rng.random(32))
        A = m.place_rowmajor(as_sort_payload(a), Region(0, 0, 4, 8))
        B = m.place_rowmajor(as_sort_payload(b), Region(4, 0, 4, 8))
        out = merge_sorted_2d(m, A, B, Region(0, 0, 8, 8))
        assert np.allclose(out.payload[:, 0], np.sort(np.concatenate([a, b])))

    def test_size_mismatch_rejected(self, rng):
        m = SpatialMachine()
        A = m.place_rowmajor(as_sort_payload(np.sort(rng.random(8))), Region(0, 0, 4, 4))
        B = m.place_rowmajor(as_sort_payload(np.sort(rng.random(8))), Region(0, 4, 4, 4))
        with pytest.raises(ValueError):
            merge_sorted_2d(m, A, B, Region(0, 0, 4, 8))

    def test_small_base_case_rejected(self, rng):
        m = SpatialMachine()
        A = m.place_rowmajor(as_sort_payload(np.sort(rng.random(16))), Region(0, 0, 4, 4))
        B = m.place_rowmajor(as_sort_payload(np.sort(rng.random(16))), Region(0, 4, 4, 4))
        with pytest.raises(ValueError):
            merge_sorted_2d(m, A, B, Region(0, 0, 4, 8), base_case=2)


class TestMergeCosts:
    def test_lemma_v7_energy_exponent(self):
        """O(n^{3/2}) merge energy."""
        rng = np.random.default_rng(0)
        ns, es = [], []
        for side in (8, 16, 32):
            a = np.sort(rng.standard_normal(side * side))
            b = np.sort(rng.standard_normal(side * side))
            m, _, _ = _merge(a, b, side)
            ns.append(2 * side * side)
            es.append(m.stats.energy)
        fit = fit_power_law(np.array(ns), np.array(es))
        assert 1.2 < fit.exponent < 1.75

    def test_lemma_v7_depth_polylog(self):
        """O(log² n) depth: far below any polynomial."""
        rng = np.random.default_rng(0)
        for side in (8, 32):
            n = 2 * side * side
            a = np.sort(rng.standard_normal(n // 2))
            b = np.sort(rng.standard_normal(n // 2))
            m, out, _ = _merge(a, b, side)
            assert out.max_depth() <= 3 * np.log2(n) ** 2
