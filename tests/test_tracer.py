"""Unit tests for message tracing (repro.machine.tracer)."""

import io

import numpy as np
import pytest

from repro.machine import Region, SpatialMachine
from repro.machine.tracer import Tracer


class TestTracerBasics:
    def test_records_messages(self, traced_machine):
        m = traced_machine
        ta = m.place(np.arange(3.0), [0, 0, 0], [0, 1, 2])
        m.send(ta, np.array([1, 1, 0]), np.array([0, 1, 2]))
        assert m.tracer.total_messages() == 2  # the third is a self-send
        assert m.tracer.total_energy() == 2

    def test_trace_matches_stats(self, traced_machine, rng):
        m = traced_machine
        ta = m.place(rng.random(16), np.repeat(np.arange(4), 4), np.tile(np.arange(4), 4))
        m.send(ta, rng.integers(0, 8, 16), rng.integers(0, 8, 16))
        m.send(ta, rng.integers(0, 8, 16), rng.integers(0, 8, 16))
        assert m.tracer.total_energy() == m.stats.energy
        assert m.tracer.total_messages() == m.stats.messages

    def test_edges(self, traced_machine):
        m = traced_machine
        ta = m.place(np.array([1.0]), [0], [0])
        m.send(ta, np.array([2]), np.array([3]))
        assert m.tracer.edges() == [((0, 0), (2, 3))]

    def test_all_self_sends_not_recorded(self, traced_machine):
        m = traced_machine
        ta = m.place(np.arange(2.0), [0, 1], [0, 0])
        m.send(ta, np.array([0, 1]), np.array([0, 0]))
        assert m.tracer.batches == []


class TestLoadProfiles:
    def test_energy_by_cell_source(self, traced_machine):
        m = traced_machine
        ta = m.place(np.arange(2.0), [0, 5], [0, 0])
        m.send(ta, np.array([0, 5]), np.array([3, 1]))
        prof = m.tracer.energy_by_cell("source")
        assert prof == {(0, 0): 3, (5, 0): 1}

    def test_energy_by_cell_destination(self, traced_machine):
        m = traced_machine
        ta = m.place(np.arange(2.0), [0, 0], [0, 1])
        m.send(ta, np.array([2, 2]), np.array([0, 0]))
        prof = m.tracer.energy_by_cell("destination")
        assert prof == {(2, 0): 2 + 3}

    def test_energy_by_cell_sums_to_total(self, rng):
        from repro.core.scan import scan

        m = SpatialMachine(trace=True)
        reg = Region(0, 0, 8, 8)
        scan(m, m.place_zorder(rng.random(64), reg), reg)
        prof = m.tracer.energy_by_cell()
        assert sum(prof.values()) == m.stats.energy

    def test_bad_attribution_rejected(self, traced_machine):
        with pytest.raises(ValueError):
            traced_machine.tracer.energy_by_cell("router")

    def test_scan_profile_is_spatially_flat(self, rng):
        """The 2D scan's per-cell load is bounded — spatial locality."""
        from repro.core.scan import scan

        m = SpatialMachine(trace=True)
        reg = Region(0, 0, 16, 16)
        scan(m, m.place_zorder(rng.random(256), reg), reg)
        prof = m.tracer.energy_by_cell()
        # no single processor carries more than a sliver of the total
        assert max(prof.values()) <= 0.15 * m.stats.energy

    def test_messages_by_round(self, traced_machine):
        m = traced_machine
        ta = m.place(np.arange(3.0), [0, 0, 0], [0, 1, 2])
        m.send(ta, np.array([1, 1, 1]), np.array([0, 1, 2]))
        m.send(ta, np.array([2, 0, 0]), np.array([0, 1, 2]))
        per_round = m.tracer.messages_by_round()
        assert sum(per_round.values()) == m.tracer.total_messages()


class TestInboxAudit:
    def test_fanin_counted(self, traced_machine):
        m = traced_machine
        ta = m.place(np.arange(4.0), [0, 0, 1, 1], [0, 1, 0, 1])
        m.send(ta, np.array([5, 5, 5, 5]), np.array([5, 5, 5, 5]))
        assert m.tracer.max_inbox_per_round() == 4
        assert m.tracer.max_outbox_per_round() == 1

    def test_fanout_counted(self, traced_machine):
        m = traced_machine
        ta = m.place(np.zeros(3), [0, 0, 0], [0, 0, 0])
        m.send(ta, np.array([1, 2, 3]), np.array([0, 0, 0]))
        assert m.tracer.max_outbox_per_round() == 3
        assert m.tracer.max_inbox_per_round() == 1

    def test_scan_inbox_is_constant(self):
        """Core model audit: the energy-optimal scan never makes a processor
        receive more than O(1) messages in one round (constant memory)."""
        from repro.core.scan import scan

        for n in (16, 64, 256):
            m = SpatialMachine(trace=True)
            side = int(np.sqrt(n))
            reg = Region(0, 0, side, side)
            ta = m.place_zorder(np.arange(float(n)), reg)
            scan(m, ta, reg)
            assert m.tracer.max_inbox_per_round() <= 2

    def test_broadcast_inbox_is_one(self):
        from repro.core.collectives import broadcast

        m = SpatialMachine(trace=True)
        reg = Region(0, 0, 16, 16)
        v = m.place(np.array([1.0]), [0], [0])
        broadcast(m, v, reg)
        assert m.tracer.max_inbox_per_round() == 1
        assert m.tracer.max_outbox_per_round() <= 3


class TestStructuredRecords:
    def _scan_machine(self, rng, n=64) -> SpatialMachine:
        from repro.core.scan import scan

        m = SpatialMachine(trace=True)
        reg = Region(0, 0, int(np.sqrt(n)), int(np.sqrt(n)))
        scan(m, m.place_zorder(rng.random(n), reg), reg)
        return m

    def test_records_are_phase_tagged(self, rng):
        m = self._scan_machine(rng)
        phases = {r["phase"] for r in m.tracer.records()}
        assert phases == {"scan/up_sweep", "scan/down_sweep"}
        for r in m.tracer.records():
            assert r["kind"] == "send"
            assert r["dist"] >= 1  # self-sends are never recorded

    def test_jsonl_roundtrip_file(self, rng, tmp_path):
        m = self._scan_machine(rng)
        path = tmp_path / "trace.jsonl"
        count = m.tracer.to_jsonl(path)
        assert count == m.tracer.total_messages()
        back = Tracer.from_jsonl(path)
        assert list(back.records()) == list(m.tracer.records())
        assert back.total_energy() == m.stats.energy
        assert back.energy_by_phase() == m.tracer.energy_by_phase()

    def test_jsonl_roundtrip_filelike(self, traced_machine):
        m = traced_machine
        with m.phase("p"):
            ta = m.place(np.arange(2.0), [0, 0], [0, 1])
            m.send(ta, np.array([3, 3]), np.array([0, 1]))
        buf = io.StringIO()
        m.tracer.to_jsonl(buf)
        buf.seek(0)
        back = Tracer.from_jsonl(buf)
        assert len(back.batches) == 1
        assert back.batches[0].phase == "p"
        assert back.total_energy() == 6

    def test_energy_by_phase_matches_cost_tree(self, rng):
        m = self._scan_machine(rng)
        by_phase = m.tracer.energy_by_phase()
        for path, energy in by_phase.items():
            assert m.cost_tree.node(path).energy == energy
        assert sum(by_phase.values()) == m.stats.energy

    def test_relay_kind_recorded(self, traced_machine):
        m = traced_machine
        m.relay((0, 0), np.array([0, 0]), np.array([2, 5]))
        kinds = {r["kind"] for r in m.tracer.records()}
        assert kinds == {"relay"}

    def test_untraced_machine_has_no_tracer(self, rng):
        from repro.core.scan import scan

        m = SpatialMachine()  # trace defaults off: the hot path pays nothing
        reg = Region(0, 0, 8, 8)
        scan(m, m.place_zorder(rng.random(64), reg), reg)
        assert m.tracer is None
        assert m.stats.energy > 0


class TestCorruptTraceLoading:
    """A process dying mid-write must not make the whole trace unreadable."""

    def _trace_text(self, rng):
        from repro.core.scan import scan

        m = SpatialMachine(trace=True)
        reg = Region(0, 0, 4, 4)
        scan(m, m.place_zorder(rng.random(16), reg), reg)
        buf = io.StringIO()
        total = m.tracer.to_jsonl(buf)
        return buf.getvalue(), total

    def test_truncated_trailing_line_warns_and_loads_partial(self, rng):
        text, total = self._trace_text(rng)
        lines = text.splitlines()
        torn = "\n".join(lines[:-1] + [lines[-1][: len(lines[-1]) // 2]])
        with pytest.warns(RuntimeWarning, match="corrupt/truncated"):
            back = Tracer.from_jsonl(io.StringIO(torn))
        assert back.total_messages() == total - 1

    def test_corrupt_middle_line_skipped_not_fatal(self, rng):
        text, total = self._trace_text(rng)
        lines = text.splitlines()
        lines[1] = "{this is not json"
        lines[3] = '{"round": 0, "phase": "x", "kind": "send", "src": [0]}'
        with pytest.warns(RuntimeWarning, match="skipped 2"):
            back = Tracer.from_jsonl(io.StringIO("\n".join(lines)))
        assert back.total_messages() == total - 2

    def test_clean_trace_emits_no_warning(self, rng):
        import warnings as _warnings

        text, total = self._trace_text(rng)
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            back = Tracer.from_jsonl(io.StringIO(text))
        assert back.total_messages() == total
