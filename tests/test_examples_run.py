"""Smoke tests: the example scripts run end-to-end and self-verify.

Each example asserts its own results against NumPy/networkx references, so a
clean exit is a meaningful check.  Only the quick examples run here; the
heavyweight ones (quickstart's 4096-sort, PageRank's planning pass) are
exercised via their underlying APIs in the other test modules.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "scan_visualizer.py",
    "cost_heatmap.py",
    "pram_simulation_demo.py",
    "gnn_sort_pooling.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 8
    for s in scripts:
        head = s.read_text().split("\n", 3)
        assert head[0].startswith("#!"), s
        assert '"""' in head[1], f"{s} missing a docstring"
