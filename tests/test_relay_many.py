"""Property-based tests of the batched relay (hypothesis).

``relay_many`` is *defined* as the sequential loop of ``relay`` calls; the
fast path must reproduce that loop's counters, returned metadata, and —
under seeded fault plans — its rng stream exactly.  Hypothesis drives the
equivalence over arbitrary chain batches, including the degenerate shapes
(no chains, empty chains, zero-length hops, carry links) that the
selection search emits in practice.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import FaultPlan, ReferenceMachine, SpatialMachine

GRID = 32

coord = st.integers(min_value=0, max_value=GRID - 1)
meta0 = st.integers(min_value=0, max_value=12)


@st.composite
def chain(draw, max_stops=8):
    """One relay argument tuple; may be empty, may contain zero-length hops
    (repeated coordinates), may start on its own first stop."""
    src = (draw(coord), draw(coord))
    n = draw(st.integers(min_value=0, max_value=max_stops))
    rows = draw(st.lists(coord, min_size=n, max_size=n))
    cols = draw(st.lists(coord, min_size=n, max_size=n))
    if n and draw(st.booleans()):  # force at least one zero-length hop
        i = draw(st.integers(min_value=0, max_value=n - 1))
        rows[i], cols[i] = src
    return (
        src,
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        draw(meta0),
        draw(meta0),
    )


@st.composite
def chain_batches(draw, max_chains=6):
    n = draw(st.integers(min_value=0, max_value=max_chains))
    chains = [draw(chain()) for _ in range(n)]
    carry = draw(
        st.none() | st.lists(st.booleans(), min_size=n, max_size=n)
    )
    return chains, carry


def _machine_state(m):
    return (m.stats, m.cost_tree.as_dict(), m.recovery.as_dict())


def _run_pair(chains, carry, plan_seed=None, **plan_kw):
    """Run the same batch on the reference loop and the fast kernel."""
    mr = ReferenceMachine(
        faults=FaultPlan.seeded(plan_seed, **plan_kw) if plan_seed is not None else None
    )
    ref = mr.relay_many(chains, carry)
    mf = SpatialMachine(
        fast=True,
        strict=False,
        faults=FaultPlan.seeded(plan_seed, **plan_kw) if plan_seed is not None else None,
    )
    fast = mf.relay_many(chains, carry)
    return ref, fast, mr, mf


class TestRelayManyEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(chain_batches())
    def test_clean_matches_sequential_loop(self, batch):
        chains, carry = batch
        ref, fast, mr, mf = _run_pair(chains, carry)
        assert fast == ref
        assert _machine_state(mf) == _machine_state(mr)

    @settings(max_examples=60, deadline=None)
    @given(chain_batches(), st.integers(min_value=0, max_value=2**31))
    def test_faulty_matches_sequential_loop(self, batch, plan_seed):
        """Under drops + corruption the fast path must consume the plan's
        rng stream exactly as the loop does: one draw per communicating
        chain, in chain order."""
        chains, carry = batch
        ref, fast, mr, mf = _run_pair(
            chains, carry, plan_seed=plan_seed, drop_prob=0.2, corrupt_prob=0.1
        )
        assert fast == ref
        assert _machine_state(mf) == _machine_state(mr)

    @settings(max_examples=40, deadline=None)
    @given(chain_batches(), st.integers(min_value=0, max_value=2**31))
    def test_dead_regions_match_sequential_loop(self, batch, plan_seed):
        from repro.machine import Region

        chains, carry = batch
        ref, fast, mr, mf = _run_pair(
            chains, carry, plan_seed=plan_seed, dead_regions=(Region(4, 4, 3, 3),)
        )
        assert fast == ref
        assert _machine_state(mf) == _machine_state(mr)

    @settings(max_examples=60, deadline=None)
    @given(chain_batches())
    def test_relay_many_equals_explicit_relay_calls(self, batch):
        """The definition itself: relay_many == [relay(*c) for c in chains]
        with carry threading, on the same machine."""
        chains, carry = batch
        m1 = SpatialMachine(fast=True, strict=False)
        got = m1.relay_many(chains, carry)
        m2 = SpatialMachine(fast=True, strict=False)
        expect = []
        prev = (0, 0)
        for i, (src, rows, cols, d0, s0) in enumerate(chains):
            if carry is not None and carry[i]:
                d0, s0 = prev
            prev = m2.relay(src, rows, cols, int(d0), int(s0))
            expect.append(prev)
        assert got == expect
        assert m1.stats == m2.stats


class TestRelayManyTotals:
    @settings(max_examples=60, deadline=None)
    @given(chain_batches(), st.randoms(use_true_random=False))
    def test_permutation_invariance_of_totals(self, batch, rnd):
        """Without carry links, chain order cannot affect the clean totals:
        energy/messages are sums, max_depth/max_distance are maxima."""
        chains, _ = batch
        perm = list(range(len(chains)))
        rnd.shuffle(perm)
        _, _, _, m1 = _run_pair(chains, None)
        _, _, _, m2 = _run_pair([chains[i] for i in perm], None)
        assert m1.stats == m2.stats

    @settings(max_examples=60, deadline=None)
    @given(chain_batches())
    def test_depth_counts_communicating_hops(self, batch):
        """Clean relay depth = depth0 + number of nonzero-length hops; the
        distance delta is the chain's wire length."""
        chains, _ = batch
        m = SpatialMachine(fast=True, strict=False)
        out = m.relay_many(chains, None)
        for (src, rows, cols, d0, s0), (depth, dist) in zip(chains, out):
            cr = np.concatenate([[src[0]], rows])
            cc = np.concatenate([[src[1]], cols])
            hops = np.abs(np.diff(cr)) + np.abs(np.diff(cc))
            assert depth == d0 + int((hops > 0).sum())
            assert dist == s0 + int(hops.sum())


class TestRelayEdgeCases:
    @pytest.mark.parametrize("mclass", (SpatialMachine, ReferenceMachine))
    def test_empty_stop_array_is_noop(self, mclass):
        m = mclass()
        before = m.stats.snapshot()
        got = m.relay((3, 4), np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 5, 7)
        assert got == (5, 7)
        assert m.stats == before

    def test_empty_batch(self):
        m = SpatialMachine(fast=True, strict=False)
        assert m.relay_many([], None) == []
        assert m.relay_many([]) == []
        assert m.stats == m.stats.snapshot().__class__()

    def test_all_empty_chains(self):
        e = np.empty(0, dtype=np.int64)
        m = SpatialMachine(fast=True, strict=False)
        out = m.relay_many([((0, 0), e, e, 2, 3), ((1, 1), e, e, 0, 0)], [False, True])
        # second chain carries the first's pass-through metadata
        assert out == [(2, 3), (2, 3)]
        assert m.stats.energy == 0 and m.stats.messages == 0 and m.stats.rounds == 0

    def test_carry_length_mismatch_rejected(self):
        e = np.empty(0, dtype=np.int64)
        m = SpatialMachine()
        with pytest.raises(ValueError, match="carry"):
            m.relay_many([((0, 0), e, e, 0, 0)], [True, False])

    def test_zero_length_hops_are_free_but_chain_continues(self):
        m = SpatialMachine(fast=True, strict=False)
        rows = np.array([0, 0, 5], dtype=np.int64)
        cols = np.array([0, 0, 0], dtype=np.int64)
        depth, dist = m.relay((0, 0), rows, cols, 0, 0)
        assert depth == 1  # only the final hop communicates
        assert dist == 5
        assert m.stats.energy == 5
        assert m.stats.messages == 1
