"""Tests for the observability subsystem (repro.obs.*).

Covers the wire context (parse/propagate round-trips and malformed-header
totality), the bounded span sink, the clock-alignment merge in the
collector, validation of span chains, the Prometheus exposition of the
metrics snapshots, and the interpolating latency-histogram edges.
"""

import json
from pathlib import Path

import pytest

from repro.obs import (
    NULL_TRACER,
    TRACE_HEADER,
    TraceContext,
    deterministic_span_id,
    deterministic_trace_id,
    make_tracer,
    tracer_from_env,
)
from repro.obs.collect import (
    aligned_events,
    aligned_spans,
    chrome_trace_doc,
    group_traces,
    load_trace_dir,
    quantile,
    stage_breakdown,
    validate_traces,
)
from repro.obs.tracer import ENV_TRACE_DIR, SpanSink, WallClock
from repro.service import LatencyHistogram, render_prometheus, ServiceMetrics

TID = "a" * 32
SID = "b" * 16


class FakeClock(WallClock):
    """Injectable clock: fixed unix epoch, manually advanced monotonic."""

    def __init__(self, unix_at_start: float, mono: float = 0.0) -> None:
        self._unix0 = unix_at_start
        self._mono0 = mono
        self.t = mono

    def unix(self) -> float:
        return self._unix0 + (self.t - self._mono0)

    def mono(self) -> float:
        return self.t


class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext(trace_id=TID, span_id=SID)
        assert ctx.header_value() == f"00-{TID}-{SID}-01"
        assert TraceContext.parse(ctx.header_value()) == ctx

    def test_unsampled_round_trip(self):
        ctx = TraceContext(trace_id=TID, span_id=SID, sampled=False)
        assert ctx.header_value().endswith("-00")
        parsed = TraceContext.parse(ctx.header_value())
        assert parsed is not None and not parsed.sampled

    def test_parse_normalizes_case(self):
        parsed = TraceContext.parse(f"00-{TID.upper()}-{SID.upper()}-01")
        assert parsed == TraceContext(trace_id=TID, span_id=SID)

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "garbage",
            f"01-{TID}-{SID}-01",  # unknown version
            f"00-{TID[:-1]}-{SID}-01",  # short trace id
            f"00-{TID}-{SID}x-01",  # long span id
            f"00-{'g' * 32}-{SID}-01",  # non-hex trace id
            f"00-{'0' * 32}-{SID}-01",  # all-zero trace id
            f"00-{TID}-{'0' * 16}-01",  # all-zero span id
            f"00-{TID}-{SID}",  # missing flags
        ],
    )
    def test_malformed_headers_yield_none(self, bad):
        assert TraceContext.parse(bad) is None

    def test_child_keeps_trace_id(self):
        ctx = TraceContext(trace_id=TID, span_id=SID)
        child = ctx.child("c" * 16)
        assert child.trace_id == TID and child.span_id == "c" * 16

    def test_deterministic_ids(self):
        assert deterministic_trace_id("load", 7, 3) == deterministic_trace_id("load", 7, 3)
        assert deterministic_trace_id("load", 7, 3) != deterministic_trace_id("load", 7, 4)
        assert len(deterministic_trace_id("x")) == 32
        assert len(deterministic_span_id("x")) == 16
        # minted ids must survive the wire format
        ctx = TraceContext(deterministic_trace_id("a"), deterministic_span_id("b"))
        assert TraceContext.parse(ctx.header_value()) == ctx


class TestSink:
    def test_bounding_and_truncation_marker(self, tmp_path):
        sink = SpanSink(tmp_path / "spans.jsonl", {"kind": "process"}, max_records=3)
        for i in range(6):
            sink.write({"kind": "span", "i": i})
        sink.close()
        lines = [json.loads(x) for x in (tmp_path / "spans.jsonl").read_text().splitlines()]
        kinds = [r["kind"] for r in lines]
        # header + 3 records + exactly one truncated marker, drops counted
        assert kinds == ["process", "span", "span", "span", "truncated"]
        assert lines[-1]["after"] == 3
        assert sink.dropped == 3

    def test_no_file_until_first_write(self, tmp_path):
        sink = SpanSink(tmp_path / "never.jsonl", {"kind": "process"})
        sink.close()
        assert not (tmp_path / "never.jsonl").exists()

    def test_seeded_tracer_ids_are_stable(self, tmp_path):
        a = make_tracer("svc", tmp_path / "a", seed=42)
        b = make_tracer("svc", tmp_path / "b", seed=42)
        assert a.new_trace_id() == b.new_trace_id()
        assert a.new_span_id() == b.new_span_id()
        a.close()
        b.close()

    def test_tracer_from_env_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_TRACE_DIR, raising=False)
        assert tracer_from_env("svc") is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", attrs={"x": 1}) as span:
            span.set(y=2)
            span.end("error")
        NULL_TRACER.event("whatever")
        NULL_TRACER.close()

    def test_span_end_is_idempotent(self, tmp_path):
        tracer = make_tracer("svc", tmp_path, seed=1)
        span = tracer.start_span("op")
        span.end("error")
        span.end("ok")  # ignored: first end wins
        tracer.close()
        logs = load_trace_dir(tmp_path)
        assert len(logs[0].spans) == 1
        assert logs[0].spans[0]["status"] == "error"


def _write_sink(path: Path, service: str, clock: FakeClock, spans, events=()):
    tracer = make_tracer(service, path.parent, seed=0, clock=clock)
    # make_tracer names the file spans-<service>-<pid>.jsonl; steer the sink
    # to a caller-chosen name so two fake processes can share one test pid
    tracer.sink.path = path
    for name, start, end, ctx in spans:
        clock.t = start
        span = tracer.start_span(name, parent=ctx)
        clock.t = end
        span.end()
    for etype, t, attrs in events:
        clock.t = t
        tracer.event(etype, attrs=attrs)
    tracer.close()


class TestCollect:
    def test_clock_alignment_across_processes(self, tmp_path):
        # two processes booted at different monotonic origins but overlapping
        # in absolute time: process B's clock started 1000s "later" on its
        # monotonic axis yet only 5s later on the wall
        clock_a = FakeClock(unix_at_start=1_000_000.0, mono=50.0)
        clock_b = FakeClock(unix_at_start=1_000_005.0, mono=1050.0)
        ctx = TraceContext(trace_id=TID, span_id=SID)
        _write_sink(tmp_path / "spans-a-1.jsonl", "a", clock_a, [("one", 51.0, 52.0, ctx)])
        _write_sink(tmp_path / "spans-b-2.jsonl", "b", clock_b, [("two", 1052.0, 1053.0, ctx)])
        logs = load_trace_dir(tmp_path)
        spans = {s["name"]: s for s in aligned_spans(logs)}
        assert spans["one"]["start_u"] == pytest.approx(1_000_001.0)
        # b's span started at mono 1052 = 2s after its boot = unix 1000007
        assert spans["two"]["start_u"] == pytest.approx(1_000_007.0)
        assert spans["two"]["start_u"] - spans["one"]["start_u"] == pytest.approx(6.0)

    def test_event_alignment(self, tmp_path):
        clock = FakeClock(unix_at_start=500.0, mono=10.0)
        _write_sink(
            tmp_path / "spans-svc-1.jsonl",
            "svc",
            clock,
            [],
            events=[("failover", 12.0, {"from": "s0r0"})],
        )
        logs = load_trace_dir(tmp_path)
        (event,) = aligned_events(logs)
        assert event["type"] == "failover"
        assert event["t_u"] == pytest.approx(502.0)

    def test_load_trace_dir_empty_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace_dir(tmp_path)

    def test_group_and_validate_complete_chain(self, tmp_path):
        tracer = make_tracer("all", tmp_path, seed=0, clock=FakeClock(0.0))
        gw = tracer.start_span("gateway.request", attrs={"outcome": "forwarded"})
        attempt = tracer.start_span("gateway.attempt", parent=gw.ctx)
        srv = tracer.start_span(
            "server.request",
            parent=attempt.ctx,
            attrs={"status_code": 200, "cached": False, "leader": True},
        )
        ex = tracer.start_span("server.execute", parent=srv.ctx, attrs={"backend": "pool"})
        wk = tracer.start_span("worker.execute", parent=ex.ctx)
        for span in (wk, ex, srv, attempt, gw):
            span.end()
        tracer.close()
        logs = load_trace_dir(tmp_path)
        traces = group_traces(aligned_spans(logs))
        assert len(traces) == 1 and len(next(iter(traces.values()))) == 5
        assert validate_traces(traces) == []

    def test_validate_flags_missing_links(self, tmp_path):
        tracer = make_tracer("all", tmp_path, seed=0, clock=FakeClock(0.0))
        gw = tracer.start_span("gateway.request", attrs={"outcome": "forwarded"})
        gw.end()  # forwarded but no attempt spans at all
        orphan = tracer.start_span("server.request", parent=TraceContext(TID, SID))
        orphan.end()  # parent span id never recorded
        tracer.close()
        traces = group_traces(aligned_spans(load_trace_dir(tmp_path)))
        failures = validate_traces(traces)
        assert any("no attempt spans" in f for f in failures)
        assert any("unresolved parent" in f for f in failures)

    def test_stage_breakdown_derives_network_component(self, tmp_path):
        clock = FakeClock(unix_at_start=0.0, mono=0.0)
        tracer = make_tracer("all", tmp_path, seed=0, clock=clock)
        attempt = tracer.start_span("gateway.attempt")
        clock.t = 0.001
        srv = tracer.start_span("server.request", parent=attempt.ctx)
        clock.t = 0.004
        srv.end()
        clock.t = 0.005
        attempt.end()
        tracer.close()
        rows = {r["stage"]: r for r in stage_breakdown(aligned_spans(load_trace_dir(tmp_path)))}
        assert rows["gateway.attempt"]["p50_ms"] == pytest.approx(5.0, abs=0.01)
        # 5ms attempt minus 3ms server = 2ms on the wire
        assert rows["network (gw->server)"]["p50_ms"] == pytest.approx(2.0, abs=0.01)

    def test_chrome_trace_doc_shape(self, tmp_path):
        clock = FakeClock(unix_at_start=0.0, mono=0.0)
        _write_sink(
            tmp_path / "spans-svc-1.jsonl",
            "svc",
            clock,
            [("op", 1.0, 2.0, TraceContext(TID, SID))],
            events=[("drain_started", 3.0, {})],
        )
        doc = chrome_trace_doc(load_trace_dir(tmp_path), label="test")
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "i"} <= phases  # metadata, slices, instants
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices[0]["name"] == "op" and slices[0]["dur"] == pytest.approx(1e6)

    def test_quantile_interpolates(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([7.0], 0.99) == 7.0
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)


class TestHistogramEdges:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.quantile(0.5) == 0.0
        assert h.as_dict()["p99_ms"] == 0.0

    def test_sub_ms_observations_spread_across_buckets(self):
        h = LatencyHistogram()
        for ms in (0.05, 0.2, 0.4, 0.9):
            h.observe(ms / 1000.0)
        buckets = h.as_dict()["buckets"]
        assert buckets["le_0.1ms"] == 1
        assert buckets["le_0.25ms"] == 1
        assert buckets["le_0.5ms"] == 1
        assert buckets["le_1ms"] == 1

    def test_single_observation_interpolates_within_bucket(self):
        h = LatencyHistogram()
        h.observe(0.0007)  # 0.7ms -> the (0.5, 1] bucket
        # the sole observation sits at the q-fraction of its bucket
        assert h.quantile(0.5) == pytest.approx(0.75)
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_overflow_interpolates_to_observed_max(self):
        h = LatencyHistogram()
        h.observe(20.0)  # 20000ms: beyond the last 10000ms bound
        assert h.quantile(0.5) == pytest.approx(15000.0)
        assert h.quantile(1.0) == pytest.approx(20000.0)
        assert h.as_dict()["buckets"]["le_inf"] == 1

    def test_monotone_in_q(self):
        h = LatencyHistogram()
        for ms in (0.2, 0.8, 3, 3, 40, 900, 12000):
            h.observe(ms / 1000.0)
        qs = [h.quantile(q / 20.0) for q in range(21)]
        assert qs == sorted(qs)


async def _raw_get(port: int, target: str, timeout: float = 10.0):
    """GET without JSON-decoding the body -> (status, headers, body bytes)."""
    import asyncio

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(
            f"GET {target} HTTP/1.1\r\nHost: repro\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        status = int((await asyncio.wait_for(reader.readline(), timeout)).split()[1])
        headers = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        body = await reader.read()
        return status, headers, body
    finally:
        writer.close()


class TestServerIntegration:
    """In-process server round-trips: trace propagation and the prometheus route."""

    def _run(self, scenario, **config_overrides):
        import asyncio

        from repro.service import ServiceConfig, SpatialService

        config = ServiceConfig(
            port=0, inline=True, workers=2, batch_window=0.0, disk_cache=False,
            **config_overrides,
        )

        async def go():
            service = SpatialService(config)
            await service.start()
            try:
                return await scenario(service)
            finally:
                await service.drain(10.0)
                await service.stop()

        return asyncio.run(go())

    def test_trace_header_propagates_to_span_file(self, tmp_path):
        import asyncio

        from repro.service.httpio import http_call

        sent = TraceContext(trace_id=TID, span_id=SID)

        async def scenario(service):
            reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
            try:
                status, _h, doc, _c = await http_call(
                    reader, writer, "POST", "/run",
                    {"algo": "scan", "n": 64, "seed": 1},
                    headers=[(TRACE_HEADER, sent.header_value())],
                )
            finally:
                writer.close()
            return status, doc

        status, doc = self._run(scenario, trace_dir=str(tmp_path))
        assert status == 200
        # the response names its own trace and breaks the latency into stages
        assert doc["trace"]["trace_id"] == TID
        stages = doc["trace"]["stages_ms"]
        assert "total" in stages and "execute" in stages
        logs = load_trace_dir(tmp_path)
        reqs = [s for s in aligned_spans(logs) if s["name"] == "server.request"]
        assert len(reqs) == 1
        assert reqs[0]["trace"] == TID
        assert reqs[0]["parent"] == SID  # the client's span is our parent
        assert reqs[0]["attrs"]["status_code"] == 200

    def test_disabled_tracing_emits_nothing(self, tmp_path):
        import asyncio

        from repro.service.httpio import http_call

        async def scenario(service):
            reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
            try:
                _s, _h, doc, _c = await http_call(
                    reader, writer, "POST", "/run", {"algo": "scan", "n": 64, "seed": 1},
                    headers=[(TRACE_HEADER, f"00-{TID}-{SID}-01")],
                )
            finally:
                writer.close()
            return doc

        doc = self._run(scenario)  # no trace_dir: tracing off
        assert "trace" not in doc
        assert list(tmp_path.iterdir()) == []

    def test_metrics_prometheus_route(self):
        from repro.service import PROM_CONTENT_TYPE

        async def scenario(service):
            return await _raw_get(service.port, "/metrics?format=prometheus")

        status, headers, body = self._run(scenario)
        assert status == 200
        assert headers["content-type"] == PROM_CONTENT_TYPE
        text = body.decode()
        assert "# TYPE repro_latency_ms histogram" in text
        assert 'repro_latency_ms_bucket{le="+Inf"}' in text

    def test_metrics_default_stays_json(self):
        async def scenario(service):
            return await _raw_get(service.port, "/metrics")

        status, headers, body = self._run(scenario)
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        assert "latency" in json.loads(body)


class TestPromExport:
    def test_histogram_exposition(self):
        m = ServiceMetrics()
        m.request_received()
        m.request_admitted("scan")
        m.request_finished(200, 0.0042)
        text = render_prometheus(m.snapshot())
        assert text.endswith("\n")
        # cumulative buckets with the canonical suffixes
        assert 'repro_latency_ms_bucket{le="5"} 1' in text
        assert 'repro_latency_ms_bucket{le="+Inf"} 1' in text
        assert "repro_latency_ms_count 1" in text
        assert "repro_latency_ms_sum 4.2" in text
        assert "repro_requests_total 1" in text

    def test_buckets_are_cumulative(self):
        m = ServiceMetrics()
        m.request_received()
        m.request_admitted("scan")
        m.request_finished(200, 0.0003)  # 0.3ms
        m.request_received()
        m.request_admitted("scan")
        m.request_finished(200, 0.003)  # 3ms
        text = render_prometheus(m.snapshot())
        assert 'repro_latency_ms_bucket{le="0.5"} 1' in text
        assert 'repro_latency_ms_bucket{le="5"} 2' in text

    def test_labeled_counters(self):
        m = ServiceMetrics()
        m.request_received()
        m.request_admitted("sort")
        m.request_finished(429, 0.001)
        text = render_prometheus(m.snapshot())
        assert 'repro_requests_by_algo{algo="sort"} 1' in text
        assert 'repro_responses_by_status{status="429"} 1' in text
