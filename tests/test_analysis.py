"""Tests for the analysis helpers (fitting, tables, workloads)."""

import numpy as np
import pytest

from repro.analysis import (
    WORKLOADS,
    banner,
    doubling_ratios,
    fit_power_law,
    make_workload,
    polylog_consistent,
    render_table,
    tail_exponent,
)


class TestPowerFit:
    def test_exact_power_law(self):
        ns = np.array([16, 64, 256, 1024])
        fit = fit_power_law(ns, 3.0 * ns**1.5)
        assert fit.exponent == pytest.approx(1.5)
        assert fit.constant == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_linear(self):
        ns = np.array([10, 100, 1000])
        fit = fit_power_law(ns, 7.0 * ns)
        assert fit.exponent == pytest.approx(1.0)

    def test_noise_tolerated(self, rng):
        ns = np.array([16, 64, 256, 1024, 4096])
        costs = ns**2.0 * (1 + 0.05 * rng.standard_normal(5))
        fit = fit_power_law(ns, costs)
        assert 1.9 < fit.exponent < 2.1

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([4]), np.array([8]))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1, 2]), np.array([0, 4]))

    def test_tail_exponent_sheds_small_n(self):
        ns = np.array([4, 16, 64, 256, 1024])
        costs = 100 + ns**1.5  # constant dominates small n
        full = fit_power_law(ns, costs).exponent
        tail = tail_exponent(ns, costs, points=3)
        assert abs(tail - 1.5) < abs(full - 1.5)

    def test_doubling_ratios(self):
        r = doubling_ratios(np.array([2, 4, 8]), np.array([10, 40, 160]))
        assert r == [(2.0, 4.0), (2.0, 4.0)]

    def test_polylog_consistent(self):
        ns = np.array([64, 256, 1024, 4096, 16384], dtype=float)
        assert polylog_consistent(ns, np.log2(ns) ** 3)
        assert not polylog_consistent(ns, ns**0.5)


class TestTables:
    def test_render_aligned(self):
        out = render_table(["n", "energy"], [[16, 100], [64, 12345]])
        lines = out.strip().splitlines()
        assert "energy" in lines[0]
        assert len(lines) == 4

    def test_float_formatting(self):
        out = render_table(["x"], [[1.23456], [1e7], [0.0]])
        assert "1.235" in out and "1e+07" in out

    def test_banner(self):
        assert "Table I" in banner("Table I")


class TestWorkloads:
    @pytest.mark.parametrize("kind", WORKLOADS)
    def test_all_kinds(self, kind, rng):
        x = make_workload(kind, 128, rng)
        assert len(x) == 128
        assert x.dtype == np.float64

    def test_reversed_is_descending(self, rng):
        x = make_workload("reversed", 16, rng)
        assert (np.diff(x) < 0).all()

    def test_few_distinct(self, rng):
        x = make_workload("few_distinct", 256, rng)
        assert len(np.unique(x)) <= 8

    def test_unknown_rejected(self, rng):
        with pytest.raises(ValueError):
            make_workload("gaussian-mixture", 16, rng)
