"""Conformance tests: measured costs equal closed-form expectations.

The deterministic algorithms' message patterns are data-independent, so
their costs are exact functions of n.  Pinning the closed forms (derived
from the recurrences in the paper's proofs) catches any accounting drift —
a change that shifts these numbers is changing the model.
"""

import numpy as np
import pytest

from repro.core.collectives import broadcast_2d, reduce_2d
from repro.core.ops import ADD
from repro.core.scan import scan
from repro.machine import Region, SpatialMachine
from repro.machine.zorder import zorder_curve_energy


class TestZOrderCurveClosedForm:
    @pytest.mark.parametrize("side", (2, 4, 8, 16, 32, 64, 128))
    def test_curve_energy_is_2s_s_minus_1(self, side):
        """E(s) = 4E(s/2) + 2s (the three quadrant hops cost s/2 + s + s/2)
        solves to exactly 2s(s-1)."""
        assert zorder_curve_energy(side) == 2 * side * (side - 1)


class TestBroadcastClosedForm:
    @pytest.mark.parametrize("side", (2, 4, 8, 16, 32, 64))
    def test_square_broadcast_energy(self, side):
        """E(w) = 4E(w/2) + 2w (messages of w/2, w/2 and w per expansion)
        solves to exactly 2w(w-1)."""
        m = SpatialMachine()
        region = Region(0, 0, side, side)
        broadcast_2d(m, m.place(np.array([1.0]), [0], [0]), region)
        assert m.stats.energy == 2 * side * (side - 1)

    @pytest.mark.parametrize("side", (2, 8, 32))
    def test_square_broadcast_messages(self, side):
        """3 messages per internal node of the 4-ary expansion: n - 1 total."""
        m = SpatialMachine()
        region = Region(0, 0, side, side)
        broadcast_2d(m, m.place(np.array([1.0]), [0], [0]), region)
        assert m.stats.messages == side * side - 1

    @pytest.mark.parametrize("side", (2, 8, 32))
    def test_reduce_mirrors_broadcast_energy(self, side):
        """Corollary IV.2: the reverse pattern has identical cost."""
        region = Region(0, 0, side, side)
        mb = SpatialMachine()
        broadcast_2d(mb, mb.place(np.array([1.0]), [0], [0]), region)
        mr = SpatialMachine()
        reduce_2d(mr, mr.place_rowmajor(np.ones(side * side), region), region, ADD)
        assert mr.stats.energy == mb.stats.energy
        assert mr.stats.messages == mb.stats.messages


class TestScanPinnedCosts:
    """The scan's costs are deterministic functions of n; pin them."""

    EXPECTED = {
        # n: (energy, messages, depth, distance) — zero-length sends (the
        # level-1 child whose host is the parent's host) are not messages
        4: (8, 6, 2, 3),
        16: (56, 32, 4, 12),
        64: (256, 136, 6, 24),
        256: (1096, 552, 8, 52),
        1024: (4512, 2216, 10, 106),
        4096: (18312, 8872, 12, 218),
    }

    @pytest.mark.parametrize("n", sorted(EXPECTED))
    def test_exact_costs(self, n):
        side = int(np.sqrt(n))
        m = SpatialMachine()
        region = Region(0, 0, side, side)
        res = scan(m, m.place_zorder(np.ones(n), region), region)
        energy, messages, depth, dist = self.EXPECTED[n]
        assert m.stats.energy == energy
        assert m.stats.messages == messages
        assert res.inclusive.max_depth() == depth
        assert res.inclusive.max_dist() == dist

    def test_energy_recurrence_consistency(self):
        """Scan energy satisfies E(n) ~ 4 E(n/4) + Θ(sqrt(n)) up-down trees:
        check the increments against the geometric structure."""
        es = {n: self.EXPECTED[n][0] for n in self.EXPECTED}
        for n in (16, 64, 256, 1024):
            # E(4n) - 4E(n) is the root-level wiring, growing like sqrt(n)
            delta1 = es[4 * n] - 4 * es[n]
            if 4 * n < 4096:
                delta2 = es[16 * n] - 4 * es[4 * n]
                assert 1.5 < delta2 / delta1 < 2.5  # ~doubles per 4x n

    def test_costs_independent_of_monoid(self):
        from repro.core.ops import MAX

        n = 256
        region = Region(0, 0, 16, 16)
        m1 = SpatialMachine()
        scan(m1, m1.place_zorder(np.ones(n), region), region, ADD)
        m2 = SpatialMachine()
        scan(m2, m2.place_zorder(np.ones(n), region), region, MAX)
        assert m1.stats.energy == m2.stats.energy


class TestBitonicPinnedCosts:
    def test_messages_formula(self):
        """Every stage exchanges every wire: n messages per stage,
        log(n)(log(n)+1)/2 stages."""
        from repro.core.sorting.bitonic import bitonic_sort
        from repro.core.sorting.sortutil import as_sort_payload

        for n in (16, 64, 256):
            side = int(np.sqrt(n))
            m = SpatialMachine()
            region = Region(0, 0, side, side)
            bitonic_sort(
                m,
                m.place_rowmajor(as_sort_payload(np.random.rand(n)), region),
                region,
            )
            ln = int(np.log2(n))
            assert m.stats.messages == n * ln * (ln + 1) // 2
