"""Tests for COO matrices and workload generators (Section VIII setup)."""

import numpy as np
import pytest

from repro.spmv.coo import (
    COOMatrix,
    banded_coo,
    graph_adjacency_coo,
    permutation_coo,
    random_coo,
)


class TestCOOMatrix:
    def test_multiply_dense_matches_scipy(self, rng):
        A = random_coo(50, 200, rng)
        x = rng.standard_normal(50)
        assert np.allclose(A.multiply_dense(x), A.to_scipy() @ x)

    def test_duplicates_summed(self):
        A = COOMatrix(
            np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([2.0, 3.0, 4.0]), 2
        ).deduplicated()
        assert A.nnz == 2
        dense = A.to_scipy().toarray()
        assert dense[0, 1] == 5.0 and dense[1, 0] == 4.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(np.array([5]), np.array([0]), np.array([1.0]), 4)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(np.array([0]), np.array([0, 1]), np.array([1.0]), 4)


class TestGenerators:
    def test_random_coo_dedup(self, rng):
        A = random_coo(10, 500, rng)
        keys = set(zip(A.rows.tolist(), A.cols.tolist()))
        assert len(keys) == A.nnz  # no duplicate coordinates survive

    def test_banded_structure(self, rng):
        A = banded_coo(10, 1, rng)
        assert (np.abs(A.rows - A.cols) <= 1).all()
        assert A.nnz == 10 + 2 * 9  # main + two off-diagonals

    def test_banded_spmv(self, rng):
        A = banded_coo(16, 2, rng)
        x = rng.standard_normal(16)
        assert np.allclose(A.multiply_dense(x), A.to_scipy() @ x)

    def test_permutation_matrix(self, rng):
        perm = rng.permutation(12)
        P = permutation_coo(perm)
        x = rng.standard_normal(12)
        assert np.allclose(P.multiply_dense(x), x[perm])

    @pytest.mark.parametrize("kind", ("gnp", "ba"))
    def test_graph_adjacency_symmetric(self, kind, rng):
        A = graph_adjacency_coo(30, rng, kind=kind)
        dense = A.to_scipy().toarray()
        assert np.allclose(dense, dense.T)
        assert A.nnz > 0

    def test_unknown_graph_kind(self, rng):
        with pytest.raises(ValueError):
            graph_adjacency_coo(10, rng, kind="hypercube")


class TestFromScipy:
    def test_roundtrip(self, rng):
        import scipy.sparse as sp

        A = sp.random(12, 12, density=0.4, random_state=2)
        C = COOMatrix.from_scipy(A)
        x = rng.standard_normal(12)
        assert np.allclose(C.multiply_dense(x), A @ x)

    def test_csr_accepted(self, rng):
        import scipy.sparse as sp

        A = sp.random(8, 8, density=0.5, random_state=3).tocsr()
        C = COOMatrix.from_scipy(A)
        assert C.n == 8

    def test_rectangular_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError):
            COOMatrix.from_scipy(sp.random(4, 6, density=0.5))
