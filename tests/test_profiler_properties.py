"""Property-based tests of the profiler's exact-accounting claims (hypothesis).

The profiler's core promise is *conservation*: every unit of energy the
machine charges lands in exactly one cell of the ``energy_out`` grid (and one
of ``energy_in``) — including fault-recovery surcharges, where one message's
charge is ``d_eff * attempts`` (sparing and detour extras times delivery
attempts).  These properties sweep random workloads, fault probabilities,
and dead regions and require the grids to sum *exactly* (integer equality,
no tolerance) to the flat ``MachineStats`` counters.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scan import scan
from repro.machine import FaultPlan, Region, SpatialMachine

sides = st.sampled_from([2, 4, 8])
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _scan_machine(side: int, seed: int, faults=None) -> SpatialMachine:
    rng = np.random.default_rng(seed)
    m = SpatialMachine(profile=True, faults=faults)
    reg = Region(0, 0, side, side)
    scan(m, m.place_zorder(rng.random(side * side), reg), reg)
    return m


@settings(max_examples=30, deadline=None)
@given(side=sides, seed=seeds)
def test_energy_grids_conserve_machine_energy(side, seed):
    m = _scan_machine(side, seed)
    p = m.profiler
    assert p.total_energy == m.stats.energy
    assert sum(p.energy_out.values()) == m.stats.energy
    assert sum(p.energy_in.values()) == m.stats.energy
    # fault-free: message grids match the flat counter and links carry
    # exactly one load unit per wire unit
    assert sum(p.sent.values()) == m.stats.messages
    assert sum(p.hlinks.values()) + sum(p.vlinks.values()) == m.stats.energy


@settings(max_examples=25, deadline=None)
@given(
    side=sides,
    seed=seeds,
    plan_seed=seeds,
    drop=st.floats(min_value=0.0, max_value=0.4),
    corrupt=st.floats(min_value=0.0, max_value=0.3),
)
def test_energy_grids_conserve_under_recovery_resends(
    side, seed, plan_seed, drop, corrupt
):
    plan = FaultPlan(
        rng=np.random.default_rng(plan_seed), drop_prob=drop, corrupt_prob=corrupt
    )
    m = _scan_machine(side, seed, faults=plan)
    p = m.profiler
    # conservation must hold whether or not the plan actually fired
    assert p.total_energy == m.stats.energy
    assert sum(p.energy_out.values()) == m.stats.energy
    assert sum(p.energy_in.values()) == m.stats.energy


@settings(max_examples=15, deadline=None)
@given(seed=seeds, plan_seed=seeds)
def test_energy_grids_conserve_under_dead_regions(seed, plan_seed):
    plan = FaultPlan(
        rng=np.random.default_rng(plan_seed),
        dead_regions=(Region(2, 2, 2, 2),),
        drop_prob=0.1,
    )
    m = _scan_machine(8, seed, faults=plan)
    p = m.profiler
    assert p.total_energy == m.stats.energy
    assert sum(p.energy_out.values()) == m.stats.energy


@settings(max_examples=20, deadline=None)
@given(side=sides, seed=seeds)
def test_witnesses_replay_exactly(side, seed):
    m = _scan_machine(side, seed)
    dw = m.profiler.depth_witness()
    sw = m.profiler.distance_witness()
    assert dw.complete and dw.replayed() == dw.target == m.stats.max_depth
    assert sw.complete and sw.replayed() == sw.target == m.stats.max_distance


# ---------------------------------------------------------------------------
# batched relay chains through the profiler
# ---------------------------------------------------------------------------
coord = st.integers(min_value=0, max_value=15)


@st.composite
def relay_batches(draw, max_chains=5, max_stops=6):
    """Random relay_many argument lists, including empty chains."""
    n = draw(st.integers(min_value=1, max_value=max_chains))
    chains = []
    for _ in range(n):
        k = draw(st.integers(min_value=0, max_value=max_stops))
        chains.append((
            (draw(coord), draw(coord)),
            np.array(draw(st.lists(coord, min_size=k, max_size=k)), dtype=np.int64),
            np.array(draw(st.lists(coord, min_size=k, max_size=k)), dtype=np.int64),
            draw(st.integers(min_value=0, max_value=8)),
            draw(st.integers(min_value=0, max_value=8)),
        ))
    carry = draw(st.none() | st.lists(st.booleans(), min_size=n, max_size=n))
    return chains, carry


@settings(max_examples=40, deadline=None)
@given(batch=relay_batches())
def test_relay_many_energy_grids_conserve(batch):
    """Batched relay chains must land every energy unit in the spatial
    grids, exactly like individual relay calls do."""
    chains, carry = batch
    m = SpatialMachine(profile=True)
    m.relay_many(chains, carry)
    p = m.profiler
    assert p.total_energy == m.stats.energy
    assert sum(p.energy_out.values()) == m.stats.energy
    assert sum(p.energy_in.values()) == m.stats.energy
    assert sum(p.sent.values()) == m.stats.messages
    assert sum(p.hlinks.values()) + sum(p.vlinks.values()) == m.stats.energy


@settings(max_examples=30, deadline=None)
@given(batch=relay_batches(), plan_seed=seeds)
def test_relay_many_conserves_under_faults(batch, plan_seed):
    chains, carry = batch
    plan = FaultPlan(
        rng=np.random.default_rng(plan_seed), drop_prob=0.2, corrupt_prob=0.1
    )
    m = SpatialMachine(profile=True, faults=plan)
    m.relay_many(chains, carry)
    p = m.profiler
    assert p.total_energy == m.stats.energy
    assert sum(p.energy_out.values()) == m.stats.energy
    assert sum(p.energy_in.values()) == m.stats.energy


@settings(max_examples=30, deadline=None)
@given(batch=relay_batches())
def test_relay_many_witnesses_replay(batch):
    """The depth/distance maxima set by batched chains must be explainable:
    the witness chains replay to exactly the recorded targets."""
    chains, carry = batch
    m = SpatialMachine(profile=True)
    m.relay_many(chains, carry)
    if m.stats.messages == 0:
        return  # nothing communicated; no witness to replay
    dw = m.profiler.depth_witness()
    sw = m.profiler.distance_witness()
    # a chain entering with nonzero depth0/dist0 carries history the
    # profiler never saw, so full replay is only guaranteed when every
    # chain starts from scratch
    if all(c[3] == 0 for c in chains) and (carry is None or not any(carry)):
        assert dw.complete and dw.replayed() == dw.target == m.stats.max_depth
    if all(c[4] == 0 for c in chains) and (carry is None or not any(carry)):
        assert sw.complete and sw.replayed() == sw.target == m.stats.max_distance


@settings(max_examples=30, deadline=None)
@given(batch=relay_batches())
def test_profiled_relay_many_counters_match_unprofiled(batch):
    """Attaching a profiler must never change the machine's accounting —
    it only forces the reference path, which is counter-identical."""
    chains, carry = batch
    mp = SpatialMachine(profile=True)
    got_p = mp.relay_many(chains, carry)
    mf = SpatialMachine(fast=True, strict=False)
    got_f = mf.relay_many(chains, carry)
    assert got_p == got_f
    assert mp.stats == mf.stats
