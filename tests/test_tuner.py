"""Tests for the auto-tuner subsystem (`repro tune`, repro.tuner.*).

Covers the search space enumeration, the pruning contract (bit-identical
argmin to brute force with >= 50% of the sort space pruned analytically),
plan DB round-trip and staleness, the library API, the CLI verb, the
`bench list` baseline column, the loadgen Zipf mix, and the service's
``/plan`` endpoint plus ``auto:`` dispatch.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.runner.cache import ResultCache
from repro.tuner import (
    Evaluator,
    PlanDB,
    SearchSpace,
    TuneConfig,
    TunePlan,
    TuneRequest,
    config_bounds,
    is_dominated,
    metric_value,
    plan_for,
    run_config,
    tune_one,
    variants_for,
)
from repro.tuner.planner import ServicePlanner


class TestSearchSpace:
    def test_sort_space_is_seven_sorters_by_three_layouts(self):
        space = SearchSpace.for_request("sort", 64)
        assert len(space) == 21
        assert len(variants_for("sort")) == 7
        assert {c.layout for c in space.configs} == {"rowmajor", "zorder", "square_l"}

    def test_native_layout_enumerates_first_per_variant(self):
        space = SearchSpace.for_request("sort", 64)
        seen = []
        for c in space.configs:
            if c.variant not in seen:
                # first configuration of each variant is its native layout
                assert not is_dominated(c), c.label()
                seen.append(c.variant)

    def test_scan_space_has_tree_layouts_and_block_factors(self):
        space = SearchSpace.for_request("scan", 64)
        labels = [c.label() for c in space.configs]
        assert "scan/tree@zorder" in labels
        assert "scan/blocked@host/b4" in labels
        blocks = {c.block for c in space.configs if c.variant == "blocked"}
        assert blocks == {4, 16, 64}

    def test_config_roundtrip(self):
        for c in SearchSpace.for_request("scan", 64).configs:
            assert TuneConfig.from_dict(c.as_dict()) == c
            assert TuneConfig.from_params(c.params(64)) == c

    def test_space_hash_depends_on_n(self):
        assert SearchSpace.for_request("scan", 64).hash() != SearchSpace.for_request(
            "scan", 256
        ).hash()

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown algo class"):
            SearchSpace.for_request("fft", 64)


class TestBounds:
    def test_bounds_admissible_on_small_sort_space(self):
        for config in SearchSpace.for_request("sort", 16).configs:
            lb = config_bounds(config, 16, seed=0)
            m = run_config(config, 16, seed=0).stats
            measured = {"energy": m.energy, "max_depth": m.max_depth}
            measured["edp"] = measured["energy"] * measured["max_depth"]
            for metric in ("energy", "max_depth", "edp"):
                assert lb[metric] <= measured[metric], (config.label(), metric)

    def test_network_energy_bound_is_exact(self):
        for variant in ("bitonic", "oddeven"):
            config = TuneConfig("sort", variant, "rowmajor")
            lb = config_bounds(config, 16)
            m = run_config(config, 16).stats
            assert lb["energy"] == m.energy
            assert lb["max_depth"] == m.max_depth

    def test_metric_value_edp(self):
        assert metric_value({"energy": 6, "max_depth": 7}, "edp") == 42
        with pytest.raises(ValueError, match="unknown tuning metric"):
            metric_value({"energy": 1}, "watts")


@pytest.fixture(scope="module")
def evaluator(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("tuner_cache"))
    return Evaluator(cache=cache, jobs=0)


class TestTuner:
    def test_pruned_matches_brute_and_prunes_half_the_sort_space(self, evaluator):
        """The acceptance criterion: >= 50% pruned, bit-identical best plan."""
        request = TuneRequest("sort", 64, "edp")
        plan = tune_one(request, evaluator)
        brute = tune_one(request, evaluator, brute=True)
        assert plan.best == brute.best
        assert plan.pruned_fraction() >= 0.5
        assert plan.counts["evaluated"] < plan.counts["total"]
        assert brute.counts["evaluated"] == brute.counts["total"] == 21

    def test_all_metrics_match_brute(self, evaluator):
        for metric in ("energy", "max_depth", "edp"):
            for algo_class, n in (("sort", 16), ("scan", 64), ("spmv", 16)):
                request = TuneRequest(algo_class, n, metric)
                plan = tune_one(request, evaluator)
                brute = tune_one(request, evaluator, brute=True)
                assert plan.best == brute.best, (algo_class, n, metric)

    def test_pareto_front_is_nondominated_and_holds_the_best(self, evaluator):
        plan = tune_one(TuneRequest("sort", 64, "energy"), evaluator)
        front = plan.pareto
        assert front, "empty Pareto front"
        for a in front:
            for b in front:
                if a is b:
                    continue
                assert not (
                    a["metrics"]["energy"] <= b["metrics"]["energy"]
                    and a["metrics"]["max_depth"] < b["metrics"]["max_depth"]
                )
        assert any(p["config"] == plan.best["config"] for p in front)

    def test_plan_roundtrips_through_dict(self, evaluator):
        plan = tune_one(TuneRequest("scan", 64), evaluator)
        again = TunePlan.from_dict(json.loads(json.dumps(plan.as_dict())))
        assert again.best == plan.best
        assert again.counts == plan.counts
        assert again.space_hash == plan.space_hash
        assert again.best_config == plan.best_config

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown tuning metric"):
            TuneRequest("sort", 64, "watts")

    def test_second_tune_is_fully_cached(self, evaluator):
        request = TuneRequest("scan", 64)
        tune_one(request, evaluator)
        before = evaluator.executed
        tune_one(request, evaluator)
        assert evaluator.executed == before  # every evaluation came from cache
        assert evaluator.cache_hits > 0


class TestPlanDB:
    def _plan(self, evaluator):
        return tune_one(TuneRequest("scan", 64), evaluator)

    def test_roundtrip(self, evaluator, tmp_path):
        plan = self._plan(evaluator)
        db = PlanDB(tmp_path / "db.json")
        db.put(plan)
        db.save()
        again = PlanDB(tmp_path / "db.json")
        hit = again.get(TuneRequest("scan", 64), plan.code_version, plan.space_hash)
        assert hit is not None and hit.best == plan.best

    def test_stale_code_version_is_ignored_never_served(self, evaluator, tmp_path):
        plan = self._plan(evaluator)
        db = PlanDB(tmp_path / "db.json")
        db.put(plan)
        db.save()
        again = PlanDB(tmp_path / "db.json")
        request = TuneRequest("scan", 64)
        assert again.get(request, "someone-elses-tree", plan.space_hash) is None
        assert again.get(request, plan.code_version, "different-space") is None
        # and the fresh key still hits
        assert again.get(request, plan.code_version, plan.space_hash) is not None

    def test_corrupt_db_reads_as_empty(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("{not json")
        assert len(PlanDB(path)) == 0
        path.write_text(json.dumps({"schema_version": 999, "entries": {"x": {}}}))
        assert len(PlanDB(path)) == 0

    def test_stale_entry_is_retuned_by_plan_for(self, evaluator, tmp_path):
        db_path = tmp_path / "db.json"
        cache_dir = evaluator.cache.root
        plan = plan_for("scan", 64, db_path=db_path, cache_dir=cache_dir, persist=True)
        # poison the stored entry: stale code version and absurd best value
        doc = json.loads(db_path.read_text())
        (entry,) = doc["entries"].values()
        entry["code_version"] = "stale"
        entry["best"]["value"] = -1
        db_path.write_text(json.dumps(doc))
        fresh = plan_for("scan", 64, db_path=db_path, cache_dir=cache_dir)
        assert fresh.best == plan.best  # re-tuned, not the poisoned entry
        assert fresh.best["value"] != -1

    def test_plan_for_serves_fresh_db_entry(self, evaluator, tmp_path):
        db_path = tmp_path / "db.json"
        cache_dir = evaluator.cache.root
        first = plan_for("scan", 64, db_path=db_path, cache_dir=cache_dir, persist=True)
        second = plan_for("scan", 64, db_path=db_path, cache_dir=cache_dir)
        assert second.as_dict() == first.as_dict()


class TestServicePlanner:
    def test_memo_db_tuned_provenance(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        planner = ServicePlanner(cache=cache, db_path=tmp_path / "db.json")
        plan, source = planner.plan("scan", 64)
        assert source == "tuned"
        _, source = planner.plan("scan", 64)
        assert source == "memo"
        # a fresh planner instance finds the persisted DB entry
        other = ServicePlanner(cache=cache, db_path=tmp_path / "db.json")
        plan2, source = other.plan("scan", 64)
        assert source == "db" and plan2.best == plan.best
        assert planner.stats()["tuned"] == 1


class TestTuneCLI:
    def test_quick_brute_force_run(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "tune", "--quick", "--algo-class", "sort", "--metric", "edp",
                "--brute-force",
                "--plan-db", str(tmp_path / "db.json"),
                "--cache-dir", str(tmp_path / "cache"),
                "--out", str(tmp_path / "table.json"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "bit-identical" in out
        assert "sort/bitonic@rowmajor" in out
        table = json.loads((tmp_path / "table.json").read_text())
        assert table and table[0]["counts"]["total"] == 21
        # second run resolves from the DB without evaluating anything
        rc = main(
            [
                "tune", "--quick", "--algo-class", "sort",
                "--plan-db", str(tmp_path / "db.json"),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0 and " db" in out


class TestBenchListBaselines:
    def test_list_shows_baseline_column(self, capsys):
        from repro.cli import main

        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "baseline=yes" in out
        lines = [ln for ln in out.splitlines() if ln.strip().startswith("table1_sort ")]
        assert lines and "baseline=yes" in lines[0]
        assert "have a quick baseline" in out


class TestLoadgenZipf:
    def test_alpha_zero_is_the_historical_mix(self):
        import random

        from repro.service.loadgen import DEFAULT_MIX, build_requests

        rng = random.Random(11)
        expect = []
        for _ in range(80):
            algo, sizes = DEFAULT_MIX[rng.randrange(len(DEFAULT_MIX))]
            expect.append(
                {"algo": algo, "n": sizes[rng.randrange(len(sizes))], "seed": rng.randrange(3)}
            )
        assert build_requests(80, 11) == expect
        assert build_requests(80, 11, zipf_alpha=0.0) == expect

    def test_zipf_is_deterministic_and_skewed(self):
        from collections import Counter

        from repro.service.loadgen import build_requests

        skewed = build_requests(400, 5, zipf_alpha=1.5)
        assert skewed == build_requests(400, 5, zipf_alpha=1.5)
        hot = Counter((r["algo"], r["n"], r["seed"]) for r in skewed).most_common(1)[0][1]
        uniform_hot = Counter(
            (r["algo"], r["n"], r["seed"]) for r in build_requests(400, 5)
        ).most_common(1)[0][1]
        assert hot > 2 * uniform_hot

    def test_auto_rewrite_validates(self):
        from repro.service import ServiceRequest
        from repro.service.loadgen import build_requests

        payloads = build_requests(60, 2, zipf_alpha=0.9, auto=True)
        assert any(p["algo"].startswith("auto:") for p in payloads)
        for p in payloads:
            ServiceRequest.from_payload(p)


class TestServicePlanEndpoint:
    def _config(self, tmp_path):
        from repro.service import ServiceConfig

        return ServiceConfig(
            port=0,
            inline=True,
            disk_cache=False,
            batch_window=0.01,
            timeout=60.0,
            drain_timeout=10.0,
            plan_db=str(tmp_path / "plan_db.json"),
        )

    def _run(self, tmp_path, scenario):
        from repro.service import SpatialService
        from repro.service.loadgen import _http

        async def call(port, method, path, payload=None):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                status, doc, _ = await _http(
                    reader, writer, method, path, payload, timeout=90.0
                )
                return status, doc
            finally:
                writer.close()

        async def go():
            service = SpatialService(self._config(tmp_path))
            await service.start()
            try:
                return await scenario(service, call)
            finally:
                await service.drain(10.0)
                await service.stop()

        return asyncio.run(go())

    def test_plan_endpoint_and_auto_dispatch_match_direct_run(self, tmp_path):
        async def scenario(service, call):
            # /plan answers with the tuned best configuration
            status, doc = await call(
                service.port, "POST", "/plan", {"algo_class": "sort", "n": 16, "seed": 1}
            )
            assert status == 200 and doc["ok"]
            assert doc["source"] == "tuned"
            assert doc["counts"]["total"] == 21
            planned = TuneConfig.from_dict(doc["plan"]["config"])

            # auto:sort executes exactly the plan-selected variant: counters
            # must match an in-process run of that configuration bit-for-bit
            status, run = await call(
                service.port, "POST", "/run", {"algo": "auto:sort", "n": 16, "seed": 1}
            )
            assert status == 200 and run["ok"]
            assert run["plan"]["source"] == "memo"  # /plan warmed the planner
            assert TuneConfig.from_dict(run["plan"]["config"]) == planned
            assert run["suite"] == "tuner"
            direct = run_config(planned, 16, seed=1).stats
            assert run["metrics"]["energy"] == direct.energy
            assert run["metrics"]["max_depth"] == direct.max_depth
            assert run["metrics"]["messages"] == direct.messages

            # identical auto request: served from cache, plan from memo
            status, again = await call(
                service.port, "POST", "/run", {"algo": "auto:sort", "n": 16, "seed": 1}
            )
            assert again["cached"] == "memory"
            assert again["metrics"] == run["metrics"]

            # planner stats surface in /metrics
            status, metrics = await call(service.port, "GET", "/metrics")
            assert metrics["service"]["planner"]["tuned"] >= 1
            return True

        assert self._run(tmp_path, scenario)

    def test_plan_endpoint_validation(self, tmp_path):
        async def scenario(service, call):
            status, doc = await call(
                service.port, "POST", "/plan", {"algo_class": "fft", "n": 64}
            )
            assert status == 400 and "unknown auto class" in doc["error"]
            status, doc = await call(
                service.port, "POST", "/plan", {"algo": "sort", "n": 64}
            )
            assert status == 400 and "/plan takes an auto:" in doc["error"]
            status, doc = await call(
                service.port, "POST", "/plan", {"algo_class": "sort", "n": 100}
            )
            assert status == 400 and "power of 4" in doc["error"]
            status, doc = await call(service.port, "GET", "/plan")
            assert status == 405
            return True

        assert self._run(tmp_path, scenario)


class TestProtocolAuto:
    def test_auto_request_validation(self):
        from repro.service import RequestError, ServiceRequest

        req = ServiceRequest.from_payload({"algo": "auto:sort", "n": 64})
        assert req.is_auto and req.algo_class == "sort" and req.metric == "edp"
        assert req.suite_name == "tuner"
        with pytest.raises(RuntimeError, match="no resolved plan"):
            req.params()
        resolved = req.resolve(TuneConfig("sort", "bitonic", "rowmajor").params(64))
        assert resolved.params()["variant"] == "bitonic"
        assert resolved.describe()["params"]["n"] == 64

        with pytest.raises(RequestError, match="unknown auto class"):
            ServiceRequest.from_payload({"algo": "auto:select", "n": 64})
        with pytest.raises(RequestError, match="only applies to auto"):
            ServiceRequest.from_payload({"algo": "sort", "n": 64, "metric": "edp"})
        with pytest.raises(RequestError, match="unknown metric"):
            ServiceRequest.from_payload({"algo": "auto:sort", "n": 64, "metric": "w"})
        with pytest.raises(RequestError, match="profile"):
            ServiceRequest.from_payload({"algo": "auto:sort", "n": 64, "profile": True})
        with pytest.raises(RequestError, match="power of 4"):
            ServiceRequest.from_payload({"algo": "auto:scan", "n": 100})
        with pytest.raises(RequestError, match="out of range"):
            ServiceRequest.from_payload({"algo": "auto:sort", "n": 4096})

    def test_resolved_cache_key_matches_tuner_evaluation(self):
        from repro.runner.cachekey import point_key
        from repro.runner.spec import PointSpec
        from repro.service import ServiceRequest

        config = TuneConfig("sort", "bitonic", "rowmajor")
        req = ServiceRequest.from_payload({"algo": "auto:sort", "n": 64, "seed": 3})
        resolved = req.resolve(config.params(64))
        expected = point_key(
            PointSpec(suite="tuner", params=config.params(64), seed=3), "v0"
        )
        assert resolved.cache_key("v0") == expected


class TestRunConfig:
    def test_sorters_sort_under_every_layout(self):
        # run_config verifies sortedness internally and raises on corruption,
        # so surviving the call is the correctness assertion
        for variant in ("bitonic", "mergesort", "shearsort"):
            for layout in ("rowmajor", "zorder", "square_l"):
                config = TuneConfig("sort", variant, layout)
                m = run_config(config, 16, seed=9)
                assert m.stats.energy > 0

    def test_run_config_point_reports_edp(self):
        from repro.tuner.variants import run_config_point

        params = TuneConfig("scan", "tree", "zorder").params(64)
        payload = run_config_point(params, np.random.default_rng(0))
        m = payload["metrics"]
        assert payload["extra"]["edp"] == m["energy"] * m["max_depth"]
        assert payload["extra"]["config"] == TuneConfig("scan", "tree", "zorder").as_dict()
