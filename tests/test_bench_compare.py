"""Tests for the ``repro bench compare`` regression gate."""

import copy

import pytest

from repro.runner import collect_results, compare_results, write_bench_result


def _doc(suite="s1", energy=1000, depth=20, status="ok", n=64):
    point = {
        "params": {"n": n},
        "seed": 0,
        "repeat": 0,
        "status": status,
        "cached": False,
        "attempts": 1,
        "wall_time_s": 0.1,
        "error": None if status == "ok" else "boom",
        "metrics": {
            "energy": energy, "messages": 10, "rounds": 2,
            "max_depth": depth, "max_distance": 30,
        } if status == "ok" else None,
        "phases": [],
        "extra": {},
    }
    return {
        "schema_version": 1,
        "suite": suite,
        "artifact": "",
        "code_version": "v",
        "generated_at": "2026-08-06T00:00:00+00:00",
        "spec": {"suite": suite},
        "config": {},
        "points": [point],
        "summary": {"total": 1, "ok": int(status == "ok"),
                    "failed": int(status != "ok"), "cached": 0, "wall_time_s": 0.1},
    }


class TestCompare:
    def test_identical_passes(self):
        base = {"s1": _doc()}
        rep = compare_results(base, copy.deepcopy(base))
        assert rep.passed and rep.compared_points == 1

    def test_energy_regression_fails(self):
        rep = compare_results({"s1": _doc(energy=1000)},
                              {"s1": _doc(energy=1200)}, threshold=0.1)
        assert not rep.passed
        assert "energy" in rep.regressions[0]

    def test_regression_within_threshold_passes(self):
        rep = compare_results({"s1": _doc(energy=1000)},
                              {"s1": _doc(energy=1050)}, threshold=0.1)
        assert rep.passed

    def test_depth_regression_fails(self):
        rep = compare_results({"s1": _doc(depth=20)}, {"s1": _doc(depth=30)})
        assert not rep.passed
        assert "max_depth" in rep.regressions[0]

    def test_improvement_never_fails(self):
        rep = compare_results({"s1": _doc(energy=1000)}, {"s1": _doc(energy=500)})
        assert rep.passed
        assert rep.improvements

    def test_missing_suite_fails(self):
        rep = compare_results({"s1": _doc()}, {})
        assert not rep.passed and "missing" in rep.regressions[0]

    def test_missing_point_fails(self):
        cur = {"s1": _doc(n=128)}  # different params: the n=64 point vanished
        rep = compare_results({"s1": _doc(n=64)}, cur)
        assert not rep.passed

    def test_point_now_failing_fails(self):
        rep = compare_results({"s1": _doc()}, {"s1": _doc(status="failed")})
        assert not rep.passed and "failed in current run" in rep.regressions[0]

    def test_failed_baseline_point_skipped(self):
        rep = compare_results({"s1": _doc(status="failed")}, {"s1": _doc()})
        assert rep.passed and rep.compared_points == 0 and rep.notes

    def test_extra_current_suite_is_note_only(self):
        rep = compare_results({"s1": _doc()}, {"s1": _doc(), "s2": _doc(suite="s2")})
        assert rep.passed
        assert any("only in current" in n for n in rep.notes)

    def test_render_mentions_verdict(self):
        good = compare_results({"s1": _doc()}, {"s1": _doc()})
        bad = compare_results({"s1": _doc(energy=10)}, {"s1": _doc(energy=100)})
        assert "PASS" in good.render()
        assert "FAIL" in bad.render() and "REGRESSION" in bad.render()


class TestCollect:
    def test_collect_from_dir_and_file(self, tmp_path):
        write_bench_result(tmp_path / "BENCH_s1.json", _doc("s1"))
        write_bench_result(tmp_path / "BENCH_s2.json", _doc("s2"))
        from_dir = collect_results(tmp_path)
        assert set(from_dir) == {"s1", "s2"}
        from_file = collect_results(tmp_path / "BENCH_s1.json")
        assert set(from_file) == {"s1"}

    def test_collect_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path / "nope")

    def test_checked_in_quick_baseline_is_valid(self):
        # the CI gate depends on this directory staying schema-valid
        from pathlib import Path

        from repro.runner import validate_bench_result

        base_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines" / "quick"
        docs = collect_results(base_dir)
        assert len(docs) >= 24
        for name, doc in docs.items():
            assert validate_bench_result(doc) == [], name
            assert doc["summary"]["failed"] == 0, name
