"""Tests for the fleet front tier (`repro fleet` and repro.service.fleet/*).

Mirrors the tiers of ``test_service.py``:

* pure unit tests for the hash ring, circuit breaker, fleet metrics, and
  the chaos schedule;
* in-process integration tests: a real ``FleetGateway`` over real inline
  ``SpatialService`` backends on real sockets (health probing, failover,
  breakers, hedging, stale degradation, readiness);
* one subprocess test killing a live replica under load through the shipped
  ``repro serve`` entry point, gating on zero failed client responses.
"""

import asyncio
import contextlib
import os
import socket
import sys
from pathlib import Path

import pytest

from repro.service import (
    FleetConfig,
    FleetGateway,
    FleetMetrics,
    HashRing,
    HealthMonitor,
    ServiceConfig,
    SpatialService,
)
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from repro.service.fleet import (
    ShardProcess,
    group_backends,
    parse_backend_list,
    routing_key,
    serve_argv,
)
from repro.service.fleetchaos import build_schedule
from repro.service.health import BackendState
from repro.service.httpio import http_call
from repro.service.loadgen import build_requests, run_load
from repro.service.protocol import ServiceRequest

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

#: small-n request mix: every key executes in well under a second
FAST_MIX = (
    ("scan", (64, 256)),
    ("sort", (64, 256)),
    ("select", (64, 256)),
    ("spmv", (16, 64)),
)


def _dead_port() -> int:
    """A port that was just free: connecting to it refuses immediately."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _service_config(**overrides) -> ServiceConfig:
    base = dict(
        port=0,
        inline=True,  # no forking under the test runner
        workers=4,
        batch_window=0.01,
        disk_cache=False,
        drain_timeout=10.0,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def _fleet_config(**overrides) -> FleetConfig:
    base = dict(
        port=0,
        vnodes=16,
        max_inflight=64,
        request_timeout=10.0,
        attempt_timeout=2.0,
        hedge_after=5.0,
        hedge_rate=0.0,  # hedging off unless a test turns it on
        probe_interval=0.2,
        probe_timeout=1.0,
        fall=2,
        rise=1,
        failure_threshold=3,
        cooldown=30.0,  # long enough that a tripped breaker stays open
        max_cooldown=60.0,
        seed=0,
        disk_cache=False,
        drain_timeout=5.0,
    )
    base.update(overrides)
    return FleetConfig(**base)


def _freeze_health(gateway: FleetGateway) -> None:
    """Reset every replica to the never-probed rank (monitor must be stopped).

    Keeps the per-key rotation in ``_candidates`` deterministic: no probe
    result can reorder replicas mid-test."""
    for group in gateway.shards:
        for st in group:
            st.ready = None
            st.alive = None
            st.consecutive_failures = 0
            st.consecutive_successes = 0


def _run_fleet(groups, scenario, *, config=None, freeze_health=False):
    """Run ``await scenario(gateway, services)`` against a live fleet.

    ``groups`` is one list per shard whose items are either a
    :class:`ServiceConfig` (a live inline backend is started) or an ``int``
    (a dead port standing in for a crashed replica)."""

    async def go():
        services = []
        try:
            addrs = []
            for group in groups:
                g_addrs = []
                for item in group:
                    if isinstance(item, int):
                        g_addrs.append(("127.0.0.1", item))
                    else:
                        svc = SpatialService(item)
                        await svc.start()
                        services.append(svc)
                        g_addrs.append(("127.0.0.1", svc.port))
                addrs.append(g_addrs)
            gateway = FleetGateway(config or _fleet_config(), addrs)
            await gateway.start()
            if freeze_health:
                await gateway.monitor.stop()
                _freeze_health(gateway)
            try:
                return await scenario(gateway, services)
            finally:
                await gateway.stop()
        finally:
            for svc in services:
                await svc.drain(5.0)
                await svc.stop()

    return asyncio.run(go())


async def _gcall(port, method, path, payload=None, timeout=10.0):
    """One-shot request -> (status, headers, doc)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        status, headers, doc, _closed = await http_call(
            reader, writer, method, path, payload, timeout=timeout
        )
        return status, headers, doc
    finally:
        writer.close()


def _payloads_preferring(gateway, name, count, pool=64):
    """Valid /run payloads whose preferred replica is ``name``."""
    out = []
    for seed in range(pool):
        payload = {"algo": "scan", "n": 64, "seed": seed}
        key = routing_key(ServiceRequest.from_payload(payload))
        shard = gateway.ring.shard_for(key)
        if gateway._candidates(shard, key)[0].name == name:
            out.append(payload)
            if len(out) == count:
                return out
    raise AssertionError(f"no payloads prefer {name} in a pool of {pool}")


class TestHashRing:
    def test_placement_is_deterministic(self):
        a, b = HashRing(3, vnodes=32), HashRing(3, vnodes=32)
        keys = [f"key-{i}" for i in range(500)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]
        assert all(0 <= a.shard_for(k) < 3 for k in keys)

    def test_spread_is_balanced(self):
        counts = HashRing(3, vnodes=64).spread(f"key-{i}" for i in range(3000))
        assert sum(counts) == 3000
        assert all(500 <= c <= 2000 for c in counts), counts

    def test_single_shard_takes_everything(self):
        ring = HashRing(1, vnodes=8)
        assert ring.spread(f"k{i}" for i in range(100)) == [100]

    def test_routing_key_matches_request_identity(self):
        a = ServiceRequest.from_payload({"algo": "scan", "n": 64, "seed": 3})
        b = ServiceRequest.from_payload({"algo": "scan", "n": 64, "seed": 3})
        c = ServiceRequest.from_payload({"algo": "scan", "n": 64, "seed": 4})
        assert routing_key(a) == routing_key(b) != routing_key(c)

    def test_routing_key_includes_auto_metric(self):
        edp = ServiceRequest.from_payload({"algo": "auto:sort", "n": 256})
        energy = ServiceRequest.from_payload(
            {"algo": "auto:sort", "n": 256, "metric": "energy"}
        )
        assert routing_key(edp) != routing_key(energy)


def _breaker(**cfg):
    """A breaker on a hand-cranked clock; advance time via the returned list."""
    now = [0.0]
    config = BreakerConfig(**{"jitter": 0.0, **cfg})
    return CircuitBreaker("b", config, seed=1, clock=lambda: now[0]), now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        br, _now = _breaker(failure_threshold=3, cooldown_s=1.0)
        br.record_failure()
        br.record_failure()
        assert br.state == CLOSED and br.allow()
        br.record_failure()
        assert br.state == OPEN
        assert not br.allow()
        assert br.rejected == 1
        last = br.transitions[-1]
        assert (last["from"], last["to"]) == (CLOSED, OPEN)

    def test_success_resets_the_consecutive_count(self):
        br, _now = _breaker(failure_threshold=3)
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        br, now = _breaker(failure_threshold=1, cooldown_s=2.0)
        br.record_failure()
        assert br.state == OPEN
        now[0] = 2.5  # past the cooldown
        assert br.allow()  # the probe
        assert br.state == HALF_OPEN
        assert not br.allow()  # second caller is still rejected
        br.record_success()
        assert br.state == CLOSED
        reasons = [t["reason"] for t in br.transitions]
        assert "cooldown elapsed" in reasons and "probe succeeded" in reasons

    def test_probe_failure_doubles_cooldown_up_to_cap(self):
        br, now = _breaker(failure_threshold=1, cooldown_s=1.0, max_cooldown_s=3.0)
        br.record_failure()  # open, cooldown 1.0
        now[0] = 1.5
        assert br.allow()
        br.record_failure("still down")  # re-open, cooldown 2.0
        assert br.state == OPEN
        assert br.snapshot()["cooldown_s"] == 2.0
        assert br.seconds_until_probe() == pytest.approx(2.0)
        now[0] = 4.0
        assert br.allow()
        br.record_failure("still down")  # re-open, capped at 3.0
        assert br.snapshot()["cooldown_s"] == 3.0
        now[0] = 8.0
        assert br.allow()
        br.record_success()
        assert br.state == CLOSED
        assert br.snapshot()["cooldown_s"] == 1.0  # reset on recovery

    def test_release_returns_the_probe_slot(self):
        br, now = _breaker(failure_threshold=1, cooldown_s=1.0)
        br.record_failure()
        now[0] = 1.5
        assert br.allow()
        br.release()  # the admitted attempt was cancelled, not settled
        assert br.allow()

    def test_would_allow_is_non_mutating(self):
        br, now = _breaker(failure_threshold=1, cooldown_s=1.0)
        br.record_failure()
        assert not br.would_allow()
        now[0] = 1.5
        assert br.would_allow()
        assert br.state == OPEN  # no transition, no probe slot consumed
        assert br.rejected == 0

    def test_jitter_is_bounded_and_seeded(self):
        for seed in (0, 1, 7):
            a = CircuitBreaker(
                "a",
                BreakerConfig(failure_threshold=1, cooldown_s=10.0, jitter=0.2),
                seed=seed,
                clock=lambda: 0.0,
            )
            b = CircuitBreaker(
                "b",
                BreakerConfig(failure_threshold=1, cooldown_s=10.0, jitter=0.2),
                seed=seed,
                clock=lambda: 0.0,
            )
            a.record_failure()
            b.record_failure()
            assert 8.0 <= a.seconds_until_probe() <= 12.0
            assert a.seconds_until_probe() == b.seconds_until_probe()


class TestFleetMetrics:
    def test_hedge_budget_is_a_fraction_of_requests(self):
        m = FleetMetrics()
        m.requests_total = 19
        assert not m.hedge_allowed(0.05)  # 1 hedge > 5% of 19
        m.requests_total = 20
        assert m.hedge_allowed(0.05)
        m.hedges_started = 1
        assert not m.hedge_allowed(0.05)
        m.requests_total = 40
        assert m.hedge_allowed(0.05)

    def test_snapshot_sections(self):
        m = FleetMetrics()
        m.request_received()
        m.request_admitted()
        m.attempt_failed("s0r0", "boom")
        m.failovers += 1
        m.request_finished(200, 0.01)
        snap = m.snapshot(
            shards=[{"shard": 0}], breakers={"s0r0": {}}, health=[], extra={"x": 1}
        )
        assert snap["requests"]["total"] == 1
        assert snap["routing"]["attempt_failures"] == {"s0r0": {"boom": 1}}
        assert snap["routing"]["failovers"] == 1
        assert snap["shards"] == [{"shard": 0}]
        assert "s0r0" in snap["breakers"]
        assert snap["x"] == 1


class TestChaosSchedule:
    def test_schedule_is_seeded_and_keeps_shards_apart(self):
        sched = build_schedule(3, 2, seed=5)
        assert sched == build_schedule(3, 2, seed=5)
        actions = [e.action for e in sched]
        assert actions == ["kill", "hang", "restart", "resume"]
        kill, hang, restart, resume = sched
        # the killed and hung replicas live on different shards, so every
        # shard keeps at least one live replica throughout
        assert kill.target.split("r")[0] != hang.target.split("r")[0]
        assert restart.target == kill.target
        assert resume.target == hang.target
        assert [e.fraction for e in sched] == sorted(e.fraction for e in sched)

    def test_single_replica_fleets_are_rejected(self):
        with pytest.raises(SystemExit):
            build_schedule(2, 1, seed=0)


class TestBackendHelpers:
    def test_parse_and_group_backends(self):
        flat = parse_backend_list("127.0.0.1:1, :2,localhost:3,127.0.0.1:4")
        assert flat == [
            ("127.0.0.1", 1),
            ("127.0.0.1", 2),
            ("localhost", 3),
            ("127.0.0.1", 4),
        ]
        assert group_backends(flat, 2) == [[flat[0], flat[2]], [flat[1], flat[3]]]
        with pytest.raises(SystemExit):
            parse_backend_list("nope")
        with pytest.raises(SystemExit):
            group_backends(flat[:1], 2)

    def test_serve_argv_shape(self):
        argv = serve_argv("s1r0", workers=2, cache_dir="/tmp/c")
        assert argv[:3] == [sys.executable, "-m", "repro"]
        assert "--shard-id" in argv and argv[argv.index("--shard-id") + 1] == "s1r0"
        assert argv[argv.index("--cache-dir") + 1] == "/tmp/c"


class TestHealthMonitor:
    def test_readiness_flips_with_debounce(self):
        async def go():
            svc = SpatialService(_service_config())
            await svc.start()
            try:
                backend = BackendState("s0r0", "127.0.0.1", svc.port, 0, 0)
                monitor = HealthMonitor([backend], fall=2, rise=1)
                assert await monitor.probe(backend)
                assert backend.ready is True and backend.alive is True
                assert backend.last_status == 200

                svc.draining = True  # /readyz answers 503, /healthz stays 200
                assert not await monitor.probe(backend)
                assert backend.ready is True  # one failure < fall=2
                assert not await monitor.probe(backend)
                assert backend.ready is False and backend.alive is True
                assert backend.last_status == 503

                svc.draining = False
                assert await monitor.probe(backend)
                assert backend.ready is True  # rise=1 recovers immediately
                assert len(backend.transitions) >= 3
            finally:
                await svc.drain(5.0)
                await svc.stop()

        asyncio.run(go())

    def test_dead_backend_is_marked_down(self):
        async def go():
            backend = BackendState("s0r0", "127.0.0.1", _dead_port(), 0, 0)
            monitor = HealthMonitor([backend], fall=1, timeout=0.5)
            assert not await monitor.probe(backend)
            assert backend.ready is False and backend.alive is False
            assert backend.last_error

        asyncio.run(go())

    def test_probe_scrapes_backend_metrics(self):
        async def go():
            svc = SpatialService(_service_config(shard_id="s0r0"))
            await svc.start()
            try:
                backend = BackendState("s0r0", "127.0.0.1", svc.port, 0, 0)
                monitor = HealthMonitor([backend])
                await monitor.probe(backend)  # probe #1 also scrapes /metrics
                assert backend.backend_metrics["shard"] == "s0r0"
                assert "requests_total" in backend.backend_metrics
            finally:
                await svc.drain(5.0)
                await svc.stop()

        asyncio.run(go())


class TestFleetGateway:
    def test_routing_affinity_and_fleet_annotation(self):
        async def scenario(gateway, _services):
            body = {"algo": "scan", "n": 64, "seed": 1}
            seen = set()
            for _ in range(3):
                status, _h, doc = await _gcall(gateway.port, "POST", "/run", body)
                assert status == 200 and doc["ok"]
                seen.add((doc["fleet"]["shard"], doc["fleet"]["replica"]))
            assert len(seen) == 1  # identical keys always land together
            shard, replica = next(iter(seen))
            assert replica == f"s{shard}r0"
            assert sum(gateway.metrics.forwarded_by_backend.values()) == 3
            assert sum(gateway.metrics.routed_by_shard.values()) == 3

        _run_fleet([[_service_config()], [_service_config()]], scenario)

    def test_failover_skips_dead_replica_and_opens_breaker(self):
        def scenario_config():
            return _fleet_config(attempt_timeout=1.0, failure_threshold=3)

        async def scenario(gateway, _services):
            payloads = _payloads_preferring(gateway, "s0r0", 4)
            for payload in payloads[:3]:
                status, _h, doc = await _gcall(gateway.port, "POST", "/run", payload)
                assert status == 200 and doc["ok"]
                assert doc["fleet"]["replica"] == "s0r1"  # failed over
            br = gateway.breakers["s0r0"]
            assert br.state == OPEN  # three consecutive connect failures
            assert gateway.metrics.failovers >= 3
            assert sum(gateway.metrics.attempt_failures["s0r0"].values()) == 3

            # with the breaker open the dead replica is skipped, not retried
            status, _h, doc = await _gcall(gateway.port, "POST", "/run", payloads[3])
            assert status == 200 and doc["fleet"]["replica"] == "s0r1"
            assert sum(gateway.metrics.attempt_failures["s0r0"].values()) == 3
            assert br.rejected >= 1

            # the trip is visible on /metrics for the chaos gate to find
            _s, _h, metrics = await _gcall(gateway.port, "GET", "/metrics")
            transitions = metrics["breakers"]["s0r0"]["transitions"]
            assert any(t["to"] == OPEN for t in transitions)

        _run_fleet(
            [[_dead_port(), _service_config()]],
            scenario,
            config=scenario_config(),
            freeze_health=True,
        )

    def test_hedged_request_wins_over_a_stalled_replica(self):
        async def go():
            unblock = asyncio.Event()

            async def hang(reader, writer):
                with contextlib.suppress(Exception):
                    await reader.read(1 << 16)  # swallow the request, never answer
                    await unblock.wait()

            stub = await asyncio.start_server(hang, "127.0.0.1", 0)
            stub_port = stub.sockets[0].getsockname()[1]
            svc = SpatialService(_service_config())
            await svc.start()
            gateway = FleetGateway(
                _fleet_config(hedge_after=0.15, hedge_rate=1.0),
                [[("127.0.0.1", stub_port), ("127.0.0.1", svc.port)]],
            )
            await gateway.start()
            await gateway.monitor.stop()
            _freeze_health(gateway)
            try:
                payload = _payloads_preferring(gateway, "s0r0", 1)[0]
                status, _h, doc = await _gcall(gateway.port, "POST", "/run", payload)
                assert status == 200 and doc["ok"]
                assert doc["fleet"]["replica"] == "s0r1"  # the hedge answered
                m = gateway.metrics
                assert (m.hedges_started, m.hedge_wins, m.hedges_cancelled) == (1, 1, 1)
            finally:
                unblock.set()
                stub.close()
                await gateway.stop()
                await svc.drain(5.0)
                await svc.stop()

        asyncio.run(go())

    def test_degraded_stale_serving_and_shed(self):
        async def scenario(gateway, _services):
            cached = ServiceRequest.from_payload({"algo": "scan", "n": 64, "seed": 0})
            key = cached.cache_key(gateway.code_versions["scan"])
            payload = {
                "metrics": {"energy": 5, "messages": 2, "rounds": 1,
                            "max_depth": 1, "max_distance": 1},
                "phases": [],
                "extra": {},
            }
            gateway.stale_cache.put(key, cached, payload, 0.1)

            # a previously-seen key is served stale when no replica answers
            status, _h, doc = await _gcall(
                gateway.port, "POST", "/run", {"algo": "scan", "n": 64, "seed": 0}
            )
            assert status == 200 and doc["ok"]
            assert doc["degraded"] is True and doc["cached"] == "stale"
            assert doc["fleet"]["replica"] is None
            assert doc["metrics"]["energy"] == 5

            # an unseen key is shed with an honest Retry-After
            status, headers, doc = await _gcall(
                gateway.port, "POST", "/run", {"algo": "scan", "n": 64, "seed": 9}
            )
            assert status == 503 and doc["degraded"] is False
            assert int(headers["retry-after"]) >= 1

            assert gateway.metrics.degraded_stale == 1
            assert gateway.metrics.shed == 1

        _run_fleet(
            [[_dead_port()]],
            scenario,
            config=_fleet_config(
                attempt_timeout=0.5, failure_threshold=1, cooldown=30.0
            ),
            freeze_health=True,
        )

    def test_readyz_metrics_and_draining(self):
        async def scenario(gateway, _services):
            # never probed: the gateway refuses to call itself ready
            status, headers, doc = await _gcall(gateway.port, "GET", "/readyz")
            assert status == 503 and doc["shards_ready"] == [0, 0]
            assert headers["retry-after"] == "1"

            await gateway.monitor.probe_all()
            status, _h, doc = await _gcall(gateway.port, "GET", "/readyz")
            assert status == 200 and doc["all_ready"] is True

            status, _h, doc = await _gcall(gateway.port, "GET", "/healthz")
            assert status == 200 and doc["role"] == "gateway"

            _s, _h, metrics = await _gcall(gateway.port, "GET", "/metrics")
            assert set(metrics["breakers"]) == {"s0r0", "s1r0"}
            assert metrics["gateway"]["shards"] == 2
            assert len(metrics["health"]) == 2

            gateway.draining = True
            status, _h, doc = await _gcall(gateway.port, "GET", "/readyz")
            assert status == 503 and doc["draining"] is True
            gateway.draining = False

        _run_fleet(
            [[_service_config()], [_service_config()]],
            scenario,
            freeze_health=True,
        )

    def test_gateway_serves_load_end_to_end(self):
        async def scenario(gateway, _services):
            requests = build_requests(30, seed=3, mix=FAST_MIX, seed_pool=2)
            report = await run_load(
                "127.0.0.1", gateway.port, requests, concurrency=8, timeout=30.0
            )
            assert report.dropped == 0, report.errors
            assert report.ok == 30, dict(report.by_status)
            assert sum(gateway.metrics.routed_by_shard.values()) == 30

        _run_fleet([[_service_config()], [_service_config()]], scenario)


class TestFleetSubprocess:
    """A real replica kill under load through the shipped entry points."""

    def _spawn_replica(self, name, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        proc = ShardProcess(
            name,
            serve_argv(
                name,
                workers=1,
                cache_dir=str(tmp_path / "cache"),
                batch_window=0.05,
            ),
            env=env,
        )
        proc.start(timeout=60.0)
        return proc

    def test_replica_kill_under_load_zero_failures(self, tmp_path):
        procs = [
            self._spawn_replica("s0r0", tmp_path),
            self._spawn_replica("s0r1", tmp_path),
        ]
        try:
            async def go():
                gateway = FleetGateway(
                    _fleet_config(
                        request_timeout=20.0,
                        attempt_timeout=5.0,
                        probe_interval=0.15,
                        fall=1,
                        rise=1,
                        failure_threshold=2,
                        cooldown=0.5,
                        max_cooldown=2.0,
                    ),
                    [[("127.0.0.1", p.port) for p in procs]],
                )
                await gateway.start()
                try:
                    async def killer():
                        while gateway.metrics.latency.count < 5:
                            await asyncio.sleep(0.02)
                        procs[0].kill()

                    kill_task = asyncio.ensure_future(killer())
                    requests = build_requests(30, seed=7, mix=FAST_MIX, seed_pool=2)
                    report = await run_load(
                        "127.0.0.1", gateway.port, requests,
                        concurrency=4, timeout=30.0, max_retries=12, backoff_seed=7,
                    )
                    await kill_task
                    return report
                finally:
                    await gateway.stop()

            report = asyncio.run(go())
            assert not procs[0].alive  # the kill really happened mid-run
            assert report.dropped == 0, report.errors
            assert report.ok == 30, dict(report.by_status)
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(15.0)
