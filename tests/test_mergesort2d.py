"""Tests for the energy-optimal 2D Mergesort (Section V.C, Theorem V.8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import make_workload, tail_exponent
from repro.core.sorting.lower_bounds import displacement_lower_bound, reversal_permutation
from repro.core.sorting.mergesort2d import mergesort_2d, sort_values
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine


class TestMergesortCorrectness:
    @pytest.mark.parametrize("n", (4, 16, 64, 256, 1024))
    def test_uniform(self, n, rng):
        side = int(np.sqrt(n))
        m = SpatialMachine()
        x = rng.standard_normal(n)
        out = sort_values(m, x, Region(0, 0, side, side))
        assert np.allclose(out.payload[:, 0], np.sort(x))

    @pytest.mark.parametrize("kind", ("reversed", "sorted", "few_distinct", "zipf"))
    def test_workloads(self, kind, rng):
        n = 256
        x = make_workload(kind, n, rng)
        m = SpatialMachine()
        out = sort_values(m, x, Region(0, 0, 16, 16))
        assert np.allclose(out.payload[:, 0], np.sort(x))

    def test_all_equal(self):
        m = SpatialMachine()
        out = sort_values(m, np.full(64, 5.0), Region(0, 0, 8, 8))
        assert (out.payload[:, 0] == 5.0).all()

    def test_base_case_variants(self, rng):
        x = rng.random(256)
        region = Region(0, 0, 16, 16)
        for base in (4, 16, 64):
            m = SpatialMachine()
            ta = m.place_rowmajor(as_sort_payload(x), region)
            out = mergesort_2d(m, ta, region, base_case=base)
            assert np.allclose(out.payload[:, 0], np.sort(x)), base

    def test_satellite_data(self, rng):
        n = 64
        x = rng.random(n)
        m = SpatialMachine()
        payload = np.stack([x, np.arange(float(n))], axis=1)
        region = Region(0, 0, 8, 8)
        out = mergesort_2d(m, m.place_rowmajor(payload, region), region, key_cols=1)
        order = out.payload[:, 1].astype(int)
        assert np.allclose(x[order], np.sort(x))

    def test_output_rowmajor_cells(self, rng):
        region = Region(0, 0, 8, 8)
        m = SpatialMachine()
        out = sort_values(m, rng.random(64), region)
        rows, cols = region.rowmajor_coords(64)
        assert (out.rows == rows).all() and (out.cols == cols).all()

    def test_offset_region(self, rng):
        region = Region(30, 40, 8, 8)
        m = SpatialMachine()
        out = sort_values(m, rng.random(64), region)
        assert np.allclose(out.payload[:, 0], np.sort(out.payload[:, 0]))
        assert out.rows.min() == 30 and out.cols.min() == 40

    def test_rectangle_rejected(self, rng):
        m = SpatialMachine()
        ta = m.place_rowmajor(as_sort_payload(rng.random(32)), Region(0, 0, 4, 8))
        with pytest.raises(ValueError):
            mergesort_2d(m, ta, Region(0, 0, 4, 8))

    @given(st.lists(st.integers(-1000, 1000), min_size=64, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_sort_property(self, xs):
        x = np.asarray(xs, dtype=np.float64)
        m = SpatialMachine()
        out = sort_values(m, x, Region(0, 0, 8, 8))
        assert np.allclose(out.payload[:, 0], np.sort(x))


class TestTheoremV8Costs:
    def test_energy_exponent_three_halves(self):
        """Θ(n^{3/2}) energy: tail exponent near 1.5, never above 1.75."""
        rng = np.random.default_rng(0)
        ns, es = [], []
        for side in (8, 16, 32, 64):
            n = side * side
            m = SpatialMachine()
            sort_values(m, rng.random(n), Region(0, 0, side, side))
            ns.append(n)
            es.append(m.stats.energy)
        exp = tail_exponent(np.array(ns), np.array(es), points=3)
        assert 1.2 < exp < 1.8

    def test_depth_polylog(self):
        """O(log³ n): bounded by c·log³ and growing slower than any power."""
        rng = np.random.default_rng(1)
        depths = {}
        for side in (8, 16, 32):
            n = side * side
            m = SpatialMachine()
            out = sort_values(m, rng.random(n), Region(0, 0, side, side))
            depths[n] = out.max_depth()
            assert out.max_depth() <= np.log2(n) ** 3
        # ratio between successive sizes shrinks (polylog, not power)
        r1 = depths[256] / depths[64]
        r2 = depths[1024] / depths[256]
        assert r2 < r1

    def test_distance_ratio_trends_to_sqrt(self):
        """O(sqrt(n)) distance: the 4x-size ratio trends towards 2."""
        rng = np.random.default_rng(2)
        dists = []
        for side in (8, 16, 32, 64):
            m = SpatialMachine()
            out = sort_values(m, rng.random(side * side), Region(0, 0, side, side))
            dists.append(out.max_dist())
        ratios = [dists[i + 1] / dists[i] for i in range(len(dists) - 1)]
        assert ratios[-1] < ratios[0]  # converging
        assert ratios[-1] < 3.2

    def test_energy_within_constant_of_lower_bound(self):
        """Corollary V.2: measured sort energy vs the reversal permutation's
        displacement floor stays within a bounded factor."""
        region = Region(0, 0, 32, 32)
        n = 1024
        lb = displacement_lower_bound(region, reversal_permutation(n))
        m = SpatialMachine()
        sort_values(m, np.arange(n, 0, -1, dtype=float), region)
        assert m.stats.energy >= lb  # sorting the reversal must beat the floor
        assert m.stats.energy <= 5000 * lb  # and stays within a constant


class TestSortAny:
    @pytest.mark.parametrize("n", (1, 3, 17, 50, 100))
    def test_arbitrary_lengths(self, n, rng):
        from repro.core.sorting import sort_any

        x = rng.standard_normal(n)
        got = sort_any(SpatialMachine(), x)
        assert np.allclose(got, np.sort(x))

    def test_empty(self):
        from repro.core.sorting import sort_any

        assert len(sort_any(SpatialMachine(), np.array([]))) == 0

    def test_inf_inputs_survive_padding(self, rng):
        from repro.core.sorting import sort_any

        x = np.concatenate([rng.standard_normal(10), [np.inf, -np.inf]])
        got = sort_any(SpatialMachine(), x)
        assert np.array_equal(got, np.sort(x))
