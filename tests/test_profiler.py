"""The spatial profiler: traffic grids, witnesses, exporters, CLI, runner.

The acceptance bar (ISSUE 4): per-cell energy grids sum *exactly* to the flat
``MachineStats`` counters (faults included), link loads sum to energy on the
fault-free path, and the reported critical-path witness replays to exactly
the machine's ``max_depth`` / ``max_distance``.  The Fig. 1 scan tree's
critical path is pinned as a golden snapshot; regenerate a deliberate change
with

    PYTHONPATH=src python tests/test_profiler.py --regen
"""

import io
import json
import pathlib

import numpy as np
import pytest

from repro.cli import main
from repro.core.scan import scan
from repro.core.selection import rank_select
from repro.core.sorting.mergesort2d import sort_values
from repro.machine import (
    FaultPlan,
    Region,
    SpatialMachine,
    SpatialProfiler,
    Tracer,
    chrome_trace_events,
    grid_to_dense,
    jsonl_sink,
    render_ascii,
    render_svg,
    write_heatmap,
)
from repro.machine.profiler import CellGrid
from repro.runner import point_from_machine
from repro.runner.result import validate_bench_result
from repro.spmv import random_coo, spmv_spatial

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "fig1_scan_critical_path.json"


def _run(algo: str, profile=True, faults=None) -> SpatialMachine:
    rng = np.random.default_rng(7)
    m = SpatialMachine(profile=profile, faults=faults)
    reg = Region(0, 0, 8, 8)
    if algo == "scan":
        scan(m, m.place_zorder(rng.random(64), reg), reg)
    elif algo == "sort":
        sort_values(m, rng.random(64), reg)
    elif algo == "select":
        rank_select(m, m.place_zorder(rng.random(64), reg), reg, k=13, rng=rng)
    elif algo == "spmv":
        A = random_coo(8, 24, rng)
        spmv_spatial(m, A, rng.standard_normal(8))
    else:  # pragma: no cover - test bug
        raise ValueError(algo)
    return m


ALGOS = ("scan", "sort", "select", "spmv")


# ---------------------------------------------------------------------------
# traffic grids: exact accounting against the flat counters
# ---------------------------------------------------------------------------
class TestGrids:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_energy_grids_sum_to_machine_energy(self, algo):
        m = _run(algo)
        p = m.profiler
        assert p.total_energy == m.stats.energy
        assert sum(p.energy_out.values()) == m.stats.energy
        assert sum(p.energy_in.values()) == m.stats.energy

    @pytest.mark.parametrize("algo", ALGOS)
    def test_message_grids_sum_to_machine_messages(self, algo):
        m = _run(algo)  # fault-free: attempts are all 1
        p = m.profiler
        assert sum(p.sent.values()) == m.stats.messages
        assert sum(p.received.values()) == m.stats.messages

    @pytest.mark.parametrize("algo", ALGOS)
    def test_link_loads_sum_to_energy(self, algo):
        m = _run(algo)  # fault-free: every unit of wire is one unit of link load
        p = m.profiler
        assert sum(p.hlinks.values()) + sum(p.vlinks.values()) == m.stats.energy

    def test_energy_grids_exact_under_faults(self):
        plan = FaultPlan(
            rng=np.random.default_rng(11), drop_prob=0.2, corrupt_prob=0.1
        )
        m = _run("scan", faults=plan)
        p = m.profiler
        assert m.recovery.retries > 0, "plan never fired; test is vacuous"
        assert p.total_energy == m.stats.energy
        assert sum(p.energy_out.values()) == m.stats.energy

    def test_energy_grids_exact_under_dead_regions(self):
        plan = FaultPlan(
            rng=np.random.default_rng(5), dead_regions=(Region(2, 2, 2, 2),)
        )
        m = _run("scan", faults=plan)
        assert m.profiler.total_energy == m.stats.energy

    def test_hotspot_stats_shape(self):
        stats = _run("sort").profiler.hotspot_stats("energy")
        assert stats["total"] > 0 and stats["active_cells"] > 0
        assert 0.0 <= stats["gini"] <= 1.0
        assert stats["max"] <= stats["total"]
        assert stats["max_mean_skew"] >= 1.0

    def test_top_cells_sorted_descending(self):
        top = _run("sort").profiler.top_cells(5, by="energy")
        values = [v for _, v in top]
        assert values == sorted(values, reverse=True)
        with pytest.raises(ValueError, match="unknown cell metric"):
            _run("scan").profiler.top_cells(3, by="nope")


class TestCellGrid:
    def test_mapping_view_and_growth(self):
        g = CellGrid()
        assert len(g) == 0 and dict(g) == {}
        g.add(np.array([0, 0, 5]), np.array([0, 0, 7]), np.array([2, 3, 1]))
        assert dict(g) == {(0, 0): 5, (5, 7): 1}
        # growth in the negative direction keeps prior cells intact
        g.add(np.array([-3]), np.array([-2]), np.array([9]))
        assert g[(-3, -2)] == 9 and g[(0, 0)] == 5
        assert g.get((1, 1)) is None
        with pytest.raises(KeyError):
            g[(100, 100)]

    def test_to_dense_trims_to_bbox(self):
        g = CellGrid()
        g.add(np.array([2, 4]), np.array([3, 6]), np.array([1, 2]))
        dense, origin = grid_to_dense(g)
        assert origin == (2, 3)
        assert dense.shape == (3, 4)
        assert dense[0, 0] == 1 and dense[2, 3] == 2
        assert dense.sum() == 3

    def test_scattered_and_tight_paths_agree(self):
        # one batch below and one above the bbox-vs-scatter heuristic cutoff
        rng = np.random.default_rng(0)
        dense_like, sparse_like = CellGrid(), CellGrid()
        rows = rng.integers(0, 100, 500)
        cols = rng.integers(0, 100, 500)
        w = rng.integers(1, 5, 500)
        dense_like.add(rows, cols, w)
        for i in range(len(rows)):  # one-element adds always take the tight path
            sparse_like.add(rows[i : i + 1], cols[i : i + 1], w[i : i + 1])
        assert dict(dense_like) == dict(sparse_like)


# ---------------------------------------------------------------------------
# witnesses: the reported chain replays to exactly the machine's metrics
# ---------------------------------------------------------------------------
class TestWitnesses:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_depth_witness_replays_exactly(self, algo):
        m = _run(algo)
        w = m.profiler.depth_witness()
        assert w.complete
        assert w.target == m.stats.max_depth
        assert w.replayed() == m.stats.max_depth

    @pytest.mark.parametrize("algo", ALGOS)
    def test_distance_witness_replays_exactly(self, algo):
        m = _run(algo)
        w = m.profiler.distance_witness()
        assert w.complete
        assert w.target == m.stats.max_distance
        assert w.replayed() == m.stats.max_distance

    def test_witness_exact_under_faults(self):
        plan = FaultPlan(rng=np.random.default_rng(3), drop_prob=0.25)
        m = _run("scan", faults=plan)
        for w in (m.profiler.depth_witness(), m.profiler.distance_witness()):
            assert w.complete and w.replayed() == w.target
        assert m.profiler.depth_witness().target == m.stats.max_depth

    def test_witness_chain_is_connected(self):
        w = _run("scan").profiler.depth_witness()
        assert w.contiguous
        for a, b in zip(w.hops, w.hops[1:]):
            assert a.dst == b.src  # each hop starts where the last delivered

    def test_witness_metadata_monotone(self):
        w = _run("sort").profiler.depth_witness()
        depths = [h.depth_after for h in w.hops]
        assert depths == sorted(depths)
        assert depths[-1] == w.target

    def test_phase_attribution(self):
        w = _run("scan").profiler.depth_witness()
        assert w.owner_phase() != "" or all(h.phase == "" for h in w.hops)
        assert sum(w.phase_weights().values()) == w.target

    def test_overflow_disables_witnesses_keeps_grids(self):
        p = SpatialProfiler(max_witness_messages=10)
        rng = np.random.default_rng(7)
        m = SpatialMachine(profile=p)
        reg = Region(0, 0, 8, 8)
        scan(m, m.place_zorder(rng.random(64), reg), reg)
        assert p.witness_overflow
        assert p.depth_witness() is None
        assert p.total_energy == m.stats.energy  # grids unaffected by the cap
        summary = p.summary()
        assert summary["witness_overflow"] is True
        assert "witness" not in summary

    def test_witnesses_disabled(self):
        p = SpatialProfiler(witnesses=False)
        m = _run("scan", profile=p)
        assert p.depth_witness() is None
        assert p.frames == []
        assert p.total_energy == m.stats.energy

    def test_render_mentions_target_and_hops(self):
        w = _run("scan").profiler.depth_witness()
        text = w.render()
        assert f"target={w.target}" in text
        assert f"replayed={w.replayed()}" in text


# ---------------------------------------------------------------------------
# golden: the Fig. 1 scan tree's critical path, pinned hop by hop
# ---------------------------------------------------------------------------
def _fig1_snapshot() -> dict:
    m = _run("scan")
    w = m.profiler.depth_witness()
    return {
        "max_depth": m.stats.max_depth,
        "owner_phase": w.owner_phase(),
        "hops": [
            {"src": list(h.src), "dst": list(h.dst), "wire": h.wire, "phase": h.phase}
            for h in w.hops
        ],
    }


def test_fig1_critical_path_matches_golden():
    got = _fig1_snapshot()
    with open(GOLDEN_PATH) as fh:
        want = json.load(fh)
    assert got == want, (
        "the Fig. 1 scan critical path drifted.\nIf the change is deliberate, "
        "regenerate with\n  PYTHONPATH=src python tests/test_profiler.py --regen"
    )


# ---------------------------------------------------------------------------
# exporters: heatmaps and the Chrome trace
# ---------------------------------------------------------------------------
class TestExporters:
    def test_ascii_heatmap(self):
        p = _run("scan").profiler
        art = render_ascii(p.cell_energy(), title="scan energy")
        assert art.startswith("scan energy")
        assert "origin=" in art and "max=" in art
        assert render_ascii({}) == "(empty grid)"

    def test_ascii_downsamples_wide_grids(self):
        cells = {(0, c): 1 for c in range(300)}
        art = render_ascii(cells, max_width=96)
        assert "1 char = 4x4 cells" in art
        assert max(len(line) for line in art.splitlines()) <= 96

    def test_svg_heatmap_well_formed(self):
        p = _run("scan").profiler
        svg = render_svg(p.cell_energy(), title="scan")
        assert svg.startswith("<svg ") and svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") >= len(p.cell_energy())
        assert "scan" in svg

    def test_write_heatmap_picks_format(self, tmp_path):
        cells = {(0, 0): 3, (1, 2): 1}
        assert write_heatmap(cells, tmp_path / "x.svg") == "svg"
        assert (tmp_path / "x.svg").read_text().startswith("<svg ")
        assert write_heatmap(cells, tmp_path / "x.txt") == "ascii"
        buf = io.StringIO()
        assert write_heatmap(cells, buf) == "ascii"
        assert buf.getvalue()

    def test_chrome_trace_well_formed(self):
        p = _run("sort").profiler
        doc = chrome_trace_events(p, label="sort")
        json.dumps(doc)  # must be serializable as-is
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "B", "E", "C", "X"} <= phases
        # B/E spans balance on the phases thread
        assert sum(e["ph"] == "B" for e in events) == sum(
            e["ph"] == "E" for e in events
        )
        # the witness thread replays the depth witness hop count
        assert sum(e["ph"] == "X" for e in events) == len(p.depth_witness().hops)
        ticks = [e["ts"] for e in events if e["ph"] in ("B", "E", "C")]
        assert all(0 <= t <= p.tick for t in ticks)

    def test_summary_json_safe(self):
        for algo in ALGOS:
            s = _run(algo).profiler.summary()
            doc = json.loads(json.dumps(s))
            assert doc["total_energy"] == s["total_energy"]
            assert doc["witness"]["depth"]["replayed"] == doc["witness"]["depth"]["target"]


# ---------------------------------------------------------------------------
# tracer streaming mode
# ---------------------------------------------------------------------------
class TestStreaming:
    def test_sink_without_retention_folds_grids(self):
        p = SpatialProfiler(witnesses=False)
        tracer = Tracer(sink=p.add_batch, retain=False)
        rng = np.random.default_rng(7)
        m = SpatialMachine(trace=tracer)
        reg = Region(0, 0, 8, 8)
        scan(m, m.place_zorder(rng.random(64), reg), reg)
        assert tracer.batches == []  # O(1) memory: nothing retained
        assert p.total_energy == m.stats.energy
        assert sum(p.energy_out.values()) == m.stats.energy

    def test_streamed_grids_match_retained_grids(self):
        streamed = SpatialProfiler(witnesses=False)
        tracer = Tracer(sink=streamed.add_batch, retain=True)
        m = SpatialMachine(trace=tracer)
        rng = np.random.default_rng(7)
        reg = Region(0, 0, 8, 8)
        scan(m, m.place_zorder(rng.random(64), reg), reg)
        replayed = SpatialProfiler(witnesses=False)
        for b in tracer.batches:
            replayed.add_batch(b)
        assert dict(streamed.energy_out) == dict(replayed.energy_out)
        assert dict(streamed.hlinks) == dict(replayed.hlinks)

    def test_jsonl_sink_roundtrips(self, tmp_path):
        buf = io.StringIO()
        tracer = Tracer(sink=jsonl_sink(buf), retain=True)
        m = SpatialMachine(trace=tracer)
        rng = np.random.default_rng(7)
        reg = Region(0, 0, 4, 4)
        scan(m, m.place_zorder(rng.random(16), reg), reg)
        loaded = Tracer.from_jsonl(io.StringIO(buf.getvalue()))
        assert loaded.total_messages() == tracer.total_messages()
        assert loaded.total_energy() == tracer.total_energy()


# ---------------------------------------------------------------------------
# machine wiring, CLI, and runner schema
# ---------------------------------------------------------------------------
class TestIntegration:
    def test_profiling_is_opt_in(self):
        assert SpatialMachine().profiler is None
        assert SpatialMachine(profile=False).profiler is None
        assert isinstance(SpatialMachine(profile=True).profiler, SpatialProfiler)

    def test_env_flag_enables_profiler(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert SpatialMachine().profiler is not None
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert SpatialMachine().profiler is None

    def test_profiling_never_changes_costs(self):
        plain, profiled = _run("sort", profile=False), _run("sort", profile=True)
        assert plain.stats.energy == profiled.stats.energy
        assert plain.stats.max_depth == profiled.stats.max_depth
        assert plain.stats.max_distance == profiled.stats.max_distance

    def test_cli_profile_verb(self, tmp_path, capsys):
        svg = tmp_path / "heat.svg"
        trace = tmp_path / "trace.json"
        rc = main([
            "profile", "scan", "-n", "64",
            "--heatmap", str(svg), "--trace", str(trace),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "depth witness" in out and "distance witness" in out
        assert svg.read_text().startswith("<svg ")
        doc = json.loads(trace.read_text())
        assert {"M", "B", "E", "C", "X"} <= {e["ph"] for e in doc["traceEvents"]}

    def test_cli_report_json(self, capsys):
        assert main(["report", "--algo", "scan", "-n", "64", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["metrics"]["energy"] > 0
        assert doc["cost_tree"]["name"] == "total"

    def test_point_from_machine_carries_profile(self):
        profiled = point_from_machine(_run("scan", profile=True))
        assert profiled["profile"]["total_energy"] == profiled["metrics"]["energy"]
        plain = point_from_machine(_run("scan", profile=False))
        assert "profile" not in plain

    def test_bench_schema_accepts_optional_profile(self):
        def doc_with(point_extra):
            point = {
                "params": {"n": 4}, "seed": 0, "repeat": 0, "status": "ok",
                "metrics": {m: 1 for m in (
                    "energy", "messages", "rounds", "max_depth", "max_distance")},
                "phases": [], "extra": {},
            }
            point.update(point_extra)
            return {
                "schema_version": 1, "suite": "s", "artifact": "", "code_version": "v",
                "generated_at": "t", "spec": {}, "config": {}, "points": [point],
                "summary": {"total": 1, "ok": 1, "failed": 0, "cached": 0,
                            "wall_time_s": 0.0},
            }

        assert validate_bench_result(doc_with({})) == []
        assert validate_bench_result(doc_with({"profile": {"total_energy": 1}})) == []
        errs = validate_bench_result(doc_with({"profile": "not-a-dict"}))
        assert any("profile" in e for e in errs)


def _regen() -> None:  # pragma: no cover - maintenance entry point
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(_fig1_snapshot(), fh, indent=2)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        sys.exit("usage: python tests/test_profiler.py --regen")
