"""Unit tests for the cost-metering simulator (repro.machine.machine).

These pin down the model semantics everything else relies on:
energy = sum of Manhattan distances, depth = longest message chain,
distance = longest chain wire length, local work free, self-sends free.
"""

import numpy as np
import pytest

from repro.machine import Region, TrackedArray, combine
from repro.machine.machine import concat_tracked


class TestPlacement:
    def test_place_free(self, machine):
        ta = machine.place(np.arange(4.0), [0, 0, 1, 1], [0, 1, 0, 1])
        assert machine.stats.energy == 0
        assert machine.stats.messages == 0
        assert ta.max_depth() == 0 and ta.max_dist() == 0

    def test_place_rowmajor(self, machine):
        ta = machine.place_rowmajor(np.arange(6.0), Region(0, 0, 2, 4))
        assert ta.rows.tolist() == [0, 0, 0, 0, 1, 1]
        assert ta.cols.tolist() == [0, 1, 2, 3, 0, 1]

    def test_place_zorder(self, machine):
        ta = machine.place_zorder(np.arange(4.0), Region(0, 0, 2, 2))
        assert list(zip(ta.rows.tolist(), ta.cols.tolist())) == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_length_mismatch_rejected(self, machine):
        with pytest.raises(ValueError):
            TrackedArray(
                machine,
                np.arange(3.0),
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=np.int64),
                np.zeros(3, dtype=np.int64),
                np.zeros(3, dtype=np.int64),
            )


class TestSend:
    def test_energy_is_manhattan_sum(self, machine):
        ta = machine.place(np.arange(3.0), [0, 0, 0], [0, 1, 2])
        machine.send(ta, np.array([2, 2, 2]), np.array([0, 1, 2]))
        assert machine.stats.energy == 6
        assert machine.stats.messages == 3

    def test_self_send_free(self, machine):
        ta = machine.place(np.array([1.0]), [3], [3])
        out = machine.send(ta, np.array([3]), np.array([3]))
        assert machine.stats.energy == 0
        assert machine.stats.messages == 0
        assert out.depth[0] == 0 and out.dist[0] == 0

    def test_depth_increments_per_hop(self, machine):
        ta = machine.place(np.array([1.0]), [0], [0])
        a = machine.send(ta, np.array([0]), np.array([5]))
        b = machine.send(a, np.array([4]), np.array([5]))
        assert b.depth[0] == 2
        assert b.dist[0] == 9
        assert machine.stats.energy == 9

    def test_mixed_moved_and_static(self, machine):
        ta = machine.place(np.arange(2.0), [0, 0], [0, 1])
        out = machine.send(ta, np.array([0, 3]), np.array([0, 1]))
        assert out.depth.tolist() == [0, 1]
        assert out.dist.tolist() == [0, 3]
        assert machine.stats.messages == 1

    def test_stats_observe_running_max(self, machine):
        ta = machine.place(np.array([1.0]), [0], [0])
        machine.send(ta, np.array([10]), np.array([10]))
        assert machine.stats.max_depth == 1
        assert machine.stats.max_distance == 20

    def test_destination_length_checked(self, machine):
        ta = machine.place(np.arange(2.0), [0, 0], [0, 1])
        with pytest.raises(ValueError):
            machine.send(ta, np.array([0]), np.array([0]))


class TestCombine:
    def test_local_combine_free(self, machine):
        a = machine.place(np.array([1.0, 2.0]), [0, 1], [0, 0])
        b = machine.place(np.array([3.0, 4.0]), [0, 1], [0, 0])
        out = combine([a, b], np.add)
        assert out.payload.tolist() == [4.0, 6.0]
        assert machine.stats.energy == 0

    def test_combine_metadata_max(self, machine):
        a = machine.place(np.array([1.0]), [0], [0])
        moved = machine.send(a, np.array([0]), np.array([7]))  # depth 1, dist 7
        b = machine.place(np.array([2.0]), [0], [7])
        out = moved.combined_with(b, payload=moved.payload + b.payload)
        assert out.depth[0] == 1 and out.dist[0] == 7

    def test_combine_requires_equal_length(self, machine):
        a = machine.place(np.arange(2.0), [0, 0], [0, 1])
        b = machine.place(np.arange(3.0), [0, 0, 0], [0, 1, 2])
        with pytest.raises(ValueError):
            a.combined_with(b, payload=np.zeros(2))


class TestDependencies:
    def test_depending_on_elementwise_max(self, machine):
        data = machine.place(np.arange(2.0), [0, 0], [0, 1])
        ctrl = machine.place(np.zeros(2), [0, 0], [0, 1])
        moved_ctrl = machine.send(ctrl, np.array([5, 5]), np.array([0, 1]))
        back = machine.send(moved_ctrl, np.array([0, 0]), np.array([0, 1]))
        out = data.depending_on(back)
        assert (out.depth == 2).all()
        assert (out.dist == 10).all()
        assert (out.payload == data.payload).all()

    def test_depending_on_scalar_control(self, machine):
        data = machine.place(np.arange(3.0), [0, 0, 0], [0, 1, 2])
        ctrl = machine.place(np.array([0.0]), [0], [0])
        hop = machine.send(ctrl, np.array([9]), np.array([0]))
        out = data.depending_on_meta(int(hop.depth[0]), int(hop.dist[0]))
        assert (out.depth == 1).all() and (out.dist == 9).all()


class TestRelay:
    def test_relay_chain_costs(self, machine):
        d, s = machine.relay((0, 0), np.array([0, 0]), np.array([4, 6]))
        # hops: (0,0)->(0,4) = 4, (0,4)->(0,6) = 2
        assert machine.stats.energy == 6
        assert d == 2 and s == 6

    def test_relay_accumulates_from_initial(self, machine):
        d, s = machine.relay((0, 0), np.array([1]), np.array([1]), depth0=5, dist0=100)
        assert d == 6 and s == 102

    def test_relay_skips_zero_hops(self, machine):
        d, s = machine.relay((0, 0), np.array([0, 0]), np.array([0, 3]))
        assert d == 1 and s == 3


class TestTrackedArrayOps:
    def test_getitem_mask(self, machine):
        ta = machine.place(np.arange(4.0), [0, 0, 1, 1], [0, 1, 0, 1])
        sub = ta[np.array([True, False, True, False])]
        assert sub.payload.tolist() == [0.0, 2.0]

    def test_getitem_slice(self, machine):
        ta = machine.place(np.arange(4.0), [0, 0, 1, 1], [0, 1, 0, 1])
        assert len(ta[1:3]) == 2

    def test_concat(self, machine):
        a = machine.place(np.arange(2.0), [0, 0], [0, 1])
        b = machine.place(np.arange(3.0), [1, 1, 1], [0, 1, 2])
        c = concat_tracked([a, b])
        assert len(c) == 5
        assert c.payload.tolist() == [0, 1, 0, 1, 2]

    def test_concat_skips_empty(self, machine):
        a = machine.place(np.arange(2.0), [0, 0], [0, 1])
        c = concat_tracked([a[0:0], a])
        assert len(c) == 2

    def test_concat_all_empty_rejected(self, machine):
        a = machine.place(np.arange(2.0), [0, 0], [0, 1])
        with pytest.raises(ValueError):
            concat_tracked([a[0:0]])

    def test_with_payload_checks_length(self, machine):
        ta = machine.place(np.arange(2.0), [0, 0], [0, 1])
        with pytest.raises(ValueError):
            ta.with_payload(np.zeros(3))

    def test_copy_is_independent(self, machine):
        ta = machine.place(np.arange(2.0), [0, 0], [0, 1])
        cp = ta.copy()
        cp.payload[0] = 99
        assert ta.payload[0] == 0


class TestSnapshots:
    def test_report_delta(self, machine):
        before = machine.snapshot()
        ta = machine.place(np.array([1.0]), [0], [0])
        machine.send(ta, np.array([0]), np.array([10]))
        rep = machine.report(before)
        assert rep.energy == 10
        assert rep.messages == 1
        assert rep.as_dict()["depth"] == 1


class TestMeasureContext:
    def test_captures_delta(self, machine):
        ta = machine.place(np.array([1.0]), [0], [0])
        machine.send(ta, np.array([0]), np.array([5]))  # outside the block
        with machine.measure() as cost:
            ta2 = machine.place(np.array([2.0]), [0], [0])
            machine.send(ta2, np.array([3]), np.array([0]))
        assert cost.energy == 3
        assert cost.messages == 1

    def test_empty_block(self, machine):
        with machine.measure() as cost:
            pass
        assert cost.energy == 0 and cost.messages == 0

    def test_nested_blocks(self, machine):
        ta = machine.place(np.array([1.0]), [0], [0])
        with machine.measure() as outer:
            machine.send(ta, np.array([0]), np.array([2]))
            with machine.measure() as inner:
                machine.send(ta, np.array([0]), np.array([1]))
        assert inner.energy == 1
        assert outer.energy == 3
