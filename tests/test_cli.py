"""Tests for the command-line interface (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_bench_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for verb in ("list", "run", "compare"):
            assert verb in out

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_bench_run_unknown_suite_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "run", "--suite", "no_such_suite"])

    def test_defaults(self):
        args = build_parser().parse_args(["scan"])
        assert args.n == 4096 and args.workload == "uniform"

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--workload", "bogus"])


class TestCommands:
    def test_scan(self, capsys):
        assert main(["scan", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "parallel scan" in out and "energy=" in out

    def test_sort_workloads(self, capsys):
        assert main(["sort", "--n", "64", "--workload", "reversed"]) == 0
        assert "2D mergesort" in capsys.readouterr().out

    def test_select(self, capsys):
        assert main(["select", "--n", "256", "--k", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rank select (k=10)" in out and "iterations=" in out

    def test_select_default_median(self, capsys):
        assert main(["select", "--n", "64"]) == 0
        assert "k=32" in capsys.readouterr().out

    def test_spmv(self, capsys):
        assert main(["spmv", "--n", "16", "--density", "3"]) == 0
        assert "SpMV" in capsys.readouterr().out

    def test_table1_quick(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table I measured" in out
        assert "4096" not in out.split("sort E")[0]  # quick mode: small sizes

    def test_non_pow4_rejected(self):
        with pytest.raises(SystemExit):
            main(["scan", "--n", "100"])


class TestBenchCommands:
    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "table1_sort" in out and "registered suite(s)" in out

    def test_bench_run_and_compare_roundtrip(self, tmp_path, capsys):
        run_args = [
            "bench", "run", "--suite", "table1_scan", "--quick", "--jobs", "2",
            "--no-cache", "--quiet", "--out-dir", str(tmp_path / "out"),
        ]
        assert main(run_args) == 0
        out_file = tmp_path / "out" / "BENCH_table1_scan.json"
        assert out_file.exists()

        from repro.runner import load_bench_result, validate_bench_result

        doc = load_bench_result(out_file)
        assert validate_bench_result(doc) == []
        assert doc["summary"]["failed"] == 0
        capsys.readouterr()

        # identical vs itself: the gate passes
        assert main(["bench", "compare", "--baseline", str(out_file),
                     "--current", str(out_file)]) == 0
        assert "PASS" in capsys.readouterr().out


class TestErrorPaths:
    """Bad invocations exit non-zero with a message, never a traceback."""

    def test_unknown_verb(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["frobnicate"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_profile_unknown_algo(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["profile", "bogus"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_profile_malformed_metric(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["profile", "scan", "--metric", "bogus"])
        assert exc.value.code == 2
        assert "--metric" in capsys.readouterr().err

    def test_bench_compare_unknown_metric(self):
        with pytest.raises(SystemExit, match="unknown metric"):
            main(["bench", "compare", "--baseline", "benchmarks/baselines/quick",
                  "--current", "benchmarks/baselines/quick", "--metric", "bogus"])

    def test_bench_compare_missing_baseline(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "compare", "--baseline", str(tmp_path / "nowhere"),
                  "--current", str(tmp_path / "nowhere")])
        assert exc.value.code not in (0, None)

    def test_report_unknown_algo(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["report", "--algo", "bogus"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_serve_bad_port_type(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--port", "not-a-port"])
        assert exc.value.code == 2
        assert "--port" in capsys.readouterr().err


class TestChaosCommand:
    def test_chaos_sweep_passes(self, capsys):
        assert main(["chaos", "--algos", "scan,select", "--profiles",
                     "drops,dead", "--side", "4"]) == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        assert "MISMATCH" not in out

    def test_chaos_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "chaos.json"
        assert main(["chaos", "--algos", "scan", "--profiles", "mixed",
                     "--side", "4", "--out", str(out_file)]) == 0
        import json

        reports = json.loads(out_file.read_text())
        assert len(reports) == 1
        assert reports[0]["exact_match"] is True
        assert "recovery" in reports[0]
        capsys.readouterr()

    def test_chaos_rejects_unknown_algo(self):
        with pytest.raises(SystemExit, match="unknown chaos algo"):
            main(["chaos", "--algos", "nope", "--profiles", "drops"])

    def test_chaos_rejects_unknown_profile(self):
        with pytest.raises(SystemExit, match="unknown"):
            main(["chaos", "--algos", "scan", "--profiles", "gremlins"])

    def test_chaos_bad_algo_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "--algos", "nope", "--profiles", "drops"])
        assert exc.value.code != 0

    def test_chaos_multiple_plans(self, capsys):
        assert main(["chaos", "--algos", "mergesort", "--profiles", "mixed",
                     "--side", "4", "--plans", "3"]) == 0
        # three seeded plans, all bit-identical
        assert capsys.readouterr().out.count(" ok ") >= 3


class TestGraphCommand:
    def test_cc_per_round(self, capsys):
        assert main(["graph", "cc", "--generator", "grid", "-n", "16",
                     "--per-round"]) == 0
        out = capsys.readouterr().out
        assert "connected components" in out and "per-iteration attribution" in out
        assert "components=1" in out

    def test_bfs(self, capsys):
        assert main(["graph", "bfs", "--generator", "powerlaw", "-n", "16",
                     "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "BFS" in out and "reached=" in out and "rounds=" in out

    def test_pagerank(self, capsys):
        assert main(["graph", "pagerank", "-n", "16", "--max-rounds", "2",
                     "--tol", "0"]) == 0
        out = capsys.readouterr().out
        assert "PageRank" in out and "rounds=2" in out and "converged=False" in out

    def test_degrees(self, capsys):
        assert main(["graph", "degrees", "-n", "16"]) == 0
        assert "max_degree=" in capsys.readouterr().out

    def test_profile_artifacts(self, tmp_path, capsys):
        heatmap = tmp_path / "graph.svg"
        trace = tmp_path / "graph_trace.json"
        assert main(["graph", "cc", "-n", "16", "--heatmap", str(heatmap),
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "wrote svg heatmap" in out and "trace event(s)" in out
        assert heatmap.stat().st_size > 0
        import json

        events = json.loads(trace.read_text())
        assert events["traceEvents"]

    def test_grid_requires_square(self):
        with pytest.raises(SystemExit, match="perfect-square"):
            main(["graph", "cc", "--generator", "grid", "-n", "15"])

    def test_unknown_generator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph", "cc", "--generator", "bogus"])

    def test_unknown_algo_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph", "kcore"])
