"""Tests for the direct low-depth SpMV (Section VIII, Theorem VIII.2)."""

import numpy as np
import pytest

from repro.analysis import tail_exponent
from repro.machine import SpatialMachine
from repro.spmv import (
    banded_coo,
    graph_adjacency_coo,
    permutation_coo,
    random_coo,
    spmv_pram_simulated,
    spmv_spatial,
)


class TestSpMVCorrectness:
    @pytest.mark.parametrize("n,factor", [(8, 2), (16, 3), (32, 4), (64, 2)])
    def test_random_matrices(self, n, factor, rng):
        A = random_coo(n, factor * n, rng)
        x = rng.standard_normal(n)
        m = SpatialMachine()
        y = spmv_spatial(m, A, x)
        assert np.allclose(y.payload, A.multiply_dense(x))

    def test_matches_scipy(self, rng):
        A = random_coo(32, 128, rng)
        x = rng.standard_normal(32)
        m = SpatialMachine()
        y = spmv_spatial(m, A, x)
        assert np.allclose(y.payload, A.to_scipy() @ x)

    def test_empty_rows_are_zero(self, rng):
        from repro.spmv.coo import COOMatrix

        A = COOMatrix(np.array([1, 1]), np.array([0, 2]), np.array([1.0, 2.0]), 4)
        x = rng.standard_normal(4)
        m = SpatialMachine()
        y = spmv_spatial(m, A, x)
        assert y.payload[0] == 0 and y.payload[2] == 0 and y.payload[3] == 0
        assert y.payload[1] == pytest.approx(x[0] + 2 * x[2])

    def test_single_entry(self, rng):
        from repro.spmv.coo import COOMatrix

        A = COOMatrix(np.array([2]), np.array([3]), np.array([5.0]), 4)
        x = rng.standard_normal(4)
        m = SpatialMachine()
        y = spmv_spatial(m, A, x)
        assert y.payload[2] == pytest.approx(5.0 * x[3])

    def test_dense_column(self, rng):
        """All entries share one column: one leader, maximal segment."""
        from repro.spmv.coo import COOMatrix

        n = 8
        A = COOMatrix(np.arange(n), np.zeros(n, dtype=int), rng.standard_normal(n), n)
        x = rng.standard_normal(n)
        m = SpatialMachine()
        y = spmv_spatial(m, A, x)
        assert np.allclose(y.payload, A.vals * x[0])

    def test_dense_row(self, rng):
        from repro.spmv.coo import COOMatrix

        n = 8
        A = COOMatrix(np.zeros(n, dtype=int), np.arange(n), rng.standard_normal(n), n)
        x = rng.standard_normal(n)
        m = SpatialMachine()
        y = spmv_spatial(m, A, x)
        assert y.payload[0] == pytest.approx((A.vals * x).sum())

    def test_permutation_matrix(self, rng):
        perm = rng.permutation(16)
        P = permutation_coo(perm)
        x = rng.standard_normal(16)
        m = SpatialMachine()
        y = spmv_spatial(m, P, x)
        assert np.allclose(y.payload, x[perm])

    def test_banded_and_graph(self, rng):
        for A in (banded_coo(16, 2, rng), graph_adjacency_coo(16, rng)):
            x = rng.standard_normal(16)
            m = SpatialMachine()
            y = spmv_spatial(m, A, x)
            assert np.allclose(y.payload, A.multiply_dense(x))

    def test_random_input_placement(self, rng):
        A = random_coo(16, 64, rng)
        x = rng.standard_normal(16)
        m = SpatialMachine()
        y = spmv_spatial(m, A, x, rng=rng)  # shuffled entry placement
        assert np.allclose(y.payload, A.multiply_dense(x))

    def test_no_entries_rejected(self, rng):
        from repro.spmv.coo import COOMatrix

        A = COOMatrix(np.array([], dtype=int), np.array([], dtype=int), np.array([]), 4)
        m = SpatialMachine()
        with pytest.raises(ValueError):
            spmv_spatial(m, A, rng.standard_normal(4))


class TestTheoremVIII2Costs:
    def test_energy_exponent(self):
        """O(m^{3/2}) energy in the number of non-zeros."""
        rng = np.random.default_rng(0)
        ms, es = [], []
        for n in (16, 64, 256):
            A = random_coo(n, 4 * n, rng)
            x = rng.standard_normal(n)
            mach = SpatialMachine()
            spmv_spatial(mach, A, x)
            ms.append(A.nnz)
            es.append(mach.stats.energy)
        exp = tail_exponent(np.array(ms), np.array(es), points=3)
        assert 1.2 < exp < 1.9

    def test_depth_polylog(self):
        rng = np.random.default_rng(1)
        for n in (64, 256):
            A = random_coo(n, 4 * n, rng)
            mach = SpatialMachine()
            spmv_spatial(mach, A, rng.standard_normal(n))
            assert mach.stats.max_depth <= 2 * np.log2(A.nnz) ** 3


class TestPRAMBaseline:
    def test_matches_direct(self, rng):
        A = random_coo(12, 36, rng)
        x = rng.standard_normal(12)
        m1 = SpatialMachine()
        y_direct = spmv_spatial(m1, A, x)
        m2 = SpatialMachine()
        y_pram = spmv_pram_simulated(m2, A, x)
        assert np.allclose(y_direct.payload, y_pram)

    def test_direct_wins_depth(self, rng):
        """Section VIII: the direct algorithm improves depth over the PRAM
        simulation route."""
        A = random_coo(12, 48, rng)
        x = rng.standard_normal(12)
        m_direct = SpatialMachine()
        spmv_spatial(m_direct, A, x)
        m_pram = SpatialMachine()
        spmv_pram_simulated(m_pram, A, x)
        assert m_direct.stats.max_depth < m_pram.stats.max_depth
