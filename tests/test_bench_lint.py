"""Seed-determinism audit (grep-based lint).

Reproducibility contract: all randomness flows through an explicit
``numpy.random.Generator`` handed in by the harness (the ``rng`` fixture, a
suite point's seed, or a CLI ``--seed``).  Module-level / legacy global-state
calls (``np.random.seed``, ``np.random.rand`` ...) would make sweep points
depend on execution order, breaking the result cache and the compare gate.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# np.random.<attr> / numpy.random.<attr> uses that do NOT touch global state
ALLOWED = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}

PATTERN = re.compile(r"\b(?:np|numpy)\.random\.(\w+)")


def _violations(paths):
    bad = []
    for path in paths:
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            stripped = line.split("#", 1)[0]
            for m in PATTERN.finditer(stripped):
                if m.group(1) not in ALLOWED:
                    bad.append(f"{path.relative_to(REPO)}:{lineno}: {line.strip()}")
    return bad


class TestSeedDeterminism:
    def test_no_global_numpy_random_in_benchmarks(self):
        files = sorted((REPO / "benchmarks").glob("*.py"))
        assert files, "benchmarks directory went missing"
        assert _violations(files) == []

    def test_no_global_numpy_random_in_src(self):
        files = sorted((REPO / "src").rglob("*.py"))
        assert files
        assert _violations(files) == []

    def test_every_bench_file_registers_a_suite(self):
        # each bench_*.py must participate in the runner registry
        for path in sorted((REPO / "benchmarks").glob("bench_*.py")):
            assert "register_suite(" in path.read_text(), (
                f"{path.name} is not registered with repro.runner"
            )

    def test_every_suite_declares_seeds(self):
        from repro.runner import load_suites

        for name, suite in load_suites().items():
            assert suite.grid.seeds, f"suite {name} has no seed axis"
            for pt in suite.grid.points(name):
                assert isinstance(pt.seed, int)

    def test_rng_fixture_honors_bench_seed_option(self):
        # the pytest-side harness takes --bench-seed (see benchmarks/conftest.py)
        text = (REPO / "benchmarks" / "conftest.py").read_text()
        assert "--bench-seed" in text
