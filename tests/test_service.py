"""Tests for the serving layer (`repro serve` and repro.service.*).

Three tiers:

* pure unit tests for the protocol, batcher, cache, and metrics pieces;
* in-process integration tests driving a real asyncio server over real
  sockets (inline executor — no forking under the test runner);
* one subprocess test exercising the shipped entry points end to end:
  ``repro serve`` with the worker pool, the loadgen module, ``/metrics``
  scraping, and SIGTERM graceful drain.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runner.cache import ResultCache
from repro.runner.cachekey import PROFILE_SALT, point_key
from repro.runner.spec import PointSpec
from repro.service import (
    Batcher,
    RequestError,
    ServiceCache,
    ServiceConfig,
    ServiceMetrics,
    ServiceRequest,
    SpatialService,
)
from repro.service.httpio import read_http_request, write_json_response
from repro.service.loadgen import _http, build_requests, fetch_metrics, run_load

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

#: small-n request mix: every key executes in well under a second
FAST_MIX = (
    ("scan", (64, 256)),
    ("sort", (64, 256)),
    ("select", (64, 256)),
    ("spmv", (16, 64)),
)


class TestProtocol:
    def test_roundtrip(self):
        req = ServiceRequest.from_payload({"algo": "scan", "n": 4096, "seed": 7})
        assert req == ServiceRequest("scan", 4096, 7, False)
        assert req.suite_name == "table1_scan"
        assert req.params() == {"n": 4096}
        assert req.describe()["suite"] == "table1_scan"

    def test_sort_sweeps_side_not_n(self):
        req = ServiceRequest.from_payload({"algo": "sort", "n": 1024})
        assert req.params() == {"side": 32}
        assert req.point() == PointSpec(suite="table1_sort", params={"side": 32}, seed=0)

    def test_rejects_non_object(self):
        with pytest.raises(RequestError):
            ServiceRequest.from_payload([1, 2, 3])

    def test_rejects_unknown_algo(self):
        with pytest.raises(RequestError) as exc:
            ServiceRequest.from_payload({"algo": "fft", "n": 64})
        assert exc.value.field == "algo"

    def test_rejects_unknown_field(self):
        with pytest.raises(RequestError, match="unknown field"):
            ServiceRequest.from_payload({"algo": "scan", "n": 64, "shards": 2})

    def test_rejects_missing_n(self):
        with pytest.raises(RequestError) as exc:
            ServiceRequest.from_payload({"algo": "scan"})
        assert exc.value.field == "n"

    def test_rejects_out_of_range_n(self):
        with pytest.raises(RequestError, match="out of range"):
            ServiceRequest.from_payload({"algo": "sort", "n": 16384})

    def test_rejects_non_power_of_four(self):
        with pytest.raises(RequestError, match="power of 4"):
            ServiceRequest.from_payload({"algo": "scan", "n": 100})

    def test_spmv_any_size_in_range(self):
        assert ServiceRequest.from_payload({"algo": "spmv", "n": 100}).n == 100

    def test_rejects_bool_masquerading_as_int(self):
        with pytest.raises(RequestError):
            ServiceRequest.from_payload({"algo": "scan", "n": True})

    def test_rejects_non_bool_profile(self):
        with pytest.raises(RequestError, match="boolean"):
            ServiceRequest.from_payload({"algo": "scan", "n": 64, "profile": 1})

    def test_cache_key_matches_runner_identity(self):
        req = ServiceRequest("scan", 256, seed=1)
        expected = point_key(
            PointSpec(suite="table1_scan", params={"n": 256}, seed=1), "v0"
        )
        assert req.cache_key("v0") == expected

    def test_profile_salts_cache_key(self):
        plain = ServiceRequest("scan", 256, 1, False).cache_key("v0")
        prof = ServiceRequest("scan", 256, 1, True).cache_key("v0")
        assert plain != prof
        assert prof == point_key(
            PointSpec(suite="table1_scan", params={"n": 256}, seed=1),
            "v0" + PROFILE_SALT,
        )


class TestBatcher:
    def test_identical_keys_coalesce_to_one_execution(self):
        async def go():
            batcher = Batcher(window=0.05)
            calls = 0

            async def execute():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.01)
                return {"v": 42}

            outs = await asyncio.gather(*(batcher.submit("k", execute) for _ in range(5)))
            return calls, outs

        calls, outs = asyncio.run(go())
        assert calls == 1
        assert [o.leader for o in outs].count(True) == 1
        assert all(o.payload == {"v": 42} for o in outs)
        assert all(o.batched for o in outs)

    def test_distinct_keys_do_not_coalesce(self):
        async def go():
            batcher = Batcher(window=0.01)
            calls = 0

            async def execute():
                nonlocal calls
                calls += 1
                return {}

            outs = await asyncio.gather(
                batcher.submit("a", execute), batcher.submit("b", execute)
            )
            return calls, outs

        calls, outs = asyncio.run(go())
        assert calls == 2
        assert all(o.leader and not o.batched for o in outs)

    def test_leader_failure_propagates_to_waiters(self):
        async def go():
            batcher = Batcher(window=0.05)

            async def execute():
                await asyncio.sleep(0.01)
                raise ValueError("boom")

            tasks = [
                asyncio.ensure_future(batcher.submit("k", execute)) for _ in range(3)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
            return results, batcher.depth()

        results, depth = asyncio.run(go())
        assert all(isinstance(r, ValueError) for r in results)
        assert depth == 0  # failed batch is closed, not wedged

    def test_cancelled_waiter_does_not_kill_the_batch(self):
        async def go():
            batcher = Batcher(window=0.05)
            calls = 0

            async def execute():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.05)
                return {"v": 1}

            leader = asyncio.ensure_future(batcher.submit("k", execute))
            await asyncio.sleep(0.01)  # leader is inside its window
            waiter = asyncio.ensure_future(batcher.submit("k", execute))
            await asyncio.sleep(0.01)
            waiter.cancel()
            out = await leader
            return calls, out

        calls, out = asyncio.run(go())
        assert calls == 1
        assert out.payload == {"v": 1}


class TestServiceCache:
    def _request(self):
        return ServiceRequest("scan", 64, 0, False)

    def test_memory_roundtrip_and_lru_eviction(self):
        cache = ServiceCache(maxsize=2, disk=None)
        req = self._request()
        for key in ("a", "b", "c"):
            cache.put(key, req, {"metrics": {"energy": 1}, "phases": [], "extra": {}}, 0.1)
        assert cache.get("a") == (None, None)  # evicted
        payload, tier = cache.get("c")
        assert tier == "memory" and payload["metrics"]["energy"] == 1

    def test_disk_tier_shared_with_runner_cache(self, tmp_path):
        disk = ResultCache(tmp_path / "cache")
        req = self._request()
        payload = {"metrics": {"energy": 7}, "phases": [], "extra": {"note": 1}}
        ServiceCache(maxsize=4, disk=disk).put("key1", req, payload, 0.2)

        # a fresh instance (empty LRU) falls through to disk, then promotes
        fresh = ServiceCache(maxsize=4, disk=disk)
        got, tier = fresh.get("key1")
        assert tier == "disk" and got["metrics"]["energy"] == 7
        assert fresh.get("key1")[1] == "memory"

        # and the stored artifact is a schema-valid runner PointResult
        stored = disk.get("key1")
        assert stored.status == "ok" and stored.params == {"n": 64}


class TestServiceMetrics:
    def test_lifecycle_counters(self):
        m = ServiceMetrics()
        m.request_received()
        m.request_admitted("scan")
        assert (m.inflight, m.peak_inflight) == (1, 1)
        m.request_finished(200, 0.005)
        assert m.inflight == 0
        m.response_only(404)
        snap = m.snapshot(queue_depth=3)
        assert snap["requests"]["total"] == 1
        assert snap["requests"]["queue_depth"] == 3
        assert snap["responses"]["by_status"] == {"200": 1, "404": 1}
        assert snap["latency"]["count"] == 1

    def test_cache_hit_rate(self):
        m = ServiceMetrics()
        m.cache_hit("memory")
        m.cache_hit("disk")
        m.cache_misses += 2
        assert m.snapshot()["cache"]["hit_rate"] == 0.5

    def test_histogram_quantiles(self):
        from repro.service import LatencyHistogram

        h = LatencyHistogram()
        for ms in (1, 1, 1, 1, 1, 1, 1, 1, 1, 900):
            h.observe(ms / 1000.0)
        d = h.as_dict()
        assert d["count"] == 10
        # nine observations fill the (0.5, 1] bucket: p50 interpolates to
        # 0.5 + 0.5 * (5/9), not the 1ms upper bound
        assert d["p50_ms"] == 0.778
        # the straggler interpolates inside its (500, 1000] bucket
        assert d["p99_ms"] == 950.0
        assert d["max_ms"] == 900


class TestLoadgen:
    def test_request_mix_is_deterministic(self):
        assert build_requests(50, 7) == build_requests(50, 7)
        assert build_requests(50, 7) != build_requests(50, 8)

    def test_generated_requests_all_validate(self):
        for payload in build_requests(200, 3):
            ServiceRequest.from_payload(payload)


async def _start_stub(respond):
    """A tiny HTTP stub: ``respond(request_number) -> (status, doc, headers)``."""
    counter = {"n": 0}

    async def handler(reader, writer):
        try:
            while True:
                parsed = await read_http_request(reader)
                if parsed is None:
                    break
                counter["n"] += 1
                status, doc, extra = respond(counter["n"])
                await write_json_response(writer, status, doc, extra, True)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1], counter


class TestLoadgenBackoff:
    """429/503 + Retry-After answers are resent, not counted as failures."""

    def test_retry_after_is_honored_then_succeeds(self):
        async def go():
            def respond(n):
                if n <= 3:  # the first three answers push back
                    return 503, {"ok": False, "error": "warming"}, [("Retry-After", "0.05")]
                return 200, {"ok": True, "metrics": {"energy": 1}}, []

            server, port, counter = await _start_stub(respond)
            try:
                requests = [{"algo": "scan", "n": 64, "seed": i} for i in range(5)]
                report = await run_load(
                    "127.0.0.1", port, requests,
                    concurrency=2, timeout=10.0, backoff_seed=3,
                )
                return report, counter["n"]
            finally:
                server.close()
                await server.wait_closed()

        report, calls = asyncio.run(go())
        assert report.dropped == 0
        assert report.ok == 5
        assert dict(report.by_status) == {200: 5}  # only final statuses recorded
        assert report.backoff_retries == 3
        assert calls == 8  # 5 requests + 3 Retry-After resends
        assert report.model_metrics["energy"] == 5

    def test_backoff_gives_up_after_max_retries(self):
        async def go():
            def respond(n):
                return 503, {"ok": False, "error": "down"}, [("Retry-After", "0.05")]

            server, port, _counter = await _start_stub(respond)
            try:
                requests = [{"algo": "scan", "n": 64, "seed": i} for i in range(3)]
                return await run_load(
                    "127.0.0.1", port, requests,
                    concurrency=1, timeout=10.0, max_retries=2,
                )
            finally:
                server.close()
                await server.wait_closed()

        report = asyncio.run(go())
        assert report.dropped == 0  # an HTTP 503 is an answer, not a drop
        assert report.ok == 0
        assert dict(report.by_status) == {503: 3}
        assert report.backoff_retries == 6  # 3 requests x max_retries=2


def _service_config(**overrides) -> ServiceConfig:
    base = dict(
        port=0,
        inline=True,  # no forking under the test runner
        workers=4,
        batch_window=0.02,
        disk_cache=False,
        drain_timeout=10.0,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def _with_service(config, scenario):
    """Run ``await scenario(service)`` against a live in-process server."""

    async def go():
        service = SpatialService(config)
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.drain(10.0)
            await service.stop()

    return asyncio.run(go())


async def _call(port, method, path, payload=None, timeout=30.0):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        return await _http(reader, writer, method, path, payload, timeout=timeout)
    finally:
        writer.close()


async def _call_raw(port, body: bytes, timeout=10.0):
    """Send raw bytes; return (status, headers, doc)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(body)
        await writer.drain()
        status = int((await asyncio.wait_for(reader.readline(), timeout)).split()[1])
        headers = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length else b""
        return status, headers, json.loads(raw) if raw else {}
    finally:
        writer.close()


class TestServerRoutes:
    def test_basic_routes(self):
        async def scenario(service):
            port = service.port
            status, doc, _ = await _call(port, "GET", "/healthz")
            assert (status, doc) == (200, {"status": "ok", "draining": False})
            status, doc, _ = await _call(port, "GET", "/algos")
            assert status == 200 and doc["algos"]["scan"]["suite"] == "table1_scan"
            status, doc, _ = await _call(port, "GET", "/nope")
            assert status == 404
            status, doc, _ = await _call(port, "GET", "/run")
            assert status == 405
            status, doc, _ = await _call(port, "POST", "/run", {"algo": "fft", "n": 64})
            assert status == 400 and "unknown algo" in doc["error"]
            status, _, _ = await _call(port, "GET", "/metrics")
            assert status == 200

        _with_service(_service_config(), scenario)

    def test_malformed_json_and_http(self):
        async def scenario(service):
            port = service.port
            raw = b"POST /run HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!"
            status, _, doc = await _call_raw(port, raw)
            assert status == 400 and "invalid JSON" in doc["error"]
            status, _, doc = await _call_raw(port, b"garbage\r\n\r\n")
            assert status == 400
            raw = b"POST /run HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n"
            status, _, doc = await _call_raw(port, raw)
            assert status == 400 and "exceeds" in doc["error"]

        _with_service(_service_config(), scenario)

    def test_run_executes_and_caches(self):
        async def scenario(service):
            port = service.port
            body = {"algo": "scan", "n": 64, "seed": 0}
            status, doc, _ = await _call(port, "POST", "/run", body)
            assert status == 200 and doc["ok"]
            assert doc["cached"] is False
            for name in ("energy", "messages", "rounds", "max_depth", "max_distance"):
                assert name in doc["metrics"]
            status, doc2, _ = await _call(port, "POST", "/run", body)
            assert status == 200 and doc2["cached"] == "memory"
            assert doc2["metrics"] == doc["metrics"]
            snap = service.metrics_doc()
            assert snap["cache"]["hits_memory"] == 1
            assert snap["batching"]["executions"] == 1

        _with_service(_service_config(), scenario)

    def test_profile_rejected_inline(self):
        async def scenario(service):
            status, doc, _ = await _call(
                service.port, "POST", "/run", {"algo": "scan", "n": 64, "profile": True}
            )
            assert status == 400 and "profile" in doc["error"]

        _with_service(_service_config(), scenario)

    def test_readyz_splits_from_healthz(self):
        async def scenario(service):
            port = service.port
            status, doc, _ = await _call(port, "GET", "/readyz")
            assert status == 200 and doc == {"ready": True, "draining": False}

            # a warming executor flips readiness but never liveness
            service.executor.ready = lambda: False
            status, doc, _ = await _call(port, "GET", "/readyz")
            assert status == 503 and doc["reason"] == "warming"
            status, doc, _ = await _call(port, "GET", "/healthz")
            assert status == 200
            del service.executor.ready

            # draining does the same, with a Retry-After hint
            service.draining = True
            status, headers, doc = await _call_raw(port, b"GET /readyz HTTP/1.1\r\n\r\n")
            assert status == 503 and doc["reason"] == "draining"
            assert headers["retry-after"] == "1"
            service.draining = False
            status, doc, _ = await _call(port, "GET", "/readyz")
            assert status == 200 and doc["ready"] is True

        _with_service(_service_config(), scenario)

    def test_shard_id_echoed_on_health_and_metrics(self):
        async def scenario(service):
            _, doc, _ = await _call(service.port, "GET", "/healthz")
            assert doc["shard"] == "s1r0"
            _, doc, _ = await _call(service.port, "GET", "/readyz")
            assert doc["shard"] == "s1r0"
            assert service.metrics_doc()["service"]["shard"] == "s1r0"

        _with_service(_service_config(shard_id="s1r0"), scenario)

    def test_draining_returns_503(self):
        async def scenario(service):
            service.draining = True
            status, doc, _ = await _call(
                service.port, "POST", "/run", {"algo": "scan", "n": 64}
            )
            assert status == 503 and "draining" in doc["error"]
            service.draining = False

        _with_service(_service_config(), scenario)

    def test_admission_control_429_with_retry_after(self):
        async def scenario(service):
            port = service.port
            # eight distinct keys at once against max_inflight=3: the window
            # holds the first three in flight, the rest must bounce
            async def post(seed):
                body = json.dumps({"algo": "scan", "n": 64, "seed": seed}).encode()
                raw = (
                    b"POST /run HTTP/1.1\r\nContent-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                return await _call_raw(port, raw, timeout=30.0)

            outs = await asyncio.gather(*(post(s) for s in range(8)))
            statuses = [s for s, _, _ in outs]
            assert statuses.count(200) == 3
            assert statuses.count(429) == 5
            rejected = next(out for out in outs if out[0] == 429)
            assert rejected[1].get("retry-after") == "1"
            assert service.metrics.rejected == 5

        _with_service(
            _service_config(max_inflight=3, max_queue=64, batch_window=0.5), scenario
        )


class TestServerUnderLoad:
    def test_fifty_concurrent_inflight_zero_drops(self):
        """The headline acceptance: >=50 in flight, nothing dropped."""

        async def scenario(service):
            port = service.port
            requests = build_requests(60, seed=11, mix=FAST_MIX, seed_pool=2)
            report = await run_load(
                "127.0.0.1", port, requests, concurrency=50, timeout=60.0
            )
            assert report.dropped == 0, report.errors
            assert report.ok == 60, dict(report.by_status)

            # 50 simultaneous first requests over <=16 distinct keys: the
            # pigeonhole guarantees coalescing happened
            snap = service.metrics_doc()
            assert snap["requests"]["peak_inflight"] >= 50
            assert snap["batching"]["batched_executions"] >= 1
            assert snap["batching"]["coalesced_requests"] >= 1

            # any repeated request is now a cache hit
            status, doc, _ = await _call(port, "POST", "/run", requests[0])
            assert status == 200 and doc["cached"] == "memory"
            assert service.metrics_doc()["cache"]["hits"] >= 1

        _with_service(
            _service_config(max_inflight=128, batch_window=0.3, workers=8), scenario
        )

    def test_timeout_returns_504_pool_backend(self, tmp_path):
        # needs the real pool: kill-on-timeout is a process-level contract
        async def scenario(service):
            status, doc, _ = await _call(
                service.port,
                "POST",
                "/run",
                {"algo": "sort", "n": 4096},
                timeout=30.0,
            )
            assert status == 504, doc
            assert service.metrics.timeouts == 1
            # the pool replaced the killed worker and still serves
            status, doc, _ = await _call(
                service.port, "POST", "/run", {"algo": "scan", "n": 64}, timeout=30.0
            )
            assert status == 200 and doc["ok"]
            assert service.executor.stats()["pool_replaced"] >= 1

        _with_service(
            _service_config(
                inline=False,
                workers=1,
                timeout=0.05,
                batch_window=0.0,
                disk_cache=True,
                cache_dir=str(tmp_path / "cache"),
            ),
            scenario,
        )

    def test_worker_crash_mid_batch_one_504_per_request(self, tmp_path):
        """A worker killed mid-batch: every coalesced waiter gets exactly one
        504, the failure is counted once, and the replacement worker serves."""

        async def scenario(service):
            port = service.port
            pool = service.executor._pool
            pids = [w.proc.pid for w in pool._idle]
            assert len(pids) == 1

            body = {"algo": "sort", "n": 4096}
            leader = asyncio.ensure_future(_call(port, "POST", "/run", body, timeout=60.0))
            await asyncio.sleep(0.1)  # leader is inside its batch window
            follower = asyncio.ensure_future(_call(port, "POST", "/run", body, timeout=60.0))

            # wait until the batch has actually been dispatched to the worker,
            # then kill it mid-task
            deadline = asyncio.get_running_loop().time() + 20.0
            while pool._idle and asyncio.get_running_loop().time() < deadline:
                await asyncio.sleep(0.01)
            assert not pool._idle, "execution never reached the worker"
            os.kill(pids[0], signal.SIGKILL)

            (s1, d1, _), (s2, d2, _) = await asyncio.gather(leader, follower)
            assert (s1, s2) == (504, 504), (d1, d2)
            assert "died" in d1["error"] and "died" in d2["error"]

            snap = service.metrics_doc()
            assert snap["requests"]["crashed"] == 2  # one 504 per affected request
            assert snap["responses"]["by_status"]["504"] == 2
            assert snap["batching"]["executions"] == 1  # ...but one execution
            assert snap["batching"]["execution_failures"] == 1  # counted once
            assert snap["requests"]["timeouts"] == 0  # a crash is not a timeout
            assert service.executor.stats()["pool_replaced"] >= 1

            # the replacement worker serves the next request
            status, doc, _ = await _call(port, "POST", "/run", {"algo": "scan", "n": 64}, timeout=60.0)
            assert status == 200 and doc["ok"]

        _with_service(
            _service_config(
                inline=False,
                workers=1,
                batch_window=0.3,
                timeout=60.0,
                disk_cache=True,
                cache_dir=str(tmp_path / "cache"),
            ),
            scenario,
        )


class TestServeSubprocess:
    """End to end through the shipped entry points, pool backend included."""

    def _spawn(self, tmp_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--workers", "2",
                "--batch-window", "0.25",
                "--cache-dir", str(tmp_path / "cache"),
                "--drain-timeout", "30",
                *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        banner = proc.stdout.readline()
        match = re.search(r"listening on http://[\d.]+:(\d+)", banner)
        if not match:
            proc.kill()
            raise AssertionError(f"no listen banner, got: {banner!r}")
        return proc, int(match.group(1))

    def test_serve_loadgen_metrics_and_sigterm_drain(self, tmp_path):
        proc, port = self._spawn(tmp_path)
        try:
            requests = build_requests(60, seed=5, mix=FAST_MIX, seed_pool=2)
            report = asyncio.run(
                run_load("127.0.0.1", port, requests, concurrency=50, timeout=60.0)
            )
            assert report.dropped == 0, report.errors
            assert report.ok == 60, dict(report.by_status)
            assert report.batched >= 1

            # a repeat of the whole mix is served from cache, no new executions
            metrics_before = asyncio.run(fetch_metrics("127.0.0.1", port))
            report2 = asyncio.run(
                run_load("127.0.0.1", port, requests, concurrency=10, timeout=60.0)
            )
            assert report2.ok == 60 and report2.cache_hits == 60
            metrics = asyncio.run(fetch_metrics("127.0.0.1", port))
            assert metrics["requests"]["peak_inflight"] >= 50
            assert metrics["batching"]["batched_executions"] >= 1
            assert metrics["cache"]["hits"] >= 60
            assert metrics["batching"]["executions"] == metrics_before["batching"]["executions"]
            assert metrics["service"]["executor"]["backend"] == "pool"
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert "drained cleanly" in out

    def test_sigterm_drains_inflight_request(self, tmp_path):
        """SIGTERM while a request is executing: it completes, then exit 0."""

        async def scenario(proc, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                task = asyncio.ensure_future(
                    _http(reader, writer, "POST", "/run",
                          {"algo": "select", "n": 1024}, timeout=60.0)
                )
                await asyncio.sleep(0.05)  # request is in flight
                proc.send_signal(signal.SIGTERM)
                status, doc, _ = await task
                assert status == 200 and doc["ok"]
            finally:
                writer.close()

        proc, port = self._spawn(tmp_path)
        try:
            asyncio.run(scenario(proc, port))
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "drained cleanly" in out

    def test_sigterm_drain_completes_batched_followers(self, tmp_path):
        """SIGTERM with a leader AND a coalesced follower in flight: both get
        the leader's result — a follower is never dropped mid-drain."""

        async def scenario(proc, port):
            body = {"algo": "select", "n": 1024}
            r1, w1 = await asyncio.open_connection("127.0.0.1", port)
            r2, w2 = await asyncio.open_connection("127.0.0.1", port)
            try:
                leader = asyncio.ensure_future(
                    _http(r1, w1, "POST", "/run", body, timeout=60.0)
                )
                await asyncio.sleep(0.05)  # leader is inside the 0.25s window
                follower = asyncio.ensure_future(
                    _http(r2, w2, "POST", "/run", body, timeout=60.0)
                )
                await asyncio.sleep(0.05)  # both attached, execution pending
                proc.send_signal(signal.SIGTERM)
                (s1, d1, _), (s2, d2, _) = await asyncio.gather(leader, follower)
                for status, doc in ((s1, d1), (s2, d2)):
                    assert status == 200 and doc["ok"], (status, doc)
                assert d1["metrics"] == d2["metrics"]
                assert d1.get("batched") and d2.get("batched")
            finally:
                w1.close()
                w2.close()

        proc, port = self._spawn(tmp_path)
        try:
            asyncio.run(scenario(proc, port))
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "drained cleanly" in out
