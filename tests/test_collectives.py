"""Tests for broadcast / reduce / all-reduce (paper Section IV.A-B).

Covers functional correctness on square, tall, wide and 1D regions, plus the
Lemma IV.1 / Corollary IV.2 cost envelopes.
"""

import numpy as np
import pytest

from repro.core.collectives import (
    all_reduce,
    broadcast,
    broadcast_1d,
    reduce,
    reduce_2d,
)
from repro.core.ops import ADD, MAX, Monoid
from repro.machine import Region, SpatialMachine


def _bcast(m, region, value=7.0):
    v = m.place(np.array([value]), [region.row], [region.col])
    if region.height == 1 or region.width == 1:
        return broadcast_1d(m, v, region)
    return broadcast(m, v, region)


class TestBroadcastCorrectness:
    @pytest.mark.parametrize(
        "h,w", [(1, 1), (2, 2), (8, 8), (16, 4), (4, 16), (64, 2), (32, 1), (1, 64)]
    )
    def test_reaches_every_cell_once(self, h, w):
        m = SpatialMachine()
        region = Region(0, 0, h, w)
        out = _bcast(m, region)
        assert len(out) == h * w
        assert (out.payload == 7.0).all()
        cells = set(zip(out.rows.tolist(), out.cols.tolist()))
        assert len(cells) == h * w

    def test_rowmajor_output_order(self):
        m = SpatialMachine()
        region = Region(0, 0, 4, 4)
        out = _bcast(m, region)
        assert out.rows.tolist() == np.repeat(np.arange(4), 4).tolist()

    def test_offset_region(self):
        m = SpatialMachine()
        region = Region(10, 20, 4, 4)
        out = _bcast(m, region)
        assert out.rows.min() == 10 and out.cols.min() == 20

    def test_non_pow2_rejected(self):
        m = SpatialMachine()
        v = m.place(np.array([1.0]), [0], [0])
        with pytest.raises(ValueError):
            broadcast(m, v, Region(0, 0, 3, 3))

    def test_multiroot_rejected(self):
        m = SpatialMachine()
        v = m.place(np.array([1.0, 2.0]), [0, 0], [0, 1])
        with pytest.raises(ValueError):
            broadcast(m, v, Region(0, 0, 4, 4))


class TestBroadcastCosts:
    def test_square_linear_energy(self):
        """Lemma IV.1 with h == w: O(hw) energy."""
        energies = []
        for side in (8, 16, 32, 64):
            m = SpatialMachine()
            _bcast(m, Region(0, 0, side, side))
            energies.append(m.stats.energy / (side * side))
        # energy per cell stays bounded
        assert max(energies) < 4.0
        assert energies[-1] == pytest.approx(energies[-2], rel=0.3)

    def test_logarithmic_depth(self):
        for side in (4, 16, 64):
            m = SpatialMachine()
            out = _bcast(m, Region(0, 0, side, side))
            n = side * side
            assert out.max_depth() <= int(np.log2(n)) + 2

    def test_linear_distance(self):
        for side in (8, 32):
            m = SpatialMachine()
            out = _bcast(m, Region(0, 0, side, side))
            assert out.max_dist() <= 4 * side

    def test_tall_grid_extra_log_term(self):
        """O(hw + h log h): for h >> w the column tree costs h log h."""
        m = SpatialMachine()
        h, w = 256, 2
        _bcast(m, Region(0, 0, h, w))
        assert m.stats.energy <= 6 * (h * w + h * np.log2(h))

    def test_1d_energy_n_log_n(self):
        """The 1D broadcast tree costs Θ(h log h) energy."""
        e = {}
        for h in (64, 256, 1024):
            m = SpatialMachine()
            _bcast(m, Region(0, 0, h, 1))
            e[h] = m.stats.energy
        assert e[1024] / 1024 > e[64] / 64  # superlinear
        assert e[1024] <= 3 * 1024 * np.log2(1024)  # but only by a log


class TestReduceCorrectness:
    @pytest.mark.parametrize("h,w", [(2, 2), (8, 8), (16, 4), (4, 16)])
    def test_sum(self, h, w, rng):
        m = SpatialMachine()
        region = Region(0, 0, h, w)
        x = rng.random(h * w)
        total = reduce(m, m.place_rowmajor(x, region), region, ADD)
        assert total.payload[0] == pytest.approx(x.sum())
        assert (total.rows[0], total.cols[0]) == region.corner()

    def test_max_monoid(self, rng):
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        x = rng.standard_normal(64)
        from repro.core.ops import MAX

        total = reduce(m, m.place_rowmajor(x, region), region, MAX)
        assert total.payload[0] == x.max()

    def test_noncommutative_monoid_order(self):
        """Reduce combines in a fixed deterministic order, so a
        non-commutative (but associative) operator gives the in-order fold."""
        m = SpatialMachine()
        region = Region(0, 0, 4, 4)

        def first_op(a, b):
            return a

        first = Monoid("first", first_op, np.nan, commutative=False)
        x = np.arange(16.0)
        # entries in z-order of cells: the in-order fold returns the first
        # element in Z-order = row-major cell (0, 0) = value 0
        total = reduce(m, m.place_rowmajor(x, region), region, first)
        assert total.payload[0] == 0.0

    def test_entry_order_irrelevant_for_commutative(self, rng):
        m = SpatialMachine()
        region = Region(0, 0, 4, 4)
        x = rng.random(16)
        perm = rng.permutation(16)
        rows, cols = region.rowmajor_coords()
        ta = m.place(x[perm], rows[perm], cols[perm])
        total = reduce(m, ta, region, ADD)
        assert total.payload[0] == pytest.approx(x.sum())

    def test_wrong_count_rejected(self, rng):
        m = SpatialMachine()
        region = Region(0, 0, 4, 4)
        ta = m.place_rowmajor(rng.random(8), Region(0, 0, 2, 4))
        with pytest.raises(ValueError):
            reduce(m, ta, region, ADD)

    def test_2d_payload(self, rng):
        """Vector-valued reduction (used by selection's dual counts)."""
        m = SpatialMachine()
        region = Region(0, 0, 4, 4)
        x = rng.random((16, 2))
        total = reduce_2d(m, m.place_rowmajor(x, region), region, ADD)
        assert np.allclose(total.payload[0], x.sum(axis=0))


class TestReduceCosts:
    def test_square_linear_energy_log_depth(self):
        """Corollary IV.2: the log-depth reduce with O(n) energy — the
        Θ(log n) improvement over binary-tree reduce at log depth."""
        for side in (8, 32):
            m = SpatialMachine()
            region = Region(0, 0, side, side)
            x = np.ones(side * side)
            total = reduce(m, m.place_rowmajor(x, region), region, ADD)
            n = side * side
            assert m.stats.energy <= 4 * n
            assert total.depth[0] <= int(np.log2(n)) + 2


class TestAllReduce:
    def test_every_cell_gets_total(self, rng):
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        x = rng.random(64)
        out = all_reduce(m, m.place_rowmajor(x, region), region, ADD)
        assert np.allclose(out.payload, x.sum())
        assert len(out) == 64

    def test_cost_linear(self):
        for side in (8, 16, 32):
            m = SpatialMachine()
            region = Region(0, 0, side, side)
            out = all_reduce(m, m.place_rowmajor(np.ones(side**2), region), region, ADD)
            assert m.stats.energy <= 8 * side * side
            assert out.max_depth() <= 2 * int(np.log2(side * side)) + 4
