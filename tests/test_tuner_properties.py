"""Property-based tests of the tuner's pruning contract (hypothesis).

The contract under test, on exhaustively-evaluated small grids (n <= 64):

* **admissibility** — for every configuration and every metric, the analytic
  lower bound never exceeds the measured value;
* **argmin preservation** — the pruned search returns the *same* best plan
  (configuration and value, bit-identical) as brute-force enumeration, for
  every metric in {energy, max_depth, edp} and across workload seeds.

Evaluations are memoized through a shared content-addressed cache, so
hypothesis re-drawing the same (class, n, seed) costs nothing after the
first example.
"""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.cache import ResultCache
from repro.tuner import Evaluator, TuneRequest, tune_one
from repro.tuner.bounds import TUNE_METRICS, config_bounds, metric_value
from repro.tuner.space import TuneConfig

_EVALUATOR = None


def _evaluator() -> Evaluator:
    global _EVALUATOR
    if _EVALUATOR is None:
        _EVALUATOR = Evaluator(cache=ResultCache(tempfile.mkdtemp(prefix="tuner_prop_")))
    return _EVALUATOR


#: (algo_class, n, seed) triples cheap enough to brute-force exhaustively;
#: n=64 sort simulates every sorter, so only seed 0 is drawn there
_CASES = (
    [("sort", 4, s) for s in range(4)]
    + [("sort", 16, s) for s in range(4)]
    + [("sort", 64, 0)]
    + [("scan", 16, 0), ("scan", 64, 0), ("scan", 64, 3)]
    + [("spmv", 4, 0), ("spmv", 16, 0), ("spmv", 16, 2)]
)


@given(case=st.sampled_from(_CASES), metric=st.sampled_from(TUNE_METRICS))
@settings(max_examples=40, deadline=None)
def test_pruned_search_matches_brute_force_argmin(case, metric):
    algo_class, n, seed = case
    request = TuneRequest(algo_class, n, metric, seed=seed)
    evaluator = _evaluator()
    pruned = tune_one(request, evaluator)
    brute = tune_one(request, evaluator, brute=True)
    assert pruned.best == brute.best, (
        f"{request.key()}: pruned chose {pruned.best['label']} "
        f"(value {pruned.best['value']}), brute force chose "
        f"{brute.best['label']} (value {brute.best['value']})"
    )
    # sanity on the search record: everything pruned or measured, none lost
    counts = pruned.counts
    assert (
        counts["dominated"] + counts["bound_pruned"] + counts["evaluated"] + counts["failed"]
        == counts["total"]
    )


@given(case=st.sampled_from(_CASES))
@settings(max_examples=25, deadline=None)
def test_bounds_are_admissible_for_every_configuration(case):
    algo_class, n, seed = case
    evaluator = _evaluator()
    brute = tune_one(TuneRequest(algo_class, n, seed=seed), evaluator, brute=True)
    for row in brute.table:
        assert row["status"] == "evaluated", row
        config = TuneConfig.from_dict(row["config"])
        lb = config_bounds(config, n, seed)
        for metric in TUNE_METRICS:
            measured = metric_value(row["metrics"], metric)
            assert lb[metric] <= measured, (
                f"{config.label()} at n={n} seed={seed}: bound "
                f"{lb[metric]} > measured {measured} on {metric}"
            )


@pytest.mark.parametrize("metric", TUNE_METRICS)
def test_pruning_clears_half_the_sort_space_at_n64(metric):
    plan = tune_one(TuneRequest("sort", 64, metric), _evaluator())
    assert plan.pruned_fraction() >= 0.5, plan.counts
