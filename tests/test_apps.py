"""Tests for the application layer (repro.apps): statistics and graph kernels."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import (
    top_k,
    bfs_distances,
    connected_components,
    degree_table,
    interquartile_range,
    median,
    median_absolute_deviation,
    quantile,
    trimmed_mean,
)
from repro.machine import Region, SpatialMachine
from repro.spmv.coo import COOMatrix, graph_adjacency_coo


def _place(x, rng_unused=None):
    n = len(x)
    side = int(np.sqrt(n))
    m = SpatialMachine()
    region = Region(0, 0, side, side)
    return m, region, m.place_zorder(np.asarray(x, dtype=np.float64), region)


class TestQuantiles:
    def test_median_odd_ties(self, rng):
        x = rng.standard_normal(256)
        m, region, ta = _place(x)
        got = median(m, ta, region, rng)
        assert got == np.sort(x)[127]  # nearest-rank: k = ceil(0.5*256) = 128

    @pytest.mark.parametrize("q", (0.01, 0.25, 0.5, 0.9, 1.0))
    def test_quantile_matches_nearest_rank(self, q, rng):
        x = rng.standard_normal(1024)
        m, region, ta = _place(x)
        got = quantile(m, ta, region, q, rng)
        k = max(1, int(np.ceil(q * 1024)))
        assert got == np.sort(x)[k - 1]

    def test_bad_q_rejected(self, rng):
        x = rng.standard_normal(64)
        m, region, ta = _place(x)
        with pytest.raises(ValueError):
            quantile(m, ta, region, 0.0, rng)

    def test_iqr(self, rng):
        x = rng.standard_normal(1024)
        m, region, ta = _place(x)
        got = interquartile_range(m, ta, region, rng)
        s = np.sort(x)
        assert got == pytest.approx(s[767] - s[255])


class TestTrimmedMean:
    def test_no_trim_is_mean(self, rng):
        x = rng.standard_normal(256)
        m, region, ta = _place(x)
        got = trimmed_mean(m, ta, region, 0.0, rng)
        assert got == pytest.approx(x.mean())

    def test_trim_kills_outliers(self, rng):
        x = rng.standard_normal(256)
        x[0] = 1e9
        x[1] = -1e9
        m, region, ta = _place(x)
        got = trimmed_mean(m, ta, region, 0.1, rng)
        assert abs(got) < 1.0  # the outliers are gone

    def test_matches_reference(self, rng):
        x = rng.standard_normal(256)
        trim = 0.2
        m, region, ta = _place(x)
        got = trimmed_mean(m, ta, region, trim, rng)
        s = np.sort(x)
        lo, hi = s[int(np.floor(trim * 256))], s[256 - int(np.floor(trim * 256)) - 1]
        keep = x[(x >= lo) & (x <= hi)]
        assert got == pytest.approx(keep.mean())

    def test_bad_trim_rejected(self, rng):
        x = rng.standard_normal(64)
        m, region, ta = _place(x)
        with pytest.raises(ValueError):
            trimmed_mean(m, ta, region, 0.5, rng)


class TestMAD:
    def test_constant_data(self, rng):
        x = np.full(64, 3.0)
        m, region, ta = _place(x)
        assert median_absolute_deviation(m, ta, region, rng) == 0.0

    def test_matches_reference(self, rng):
        x = rng.standard_normal(256)
        m, region, ta = _place(x)
        got = median_absolute_deviation(m, ta, region, rng)
        med = np.sort(x)[127]
        want = np.sort(np.abs(x - med))[127]
        assert got == pytest.approx(want)


class TestConnectedComponents:
    def test_two_cliques(self):
        g = nx.disjoint_union(nx.complete_graph(5), nx.complete_graph(4))
        edges = np.asarray(g.edges(), dtype=np.int64)
        A = COOMatrix(
            np.concatenate([edges[:, 0], edges[:, 1]]),
            np.concatenate([edges[:, 1], edges[:, 0]]),
            np.ones(2 * len(edges)),
            9,
        )
        m = SpatialMachine()
        labels = connected_components(m, A)
        assert (labels[:5] == 0).all()
        assert (labels[5:] == 5).all()

    def test_matches_networkx(self, rng):
        A = graph_adjacency_coo(24, rng, "gnp")
        g = nx.from_scipy_sparse_array(A.to_scipy())
        m = SpatialMachine()
        labels = connected_components(m, A)
        for comp in nx.connected_components(g):
            comp = sorted(comp)
            assert (labels[comp] == min(comp)).all()

    def test_path_graph_rounds(self):
        """A path of length L needs ~L/?? rounds — bounded by n, converges."""
        g = nx.path_graph(8)
        edges = np.asarray(g.edges(), dtype=np.int64)
        A = COOMatrix(
            np.concatenate([edges[:, 0], edges[:, 1]]),
            np.concatenate([edges[:, 1], edges[:, 0]]),
            np.ones(2 * len(edges)),
            8,
        )
        m = SpatialMachine()
        labels = connected_components(m, A)
        assert (labels == 0).all()


class TestBFS:
    def test_path_graph(self):
        g = nx.path_graph(8)
        edges = np.asarray(g.edges(), dtype=np.int64)
        A = COOMatrix(
            np.concatenate([edges[:, 0], edges[:, 1]]),
            np.concatenate([edges[:, 1], edges[:, 0]]),
            np.ones(2 * len(edges)),
            8,
        )
        m = SpatialMachine()
        d = bfs_distances(m, A, source=0)
        assert np.allclose(d, np.arange(8))

    def test_matches_networkx(self, rng):
        A = graph_adjacency_coo(20, rng, "ba")
        g = nx.from_scipy_sparse_array(A.to_scipy())
        m = SpatialMachine()
        d = bfs_distances(m, A, source=0)
        ref = nx.single_source_shortest_path_length(g, 0)
        for v in range(20):
            want = ref.get(v, np.inf)
            assert d[v] == want

    def test_bad_source_rejected(self, rng):
        A = graph_adjacency_coo(8, rng)
        with pytest.raises(ValueError):
            bfs_distances(SpatialMachine(), A, source=99)


class TestDegrees:
    def test_matches_networkx(self, rng):
        A = graph_adjacency_coo(16, rng, "gnp")
        g = nx.from_scipy_sparse_array(A.to_scipy())
        m = SpatialMachine()
        deg = degree_table(m, A)
        for v in range(16):
            assert deg[v] == g.degree(v)


class TestTopK:
    @pytest.mark.parametrize("k", (1, 5, 50, 256))
    def test_matches_numpy(self, k, rng):
        x = rng.standard_normal(256)
        m, region, ta = _place(x)
        got = top_k(m, ta, region, k, rng)
        want = np.sort(x)[::-1][:k]
        assert np.allclose(got, want)

    def test_ties_give_exactly_k(self, rng):
        x = rng.integers(0, 4, 64).astype(float)  # heavy ties at the cut
        m, region, ta = _place(x)
        got = top_k(m, ta, region, 10, rng)
        assert len(got) == 10
        assert np.allclose(got, np.sort(x)[::-1][:10])

    def test_cheaper_than_sorting(self, rng):
        from repro.core.sorting.mergesort2d import sort_values

        n = 1024
        x = rng.standard_normal(n)
        m, region, ta = _place(x)
        top_k(m, ta, region, 10, rng)
        m2 = SpatialMachine()
        sort_values(m2, x, Region(0, 0, 32, 32))
        assert m.stats.energy * 5 < m2.stats.energy

    def test_bad_k_rejected(self, rng):
        x = rng.standard_normal(64)
        m, region, ta = _place(x)
        with pytest.raises(ValueError):
            top_k(m, ta, region, 0, rng)
