"""Tests for sort payload utilities (repro.core.sorting.sortutil)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sorting.sortutil import (
    as_sort_payload,
    lex_less,
    lex_maximum,
    lex_minimum,
    strip_tiebreak,
    with_tiebreak,
)
from repro.machine import SpatialMachine


class TestLexLess:
    def test_single_column(self):
        a = np.array([[1.0], [2.0], [3.0]])
        b = np.array([[2.0], [2.0], [2.0]])
        assert lex_less(a, b, 1).tolist() == [True, False, False]

    def test_tie_breaks_on_second_column(self):
        a = np.array([[1.0, 5.0], [1.0, 2.0]])
        b = np.array([[1.0, 3.0], [1.0, 3.0]])
        assert lex_less(a, b, 2).tolist() == [False, True]

    def test_first_column_dominates(self):
        a = np.array([[0.0, 100.0]])
        b = np.array([[1.0, -100.0]])
        assert lex_less(a, b, 2).tolist() == [True]

    def test_key_cols_limits_comparison(self):
        a = np.array([[1.0, 9.0]])
        b = np.array([[1.0, 0.0]])
        assert lex_less(a, b, 1).tolist() == [False]  # satellite ignored

    def test_min_max_consistent(self):
        a = np.array([[2.0, 1.0], [1.0, 1.0]])
        b = np.array([[1.0, 9.0], [1.0, 2.0]])
        lo = lex_minimum(a, b, 2)
        hi = lex_maximum(a, b, 2)
        assert lo.tolist() == [[1.0, 9.0], [1.0, 1.0]]
        assert hi.tolist() == [[2.0, 1.0], [1.0, 2.0]]

    @given(
        st.lists(
            st.tuples(st.integers(-5, 5), st.integers(-5, 5)), min_size=1, max_size=20
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_python_tuples(self, pairs):
        a = np.array([[float(x), float(y)] for x, y in pairs])
        b = a[::-1].copy()
        got = lex_less(a, b, 2)
        want = [tuple(a[i]) < tuple(b[i]) for i in range(len(a))]
        assert got.tolist() == want

    def test_strict_irreflexive(self):
        a = np.array([[1.0, 2.0]])
        assert not lex_less(a, a, 2)[0]


class TestPayloadHelpers:
    def test_as_sort_payload_1d(self):
        p = as_sort_payload(np.array([1.0, 2.0]))
        assert p.shape == (2, 1)

    def test_as_sort_payload_passthrough(self):
        p = as_sort_payload(np.zeros((3, 2)))
        assert p.shape == (3, 2)

    def test_tiebreak_roundtrip(self):
        m = SpatialMachine()
        ta = m.place(np.array([[5.0, 7.0], [5.0, 8.0]]), [0, 0], [0, 1])
        keyed, kc = with_tiebreak(ta, 1)
        assert kc == 2
        assert keyed.payload.shape == (2, 3)
        # tie-break column makes the order strict
        assert lex_less(keyed.payload[:1], keyed.payload[1:], kc)[0]
        stripped = strip_tiebreak(keyed, kc)
        assert np.allclose(stripped.payload, ta.payload)

    def test_tiebreak_preserves_satellites(self):
        m = SpatialMachine()
        ta = m.place(np.array([[1.0, 10.0, 20.0]]), [0], [0])
        keyed, kc = with_tiebreak(ta, 1)
        assert keyed.payload[0].tolist() == [1.0, 0.0, 10.0, 20.0]
