"""Tests for the simplified selection-based 2D Quicksort (Section IX direction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import make_workload, tail_exponent
from repro.core.sorting.mergesort2d import sort_values
from repro.core.sorting.quicksort2d import quicksort_2d
from repro.machine import Region, SpatialMachine


def _sort(x, seed=0, **kw):
    n = len(x)
    side = int(np.sqrt(n))
    m = SpatialMachine()
    out = quicksort_2d(m, x, Region(0, 0, side, side), np.random.default_rng(seed), **kw)
    return m, out


class TestQuicksortCorrectness:
    @pytest.mark.parametrize("n", (4, 16, 64, 256, 1024))
    def test_uniform(self, n, rng):
        x = rng.standard_normal(n)
        _, out = _sort(x)
        assert np.allclose(out.payload, np.sort(x))

    @pytest.mark.parametrize("kind", ("reversed", "sorted", "few_distinct", "zipf"))
    def test_workloads(self, kind, rng):
        x = make_workload(kind, 256, rng)
        _, out = _sort(x, seed=2)
        assert np.allclose(out.payload, np.sort(x))

    def test_all_duplicates(self):
        _, out = _sort(np.full(64, 1.5))
        assert (out.payload == 1.5).all()

    def test_two_distinct_values(self, rng):
        x = rng.choice([0.0, 1.0], 256)
        _, out = _sort(x, seed=3)
        assert np.allclose(out.payload, np.sort(x))

    def test_many_seeds(self, rng):
        x = rng.standard_normal(256)
        for seed in range(10):
            _, out = _sort(x, seed=seed)
            assert np.allclose(out.payload, np.sort(x)), seed

    def test_output_rowmajor(self, rng):
        region = Region(0, 0, 8, 8)
        m = SpatialMachine()
        out = quicksort_2d(m, rng.random(64), region, np.random.default_rng(0))
        rows, cols = region.rowmajor_coords(64)
        assert (out.rows == rows).all() and (out.cols == cols).all()

    def test_base_case_variants(self, rng):
        x = rng.random(256)
        for base in (4, 16, 64):
            _, out = _sort(x, base_case=base)
            assert np.allclose(out.payload, np.sort(x)), base

    def test_rectangle_rejected(self, rng):
        m = SpatialMachine()
        with pytest.raises(ValueError):
            quicksort_2d(m, rng.random(32), Region(0, 0, 4, 8), np.random.default_rng(0))

    def test_size_mismatch_rejected(self, rng):
        m = SpatialMachine()
        with pytest.raises(ValueError):
            quicksort_2d(m, rng.random(60), Region(0, 0, 8, 8), np.random.default_rng(0))

    @given(st.lists(st.integers(-50, 50), min_size=64, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_sort_property(self, xs):
        x = np.asarray(xs, dtype=np.float64)
        _, out = _sort(x, seed=1)
        assert np.array_equal(out.payload, np.sort(x))


class TestQuicksortCosts:
    def test_energy_exponent(self):
        rng = np.random.default_rng(0)
        ns, es = [], []
        for side in (8, 16, 32, 64):
            n = side * side
            m, _ = _sort(rng.random(n), seed=4)
            ns.append(n)
            es.append(m.stats.energy)
        exp = tail_exponent(np.array(ns), np.array(es), points=3)
        assert 1.1 < exp < 1.8  # Θ(n^{3/2}) class

    def test_depth_polylog(self):
        rng = np.random.default_rng(1)
        depths = []
        for side in (8, 16, 32):
            n = side * side
            m, out = _sort(rng.random(n), seed=5)
            depths.append(out.max_depth())
            assert out.max_depth() <= 3 * np.log2(n) ** 3
        ratios = [depths[i + 1] / depths[i] for i in range(len(depths) - 1)]
        assert ratios[-1] < ratios[0] * 1.5  # polylog-style flattening

    def test_cheaper_than_mergesort(self, rng):
        """The Section IX payoff: much smaller energy constants."""
        n = 1024
        x = rng.random(n)
        mq, _ = _sort(x, seed=6)
        mm = SpatialMachine()
        sort_values(mm, x, Region(0, 0, 32, 32))
        assert mq.stats.energy * 5 < mm.stats.energy
