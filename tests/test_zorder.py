"""Unit + property tests for the Z-order curve (repro.machine.zorder)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.geometry import Region
from repro.machine.zorder import (
    is_power_of_two,
    zorder_coords,
    zorder_curve_energy,
    zorder_decode,
    zorder_encode,
)


class TestEncodeDecode:
    def test_first_sixteen(self):
        # the paper's quadrant order: TL, TR, BL, BR recursively
        r, c = zorder_decode(np.arange(4))
        assert list(zip(r.tolist(), c.tolist())) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_quadrant_order_recursive(self):
        r, c = zorder_decode(np.arange(16))
        # indices 4..7 are the top-right quadrant of the 4x4 grid
        assert (r[4:8] < 2).all() and (c[4:8] >= 2).all()
        # indices 8..11 the bottom-left
        assert (r[8:12] >= 2).all() and (c[8:12] < 2).all()

    def test_roundtrip_range(self):
        z = np.arange(4096)
        r, c = zorder_decode(z)
        assert (zorder_encode(r, c) == z).all()

    def test_encode_monotone_in_blocks(self):
        # all cells of the TL quadrant come before any cell of the BR quadrant
        side = 8
        rr, cc = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        z = zorder_encode(rr.ravel(), cc.ravel())
        tl = z[(rr.ravel() < 4) & (cc.ravel() < 4)]
        br = z[(rr.ravel() >= 4) & (cc.ravel() >= 4)]
        assert tl.max() < br.min()

    @given(st.integers(0, 2**20 - 1), st.integers(0, 2**20 - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, row, col):
        z = zorder_encode(np.array([row]), np.array([col]))
        r, c = zorder_decode(z)
        assert (r[0], c[0]) == (row, col)

    @given(st.integers(0, 2**40 - 1))
    @settings(max_examples=200, deadline=None)
    def test_decode_encode_property(self, z):
        r, c = zorder_decode(np.array([z], dtype=np.uint64))
        back = zorder_encode(r, c)
        assert int(back[0]) == z


class TestZorderCoords:
    def test_square(self):
        rows, cols = zorder_coords(Region(0, 0, 4, 4))
        assert len(rows) == 16
        # each cell visited exactly once
        assert len({(int(a), int(b)) for a, b in zip(rows, cols)}) == 16

    def test_offset_region(self):
        rows, cols = zorder_coords(Region(3, 5, 2, 2))
        assert rows.tolist() == [3, 3, 4, 4]
        assert cols.tolist() == [5, 6, 5, 6]

    def test_wide_rectangle_halves(self):
        rows, cols = zorder_coords(Region(0, 0, 2, 4))
        # first half covers the left 2x2 square, then the right one
        assert (cols[:4] < 2).all() and (cols[4:] >= 2).all()

    def test_tall_rectangle_halves(self):
        rows, cols = zorder_coords(Region(0, 0, 4, 2))
        assert (rows[:4] < 2).all() and (rows[4:] >= 2).all()

    def test_partial(self):
        rows, cols = zorder_coords(Region(0, 0, 4, 4), 5)
        assert len(rows) == 5

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            zorder_coords(Region(0, 0, 2, 6))

    def test_non_pow2_square(self):
        with pytest.raises(ValueError):
            zorder_coords(Region(0, 0, 3, 3))


class TestObservation1:
    """Observation 1: the Z-curve's total edge length is O(n)."""

    @pytest.mark.parametrize("side", [2, 4, 8, 16, 32, 64, 128])
    def test_linear_energy(self, side):
        n = side * side
        energy = zorder_curve_energy(side)
        assert n - 1 <= energy <= 2 * n  # tight linear envelope

    def test_ratio_converges(self):
        # doubling the side quadruples the energy (linear in n)
        e1 = zorder_curve_energy(32)
        e2 = zorder_curve_energy(64)
        assert 3.5 < e2 / e1 < 4.5


class TestIsPowerOfTwo:
    def test_values(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)
