"""Tests for All-Pairs Sort (paper Section V.C(a), Lemma V.5)."""

import numpy as np
import pytest

from repro.analysis import fit_power_law, make_workload
from repro.core.sorting.allpairs import allpairs_rank, allpairs_sort
from repro.core.sorting.sortutil import as_sort_payload, with_tiebreak
from repro.machine import Region, SpatialMachine


def _run(x, rng_region=None):
    n = len(x)
    side = 1
    while side * side < n:
        side *= 2
    m = SpatialMachine()
    region = rng_region or Region(0, 0, side, side)
    ta = m.place_rowmajor(as_sort_payload(x), region)
    out = allpairs_sort(m, ta, out_region=region)
    return m, out


class TestAllPairsCorrectness:
    @pytest.mark.parametrize("n", (1, 2, 3, 5, 8, 16, 33, 64, 100))
    def test_arbitrary_sizes(self, n, rng):
        x = rng.standard_normal(n)
        _, out = _run(x)
        assert np.allclose(out.payload[:, 0], np.sort(x))

    @pytest.mark.parametrize("kind", ("reversed", "sorted", "few_distinct"))
    def test_workloads(self, kind, rng):
        x = make_workload(kind, 64, rng)
        _, out = _run(x)
        assert np.allclose(out.payload[:, 0], np.sort(x))

    def test_all_equal(self):
        x = np.full(16, 3.0)
        _, out = _run(x)
        assert (out.payload[:, 0] == 3.0).all()

    def test_ranks_are_permutation(self, rng):
        x = rng.integers(0, 4, 32).astype(float)  # heavy ties
        m = SpatialMachine()
        ta = m.place_rowmajor(as_sort_payload(x), Region(0, 0, 8, 8))
        keyed, kc = with_tiebreak(ta, 1)
        _, ranks = allpairs_rank(m, keyed, kc)
        assert sorted(ranks.tolist()) == list(range(32))

    def test_output_region_placement(self, rng):
        x = rng.random(16)
        m = SpatialMachine()
        src = Region(0, 0, 4, 4)
        dst = Region(20, 20, 4, 4)
        ta = m.place_rowmajor(as_sort_payload(x), src)
        out = allpairs_sort(m, ta, out_region=dst)
        assert np.allclose(out.payload[:, 0], np.sort(x))
        rows, cols = dst.rowmajor_coords(16)
        assert (out.rows == rows).all() and (out.cols == cols).all()

    def test_satellite_columns(self, rng):
        n = 25
        x = rng.random(n)
        m = SpatialMachine()
        payload = np.stack([x, np.arange(float(n)) * 10], axis=1)
        region = Region(0, 0, 8, 8)
        ta = m.place(payload, *region.rowmajor_coords(n))
        out = allpairs_sort(m, ta, key_cols=1)
        order = (out.payload[:, 1] / 10).astype(int)
        assert np.allclose(x[order], np.sort(x))


class TestAllPairsCosts:
    def test_lemma_v5_energy_exponent(self):
        """O(n^{5/2}) energy."""
        rng = np.random.default_rng(0)
        ns, es = [], []
        for n in (16, 64, 256):
            m, _ = _run(rng.random(n))
            ns.append(n)
            es.append(m.stats.energy)
        fit = fit_power_law(np.array(ns), np.array(es))
        assert 2.2 < fit.exponent < 2.8

    def test_lemma_v5_log_depth(self):
        rng = np.random.default_rng(0)
        for n in (16, 64, 256):
            m, out = _run(rng.random(n))
            assert out.max_depth() <= 4 * np.log2(n) + 8

    def test_lemma_v5_linear_distance(self):
        """O(n) distance: the exploded grid has diameter Θ(n)."""
        rng = np.random.default_rng(0)
        for n in (16, 64, 256):
            m, out = _run(rng.random(n))
            assert out.max_dist() <= 8 * n
