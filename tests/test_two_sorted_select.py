"""Tests for multiselection in two sorted arrays (Section V.C(c), Lemma V.6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fit_power_law
from repro.core.sorting.sortutil import as_sort_payload
from repro.core.sorting.two_sorted_select import (
    select_rank_two_sorted,
    select_ranks_two_sorted,
)
from repro.machine import Region, SpatialMachine


def _place(a, b):
    m = SpatialMachine()
    A = m.place_rowmajor(as_sort_payload(a), Region(0, 0, 64, 64))
    B = m.place_rowmajor(as_sort_payload(b), Region(0, 64, 64, 64))
    return m, A, B


def _expected_cuts(a, b, k):
    """Reference cuts under the (value, which-array, index) total order."""
    items = [(v, 0, i) for i, v in enumerate(a)] + [(v, 1, i) for i, v in enumerate(b)]
    items.sort()
    ca = sum(1 for t in items[:k] if t[1] == 0)
    return ca, k - ca


class TestSelectCorrectness:
    @pytest.mark.parametrize("na,nb", [(1, 1), (5, 3), (50, 50), (1, 200), (200, 1)])
    def test_shapes(self, na, nb, rng):
        a = np.sort(rng.standard_normal(na))
        b = np.sort(rng.standard_normal(nb))
        for k in {1, (na + nb) // 2, na + nb}:
            m, A, B = _place(a, b)
            s = select_rank_two_sorted(m, A, B, k)
            assert (s.cut_a, s.cut_b) == _expected_cuts(a, b, k)

    def test_random_sweep(self, rng):
        for _ in range(60):
            na, nb = rng.integers(1, 300, 2)
            a = np.sort(rng.integers(0, 40, na)).astype(float)
            b = np.sort(rng.integers(0, 40, nb)).astype(float)
            k = int(rng.integers(1, na + nb + 1))
            m, A, B = _place(a, b)
            s = select_rank_two_sorted(m, A, B, k)
            assert (s.cut_a, s.cut_b) == _expected_cuts(a, b, k)
            assert not s.used_fallback

    def test_all_duplicates(self):
        a = np.full(50, 1.0)
        b = np.full(70, 1.0)
        m, A, B = _place(a, b)
        s = select_rank_two_sorted(m, A, B, 60)
        # ties go A-first: the 60 smallest are all of A plus 10 of B
        assert (s.cut_a, s.cut_b) == (50, 10)

    def test_disjoint_ranges(self, rng):
        a = np.sort(rng.random(40))          # all < 1
        b = np.sort(rng.random(40)) + 10.0   # all > 10
        m, A, B = _place(a, b)
        s = select_rank_two_sorted(m, A, B, 40)
        assert (s.cut_a, s.cut_b) == (40, 0)
        s = select_rank_two_sorted(m, A, B, 41)
        assert (s.cut_a, s.cut_b) == (40, 1)

    def test_empty_array_edge(self, rng):
        a = np.sort(rng.random(20))
        m = SpatialMachine()
        A = m.place_rowmajor(as_sort_payload(a), Region(0, 0, 8, 8))
        B = A[0:0]
        s = select_rank_two_sorted(m, A, B, 7)
        assert (s.cut_a, s.cut_b) == (7, 0)

    def test_out_of_range_rejected(self, rng):
        a = np.sort(rng.random(4))
        m, A, B = _place(a, a)
        with pytest.raises(ValueError):
            select_rank_two_sorted(m, A, B, 9)
        with pytest.raises(ValueError):
            select_rank_two_sorted(m, A, B, 0)

    def test_multiselect_matches_singles(self, rng):
        na = nb = 128
        a = np.sort(rng.standard_normal(na))
        b = np.sort(rng.standard_normal(nb))
        ks = [64, 128, 192]
        m, A, B = _place(a, b)
        multi = select_ranks_two_sorted(m, A, B, ks)
        for k, s in zip(ks, multi):
            assert (s.cut_a, s.cut_b) == _expected_cuts(a, b, k)

    def test_multiselect_shares_sample_cost(self, rng):
        """Three ranks via one call must be cheaper than three calls."""
        na = nb = 256
        a = np.sort(rng.standard_normal(na))
        b = np.sort(rng.standard_normal(nb))
        ks = [128, 256, 384]
        m1, A1, B1 = _place(a, b)
        select_ranks_two_sorted(m1, A1, B1, ks)
        m3, A3, B3 = _place(a, b)
        for k in ks:
            select_rank_two_sorted(m3, A3, B3, k)
        assert m1.stats.energy < m3.stats.energy

    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=60),
        st.lists(st.integers(0, 20), min_size=1, max_size=60),
        st.integers(1, 120),
    )
    @settings(max_examples=60, deadline=None)
    def test_cut_property(self, xs, ys, kraw):
        a = np.sort(np.asarray(xs, dtype=float))
        b = np.sort(np.asarray(ys, dtype=float))
        k = 1 + (kraw - 1) % (len(a) + len(b))
        m, A, B = _place(a, b)
        s = select_rank_two_sorted(m, A, B, k)
        assert s.cut_a + s.cut_b == k
        # the chosen prefix is exactly the k smallest values (as a multiset)
        mine = np.sort(np.concatenate([a[: s.cut_a], b[: s.cut_b]]))
        merged = np.sort(np.concatenate([a, b]))
        assert np.allclose(mine, merged[:k])


class TestSelectCosts:
    def test_lemma_v6_energy_exponent(self):
        """O(n^{5/4}) energy."""
        rng = np.random.default_rng(0)
        ns, es = [], []
        for half in (256, 1024, 4096):
            a = np.sort(rng.standard_normal(half))
            b = np.sort(rng.standard_normal(half))
            m, A, B = _place(a, b)
            select_rank_two_sorted(m, A, B, half)
            ns.append(2 * half)
            es.append(m.stats.energy)
        fit = fit_power_law(np.array(ns), np.array(es))
        assert 1.0 < fit.exponent < 1.5

    def test_lemma_v6_log_depth(self):
        rng = np.random.default_rng(0)
        for half in (256, 1024):
            a = np.sort(rng.standard_normal(half))
            b = np.sort(rng.standard_normal(half))
            m, A, B = _place(a, b)
            s = select_rank_two_sorted(m, A, B, half)
            assert s.depth <= 12 * np.log2(2 * half)
