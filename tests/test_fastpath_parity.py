"""Fast-kernel parity: every batched machine API against its defining loop.

Each batched primitive (``send_many``, ``quadrant_broadcast``,
``quadrant_reduce``, the 1D/2D broadcasts) is *defined* as a sequential
composition of reference operations; the vectorized fast path must
reproduce payloads, per-value metadata, and every machine counter exactly.
These tests drive the pairs directly at the machine/collective layer —
below the algorithm level the conformance grid covers — so a divergence
pinpoints the kernel at fault.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collectives import broadcast_1d, broadcast_2d, reduce_2d
from repro.core.ops import ADD, MAX
from repro.machine import Region, ReferenceMachine, SpatialMachine

GRID = 16
coord = st.integers(min_value=0, max_value=GRID - 1)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def fast_machine() -> SpatialMachine:
    return SpatialMachine(fast=True, strict=False)


def assert_tracked_equal(a, b):
    assert a.payload.tobytes() == b.payload.tobytes()
    assert a.payload.shape == b.payload.shape and a.payload.dtype == b.payload.dtype
    np.testing.assert_array_equal(a.rows, b.rows)
    np.testing.assert_array_equal(a.cols, b.cols)
    np.testing.assert_array_equal(a.depth, b.depth)
    np.testing.assert_array_equal(a.dist, b.dist)


def assert_machines_equal(mr, mf):
    assert mr.stats == mf.stats
    assert mr.cost_tree.as_dict() == mf.cost_tree.as_dict()
    assert mr.recovery.as_dict() == mf.recovery.as_dict()


# ---------------------------------------------------------------------------
# send_many
# ---------------------------------------------------------------------------
@st.composite
def send_batches(draw, max_batches=4, max_len=12):
    k = draw(st.integers(min_value=0, max_value=max_batches))
    out = []
    for _ in range(k):
        n = draw(st.integers(min_value=0, max_value=max_len))
        out.append((
            np.array(draw(st.lists(coord, min_size=n, max_size=n))),
            np.array(draw(st.lists(coord, min_size=n, max_size=n))),
            np.array(draw(st.lists(coord, min_size=n, max_size=n))),
            np.array(draw(st.lists(coord, min_size=n, max_size=n))),
        ))
    return out


class TestSendManyParity:
    @settings(max_examples=60, deadline=None)
    @given(send_batches())
    def test_matches_sequential_sends(self, batches):
        def run(m):
            placed = [
                (m.place(np.arange(float(len(r0))), r0, c0), r1, c1)
                for r0, c0, r1, c1 in batches
            ]
            return m.send_many(placed)

        mr, mf = ReferenceMachine(), fast_machine()
        ref, fast = run(mr), run(mf)
        assert len(ref) == len(fast)
        for a, b in zip(ref, fast):
            assert_tracked_equal(a, b)
        assert_machines_equal(mr, mf)

    def test_each_batch_is_its_own_round(self):
        m = fast_machine()
        tas = [
            (m.place(np.ones(2), [0, 1], [0, 0]), np.array([0, 1]), np.array([3, 3]))
            for _ in range(3)
        ]
        m.send_many(tas)
        assert m.stats.rounds == 3


# ---------------------------------------------------------------------------
# quadrant broadcast / reduce
# ---------------------------------------------------------------------------
class TestQuadrantBroadcastParity:
    @settings(max_examples=40, deadline=None)
    @given(
        side=st.sampled_from([2, 4, 8]),
        scale=st.sampled_from([1, 2]),
        n=st.integers(min_value=1, max_value=6),
        seed=seeds,
    )
    def test_matches_doubling_loop(self, side, scale, n, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, GRID, n)
        cols = rng.integers(0, GRID, n)
        payload = rng.random((n, 2))
        d0 = rng.integers(0, 6, n)
        s0 = rng.integers(0, 6, n)

        def run(m):
            ta = m.place(payload, rows, cols)
            ta.depth[:] = d0
            ta.dist[:] = s0
            return m.quadrant_broadcast(ta, side, scale)

        mr, mf = ReferenceMachine(), fast_machine()
        ref, fast = run(mr), run(mf)
        assert_tracked_equal(ref, fast)
        assert_machines_equal(mr, mf)

    def test_side_one_is_identity(self):
        m = fast_machine()
        ta = m.place(np.ones(3), [0, 1, 2], [0, 0, 0])
        assert m.quadrant_broadcast(ta, 1) is ta
        assert m.stats.energy == 0


class TestQuadrantReduceParity:
    @settings(max_examples=40, deadline=None)
    @given(
        side=st.sampled_from([2, 4, 8]),
        seed=seeds,
        op=st.sampled_from([ADD, MAX]),
    )
    def test_reduce_2d_matches_level_loop(self, side, seed, op):
        """reduce_2d drives quadrant_reduce with the real Z-order layout."""
        region = Region(0, 0, side, side)
        x = np.random.default_rng(seed).random(side * side)

        def run(m):
            return reduce_2d(m, m.place_rowmajor(x, region), region, op)

        mr, mf = ReferenceMachine(), fast_machine()
        ref, fast = run(mr), run(mf)
        assert_tracked_equal(ref, fast)
        assert_machines_equal(mr, mf)

    @settings(max_examples=25, deadline=None)
    @given(
        side=st.sampled_from([2, 4]),
        nblocks=st.integers(min_value=1, max_value=3),
        seed=seeds,
    )
    def test_multi_block_reduce(self, side, nblocks, seed):
        """Several contiguous Z-ordered blocks reduced in one call — the
        layout quadrant_reduce documents (blocks contiguous, block-local
        Z-order within each)."""
        from repro.machine.machine import concat_tracked

        rng = np.random.default_rng(seed)
        xs = [rng.random(side * side) for _ in range(nblocks)]

        def run(m):
            blocks = [
                m.place_zorder(x, Region(0, b * side, side, side))
                for b, x in enumerate(xs)
            ]
            return m.quadrant_reduce(concat_tracked(blocks), side, np.maximum)

        mr, mf = ReferenceMachine(), fast_machine()
        ref, fast = run(mr), run(mf)
        assert_tracked_equal(ref, fast)
        assert_machines_equal(mr, mf)


# ---------------------------------------------------------------------------
# 1D / 2D broadcast collectives
# ---------------------------------------------------------------------------
class TestBroadcastParity:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.sampled_from([2, 3, 4, 7, 8, 16]),
        vertical=st.booleans(),
        width=st.integers(min_value=1, max_value=3),
        seed=seeds,
    )
    def test_broadcast_1d(self, n, vertical, width, seed):
        region = Region(0, 0, n, 1) if vertical else Region(0, 0, 1, n)
        payload = np.random.default_rng(seed).random((1, width))

        def run(m):
            v = m.place(payload, [region.row], [region.col])
            return broadcast_1d(m, v, region)

        mr, mf = ReferenceMachine(), fast_machine()
        ref, fast = run(mr), run(mf)
        assert_tracked_equal(ref, fast)
        assert_machines_equal(mr, mf)

    @settings(max_examples=25, deadline=None)
    @given(n=st.sampled_from([4, 8]), vertical=st.booleans())
    def test_broadcast_1d_off_root_value(self, n, vertical):
        """A value not at the region root must take the reference tree (the
        closed-form tables measure hops from the root) — regression for the
        guard that used to skip this check."""
        region = Region(0, 0, n, 1) if vertical else Region(0, 0, 1, n)

        def run(m):
            v = m.place(np.array([5.0]), [3], [5])
            return broadcast_1d(m, v, region)

        mr, mf = ReferenceMachine(), fast_machine()
        ref, fast = run(mr), run(mf)
        assert_tracked_equal(ref, fast)
        assert_machines_equal(mr, mf)

    @settings(max_examples=25, deadline=None)
    @given(side=st.sampled_from([2, 4, 8]), seed=seeds)
    def test_broadcast_2d(self, side, seed):
        region = Region(0, 0, side, side)
        payload = np.random.default_rng(seed).random(1)

        def run(m):
            v = m.place(payload, [0], [0])
            return broadcast_2d(m, v, region)

        mr, mf = ReferenceMachine(), fast_machine()
        ref, fast = run(mr), run(mf)
        assert_tracked_equal(ref, fast)
        assert_machines_equal(mr, mf)


# ---------------------------------------------------------------------------
# guard dispatch: impure machines must take the reference path
# ---------------------------------------------------------------------------
class TestGuardDispatch:
    @pytest.mark.parametrize(
        "kwargs",
        (
            {"strict": True},
            {"trace": True},
            {"profile": True},
        ),
        ids=("strict", "tracer", "profiler"),
    )
    def test_instrumented_machines_match_reference_counters(self, kwargs):
        side = 4
        region = Region(0, 0, side, side)
        x = np.random.default_rng(1).random(side * side)
        mi = SpatialMachine(fast=True, **kwargs)
        reduce_2d(mi, mi.place_rowmajor(x, region), region, ADD)
        mr = ReferenceMachine()
        reduce_2d(mr, mr.place_rowmajor(x, region), region, ADD)
        assert mi.stats == mr.stats
