"""Tests for the extended PRAM program library (list ranking, random programs)
and their spatial simulations."""

import numpy as np
import pytest

from repro.machine import SpatialMachine
from repro.pram import run_reference, simulate_crcw, simulate_erew
from repro.pram.programs import ListRankingCRCW, RandomExclusiveProgram


def _random_list(p, rng):
    """A random linked list over p nodes; returns (succ, order head->tail)."""
    order = rng.permutation(p)
    succ = np.empty(p, dtype=np.int64)
    for a, b in zip(order[:-1], order[1:]):
        succ[a] = b
    succ[order[-1]] = order[-1]
    return succ, order


class TestListRanking:
    @pytest.mark.parametrize("p", (2, 4, 16, 64))
    def test_reference_ranks(self, p, rng):
        succ, order = _random_list(p, rng)
        mem, _ = run_reference(ListRankingCRCW(succ), "CRCW")
        ranks = mem[p:]
        for i, v in enumerate(order):
            assert ranks[v] == p - 1 - i

    def test_tail_only_list(self):
        succ = np.array([0])
        mem, _ = run_reference(ListRankingCRCW(succ), "CRCW")
        assert mem[1] == 0

    def test_identity_list_all_tails(self):
        """Every node its own tail: all ranks zero."""
        succ = np.arange(8)
        mem, _ = run_reference(ListRankingCRCW(succ), "CRCW")
        assert (mem[8:] == 0).all()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ListRankingCRCW(np.array([5, 0]))

    def test_spatial_crcw_simulation(self, rng):
        p = 16
        succ, order = _random_list(p, rng)
        ref, _ = run_reference(ListRankingCRCW(succ), "CRCW")
        m = SpatialMachine()
        mem, _ = simulate_crcw(m, ListRankingCRCW(succ))
        assert np.allclose(mem.payload, ref)
        # concurrent tail reads exercised: depth is in the CRCW regime
        assert m.stats.max_depth > 10 * ListRankingCRCW(succ).steps

    def test_step_count_logarithmic(self):
        assert ListRankingCRCW(np.arange(64)).steps == 2 * 6


class TestRandomExclusivePrograms:
    @pytest.mark.parametrize("seed", range(6))
    def test_simulation_matches_reference(self, seed):
        """Property: the spatial EREW simulation agrees with the reference VM
        on arbitrary permutation-structured access patterns."""
        prog = RandomExclusiveProgram(16, steps=6, seed=seed)
        ref, ref_state = run_reference(
            RandomExclusiveProgram(16, steps=6, seed=seed), "EREW"
        )
        m = SpatialMachine()
        mem, state = simulate_erew(m, prog)
        assert np.allclose(mem.payload, ref)
        assert np.allclose(state["acc"], ref_state["acc"])

    def test_deterministic_given_seed(self):
        a = RandomExclusiveProgram(8, 4, seed=1)
        b = RandomExclusiveProgram(8, 4, seed=1)
        ma, _ = run_reference(a, "EREW")
        mb, _ = run_reference(b, "EREW")
        assert np.allclose(ma, mb)

    def test_different_seeds_differ(self):
        ma, _ = run_reference(RandomExclusiveProgram(8, 4, seed=1), "EREW")
        mb, _ = run_reference(RandomExclusiveProgram(8, 4, seed=2), "EREW")
        assert not np.allclose(ma, mb)

    def test_erew_cost_envelope(self):
        """Dense permutation traffic: energy ~ p x grid diameter per step."""
        prog = RandomExclusiveProgram(64, steps=4, seed=0)
        m = SpatialMachine()
        simulate_erew(m, prog)
        p = 64
        assert m.stats.energy <= 8 * p * 2 * np.sqrt(p) * prog.steps
        assert m.stats.max_depth <= 3 * prog.steps


class TestRandomConcurrentPrograms:
    @pytest.mark.parametrize("seed", range(5))
    def test_crcw_simulation_matches_reference(self, seed):
        """Property: the sort-based CRCW simulation agrees with the reference
        VM under heavy read AND write conflicts."""
        from repro.pram.programs import RandomConcurrentProgram

        prog = RandomConcurrentProgram(16, steps=4, seed=seed)
        ref, _ = run_reference(RandomConcurrentProgram(16, steps=4, seed=seed), "CRCW")
        m = SpatialMachine()
        mem, _ = simulate_crcw(m, prog)
        assert np.allclose(mem.payload, ref)

    def test_single_cell_pool_extreme_conflicts(self):
        """Every processor reads and writes the same cell every step."""
        from repro.pram.programs import RandomConcurrentProgram

        prog = RandomConcurrentProgram(16, steps=3, seed=0, pool=1)
        ref, _ = run_reference(
            RandomConcurrentProgram(16, steps=3, seed=0, pool=1), "CRCW"
        )
        m = SpatialMachine()
        mem, _ = simulate_crcw(m, prog)
        assert np.allclose(mem.payload, ref)
