"""Tests for the scan-based gather/scatter collectives (repro.core.gather)."""

import numpy as np
import pytest

from repro.core.gather import gather_masked, scatter_back, staging_square
from repro.machine import Region, SpatialMachine


class TestStagingSquare:
    @pytest.mark.parametrize("count,side", [(0, 1), (1, 1), (2, 2), (5, 4), (16, 4)])
    def test_sizes(self, count, side):
        r = staging_square(count, Region(3, 4, 8, 8))
        assert r.width == side and r.corner() == (3, 4)


class TestGatherMasked:
    def _setup(self, n, rng):
        m = SpatialMachine()
        side = int(np.sqrt(n))
        region = Region(0, 0, side, side)
        x = rng.standard_normal(n)
        return m, region, x, m.place_zorder(x, region)

    def test_order_preserved(self, rng):
        m, region, x, ta = self._setup(64, rng)
        mask = rng.random(64) < 0.4
        out = gather_masked(m, ta, mask, region)
        assert np.allclose(out.payload, x[mask])

    def test_parked_rowmajor_compact(self, rng):
        m, region, x, ta = self._setup(64, rng)
        mask = rng.random(64) < 0.3
        out = gather_masked(m, ta, mask, region)
        count = int(mask.sum())
        sq = staging_square(count, region)
        rows, cols = sq.rowmajor_coords(count)
        assert (out.rows == rows).all() and (out.cols == cols).all()

    def test_all_selected(self, rng):
        m, region, x, ta = self._setup(16, rng)
        out = gather_masked(m, ta, np.ones(16, dtype=bool), region)
        assert np.allclose(out.payload, x)

    def test_single_selected(self, rng):
        m, region, x, ta = self._setup(16, rng)
        mask = np.zeros(16, dtype=bool)
        mask[9] = True
        out = gather_masked(m, ta, mask, region)
        assert out.payload[0] == x[9]

    def test_custom_staging(self, rng):
        m, region, x, ta = self._setup(16, rng)
        mask = rng.random(16) < 0.5
        staging = Region(100, 100, 4, 4)
        out = gather_masked(m, ta, mask, region, staging=staging)
        assert out.rows.min() >= 100

    def test_metadata_includes_scan_chain(self, rng):
        """Gathered elements depend on the scan + broadcast: log-depth floor."""
        m, region, x, ta = self._setup(256, rng)
        mask = rng.random(256) < 0.2
        out = gather_masked(m, ta, mask, region)
        assert out.depth.min() >= int(np.log2(256) / 2)  # at least the scan

    def test_energy_linear(self, rng):
        """Θ(n) gather: scan + broadcast + O(sqrt n)-distance moves."""
        for n in (256, 1024, 4096):
            m, region, x, ta = self._setup(n, rng)
            mask = rng.random(n) < (3 / np.sqrt(n))  # sqrt-sized sample
            gather_masked(m, ta, mask, region)
            assert m.stats.energy <= 20 * n

    def test_wrong_length_rejected(self, rng):
        m, region, x, ta = self._setup(16, rng)
        with pytest.raises(ValueError):
            gather_masked(m, ta[:8], np.ones(8, dtype=bool), region)


class TestScatterBack:
    def test_roundtrip(self, rng):
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        x = rng.standard_normal(64)
        ta = m.place_zorder(x, region)
        mask = rng.random(64) < 0.5
        home_r, home_c = ta.rows[mask].copy(), ta.cols[mask].copy()
        staged = gather_masked(m, ta, mask, region)
        returned = scatter_back(m, staged, home_r, home_c)
        assert (returned.rows == home_r).all()
        assert np.allclose(returned.payload, x[mask])
