"""Cost-conformance regression: exact counters pinned for fixed seeds.

The simulator's energy/messages/depth/distance counters ARE the artifact this
repo produces — an accidental change to charging rules (an extra hop, a lost
zero-send guard, a reordered mergesort pass) silently shifts every reported
number.  These tests pin the exact counters of the four Table-I primitives on
fixed seeds against ``tests/golden/costs.json``.

A *deliberate* cost-model change regenerates the goldens:

    PYTHONPATH=src python tests/test_cost_snapshots.py --regen

and the diff of ``costs.json`` documents the shift for review.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.core.scan import scan
from repro.core.selection import rank_select
from repro.core.sorting.mergesort2d import sort_values
from repro.machine import Region, SpatialMachine
from repro.spmv import random_coo, spmv_spatial

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "costs.json"


def _snap(m: SpatialMachine) -> dict:
    s = m.stats
    return {
        "energy": s.energy,
        "messages": s.messages,
        "rounds": s.rounds,
        "max_depth": s.max_depth,
        "max_distance": s.max_distance,
        "phases": {
            r["path"]: r["inclusive_energy"]
            for r in m.cost_tree.flatten()
            if r["level"] <= 1  # top-level phases only: stable, reviewable
        },
    }


def _run_scan() -> dict:
    rng = np.random.default_rng(101)
    m = SpatialMachine()
    reg = Region(0, 0, 16, 16)
    scan(m, m.place_zorder(rng.random(256), reg), reg)
    return _snap(m)


def _run_mergesort2d() -> dict:
    rng = np.random.default_rng(202)
    m = SpatialMachine()
    sort_values(m, rng.random(256), Region(0, 0, 16, 16))
    return _snap(m)


def _run_selection() -> dict:
    rng = np.random.default_rng(303)
    m = SpatialMachine()
    reg = Region(0, 0, 16, 16)
    rank_select(m, m.place_zorder(rng.random(256), reg), reg, k=37, rng=rng)
    return _snap(m)


def _run_spmv() -> dict:
    rng = np.random.default_rng(404)
    m = SpatialMachine()
    A = random_coo(16, 64, rng)
    spmv_spatial(m, A, rng.standard_normal(16))
    return _snap(m)


CASES = {
    "scan_n256_seed101": _run_scan,
    "mergesort2d_n256_seed202": _run_mergesort2d,
    "selection_n256_k37_seed303": _run_selection,
    "spmv_n16_m64_seed404": _run_spmv,
}


def _golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.mark.parametrize("case", sorted(CASES))
def test_costs_match_golden(case):
    got = CASES[case]()
    want = _golden()[case]
    assert got == want, (
        f"cost counters drifted for {case}.\n  got:  {got}\n  want: {want}\n"
        "If the cost-model change is intentional, regenerate with\n"
        "  PYTHONPATH=src python tests/test_cost_snapshots.py --regen"
    )


def test_goldens_cover_all_cases():
    assert set(_golden()) == set(CASES)


def _regen() -> None:  # pragma: no cover - maintenance entry point
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    data = {name: fn() for name, fn in sorted(CASES.items())}
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        sys.exit("usage: python tests/test_cost_snapshots.py --regen")
