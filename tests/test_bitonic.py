"""Tests for the bitonic network baseline (paper Section V.B, Fig. 2)."""

import numpy as np
import pytest

from repro.analysis import fit_power_law, make_workload
from repro.core.sorting.bitonic import bitonic_merge, bitonic_sort
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine


def _sorted_on(m, x, region, **kw):
    ta = m.place_rowmajor(as_sort_payload(x), region)
    return bitonic_sort(m, ta, region, **kw)


class TestBitonicSortCorrectness:
    @pytest.mark.parametrize("n", (1, 4, 16, 64, 256, 1024))
    def test_uniform(self, n, rng):
        side = int(np.sqrt(n))
        m = SpatialMachine()
        x = rng.random(n)
        out = _sorted_on(m, x, Region(0, 0, side, side))
        assert np.allclose(out.payload[:, 0], np.sort(x))

    @pytest.mark.parametrize("kind", ("reversed", "sorted", "few_distinct", "zipf"))
    def test_workloads(self, kind, rng):
        n = 256
        x = make_workload(kind, n, rng)
        m = SpatialMachine()
        out = _sorted_on(m, x, Region(0, 0, 16, 16))
        assert np.allclose(out.payload[:, 0], np.sort(x))

    def test_rectangular_grid(self, rng):
        m = SpatialMachine()
        x = rng.random(128)
        out = _sorted_on(m, x, Region(0, 0, 8, 16))
        assert np.allclose(out.payload[:, 0], np.sort(x))

    def test_descending(self, rng):
        m = SpatialMachine()
        x = rng.random(64)
        out = _sorted_on(m, x, Region(0, 0, 8, 8), descending=True)
        assert np.allclose(out.payload[:, 0], np.sort(x)[::-1])

    def test_satellite_data_travels(self, rng):
        n = 64
        m = SpatialMachine()
        x = rng.random(n)
        payload = np.stack([x, np.arange(float(n))], axis=1)
        ta = m.place_rowmajor(payload, Region(0, 0, 8, 8))
        out = bitonic_sort(m, ta, Region(0, 0, 8, 8), key_cols=1)
        order = out.payload[:, 1].astype(int)
        assert np.allclose(x[order], np.sort(x))

    def test_output_in_rowmajor_cells(self, rng):
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        out = _sorted_on(m, rng.random(64), region)
        rows, cols = region.rowmajor_coords(64)
        assert (out.rows == rows).all() and (out.cols == cols).all()

    def test_non_pow2_rejected(self, rng):
        m = SpatialMachine()
        ta = m.place_rowmajor(as_sort_payload(rng.random(6)), Region(0, 0, 2, 3))
        with pytest.raises(ValueError):
            bitonic_sort(m, ta, Region(0, 0, 2, 3))


class TestBitonicMerge:
    def test_merges_bitonic_sequence(self, rng):
        a = np.sort(rng.random(32))
        b = np.sort(rng.random(32))[::-1]
        x = np.concatenate([a, b])
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        out = bitonic_merge(m, m.place_rowmajor(as_sort_payload(x), region), region)
        assert np.allclose(out.payload[:, 0], np.sort(x))

    def test_merge_depth_logarithmic(self, rng):
        n = 1024
        x = np.concatenate([np.sort(rng.random(n // 2)), np.sort(rng.random(n // 2))[::-1]])
        m = SpatialMachine()
        region = Region(0, 0, 32, 32)
        out = bitonic_merge(m, m.place_rowmajor(as_sort_payload(x), region), region)
        assert out.max_depth() == int(np.log2(n))


class TestDataObliviousness:
    def test_costs_independent_of_data(self, rng):
        """Sorting networks route identically for every input (Section V.B)."""
        region = Region(0, 0, 16, 16)
        stats = []
        for _ in range(3):
            m = SpatialMachine()
            _sorted_on(m, rng.random(256), region)
            stats.append((m.stats.energy, m.stats.messages, m.stats.max_depth))
        assert stats[0] == stats[1] == stats[2]


class TestBitonicCosts:
    def test_lemma_v4_energy_exponent(self):
        """Θ(n^{3/2} log n) on squares: fitted exponent above 3/2."""
        ns, es = [], []
        for side in (8, 16, 32, 64):
            n = side * side
            m = SpatialMachine()
            _sorted_on(m, np.random.default_rng(0).random(n), Region(0, 0, side, side))
            ns.append(n)
            es.append(m.stats.energy)
        fit = fit_power_law(np.array(ns), np.array(es))
        assert 1.45 < fit.exponent < 1.75
        # and the log factor is visible: energy / n^{1.5} grows
        norm = [e / n**1.5 for n, e in zip(ns, es)]
        assert norm[-1] > norm[0]

    def test_lemma_v4_depth(self):
        """Θ(log² n) depth: exactly log(n)(log(n)+1)/2 stages."""
        for n in (16, 256, 1024):
            side = int(np.sqrt(n))
            m = SpatialMachine()
            out = _sorted_on(
                m, np.random.default_rng(1).random(n), Region(0, 0, side, side)
            )
            ln = int(np.log2(n))
            assert out.max_depth() == ln * (ln + 1) // 2

    def test_lemma_v3_merge_energy_rectangles(self):
        """Θ(h²w + w²h) for a single merge."""
        rng = np.random.default_rng(2)

        def merge_energy(h, w):
            n = h * w
            x = np.concatenate(
                [np.sort(rng.random(n // 2)), np.sort(rng.random(n // 2))[::-1]]
            )
            m = SpatialMachine()
            region = Region(0, 0, h, w)
            bitonic_merge(m, m.place_rowmajor(as_sort_payload(x), region), region)
            return m.stats.energy

        # doubling h at fixed w should roughly quadruple the h²w term
        e1 = merge_energy(16, 16)
        e2 = merge_energy(32, 16)
        assert 2.5 < e2 / e1 < 5.0
