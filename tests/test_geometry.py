"""Unit tests for grid geometry (repro.machine.geometry)."""

import numpy as np
import pytest

from repro.machine.geometry import Region, manhattan, manhattan_arrays, square_region_for


class TestManhattan:
    def test_scalar(self):
        assert manhattan(0, 0, 3, 4) == 7
        assert manhattan(5, 5, 5, 5) == 0
        assert manhattan(2, 7, 0, 1) == 8

    def test_symmetry(self):
        assert manhattan(1, 2, 8, 3) == manhattan(8, 3, 1, 2)

    def test_arrays_broadcast(self):
        d = manhattan_arrays(np.array([0, 1]), np.array([0, 1]), 3, 4)
        assert d.tolist() == [7, 5]

    def test_arrays_dtype(self):
        d = manhattan_arrays(np.array([0]), np.array([0]), np.array([2]), np.array([2]))
        assert d.dtype == np.int64

    def test_triangle_inequality(self):
        rng = np.random.default_rng(1)
        a, b, c = rng.integers(0, 100, (3, 2, 50))
        dab = manhattan_arrays(a[0], a[1], b[0], b[1])
        dbc = manhattan_arrays(b[0], b[1], c[0], c[1])
        dac = manhattan_arrays(a[0], a[1], c[0], c[1])
        assert (dac <= dab + dbc).all()


class TestRegion:
    def test_basic_properties(self):
        r = Region(2, 3, 4, 8)
        assert r.size == 32
        assert not r.is_square
        assert r.row_end == 6
        assert r.col_end == 11
        assert r.diameter() == 3 + 7
        assert r.corner() == (2, 3)

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 0, -1, 4)

    def test_empty_region(self):
        r = Region(0, 0, 0, 5)
        assert r.size == 0
        assert r.diameter() == 0

    def test_contains(self):
        r = Region(1, 1, 2, 2)
        inside = r.contains(np.array([1, 2, 0, 1]), np.array([1, 2, 1, 3]))
        assert inside.tolist() == [True, True, False, False]

    def test_quadrants_z_order(self):
        r = Region(0, 0, 4, 4)
        tl, tr, bl, br = r.quadrants()
        assert tl == Region(0, 0, 2, 2)
        assert tr == Region(0, 2, 2, 2)
        assert bl == Region(2, 0, 2, 2)
        assert br == Region(2, 2, 2, 2)

    def test_quadrants_odd_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 0, 3, 4).quadrants()

    def test_halves(self):
        r = Region(0, 0, 4, 8)
        top, bottom = r.halves(axis=0)
        assert top == Region(0, 0, 2, 8)
        assert bottom == Region(2, 0, 2, 8)
        left, right = r.halves(axis=1)
        assert left == Region(0, 0, 4, 4)
        assert right == Region(0, 4, 4, 4)

    def test_rowmajor_roundtrip(self):
        r = Region(5, 7, 4, 6)
        rows, cols = r.rowmajor_coords()
        idx = r.rowmajor_index(rows, cols)
        assert (idx == np.arange(24)).all()

    def test_rowmajor_partial(self):
        r = Region(0, 0, 2, 4)
        rows, cols = r.rowmajor_coords(5)
        assert rows.tolist() == [0, 0, 0, 0, 1]
        assert cols.tolist() == [0, 1, 2, 3, 0]

    def test_rowmajor_overflow_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 0, 2, 2).rowmajor_coords(5)

    def test_rowmajor_coords_offset(self):
        r = Region(10, 20, 2, 2)
        rows, cols = r.rowmajor_coords()
        assert rows.min() == 10 and cols.min() == 20


class TestSquareRegionFor:
    @pytest.mark.parametrize("n,side", [(1, 1), (2, 2), (4, 2), (5, 4), (16, 4), (17, 8)])
    def test_sizes(self, n, side):
        r = square_region_for(n)
        assert r.width == side and r.height == side
        assert r.size >= n

    def test_anchor(self):
        r = square_region_for(10, row=3, col=4)
        assert r.corner() == (3, 4)
