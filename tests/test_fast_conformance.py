"""Differential conformance: fast machine vs the per-call reference oracle.

Every registered chaos algorithm runs twice per point — once on a
:class:`ReferenceMachine` (the executable specification: scalar sends,
sequential relays) and once on a fast :class:`SpatialMachine` (vectorized
kernels, closed-form charging) — with the same algorithm seed and, for
faulty profiles, identically seeded fault plans.  The fast path is an
optimization, never an approximation: payloads must be bit-identical and
every counter (energy, messages, rounds, max_depth, max_distance, the
per-phase cost tree, the recovery accounting) exactly equal.
"""

import numpy as np
import pytest

from repro.machine import Region, ReferenceMachine, SpatialMachine
from repro.runner.conformance import (
    CONFORMANCE_ALGOS,
    CONFORMANCE_PROFILES,
    conformance_plan,
    diff_point,
    run_conformance_pair,
    run_conformance_point,
)

SIDE = 8
SEEDS = (0, 1, 2)
#: the ISSUE's acceptance grid; ``mixed`` is exercised separately (1 seed)
#: to keep the suite's wall-clock in check.
CORE_PROFILES = ("clean", "drops", "corruption", "dead")


class TestConformanceGrid:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("profile", CORE_PROFILES)
    @pytest.mark.parametrize("algo", sorted(CONFORMANCE_ALGOS))
    def test_point(self, algo, profile, seed):
        report = run_conformance_point(algo, profile, side=SIDE, seed=seed)
        assert report["conformant"], diff_point(report)

    @pytest.mark.parametrize("algo", sorted(CONFORMANCE_ALGOS))
    def test_mixed_profile(self, algo):
        report = run_conformance_point(algo, "mixed", side=SIDE, seed=0)
        assert report["conformant"], diff_point(report)


class TestConformanceHarness:
    def test_profiles_cover_clean_and_all_chaos(self):
        assert CONFORMANCE_PROFILES == ("clean", "drops", "corruption", "dead", "mixed")

    def test_clean_profile_has_no_plan(self):
        assert conformance_plan("clean", 7, SIDE) is None
        assert conformance_plan("drops", 7, SIDE) is not None

    def test_unknown_algo_rejected(self):
        with pytest.raises(ValueError, match="unknown conformance algo"):
            run_conformance_point("nope", "clean")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown conformance profile"):
            run_conformance_point("scan", "nope")

    def test_pair_returns_both_machines(self):
        report, ref_m, fast_m = run_conformance_pair("scan", "clean", side=4)
        assert isinstance(ref_m, ReferenceMachine) and not ref_m.fast
        assert isinstance(fast_m, SpatialMachine) and fast_m.fast
        assert report["conformant"]

    def test_report_is_json_friendly(self):
        import json

        report = run_conformance_point("scan", "drops", side=4)
        json.dumps(report)

    def test_diff_point_names_divergent_counters(self):
        report = run_conformance_point("scan", "clean", side=4)
        report["conformant"] = False
        report["stats_equal"] = False
        report["fast_stats"] = dict(report["fast_stats"], energy=0)
        msg = diff_point(report)
        assert "stats differ" in msg and "energy" in msg

    def test_oracle_actually_detects_drift(self):
        """A deliberately perturbed fast run must fail the comparison —
        guards against the harness comparing a machine against itself."""
        from repro.runner.conformance import CONFORMANCE_ALGOS as ALGOS

        fn = ALGOS["scan"]
        ref_m = ReferenceMachine()
        fn(ref_m, SIDE, np.random.default_rng(0))
        fast_m = SpatialMachine(fast=True, strict=False)
        fn(fast_m, SIDE, np.random.default_rng(0))
        fast_m.stats.energy += 1
        assert ref_m.stats != fast_m.stats

    def test_fast_machine_takes_fast_paths(self):
        """The differential is only meaningful if the fast machine really
        executes the vectorized kernels: the clean-fast guard must hold."""
        m = SpatialMachine(fast=True, strict=False)
        assert m.fast and not m.strict and m.tracer is None and m.profiler is None

    def test_reference_machine_pins_reference_even_if_env_says_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_REFERENCE", raising=False)
        assert not ReferenceMachine().fast
        assert SpatialMachine().fast


class TestFastReferenceDuality:
    """Spot-checks of the machine-level duality outside the algo runners."""

    def test_env_flag_resolves_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFERENCE", "1")
        assert not SpatialMachine().fast
        monkeypatch.setenv("REPRO_REFERENCE", "0")
        assert SpatialMachine().fast

    def test_explicit_fast_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFERENCE", "1")
        assert SpatialMachine(fast=True).fast

    def test_strict_machine_matches_reference_counters(self):
        """Strict mode forces reference paths; its counters must equal the
        ReferenceMachine's (validation never changes accounting)."""
        from repro.core.scan import scan

        region = Region(0, 0, SIDE, SIDE)
        x = np.random.default_rng(3).random(SIDE * SIDE)
        ms = SpatialMachine(fast=True, strict=True)
        scan(ms, ms.place_zorder(x, region), region)
        mr = ReferenceMachine()
        scan(mr, mr.place_zorder(x, region), region)
        assert ms.stats == mr.stats
