"""Tests for Batcher's odd-even mergesort network (Section V.B family)."""

import itertools

import numpy as np
import pytest

from repro.analysis import make_workload
from repro.core.sorting.bitonic import bitonic_sort
from repro.core.sorting.odd_even import odd_even_mergesort, odd_even_stages
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine


class TestSchedule:
    @pytest.mark.parametrize("n", (2, 4, 8, 16))
    def test_zero_one_principle(self, n):
        """Exhaustive 0-1 check: the schedule is a valid sorting network."""
        stages = odd_even_stages(n)
        for bits in itertools.product([0, 1], repeat=n):
            a = list(bits)
            for pairs in stages:
                for lo, hi in pairs:
                    if a[lo] > a[hi]:
                        a[lo], a[hi] = a[hi], a[lo]
            assert a == sorted(a), bits

    @pytest.mark.parametrize("n", (4, 16, 64, 256))
    def test_stage_count_is_log_squared(self, n):
        ln = int(np.log2(n))
        assert len(odd_even_stages(n)) == ln * (ln + 1) // 2

    def test_stages_are_disjoint(self):
        for pairs in odd_even_stages(32):
            wires = [w for p in pairs for w in p]
            assert len(wires) == len(set(wires))


class TestSorting:
    @pytest.mark.parametrize("n", (1, 4, 16, 64, 256, 1024))
    def test_uniform(self, n, rng):
        side = int(np.sqrt(n))
        m = SpatialMachine()
        x = rng.random(n)
        region = Region(0, 0, side, side)
        out = odd_even_mergesort(m, m.place_rowmajor(as_sort_payload(x), region), region)
        assert np.allclose(out.payload[:, 0], np.sort(x))

    @pytest.mark.parametrize("kind", ("reversed", "few_distinct", "zipf"))
    def test_workloads(self, kind, rng):
        x = make_workload(kind, 64, rng)
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        out = odd_even_mergesort(m, m.place_rowmajor(as_sort_payload(x), region), region)
        assert np.allclose(out.payload[:, 0], np.sort(x))

    def test_satellite(self, rng):
        n = 64
        x = rng.random(n)
        payload = np.stack([x, np.arange(float(n))], axis=1)
        m = SpatialMachine()
        region = Region(0, 0, 8, 8)
        out = odd_even_mergesort(m, m.place_rowmajor(payload, region), region)
        order = out.payload[:, 1].astype(int)
        assert np.allclose(x[order], np.sort(x))

    def test_non_pow2_rejected(self, rng):
        m = SpatialMachine()
        ta = m.place_rowmajor(as_sort_payload(rng.random(6)), Region(0, 0, 2, 3))
        with pytest.raises(ValueError):
            odd_even_mergesort(m, ta, Region(0, 0, 2, 3))


class TestNetworkFamilyComparison:
    def test_same_depth_as_bitonic(self, rng):
        """Both Batcher networks have log(n)(log(n)+1)/2 stages."""
        n = 256
        region = Region(0, 0, 16, 16)
        x = rng.random(n)
        m1 = SpatialMachine()
        o1 = odd_even_mergesort(m1, m1.place_rowmajor(as_sort_payload(x), region), region)
        m2 = SpatialMachine()
        o2 = bitonic_sort(m2, m2.place_rowmajor(as_sort_payload(x), region), region)
        assert o1.max_depth() == o2.max_depth()

    def test_fewer_comparisons_than_bitonic(self, rng):
        """Odd-even performs fewer compare-exchanges (the classic fact),
        visible as fewer messages."""
        n = 256
        region = Region(0, 0, 16, 16)
        x = rng.random(n)
        m1 = SpatialMachine()
        odd_even_mergesort(m1, m1.place_rowmajor(as_sort_payload(x), region), region)
        m2 = SpatialMachine()
        bitonic_sort(m2, m2.place_rowmajor(as_sort_payload(x), region), region)
        assert m1.stats.messages < m2.stats.messages

    def test_energy_same_class_as_bitonic(self):
        """Both 1D networks pay the superlinear-in-n^{3/2} energy (Fig. 2's
        point is about 1D recursion, not the bitonic schedule)."""
        rng = np.random.default_rng(0)
        norms = []
        for side in (8, 16, 32):
            n = side * side
            region = Region(0, 0, side, side)
            m = SpatialMachine()
            odd_even_mergesort(
                m, m.place_rowmajor(as_sort_payload(rng.random(n)), region), region
            )
            norms.append(m.stats.energy / n**1.5)
        assert norms[-1] > norms[0]  # the log factor grows

    def test_data_oblivious(self, rng):
        region = Region(0, 0, 8, 8)
        stats = []
        for _ in range(2):
            m = SpatialMachine()
            odd_even_mergesort(
                m, m.place_rowmajor(as_sort_payload(rng.random(64)), region), region
            )
            stats.append((m.stats.energy, m.stats.messages))
        assert stats[0] == stats[1]
