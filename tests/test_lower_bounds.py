"""Tests for the permutation energy lower bound (Section V.A, Lemma V.1)."""

import numpy as np
import pytest

from repro.core.sorting.lower_bounds import (
    displacement_lower_bound,
    paper_lower_bound,
    reversal_permutation,
    route_permutation,
)
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine


class TestReversalPermutation:
    def test_is_involution(self):
        p = reversal_permutation(64)
        assert (p[p] == np.arange(64)).all()

    def test_displacement_exact_small(self):
        # 2x2 grid reversal: cells (0,0)<->(1,1) and (0,1)<->(1,0), each 2
        region = Region(0, 0, 2, 2)
        assert displacement_lower_bound(region, reversal_permutation(4)) == 8

    @pytest.mark.parametrize("side", (4, 8, 16, 32))
    def test_exact_bound_dominates_paper_formula(self, side):
        region = Region(0, 0, side, side)
        exact = displacement_lower_bound(region, reversal_permutation(side**2))
        assert exact >= paper_lower_bound(side, side)

    @pytest.mark.parametrize("side", (8, 16, 32, 64))
    def test_lemma_v1_scaling(self, side):
        """The reversal needs Ω(n^{3/2}) energy: bound / n^{3/2} is bounded
        away from 0 and from above."""
        region = Region(0, 0, side, side)
        n = side * side
        exact = displacement_lower_bound(region, reversal_permutation(n))
        assert 0.4 < exact / n**1.5 < 1.5

    def test_rectangular_case(self):
        """Lemma V.1 for h != w: the bound uses max(w,h)² * min(w,h)."""
        h, w = 16, 4
        region = Region(0, 0, h, w)
        exact = displacement_lower_bound(region, reversal_permutation(h * w))
        assert exact >= paper_lower_bound(h, w)


class TestRoutePermutation:
    def test_direct_routing_meets_floor_exactly(self, rng):
        region = Region(0, 0, 8, 8)
        perm = rng.permutation(64)
        lb = displacement_lower_bound(region, perm)
        m = SpatialMachine()
        ta = m.place_rowmajor(as_sort_payload(np.arange(64.0)), region)
        out = route_permutation(m, ta, region, perm)
        assert m.stats.energy == lb
        # element i ends at row-major cell perm[i]
        rows, cols = region.rowmajor_coords(64)
        assert (out.rows == rows[perm]).all()

    def test_identity_free(self):
        region = Region(0, 0, 4, 4)
        m = SpatialMachine()
        ta = m.place_rowmajor(as_sort_payload(np.arange(16.0)), region)
        route_permutation(m, ta, region, np.arange(16))
        assert m.stats.energy == 0

    def test_random_permutations_cheaper_than_reversal(self, rng):
        """The reversal is (near-)worst-case among permutations."""
        region = Region(0, 0, 16, 16)
        n = 256
        rev = displacement_lower_bound(region, reversal_permutation(n))
        for _ in range(10):
            r = displacement_lower_bound(region, rng.permutation(n))
            assert r <= rev
