"""Tests for Euler-tour tree computations (repro.trees)."""

import networkx as nx
import numpy as np
import pytest

from repro.machine import SpatialMachine
from repro.trees import SpatialTree, euler_tour


def _random_tree(n, rng):
    """Random tree as a parent array (node 0 is the root)."""
    parents = np.zeros(n, dtype=np.int64)
    for v in range(1, n):
        parents[v] = rng.integers(0, v)
    return parents


def _reference_depths(parents):
    n = len(parents)
    d = np.zeros(n, dtype=np.int64)
    for v in range(n):
        u, hops = v, 0
        while parents[u] != u:
            u = parents[u]
            hops += 1
        d[v] = hops
    return d


class TestEulerTour:
    def test_path_tour(self):
        parents = np.array([0, 0, 1, 2])
        tour, t_in, t_out = euler_tour(parents)
        assert len(tour) == 8
        # DFS: in/out are properly nested intervals
        for v in range(4):
            assert t_in[v] < t_out[v]

    def test_intervals_nested(self, rng):
        parents = _random_tree(30, rng)
        _, t_in, t_out = euler_tour(parents)
        for v in range(30):
            p = parents[v]
            if p != v:
                assert t_in[p] < t_in[v] < t_out[v] < t_out[p]

    def test_every_slot_used_once(self, rng):
        parents = _random_tree(20, rng)
        tour, t_in, t_out = euler_tour(parents)
        assert sorted(np.concatenate([t_in, t_out]).tolist()) == list(range(40))

    def test_no_root_rejected(self):
        with pytest.raises(ValueError):
            euler_tour(np.array([1, 0]))  # two-cycle, no self-root

    def test_two_roots_rejected(self):
        with pytest.raises(ValueError):
            euler_tour(np.array([0, 1]))


class TestTreefix:
    @pytest.mark.parametrize("n", (2, 8, 30, 100))
    def test_depths(self, n, rng):
        parents = _random_tree(n, rng)
        m = SpatialMachine()
        tree = SpatialTree(m, parents)
        assert np.allclose(tree.depths(), _reference_depths(parents))

    def test_rootfix_sum(self, rng):
        n = 40
        parents = _random_tree(n, rng)
        values = rng.standard_normal(n)
        m = SpatialMachine()
        tree = SpatialTree(m, parents)
        got = tree.rootfix_sum(values)
        for v in range(n):
            u, total = v, values[v]
            while parents[u] != u:
                u = parents[u]
                total += values[u]
            assert got[v] == pytest.approx(total)

    def test_subtree_sum(self, rng):
        n = 40
        parents = _random_tree(n, rng)
        values = rng.standard_normal(n)
        m = SpatialMachine()
        tree = SpatialTree(m, parents)
        got = tree.subtree_sum(values)
        # reference via networkx descendants
        g = nx.DiGraph((parents[v], v) for v in range(n) if parents[v] != v)
        g.add_node(0)
        for v in range(n):
            desc = nx.descendants(g, v) | {v}
            assert got[v] == pytest.approx(values[list(desc)].sum())

    def test_subtree_size_root_is_n(self, rng):
        n = 25
        parents = _random_tree(n, rng)
        m = SpatialMachine()
        tree = SpatialTree(m, parents)
        sizes = tree.subtree_size()
        assert sizes[0] == n
        # leaves have size 1
        leaves = set(range(n)) - set(parents[1:].tolist())
        for leaf in leaves:
            assert sizes[leaf] == 1

    def test_value_length_checked(self, rng):
        tree = SpatialTree(SpatialMachine(), _random_tree(8, rng))
        with pytest.raises(ValueError):
            tree.rootfix_sum(np.ones(9))


class TestSectionIIAClaim:
    def test_path_treefix_is_linear_energy(self):
        """Section II.A: on a path, the scan-based treefix costs Θ(n) energy —
        the Θ(log n) improvement over the prior treefix sums."""
        from repro.core.scan_baselines import tree_scan_1d
        from repro.machine import Region

        per_elem = []
        for n_nodes in (128, 512, 2048):
            parents = np.arange(-1, n_nodes - 1)
            parents[0] = 0
            m = SpatialMachine()
            tree = SpatialTree(m, parents)
            tree.rootfix_sum(np.ones(n_nodes))
            per_elem.append(m.stats.energy / (2 * n_nodes))
        assert max(per_elem) < 8  # linear energy
        assert per_elem[-1] < per_elem[0] * 1.3  # flat, not log-growing

    def test_depth_logarithmic(self, rng):
        n = 512
        parents = _random_tree(n, rng)
        m = SpatialMachine()
        tree = SpatialTree(m, parents)
        tree.depths()
        assert m.stats.max_depth <= 2 * np.log2(4 * n)
