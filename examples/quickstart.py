#!/usr/bin/env python3
"""Quickstart: the four Table I primitives on one page.

Runs the energy-optimal scan, the 2D mergesort, the randomized rank
selection and SpMV on small inputs, printing for each the measured model
costs (energy / depth / distance) next to the paper's bound.

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    Region,
    SpatialMachine,
    rank_select,
    scan,
    sort_values,
    spmv_spatial,
)
from repro.spmv import random_coo

rng = np.random.default_rng(7)


def show(name, bound, machine, depth, dist):
    print(
        f"{name:<18} energy={machine.stats.energy:>10}  depth={depth:>5}  "
        f"distance={dist:>6}   (paper: {bound})"
    )


def main() -> None:
    n = 4096
    side = 64
    region = Region(0, 0, side, side)
    x = rng.standard_normal(n)

    print(f"n = {n} elements on a {side}x{side} processor subgrid\n")

    # -- parallel scan (Section IV.C)
    m = SpatialMachine()
    res = scan(m, m.place_zorder(x, region), region)
    assert np.allclose(res.inclusive.payload, np.cumsum(x))
    show("parallel scan", "Θ(n) energy, O(log n) depth", m,
         res.inclusive.max_depth(), res.inclusive.max_dist())

    # -- 2D mergesort (Section V.C)
    m = SpatialMachine()
    out = sort_values(m, x, region)
    assert np.allclose(out.payload[:, 0], np.sort(x))
    show("2D mergesort", "Θ(n^1.5) energy, O(log³ n) depth", m,
         out.max_depth(), out.max_dist())

    # -- rank selection (Section VI)
    m = SpatialMachine()
    sel = rank_select(m, m.place_zorder(x, region), region, n // 2, rng)
    assert sel.value == np.sort(x)[n // 2 - 1]
    show("rank selection", "Θ(n) energy, O(log² n) depth w.h.p.", m,
         m.stats.max_depth, m.stats.max_distance)
    print(f"{'':<18} ({sel.iterations} sampling iterations, fallback={sel.fell_back})")

    # -- SpMV (Section VIII)
    nv = 64
    A = random_coo(nv, 4 * nv, rng)
    xv = rng.standard_normal(nv)
    m = SpatialMachine()
    y = spmv_spatial(m, A, xv)
    assert np.allclose(y.payload, A.multiply_dense(xv))
    show(f"SpMV (m={A.nnz})", "Θ(m^1.5) energy, O(log³ n) depth", m,
         m.stats.max_depth, m.stats.max_distance)

    print("\nAll results verified against NumPy references.")


if __name__ == "__main__":
    main()
