#!/usr/bin/env python3
"""ASCII rendition of Figure 1: the scan's Z-order summation tree.

Replays a traced scan on an 8x8 grid and draws, per tree level, which
processors host subtree roots (the i-th Z-order cell of each height-i
quadrant — Fig. 1a) and the message batches of the up- and down-sweep.

    python examples/scan_visualizer.py
"""

import numpy as np

from repro import Region, SpatialMachine, scan, zorder_coords

SIDE = 8


def render_hosts(region: Region, marks: dict[tuple[int, int], str]) -> str:
    lines = []
    for r in range(region.row, region.row_end):
        row = []
        for c in range(region.col, region.col_end):
            row.append(marks.get((r, c), "."))
        lines.append(" ".join(row))
    return "\n".join(lines)


def main() -> None:
    n = SIDE * SIDE
    region = Region(0, 0, SIDE, SIDE)
    machine = SpatialMachine(trace=True)
    data = machine.place_zorder(np.arange(float(n)), region)
    res = scan(machine, data, region)
    assert np.allclose(res.inclusive.payload, np.cumsum(np.arange(float(n))))

    zr, zc = zorder_coords(region)
    nlevels = int(np.log2(n) / 2)

    print("Fig. 1a — summation-tree hosts (digit = subtree height at that cell):")
    marks: dict[tuple[int, int], str] = {}
    for lvl in range(1, nlevels + 1):
        for b in range(n // 4**lvl):
            z = b * 4**lvl + lvl
            marks[(int(zr[z]), int(zc[z]))] = str(lvl)
    print(render_hosts(region, marks))

    print("\nMessage batches (first half = up-sweep, second half = down-sweep):")
    for i, batch in enumerate(machine.tracer.batches):
        phase = "up  " if i < len(machine.tracer.batches) // 2 else "down"
        d = batch.distances()
        print(
            f"  [{phase}] batch {i:>2}: {len(batch):>2} messages, "
            f"wire lengths {sorted(set(d.tolist()))}, energy {int(d.sum())}"
        )

    print(
        f"\ntotals: energy={machine.stats.energy} (Θ(n), n={n}), "
        f"depth={res.inclusive.max_depth()} (= 2·log4 n), "
        f"distance={res.inclusive.max_dist()} (O(√n))"
    )


if __name__ == "__main__":
    main()
