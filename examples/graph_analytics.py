#!/usr/bin/env python3
"""Graph analytics from semiring SpMV: components, BFS, degrees, statistics.

Builds a random graph and runs the :mod:`repro.apps` kernels — each round of
each kernel is one Section VIII SpMV over a different semiring — then
summarizes the degree distribution with Section VI order statistics.
Everything is cross-checked against networkx/NumPy.

    python examples/graph_analytics.py
"""

import networkx as nx
import numpy as np

from repro import Region, SpatialMachine
from repro.apps import (
    bfs_distances,
    connected_components,
    degree_table,
    median,
    quantile,
)
from repro.spmv import graph_adjacency_coo

N = 48


def main() -> None:
    rng = np.random.default_rng(9)
    A = graph_adjacency_coo(N, rng, kind="gnp")
    g = nx.from_scipy_sparse_array(A.to_scipy())
    print(f"graph: {N} vertices, {A.nnz // 2} edges")

    machine = SpatialMachine()

    # ---- connected components (MIN / select semiring)
    before = machine.snapshot()
    labels = connected_components(machine, A)
    for comp in nx.connected_components(g):
        comp = sorted(comp)
        assert (labels[comp] == min(comp)).all()
    n_comp = len(set(labels.tolist()))
    print(f"components: {n_comp}  (energy {machine.report(before).energy})")

    # ---- BFS from the first vertex of the largest component (MIN/+1)
    giant = max(nx.connected_components(g), key=len)
    src = min(giant)
    before = machine.snapshot()
    dist = bfs_distances(machine, A, source=src)
    ref = nx.single_source_shortest_path_length(g, src)
    assert all(dist[v] == ref.get(v, np.inf) for v in range(N))
    ecc = int(max(v for v in dist if np.isfinite(v)))
    print(f"BFS from {src}: eccentricity {ecc}  (energy {machine.report(before).energy})")

    # ---- degrees (ADD semiring) + order statistics of the degree sequence
    deg = degree_table(machine, A)
    assert all(deg[v] == g.degree(v) for v in range(N))

    side = 8
    region = Region(0, 0, side, side)
    padded = np.full(side * side, np.inf)
    padded[:N] = deg
    ta = machine.place_zorder(padded, region)
    med = median(machine, ta, region, rng)       # inf-padding sits above
    p90 = quantile(machine, ta, region, 0.9, rng)
    med_ref = np.sort(padded)[side * side // 2 - 1]
    assert med == med_ref
    print(f"degree stats: median(padded)={med:.0f}, p90(padded)={p90}")
    print(
        f"\ntotal spatial cost: energy={machine.stats.energy}, "
        f"depth={machine.stats.max_depth}, messages={machine.stats.messages}"
    )
    print("all kernels verified against networkx")


if __name__ == "__main__":
    main()
