#!/usr/bin/env python3
"""PageRank on the spatial machine — the graph-algorithms motivation.

The paper's introduction motivates the primitives with sparse workloads on
graphs.  This example builds a random directed graph, normalizes its
adjacency into the PageRank transition matrix, and runs power iterations
where every matrix-vector product is the paper's Section VIII SpMV on the
Spatial Computer Model.  Because the SpMV's two mergesorts do not depend on
the vector, the iterations use an :class:`~repro.spmv.planned.SpMVPlan`:
the sorts are paid once and every subsequent multiply is three orders of
magnitude cheaper — the iterative-solver regime.

    python examples/spmv_pagerank.py
"""

import numpy as np

from repro import SpatialMachine, spmv_spatial
from repro.spmv import plan_spmv
from repro.spmv.coo import COOMatrix

N_NODES = 64
DAMPING = 0.85
ITERATIONS = 8


def build_transition(rng) -> COOMatrix:
    """Random directed graph -> column-stochastic transition matrix."""
    import networkx as nx

    g = nx.gnp_random_graph(N_NODES, 6.0 / N_NODES, seed=11, directed=True)
    # every node needs an out-edge for column stochasticity
    for v in range(N_NODES):
        if g.out_degree(v) == 0:
            g.add_edge(v, int(rng.integers(0, N_NODES)))
    edges = np.asarray(g.edges(), dtype=np.int64)
    src, dst = edges[:, 0], edges[:, 1]
    outdeg = np.bincount(src, minlength=N_NODES).astype(np.float64)
    vals = 1.0 / outdeg[src]
    # transition matrix T[dst, src] = 1/outdeg(src)
    return COOMatrix(dst, src, vals, N_NODES)


def main() -> None:
    rng = np.random.default_rng(3)
    T = build_transition(rng)
    print(f"graph: {N_NODES} nodes, {T.nnz} edges")

    rank = np.full(N_NODES, 1.0 / N_NODES)
    reference = rank.copy()
    machine = SpatialMachine()

    # plan once: the two Section VIII mergesorts are independent of the
    # vector, so iterative methods pay them a single time
    before = machine.snapshot()
    plan = plan_spmv(machine, T)
    print(f"plan (2 mergesorts): energy={machine.report(before).energy}")

    for it in range(ITERATIONS):
        before = machine.snapshot()
        y = plan.apply(rank)
        rank = DAMPING * y.payload + (1 - DAMPING) / N_NODES
        reference = DAMPING * T.multiply_dense(reference) + (1 - DAMPING) / N_NODES
        assert np.allclose(rank, reference)
        delta = machine.report(before)
        print(
            f"iter {it}: energy={delta.energy:>9}  messages={delta.messages:>7}  "
            f"|Δrank|={np.abs(rank - reference).max():.2e}"
        )

    # one unplanned multiply for comparison
    before = machine.snapshot()
    spmv_spatial(machine, T, rank)
    print(f"(unplanned single SpMV for comparison: {machine.report(before).energy})")

    top = np.argsort(rank)[::-1][:5]
    print("\ntop-5 nodes by PageRank:")
    for v in top:
        print(f"  node {v:>3}: {rank[v]:.5f}")
    print(
        f"\ntotal spatial cost: energy={machine.stats.energy}, "
        f"max depth={machine.stats.max_depth}, max distance={machine.stats.max_distance}"
    )
    print("every iteration verified against the dense NumPy PageRank update")


if __name__ == "__main__":
    main()
