#!/usr/bin/env python3
"""A one-shot Table I scaling report.

Sweeps all four primitives over input sizes, fits the energy/distance
exponents with log-log regression, and prints a paper-style summary table —
a lighter version of the full benchmark harness, sized to run in seconds.

    python examples/energy_scaling_report.py
"""

import numpy as np

from repro import (
    Region,
    SpatialMachine,
    fit_power_law,
    rank_select,
    scan,
    sort_values,
    spmv_spatial,
)
from repro.analysis import render_table
from repro.spmv import random_coo

rng = np.random.default_rng(1)


def sweep_scan(sizes):
    es, ds = [], []
    for n in sizes:
        side = int(np.sqrt(n))
        region = Region(0, 0, side, side)
        m = SpatialMachine()
        res = scan(m, m.place_zorder(rng.random(n), region), region)
        es.append(m.stats.energy)
        ds.append(res.inclusive.max_dist())
    return es, ds


def sweep_sort(sizes):
    es, ds = [], []
    for n in sizes:
        side = int(np.sqrt(n))
        m = SpatialMachine()
        out = sort_values(m, rng.random(n), Region(0, 0, side, side))
        es.append(m.stats.energy)
        ds.append(out.max_dist())
    return es, ds


def sweep_select(sizes):
    es, ds = [], []
    for n in sizes:
        side = int(np.sqrt(n))
        region = Region(0, 0, side, side)
        m = SpatialMachine()
        rank_select(m, m.place_zorder(rng.random(n), region), region, n // 2, rng)
        es.append(m.stats.energy)
        ds.append(m.stats.max_distance)
    return es, ds


def sweep_spmv(sizes):
    es, ds = [], []
    for n in sizes:
        A = random_coo(int(np.sqrt(n)) * 4, n // 2, rng)
        m = SpatialMachine()
        spmv_spatial(m, A, rng.standard_normal(A.n))
        es.append(m.stats.energy)
        ds.append(m.stats.max_distance)
    return es, ds


def main() -> None:
    small = [64, 256, 1024, 4096]
    rows = []
    for name, sizes, sweep, e_paper, d_paper in (
        ("scan", small + [16384], sweep_scan, 1.0, 0.5),
        ("sort", small, sweep_sort, 1.5, 0.5),
        ("selection", small + [16384], sweep_select, 1.0, 0.5),
        ("spmv", small, sweep_spmv, 1.5, 0.5),
    ):
        es, ds = sweep(sizes)
        ns = np.asarray(sizes, dtype=float)
        efit = fit_power_law(ns, np.asarray(es, dtype=float))
        dfit = fit_power_law(ns, np.asarray(ds, dtype=float))
        rows.append(
            [
                name,
                f"n^{efit.exponent:.2f}",
                f"n^{e_paper:.1f}",
                f"{efit.r_squared:.4f}",
                f"n^{dfit.exponent:.2f}",
                f"n^{d_paper:.1f}",
            ]
        )
    print(
        render_table(
            ["primitive", "energy fit", "paper", "R²", "distance fit", "paper"],
            rows,
            title="Table I — fitted scaling exponents (quick sweep)",
        )
    )
    print(
        "\nNotes: sort/spmv fits run over small n where the O(n^{5/4})\n"
        "selection subroutines still contribute; the full benchmark harness\n"
        "(pytest benchmarks/ --benchmark-only) uses larger sweeps."
    )


if __name__ == "__main__":
    main()
