#!/usr/bin/env python3
"""Treefix queries from one scan each (the Section II.A connection).

Stores a random tree along its Euler tour (the spatially-optimized layout)
and answers classic treefix queries — depths, root-path sums, subtree sums
and sizes — each with a single energy-optimal scan.  On a path this is the
Θ(log n) energy improvement over prior spatial treefix sums that the paper
claims in Section II.A.

    python examples/tree_queries.py
"""

import numpy as np

from repro import SpatialMachine
from repro.trees import SpatialTree

N = 200


def main() -> None:
    rng = np.random.default_rng(13)
    parents = np.zeros(N, dtype=np.int64)
    for v in range(1, N):
        parents[v] = rng.integers(0, v)
    weights = rng.random(N)

    machine = SpatialMachine()
    tree = SpatialTree(machine, parents)
    print(f"tree: {N} nodes, Euler tour of {2 * N} slots on a "
          f"{tree.region.height}x{tree.region.width} subgrid\n")

    for name, query in (
        ("depths", lambda: tree.depths()),
        ("root-path weight", lambda: tree.rootfix_sum(weights)),
        ("subtree weight", lambda: tree.subtree_sum(weights)),
        ("subtree size", lambda: tree.subtree_size()),
    ):
        before = machine.snapshot()
        out = query()
        cost = machine.report(before)
        print(f"{name:<18} energy={cost.energy:>6}  messages={cost.messages:>6}  "
              f"sample: {np.round(out[:5], 3).tolist()}")

    # verify a couple of facts
    depths = tree.depths()
    sizes = tree.subtree_size()
    assert depths[0] == 0 and sizes[0] == N
    assert int(sizes.sum()) == sum(int(d) + 1 for d in depths)  # double count
    print("\nroot depth 0, root subtree covers all nodes — verified.")
    print(f"each query = one Θ(n)-energy scan (total energy {machine.stats.energy}).")


if __name__ == "__main__":
    main()
