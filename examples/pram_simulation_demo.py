#!/usr/bin/env python3
"""PRAM programs on the spatial machine (Section VII).

Runs the tree-sum and prefix-sum EREW programs and the fan-in CRCW program
through both the reference PRAM VM and the spatial simulations, printing the
Lemma VII.1 vs VII.2 cost split: EREW steps cost O(1) depth each, CRCW steps
pay a polylog factor for sort-based concurrency resolution.

    python examples/pram_simulation_demo.py
"""

import numpy as np

from repro import SpatialMachine
from repro.pram import (
    FanInMaxCRCW,
    PrefixDoublingScanEREW,
    TreeSumEREW,
    run_reference,
    simulate_crcw,
    simulate_erew,
)


def main() -> None:
    rng = np.random.default_rng(2)
    p = 64
    x = rng.standard_normal(p)

    print(f"p = {p} PRAM processors, {p} memory cells\n")

    # ---- EREW tree sum
    prog = TreeSumEREW(x)
    ref, _ = run_reference(prog, "EREW")
    m = SpatialMachine()
    mem, _ = simulate_erew(m, TreeSumEREW(x))
    assert np.allclose(mem.payload, ref)
    print(
        f"TreeSumEREW      ({prog.steps} steps): energy={m.stats.energy:>8}  "
        f"depth={m.stats.max_depth:>4}  (Lemma VII.1: O(T) depth)"
    )

    # ---- EREW prefix sum
    prog = PrefixDoublingScanEREW(x)
    m = SpatialMachine()
    mem, _ = simulate_erew(m, PrefixDoublingScanEREW(x))
    assert np.allclose(mem.payload, np.cumsum(x))
    print(
        f"PrefixScanEREW   ({prog.steps} steps): energy={m.stats.energy:>8}  "
        f"depth={m.stats.max_depth:>4}"
    )

    # ---- CRCW fan-in max (concurrent reads + concurrent writes)
    v = rng.standard_normal(p)
    rounds = FanInMaxCRCW.records_needed(v)
    prog = FanInMaxCRCW(v, rounds=rounds)
    ref, _ = run_reference(FanInMaxCRCW(v, rounds=rounds), "CRCW")
    m = SpatialMachine()
    mem, _ = simulate_crcw(m, prog)
    assert np.allclose(mem.payload, ref)
    assert mem.payload[0] == v.max()
    print(
        f"FanInMaxCRCW     ({prog.steps} steps): energy={m.stats.energy:>8}  "
        f"depth={m.stats.max_depth:>4}  (Lemma VII.2: O(T log³ p) depth)"
    )

    # ---- the same EREW program forced through the CRCW machinery
    m = SpatialMachine()
    simulate_crcw(m, TreeSumEREW(x))
    print(
        f"TreeSum via CRCW ({TreeSumEREW(x).steps} steps): energy={m.stats.energy:>8}  "
        f"depth={m.stats.max_depth:>4}  (sorting overhead visible)"
    )

    print(
        "\ntakeaway: simulation transfers PRAM algorithms wholesale, but the"
        "\nsort-based CRCW concurrency resolution costs a polylog depth factor —"
        "\nwhy Section VIII's direct SpMV beats its own PRAM-simulated variant."
    )


if __name__ == "__main__":
    main()
