#!/usr/bin/env python3
"""A GNN sort-pooling layer on the spatial machine.

The introduction motivates sorting with graph neural networks whose
SortPooling layer [Zhang et al., AAAI'18] orders node embeddings by a score
channel and keeps the top-k rows as a fixed-size readout.  This example runs
one message-passing round (an SpMV per feature channel) followed by a
SortPooling readout implemented with the energy-optimal 2D Mergesort, with
feature columns riding along as satellite data.

    python examples/gnn_sort_pooling.py
"""

import numpy as np

from repro import Region, SpatialMachine, mergesort_2d, spmv_spatial
from repro.spmv import graph_adjacency_coo

N_NODES = 64
N_FEATURES = 3
TOP_K = 10


def main() -> None:
    rng = np.random.default_rng(5)
    adj = graph_adjacency_coo(N_NODES, rng, kind="ba")
    feats = rng.standard_normal((N_NODES, N_FEATURES))
    machine = SpatialMachine()

    # ---- message passing: h' = tanh(A h), one SpMV per channel
    before = machine.snapshot()
    hidden = np.empty_like(feats)
    for c in range(N_FEATURES):
        y = spmv_spatial(machine, adj, feats[:, c])
        hidden[:, c] = np.tanh(y.payload)
    mp_cost = machine.report(before)
    print(
        f"message passing ({N_FEATURES} channels): energy={mp_cost.energy}, "
        f"messages={mp_cost.messages}"
    )

    # ---- SortPooling: order nodes by the last channel, keep top-k
    before = machine.snapshot()
    side = 8
    region = Region(0, 0, side, side)
    score = hidden[:, -1]
    payload = np.concatenate([-score[:, None], hidden], axis=1)  # descending
    ta = machine.place_rowmajor(payload, region)
    out = mergesort_2d(machine, ta, region, key_cols=1)
    pooled = out.payload[:TOP_K, 1:]
    pool_cost = machine.report(before)
    print(f"sort pooling: energy={pool_cost.energy}, messages={pool_cost.messages}")

    # ---- verify against NumPy
    want_order = np.argsort(-score, kind="stable")
    want = hidden[want_order[:TOP_K]]
    assert np.allclose(pooled, want)

    print(f"\ntop-{TOP_K} pooled node embeddings (by channel {N_FEATURES - 1} score):")
    for i, row in enumerate(pooled):
        print(f"  #{i}: " + "  ".join(f"{v:+.3f}" for v in row))
    print(
        f"\ntotal: energy={machine.stats.energy}, depth={machine.stats.max_depth} "
        f"(polylog in n — the readout never serializes the graph)"
    )


if __name__ == "__main__":
    main()
