#!/usr/bin/env python3
"""ASCII heatmaps of per-processor network load: spatial locality made visible.

Traces the energy-optimal 2D scan and the naive 1D binary-tree scan on the
same 16x16 grid, attributes each message's wire length to its source cell,
and renders both load profiles.  The 2D scan's load is low and flat (its
messages stay inside quadrants); the 1D tree concentrates long wires and an
order of magnitude more total load.

    python examples/cost_heatmap.py
"""

import numpy as np

from repro import Region, SpatialMachine, scan
from repro.core.scan_baselines import tree_scan_1d

SIDE = 16
SHADES = " .:-=+*#%@"


def render_heatmap(profile: dict, region: Region, scale_max: int) -> str:
    lines = []
    for r in range(region.row, region.row_end):
        cells = []
        for c in range(region.col, region.col_end):
            v = profile.get((r, c), 0)
            level = min(len(SHADES) - 1, int(v / max(scale_max, 1) * (len(SHADES) - 1)))
            cells.append(SHADES[level])
        lines.append(" ".join(cells))
    return "\n".join(lines)


def main() -> None:
    rng = np.random.default_rng(0)
    n = SIDE * SIDE
    region = Region(0, 0, SIDE, SIDE)
    x = rng.random(n)

    m2d = SpatialMachine(trace=True)
    res = scan(m2d, m2d.place_zorder(x, region), region)
    assert np.allclose(res.inclusive.payload, np.cumsum(x))
    prof2d = m2d.tracer.energy_by_cell("source")

    m1d = SpatialMachine(trace=True)
    out = tree_scan_1d(m1d, m1d.place_rowmajor(x, region), region)
    assert np.allclose(out.payload, np.cumsum(x))
    prof1d = m1d.tracer.energy_by_cell("source")

    scale = max(max(prof2d.values()), max(prof1d.values()))
    print(f"per-cell energy, shared scale (darkest = {scale} wire units)\n")
    print(f"2D scan — total energy {m2d.stats.energy}, max cell {max(prof2d.values())}:")
    print(render_heatmap(prof2d, region, scale))
    print(f"\n1D binary-tree scan — total energy {m1d.stats.energy}, "
          f"max cell {max(prof1d.values())}:")
    print(render_heatmap(prof1d, region, scale))
    print(
        f"\nenergy ratio 1D/2D: {m1d.stats.energy / m2d.stats.energy:.2f}x — "
        "the Θ(log n) factor of Section IV.C, spatially resolved."
    )


if __name__ == "__main__":
    main()
