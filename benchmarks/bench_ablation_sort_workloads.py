"""E-workloads — cost sensitivity of the sorters to the input distribution.

The networks are data-oblivious by construction; the mergesort's costs vary
only through its sample-based selections; the quicksort's through its
randomized splitters.  The bench sorts five distributions at one size and
prints each sorter's energy spread — small spreads mean the measured
exponents generalize beyond the uniform workload used in the Table I sweeps.
"""

import numpy as np

from repro.analysis import WORKLOADS, make_workload, render_table
from repro.core.sorting.bitonic import bitonic_sort
from repro.core.sorting.mergesort2d import sort_values
from repro.core.sorting.quicksort2d import quicksort_2d
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine

N = 1024
SIDE = 32


def _sweep(rng):
    rows = []
    for kind in WORKLOADS:
        x = make_workload(kind, N, rng)
        region = Region(0, 0, SIDE, SIDE)
        mm = SpatialMachine()
        out_m = sort_values(mm, x, region)
        mq = SpatialMachine()
        out_q = quicksort_2d(mq, x, region, np.random.default_rng(0))
        mb = SpatialMachine()
        out_b = bitonic_sort(mb, mb.place_rowmajor(as_sort_payload(x), region), region)
        for out in (out_m.payload[:, 0], out_q.payload, out_b.payload[:, 0]):
            assert np.allclose(out, np.sort(x)), kind
        rows.append(
            {
                "workload": kind,
                "mergesort E": mm.stats.energy,
                "quicksort E": mq.stats.energy,
                "bitonic E": mb.stats.energy,
                "merge depth": out_m.max_depth(),
                "quick depth": out_q.max_depth(),
            }
        )
    return rows


def test_ablation_sort_workloads(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title=f"Workload sensitivity of the sorters (n = {N})",
        )
    )
    # bitonic is exactly data-oblivious
    be = {r["bitonic E"] for r in rows}
    assert len(be) == 1
    # the quicksort's costs are near-oblivious (routing volume is fixed;
    # only the selection samples vary); the mergesort is the data-dependent
    # one: pre-sorted/reversed inputs shrink its routing by ~3x because the
    # rank splits barely move anything
    me = {r["workload"]: r["mergesort E"] for r in rows}
    qe = [r["quicksort E"] for r in rows]
    assert max(qe) / min(qe) < 1.5
    assert max(me.values()) / min(me.values()) < 4.0
    assert me["sorted"] < me["uniform"] and me["reversed"] < me["uniform"]
    report(
        "bitonic: identical costs (oblivious); quicksort within ~10%; the "
        "mergesort is the data-dependent one — pre-sorted inputs cost ~3x "
        "less routing. All stay in the Θ(n^{3/2}) class."
    )


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "ablation_sort_workloads",
    artifact="extension — sorter cost sensitivity to the input distribution",
    grid={"workload": list(WORKLOADS), "side": [16]},
    quick={"workload": ["uniform", "sorted"], "side": [8]},
)
def _suite_point(params, rng):
    side = params["side"]
    region = Region(0, 0, side, side)
    x = make_workload(params["workload"], side * side, rng)
    m = SpatialMachine()
    out = sort_values(m, x, region)
    assert np.allclose(out.payload[:, 0], np.sort(x))
    return point_from_machine(m, out_depth=out.max_depth())
