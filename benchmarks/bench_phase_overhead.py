"""Phase-accounting overhead — the observability layer must be ~free.

The phase-scoped cost tree charges every ``send``/``relay`` to the active
phase node: a dict lookup plus a few integer additions per *batch* (not per
message), so its wall-clock overhead should vanish against the numpy work a
batch already does.  This bench runs the Table-I-row-2 workload (2D
Mergesort, the most span-dense code path) with ``phases=True`` vs
``phases=False`` and reports the measured ratio.

The acceptance target is <10% overhead; the assertion bound is looser (25%)
so a noisy CI runner can't flake the suite — the *reported* ratio is the
artifact.  Best-of-``REPEATS`` timings shed scheduler noise.
"""

import time

import numpy as np

from repro.core.sorting.mergesort2d import sort_values
from repro.machine import Region, SpatialMachine

SIDE = 32  # n = 1024: big enough to time, small enough for CI
REPEATS = 5


def _run(rng_seed: int, phases: bool) -> float:
    rng = np.random.default_rng(rng_seed)
    x = rng.random(SIDE * SIDE)
    best = float("inf")
    for _ in range(REPEATS):
        m = SpatialMachine(phases=phases)
        t0 = time.perf_counter()
        sort_values(m, x, Region(0, 0, SIDE, SIDE))
        best = min(best, time.perf_counter() - t0)
    return best


def test_phase_overhead(benchmark, report):
    def measure():
        _run(1, phases=True)  # warm numpy / allocator before timing
        off = _run(1, phases=False)
        on = _run(1, phases=True)
        return on, off

    on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = on / off
    report(
        f"phase-accounting overhead on 2D Mergesort (n={SIDE * SIDE}): "
        f"phases=on {on * 1e3:.1f} ms, phases=off {off * 1e3:.1f} ms, "
        f"ratio {ratio:.3f} (target < 1.10)"
    )
    assert ratio < 1.25, f"phase accounting too expensive: {ratio:.3f}x"


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "phase_overhead",
    artifact="observability — phase accounting on/off (wall-clock is the artifact)",
    grid={"side": [32], "phases": [True, False]},
    quick={"side": [16], "phases": [True, False]},
)
def _suite_point(params, rng):
    side = params["side"]
    x = rng.random(side * side)
    m = SpatialMachine(phases=params["phases"])
    sort_values(m, x, Region(0, 0, side, side))
    return point_from_machine(m)
