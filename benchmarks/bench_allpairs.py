"""E-allpairs — Lemma V.5: All-Pairs Sort costs O(n^{5/2}) energy at O(log n)
depth and O(n) distance — cheap for sqrt-sized samples, hopeless in general."""

import numpy as np

from repro.analysis import fit_power_law, render_table
from repro.core.sorting.allpairs import allpairs_sort
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine

SIZES = [4, 16, 64, 256]


def _sweep(rng):
    rows = []
    for n in SIZES:
        side = 1
        while side * side < n:
            side *= 2
        region = Region(0, 0, side, side)
        x = rng.random(n)
        m = SpatialMachine()
        out = allpairs_sort(m, m.place_rowmajor(as_sort_payload(x), region), region)
        assert np.allclose(out.payload[:, 0], np.sort(x))
        rows.append(
            {
                "n": n,
                "energy": m.stats.energy,
                "E/n^2.5": m.stats.energy / n**2.5,
                "depth": out.max_depth(),
                "4log2(n)+8": 4 * int(np.log2(n)) + 8,
                "distance": out.max_dist(),
                "dist/n": out.max_dist() / n,
            }
        )
    return rows


def test_allpairs(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Lemma V.5 — All-Pairs Sort: O(n^2.5) energy, O(log n) depth, O(n) distance",
        )
    )
    ns = np.array([r["n"] for r in rows], dtype=float)
    fit = fit_power_law(ns, np.array([r["energy"] for r in rows]))
    report(f"energy exponent: {fit} (paper: 2.5)")
    assert 2.2 < fit.exponent < 2.8
    for r in rows:
        assert r["depth"] <= r["4log2(n)+8"]


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "allpairs",
    artifact="Lemma V.5 — All-Pairs Sort: O(n^2.5) E, O(log n) D, O(n) distance",
    grid={"n": [4, 16, 64, 256]},
    quick={"n": [4, 16]},
)
def _suite_point(params, rng):
    n = params["n"]
    side = 1
    while side * side < n:
        side *= 2
    region = Region(0, 0, side, side)
    x = rng.random(n)
    m = SpatialMachine()
    out = allpairs_sort(m, m.place_rowmajor(as_sort_payload(x), region), region)
    assert np.allclose(out.payload[:, 0], np.sort(x))
    return point_from_machine(m, out_depth=out.max_depth(), out_distance=out.max_dist())
