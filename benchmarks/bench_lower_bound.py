"""E-lower — Lemma V.1 / Corollary V.2: the permutation energy lower bound.

The row-reversal permutation needs >= max(w,h)²·min(w,h)/9 energy; sorting
realizes it, so sorting is Ω(n^{3/2}).  The bench prints the exact
displacement floor, the paper's closed form, the optimal direct routing
(which meets the floor exactly), and the measured 2D Mergesort energy on the
reversal input — certifying the mergesort's optimality up to constants.
"""

import numpy as np

from repro.analysis import render_table
from repro.core.sorting.lower_bounds import (
    displacement_lower_bound,
    paper_lower_bound,
    reversal_permutation,
    route_permutation,
)
from repro.core.sorting.mergesort2d import sort_values
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine

SIDES = [8, 16, 32, 64]


def _sweep():
    rows = []
    for side in SIDES:
        n = side * side
        region = Region(0, 0, side, side)
        perm = reversal_permutation(n)
        floor = displacement_lower_bound(region, perm)
        m_route = SpatialMachine()
        ta = m_route.place_rowmajor(as_sort_payload(np.arange(float(n))), region)
        route_permutation(m_route, ta, region, perm)
        m_sort = SpatialMachine()
        sort_values(m_sort, np.arange(n, 0, -1, dtype=float), region)
        rows.append(
            {
                "n": n,
                "paper h²w/9": round(paper_lower_bound(side, side)),
                "exact floor": floor,
                "floor/n^1.5": floor / n**1.5,
                "routed": m_route.stats.energy,
                "mergesort": m_sort.stats.energy,
                "sort/floor": m_sort.stats.energy / floor,
            }
        )
    return rows


def test_lower_bound(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Lemma V.1 / Cor. V.2 — permutation lower bound vs measured sort",
        )
    )
    for r in rows:
        assert r["routed"] == r["exact floor"]  # direct routing is optimal
        assert r["exact floor"] >= r["paper h²w/9"]
        assert r["mergesort"] >= r["exact floor"]
    # sort/floor overhead plateaus as n grows (same Θ(n^{3/2}) class); the
    # lower-order O(n^{5/4}) selection terms still bias small n upward
    overheads = [r["sort/floor"] for r in rows]
    assert overheads[-1] <= overheads[-2] * 1.15
    report(
        "mergesort energy / lower bound plateaus: both sides are "
        "Θ(n^{3/2}) — the sort is energy-optimal (Theorem V.8)."
    )


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "lower_bound",
    artifact="Lemma V.1 / Cor. V.2 — permutation energy floor vs measured sort",
    grid={"side": [8, 16, 32, 64]},
    quick={"side": [8]},
)
def _suite_point(params, rng):
    side = params["side"]
    n = side * side
    region = Region(0, 0, side, side)
    perm = reversal_permutation(n)
    floor = displacement_lower_bound(region, perm)
    m_route = SpatialMachine()
    ta = m_route.place_rowmajor(as_sort_payload(np.arange(float(n))), region)
    route_permutation(m_route, ta, region, perm)
    assert m_route.stats.energy == floor
    m_sort = SpatialMachine()
    sort_values(m_sort, np.arange(n, 0, -1, dtype=float), region)
    assert m_sort.stats.energy >= floor
    return point_from_machine(m_sort, floor=floor, routed_energy=m_route.stats.energy)
