"""Profiler overhead — opt-in cost, and a guarantee the default path is free.

``SpatialMachine(profile=True)`` folds every charged batch into per-cell
traffic grids, unrolls XY routes onto unit links, and retains compact hop
records for witness extraction.  That is real work — measured here at
roughly 4x wall-clock on 2D Mergesort, the most batch-dense code path
(thousands of tiny relay batches; vectorized codes like the scan pay the
same per-batch constant over far fewer batches).  Profiling is opt-in
observability, so the *reported* ratios are the artifact; the assertions
only catch pathological regressions (a per-fold ``np.unique(axis=0)`` once
made this 17x).

The guarantee this bench pins: with ``profile`` off (the default), the
machine carries no profiler at all — the fast path adds a single
``is None`` test per batch — so profiler-off timing is the baseline, not a
degraded mode.
"""

import time

import numpy as np

from repro.core.sorting.mergesort2d import sort_values
from repro.machine import Region, SpatialMachine, SpatialProfiler

SIDE = 16  # n = 256; mergesort's relay-heavy recursion is already ~3900 batches
REPEATS = 3


def _run(rng_seed: int, profile) -> float:
    rng = np.random.default_rng(rng_seed)
    x = rng.random(SIDE * SIDE)
    best = float("inf")
    for _ in range(REPEATS):
        m = SpatialMachine(profile=profile)
        t0 = time.perf_counter()
        sort_values(m, x, Region(0, 0, SIDE, SIDE))
        best = min(best, time.perf_counter() - t0)
    return best


def test_profiler_overhead(benchmark, report):
    def measure():
        _run(1, False)  # warm numpy / allocator before timing
        off = _run(1, False)
        grids = _run(1, SpatialProfiler(witnesses=False))
        full = _run(1, True)
        return off, grids, full

    off, grids, full = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        f"profiler overhead on 2D Mergesort (n={SIDE * SIDE}): "
        f"off {off * 1e3:.1f} ms, grids-only {grids * 1e3:.1f} ms "
        f"({grids / off:.2f}x), full {full * 1e3:.1f} ms ({full / off:.2f}x) "
        f"(opt-in; profile=False machines run the unchanged fast path)"
    )
    assert SpatialMachine().profiler is None, "profiling must be opt-in"
    assert SpatialMachine(profile=False).profiler is None
    # loose regression bounds: measured ~4.3x; a noisy runner must not flake
    assert full / off < 10.0, f"full profiling too expensive: {full / off:.2f}x"
    assert grids / off < 10.0, f"grid folding too expensive: {grids / off:.2f}x"


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "profiler_overhead",
    artifact="observability — profiler on/off (wall-clock is the artifact)",
    grid={"side": [16], "profile": [False, True]},
    quick={"side": [8], "profile": [False, True]},
)
def _suite_point(params, rng):
    side = params["side"]
    x = rng.random(side * side)
    m = SpatialMachine(profile=bool(params["profile"]))
    sort_values(m, x, Region(0, 0, side, side))
    return point_from_machine(m)
