"""F1 — Figure 1: structure of the energy-optimal scan's summation tree.

Fig. 1a: the up-sweep's height-i subtree roots sit at the i-th Z-order
position of their quadrant.  Fig. 1b: the down-sweep forwards prefixes from
each node to its children's hosts.  The bench replays a traced 8x8 scan,
verifies the message pattern against the figure's rule, and prints the
per-level message/energy breakdown (the geometric series behind Lemma IV.3).
"""

import numpy as np

from repro.analysis import render_table
from repro.core.scan import scan
from repro.machine import Region, SpatialMachine
from repro.machine.zorder import zorder_coords


def _trace_levels(side):
    n = side * side
    m = SpatialMachine(trace=True)
    region = Region(0, 0, side, side)
    scan(m, m.place_zorder(np.arange(float(n)), region), region)
    batches = m.tracer.batches
    rows = []
    for i, b in enumerate(batches):
        rows.append(
            {
                "batch": i,
                "phase": "up-sweep" if i < len(batches) // 2 else "down-sweep",
                "messages": len(b),
                "energy": int(b.distances().sum()),
                "max wire": int(b.distances().max()),
            }
        )
    return m, region, rows


def test_fig1_scan_tree(benchmark, report):
    m, region, rows = benchmark.pedantic(lambda: _trace_levels(8), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Figure 1 — scan up/down-sweep message batches on an 8x8 grid",
        )
    )
    # Fig. 1a rule: the root of the height-i subtree of block b is hosted at
    # Z-position b + i; every up-sweep message must land on such a host.
    n = region.size
    zr, zc = zorder_coords(region)
    nlevels = int(np.log2(n) / 2)
    hosts = set()
    for lvl in range(1, nlevels + 1):
        for b in range(n // 4**lvl):
            z = b * 4**lvl + lvl
            hosts.add((int(zr[z]), int(zc[z])))
    n_up = len(m.tracer.batches) // 2
    for batch in m.tracer.batches[:n_up]:
        dsts = set(zip(batch.dst_rows.tolist(), batch.dst_cols.tolist()))
        assert dsts <= hosts, "up-sweep receiver off the Fig. 1a host set"
    # per-level energy forms a (roughly) geometric series: total is linear
    up_energy = sum(r["energy"] for r in rows if r["phase"] == "up-sweep")
    assert up_energy <= 4 * n
    report(f"up-sweep energy {up_energy} <= 4n = {4 * n} (Lemma IV.3 envelope)")


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "fig1_scan_tree",
    artifact="Figure 1 — scan summation-tree message batches (Lemma IV.3 envelope)",
    grid={"side": [4, 8, 16]},
    quick={"side": [4]},
)
def _suite_point(params, rng):
    m, region, rows = _trace_levels(params["side"])
    up_energy = sum(r["energy"] for r in rows if r["phase"] == "up-sweep")
    assert up_energy <= 4 * region.size
    return point_from_machine(m, up_energy=up_energy, batches=len(rows))
