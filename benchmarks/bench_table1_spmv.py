"""T1-spmv — Table I row 4 / Theorem VIII.2.

Claim: SpMV with m = Θ(n) non-zeros costs Θ(m^{3/2}) energy, O(log³ n)
depth, Θ(sqrt(m)) distance.  Sweeps n at fixed density across matrix kinds.
"""

import numpy as np

from repro.analysis import render_table, tail_exponent
from repro.machine import SpatialMachine
from repro.spmv import banded_coo, graph_adjacency_coo, random_coo, spmv_spatial

NS = [16, 32, 64, 128, 256]


def _sweep(rng):
    rows = []
    for n in NS:
        A = random_coo(n, 4 * n, rng)
        x = rng.standard_normal(n)
        m = SpatialMachine()
        y = spmv_spatial(m, A, x)
        assert np.allclose(y.payload, A.multiply_dense(x))
        rows.append(
            {
                "n": n,
                "nnz": A.nnz,
                "energy": m.stats.energy,
                "E/m^1.5": m.stats.energy / A.nnz**1.5,
                "depth": m.stats.max_depth,
                "log2(m)^3": round(np.log2(A.nnz) ** 3),
                "dist/sqrt(m)": m.stats.max_distance / np.sqrt(A.nnz),
            }
        )
    return rows


def _matrix_kinds(rng):
    n = 64
    x = rng.standard_normal(n)
    rows = []
    for name, A in (
        ("random", random_coo(n, 4 * n, rng)),
        ("banded(b=2)", banded_coo(n, 2, rng)),
        ("graph-gnp", graph_adjacency_coo(n, rng, "gnp")),
        ("graph-ba", graph_adjacency_coo(n, rng, "ba")),
    ):
        m = SpatialMachine()
        y = spmv_spatial(m, A, x)
        assert np.allclose(y.payload, A.multiply_dense(x))
        rows.append(
            {
                "matrix": name,
                "nnz": A.nnz,
                "energy": m.stats.energy,
                "E/m^1.5": m.stats.energy / A.nnz**1.5,
                "depth": m.stats.max_depth,
            }
        )
    return rows


def test_table1_spmv_scaling(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Table I row 4 — SpMV (m = Θ(n)): Θ(m^1.5) energy, O(log³ n) depth",
        )
    )
    ms = np.array([r["nnz"] for r in rows], dtype=float)
    exp = tail_exponent(ms, np.array([r["energy"] for r in rows]), points=3)
    report(f"energy tail exponent: {exp:.3f} (paper: 1.5)")
    assert 1.2 < exp < 1.9
    for r in rows:
        assert r["depth"] <= 2 * r["log2(m)^3"]


def test_table1_spmv_matrix_kinds(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _matrix_kinds(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="SpMV across matrix structures (Section VIII workloads)",
        )
    )
    # all kinds stay in the sort-dominated regime (comparable E/m^1.5)
    norms = [r["E/m^1.5"] for r in rows]
    assert max(norms) / min(norms) < 8


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "table1_spmv",
    artifact="Table I row 4 — SpMV (m=Θ(n)): Θ(m^1.5) E, O(log³ n) D",
    grid={"n": [16, 32, 64, 128, 256]},
    quick={"n": [16, 32]},
)
def _suite_point(params, rng):
    n = params["n"]
    A = random_coo(n, 4 * n, rng)
    x = rng.standard_normal(n)
    m = SpatialMachine()
    y = spmv_spatial(m, A, x)
    assert np.allclose(y.payload, A.multiply_dense(x))
    return point_from_machine(m, nnz=A.nnz)
