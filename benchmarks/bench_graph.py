"""Graph-analytics workloads — iterated SpMV/scan rounds against the bounds.

Each graph algorithm (CC, BFS, PageRank) is a loop of Θ(m^{3/2})-energy,
polylog-depth semiring SpMV rounds (Theorem VIII.2), every iteration inside
its own ``machine.phase("round_###")`` span.  The suite sweeps
generator × size × algo, records the per-iteration phase rows, and the
analysis fits the measured *per-round* energy against the Θ(m^{3/2}) bound
with :func:`repro.analysis.tail_exponent` — the flat totals also multiply in
the data-dependent round count, so the bound check lives on the per-round
figures that the CostTree attribution makes available.
"""

import numpy as np

from repro.analysis import render_table, tail_exponent
from repro.graphs import (
    bfs_distances,
    bfs_reference,
    cc_reference,
    connected_components,
    generate_graph,
    iteration_costs,
    pagerank,
    pagerank_reference,
)
from repro.machine import SpatialMachine
from repro.runner import point_from_machine, register_suite

#: pagerank scaling sizes for the exponent fit (full sweep)
SCALING_NS = [64, 144, 256, 400]
#: pagerank scaling sizes for the quick/CI fit
QUICK_SCALING_NS = [16, 36, 64]


def _run_graph_point(algo, generator, n, rounds, rng):
    """One measured run; returns (machine, per-round rows, nnz, extras)."""
    adjacency = generate_graph(generator, n, rng)
    m = SpatialMachine()
    if algo == "cc":
        labels = connected_components(m, adjacency)
        assert np.array_equal(labels, cc_reference(adjacency))
        extra = {"components": int(len(np.unique(labels)))}
        phase = "cc"
    elif algo == "bfs":
        dist = bfs_distances(m, adjacency, 0)
        assert np.array_equal(dist, bfs_reference(adjacency, 0))
        extra = {"reached": int(np.isfinite(dist).sum())}
        phase = "bfs"
    elif algo == "pagerank":
        # tol=0 pins the round count, keeping the point deterministic and
        # the per-round energies directly comparable across sizes
        res = pagerank(m, adjacency, tol=0.0, max_rounds=rounds)
        ref = pagerank_reference(adjacency, tol=0.0, max_rounds=rounds)
        assert np.allclose(res.ranks, ref.ranks, rtol=1e-9, atol=1e-12)
        extra = {"residual": float(res.residual)}
        phase = "pagerank"
    else:
        raise ValueError(f"unknown graph algo {algo!r}")
    rows = iteration_costs(m.cost_tree, phase)
    assert rows, f"{algo} ran no round_### phases"
    # lossless decomposition: the tree's root-inclusive totals are the flat
    # MachineStats counters, so per-iteration rows sum exactly to them
    total = m.cost_tree.total()
    assert total.energy == m.stats.energy
    assert total.messages == m.stats.messages
    return m, rows, adjacency.nnz, extra


def _scaling_rows(rng, ns, rounds=2):
    rows = []
    for n in ns:
        m, its, nnz, _ = _run_graph_point("pagerank", "rmat", n, rounds, rng)
        round_energy = float(np.mean([r["energy"] for r in its]))
        rows.append(
            {
                "n": n,
                "nnz": nnz,
                "rounds": len(its),
                "round E": round(round_energy),
                "E/m^1.5": round_energy / nnz**1.5,
                "depth": m.stats.max_depth,
                "log2(m)^3": round(np.log2(nnz) ** 3),
            }
        )
    return rows


def test_graph_round_energy_exponent(benchmark, report, rng):
    """Per-round PageRank energy follows the SpMV Θ(m^{3/2}) bound."""
    rows = benchmark.pedantic(lambda: _scaling_rows(rng, SCALING_NS), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="graph workloads — per-round PageRank energy vs Θ(m^1.5)",
        )
    )
    ms = np.array([r["nnz"] for r in rows], dtype=float)
    es = np.array([r["round E"] for r in rows], dtype=float)
    exp = tail_exponent(ms, es, points=3)
    report(f"per-round energy tail exponent: {exp:.3f} (paper: 1.5)")
    assert 1.2 < exp < 1.9
    for r in rows:
        assert r["depth"] <= 4 * r["log2(m)^3"]


def test_graph_phase_conservation(benchmark, report, rng):
    """Per-iteration spans decompose the flat counters losslessly."""

    def _sweep():
        rows = []
        for algo, generator in (
            ("cc", "grid"),
            ("bfs", "powerlaw"),
            ("pagerank", "rmat"),
        ):
            m, its, nnz, _ = _run_graph_point(algo, generator, 16, 2, rng)
            flat = m.cost_tree.flatten()
            by_path = {r["path"]: r for r in flat}
            root = by_path["total"]
            assert root["inclusive_energy"] == m.stats.energy
            assert root["inclusive_messages"] == m.stats.messages
            # every unit of energy is attributed to some phase's self row
            assert sum(r["self_energy"] for r in flat) == m.stats.energy
            rows.append([algo, generator, nnz, len(its), m.stats.energy])
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        render_table(
            ["algo", "generator", "nnz", "rounds", "energy"],
            rows,
            title="graph workloads — phase-tree conservation",
        )
    )


# -- repro.runner suite ----------------------------------------------------
_FULL_GRID = [
    # generator x algo cross-section at one size
    *[
        {"algo": algo, "generator": gen, "n": 64, "rounds": 3}
        for algo in ("cc", "bfs", "pagerank")
        for gen in ("rmat", "grid", "powerlaw")
    ],
    # pagerank/rmat scaling axis for the exponent fit
    *[{"algo": "pagerank", "generator": "rmat", "n": n, "rounds": 2} for n in SCALING_NS],
]

_QUICK_GRID = [
    {"algo": "cc", "generator": "grid", "n": 16, "rounds": 2},
    {"algo": "bfs", "generator": "powerlaw", "n": 16, "rounds": 2},
    *[
        {"algo": "pagerank", "generator": "rmat", "n": n, "rounds": 2}
        for n in QUICK_SCALING_NS
    ],
]


@register_suite(
    "graph",
    artifact="Graph workloads (CC/BFS/PageRank): Θ(m^1.5) E per round, polylog D",
    grid=_FULL_GRID,
    quick=_QUICK_GRID,
)
def _suite_point(params, rng):
    # the service dispatches bare {"n": n} requests at this suite, so every
    # other axis defaults to the scaling workload
    algo = params.get("algo", "pagerank")
    generator = params.get("generator", "rmat")
    n = params["n"]
    rounds = params.get("rounds", 2)
    m, rows, nnz, extra = _run_graph_point(algo, generator, n, rounds, rng)
    energies = [r["energy"] for r in rows]
    return point_from_machine(
        m,
        algo=algo,
        generator=generator,
        nnz=nnz,
        rounds_run=len(rows),
        round_energy_mean=float(np.mean(energies)),
        round_energy_max=int(max(energies)),
        **extra,
    )
