"""E-planned — iterative-workload extension: sort once, multiply many times.

The Section VIII SpMV's two mergesorts are independent of ``x``; a plan pays
them once and each subsequent multiply only fetches, broadcasts, routes along
the precomputed permutation and scans.  The bench measures the plan cost,
the per-apply cost, and the break-even iteration count against re-running
the full algorithm every time (the PageRank scenario).
"""

import numpy as np

from repro.analysis import render_table
from repro.machine import SpatialMachine
from repro.spmv import plan_spmv, random_coo, spmv_spatial

NS = [16, 32, 64, 128]


def _sweep(rng):
    rows = []
    for n in NS:
        A = random_coo(n, 4 * n, rng)
        x = rng.standard_normal(n)
        want = A.multiply_dense(x)

        m = SpatialMachine()
        plan = plan_spmv(m, A)
        plan_e = m.stats.energy
        before = m.snapshot()
        y = plan.apply(x)
        assert np.allclose(y.payload, want)
        apply_e = m.stats.energy - before.energy

        m2 = SpatialMachine()
        spmv_spatial(m2, A, x)
        full_e = m2.stats.energy

        breakeven = plan_e / max(full_e - apply_e, 1)
        rows.append(
            {
                "n": n,
                "nnz": A.nnz,
                "plan E": plan_e,
                "apply E": apply_e,
                "full E": full_e,
                "full/apply": full_e / apply_e,
                "break-even iters": breakeven,
            }
        )
    return rows


def test_ablation_planned_spmv(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Extension — planned SpMV: amortizing the Section VIII sorts",
        )
    )
    for r in rows:
        assert r["full/apply"] > 20  # two mergesorts vs one routed permutation
        assert r["break-even iters"] < 2.1  # planning pays off almost instantly
    report(
        "a plan costs about one full SpMV and every further multiply is "
        ">20x cheaper — the iterative-solver regime (PageRank, CG)."
    )


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "ablation_planned_spmv",
    artifact="extension — planned SpMV: plan once, multiply many times",
    grid={"n": [16, 32, 64, 128]},
    quick={"n": [16]},
)
def _suite_point(params, rng):
    n = params["n"]
    A = random_coo(n, 4 * n, rng)
    x = rng.standard_normal(n)
    want = A.multiply_dense(x)
    m = SpatialMachine()
    plan = plan_spmv(m, A)
    plan_energy = m.stats.energy
    before = m.snapshot()
    y = plan.apply(x)
    assert np.allclose(y.payload, want)
    apply_energy = m.stats.energy - before.energy
    return point_from_machine(m, plan_energy=plan_energy, apply_energy=apply_energy)
