"""E-spmv-pram — Section VIII: direct SpMV vs the PRAM-simulation route.

The PRAM route (CRCW SpMV program through Lemma VII.2) achieves O(m^{3/2})
energy but O(log⁴ n) depth and O(sqrt(m) log n) distance; the direct
algorithm improves depth and distance by ~a log factor.  The bench prints
both on the same matrices.
"""

import numpy as np

from repro.analysis import render_table
from repro.machine import SpatialMachine
from repro.spmv import random_coo, spmv_pram_simulated, spmv_spatial

NS = [8, 16, 32]


def _sweep(rng):
    rows = []
    for n in NS:
        A = random_coo(n, 3 * n, rng)
        x = rng.standard_normal(n)
        want = A.multiply_dense(x)
        m_d = SpatialMachine()
        y_d = spmv_spatial(m_d, A, x)
        m_p = SpatialMachine()
        y_p = spmv_pram_simulated(m_p, A, x)
        assert np.allclose(y_d.payload, want) and np.allclose(y_p, want)
        rows.append(
            {
                "n": n,
                "nnz": A.nnz,
                "direct depth": m_d.stats.max_depth,
                "PRAM depth": m_p.stats.max_depth,
                "depth win": m_p.stats.max_depth / m_d.stats.max_depth,
                "direct dist": m_d.stats.max_distance,
                "PRAM dist": m_p.stats.max_distance,
                "direct E": m_d.stats.energy,
                "PRAM E": m_p.stats.energy,
            }
        )
    return rows


def test_spmv_baseline(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Section VIII — direct SpMV vs CRCW-PRAM-simulated SpMV",
        )
    )
    # the direct algorithm wins depth and distance on every size
    for r in rows:
        assert r["direct depth"] < r["PRAM depth"]
        assert r["direct dist"] < r["PRAM dist"]
    # and the win grows with n (the shaved log factor)
    wins = [r["depth win"] for r in rows]
    assert wins[-1] > wins[0] * 0.8
    report("direct SpMV wins depth and distance — the §VIII improvement.")


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "spmv_baseline",
    artifact="§VIII — direct SpMV vs CRCW-PRAM-simulated SpMV",
    grid={"n": [8, 16, 32]},
    quick={"n": [8]},
)
def _suite_point(params, rng):
    n = params["n"]
    A = random_coo(n, 3 * n, rng)
    x = rng.standard_normal(n)
    want = A.multiply_dense(x)
    m_d = SpatialMachine()
    y_d = spmv_spatial(m_d, A, x)
    m_p = SpatialMachine()
    y_p = spmv_pram_simulated(m_p, A, x)
    assert np.allclose(y_d.payload, want) and np.allclose(y_p, want)
    return point_from_machine(
        m_d, pram_depth=m_p.stats.max_depth, pram_energy=m_p.stats.energy
    )
