"""E-quick — Section IX "simplification" direction: selection-based quicksort.

The conclusion asks whether the sorting algorithm can be simplified.  The 2D
Quicksort replaces the mergesort's multiselection/merge machinery with the
paper's own Section VI rank selection plus two scans per level.  Same
asymptotic class (Θ(n^{3/2}) energy w.h.p., polylog depth), far smaller
energy constants, at the cost of determinism and some depth.
"""

import numpy as np

from repro.analysis import render_table, tail_exponent
from repro.core.sorting.mergesort2d import sort_values
from repro.core.sorting.quicksort2d import quicksort_2d
from repro.machine import Region, SpatialMachine

SIDES = [8, 16, 32, 64]


def _sweep(rng):
    rows = []
    for side in SIDES:
        n = side * side
        region = Region(0, 0, side, side)
        x = rng.random(n)
        mq = SpatialMachine()
        out_q = quicksort_2d(mq, x, region, np.random.default_rng(1))
        mm = SpatialMachine()
        out_m = sort_values(mm, x, region)
        assert np.allclose(out_q.payload, out_m.payload[:, 0])
        rows.append(
            {
                "n": n,
                "quick E": mq.stats.energy,
                "quick E/n^1.5": mq.stats.energy / n**1.5,
                "merge E/n^1.5": mm.stats.energy / n**1.5,
                "merge/quick E": mm.stats.energy / mq.stats.energy,
                "quick depth": out_q.max_depth(),
                "merge depth": out_m.max_depth(),
            }
        )
    return rows


def test_ablation_quicksort(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Section IX — simplified 2D Quicksort vs 2D Mergesort",
        )
    )
    ns = np.array([r["n"] for r in rows], dtype=float)
    exp = tail_exponent(ns, np.array([r["quick E"] for r in rows]), points=3)
    report(f"quicksort energy tail exponent: {exp:.3f} (same Θ(n^1.5) class)")
    assert 1.1 < exp < 1.8
    # the simplification pays: cheaper at every size and the win grows with n
    wins = [r["merge/quick E"] for r in rows]
    assert min(wins) > 2
    assert wins[-1] > 10
    assert wins[-1] > wins[0]
    # the price: more depth (the three selections per level), still polylog
    for r in rows:
        assert r["quick depth"] <= 3 * np.log2(r["n"]) ** 3
    report(
        "selection-based splitters drop the energy constant by an order of "
        "magnitude at the cost of ~3x depth and determinism."
    )


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "ablation_quicksort",
    artifact="§IX — selection-based 2D quicksort vs 2D mergesort",
    grid={"side": [8, 16, 32, 64]},
    quick={"side": [8]},
)
def _suite_point(params, rng):
    side = params["side"]
    region = Region(0, 0, side, side)
    x = rng.random(side * side)
    mq = SpatialMachine()
    out_q = quicksort_2d(mq, x, region, rng)
    assert np.allclose(out_q.payload, np.sort(x))
    return point_from_machine(mq, out_depth=out_q.max_depth())
