"""E-sel-prob — Lemmas VI.1-VI.2: the selection's probabilistic guarantees.

Lemma VI.1: the probability that a sampling iteration's pivots miss (forcing
the mergesort fallback) is at most 2 n^{-c/6}.  Lemma VI.2: the active count
shrinks like N -> ~N^{3/4} sqrt(ln n) per iteration, so O(1) iterations
suffice.  The bench measures fallback frequency and iteration counts across
many seeds, at the paper's c >= 3 and at a deliberately undersized c = 1.
"""

import numpy as np

from repro.analysis import render_table
from repro.core.selection import rank_select
from repro.machine import Region, SpatialMachine

SEEDS = 30


def _run(n, c, seeds, rng):
    side = int(np.sqrt(n))
    region = Region(0, 0, side, side)
    x = rng.standard_normal(n)
    want = np.sort(x)[n // 2 - 1]
    fallbacks = 0
    iters = []
    for seed in range(seeds):
        m = SpatialMachine()
        res = rank_select(
            m, m.place_zorder(x, region), region, n // 2, np.random.default_rng(seed), c=c
        )
        assert res.value == want
        fallbacks += res.fell_back
        iters.append(res.iterations)
    return fallbacks, iters


def _sweep(rng):
    rows = []
    for n in (256, 1024, 4096):
        for c in (1.0, 3.0):
            fb, iters = _run(n, c, SEEDS, rng)
            rows.append(
                {
                    "n": n,
                    "c": c,
                    "seeds": SEEDS,
                    "fallbacks": fb,
                    "fallback rate": fb / SEEDS,
                    "iters(mean)": float(np.mean(iters)),
                    "iters(max)": max(iters),
                }
            )
    return rows


def test_selection_probability(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Lemmas VI.1-VI.2 — fallback probability and iteration counts",
        )
    )
    # at the paper's c >= 3, fallbacks are (near) absent and iteration
    # counts stay O(1) — bounded and not growing with n
    strong_rows = [r for r in rows if r["c"] >= 3.0]
    for r in strong_rows:
        assert r["fallback rate"] <= 0.1
        assert r["iters(max)"] <= 16
        assert r["iters(mean)"] <= 8  # O(1) iterations (Lemma VI.2)
    assert strong_rows[-1]["iters(mean)"] <= strong_rows[0]["iters(mean)"] + 1
    # ...and an undersized c misses strictly more often overall
    weak = sum(r["fallbacks"] for r in rows if r["c"] == 1.0)
    strong = sum(r["fallbacks"] for r in rows if r["c"] == 3.0)
    assert weak >= strong
    report("c >= 3 keeps pivot misses rare; c = 1 visibly degrades — Lemma VI.1.")


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "selection_probability",
    artifact="Lemmas VI.1-VI.2 — pivot-miss fallback rate and iteration counts",
    grid={"n": [256, 1024, 4096], "c": [1.0, 3.0]},
    quick={"n": [256], "c": [3.0]},
    seeds=(0, 1, 2, 3, 4),
)
def _suite_point(params, rng):
    n = params["n"]
    side = int(np.sqrt(n))
    region = Region(0, 0, side, side)
    x = rng.standard_normal(n)
    m = SpatialMachine()
    res = rank_select(m, m.place_zorder(x, region), region, n // 2, rng, c=params["c"])
    assert res.value == np.sort(x)[n // 2 - 1]
    return point_from_machine(m, iterations=res.iterations, fell_back=int(res.fell_back))
