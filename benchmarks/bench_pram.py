"""E-pram — Lemmas VII.1-VII.2: spatial simulation of PRAM programs.

EREW: O(p(sqrt(p)+sqrt(m)) T) energy, O(T) depth.  CRCW: same energy order
but O(T log³ p) depth, paid to the sorting-based concurrency resolution.
The bench runs the tree-sum program under both simulators and prints the
depth gap, plus the p-sweep of the EREW energy envelope.
"""

import numpy as np

from repro.analysis import render_table
from repro.machine import SpatialMachine
from repro.pram import FanInMaxCRCW, TreeSumEREW, simulate_crcw, simulate_erew

PS = [16, 64, 256, 1024]


def _erew_sweep(rng):
    rows = []
    for p in PS:
        x = rng.standard_normal(p)
        prog = TreeSumEREW(x)
        m = SpatialMachine()
        mem, _ = simulate_erew(m, prog)
        assert mem.payload[0] == np.float64(x.sum()) or abs(mem.payload[0] - x.sum()) < 1e-9
        envelope = p * 2 * np.sqrt(p) * prog.steps
        rows.append(
            {
                "p": p,
                "steps": prog.steps,
                "energy": m.stats.energy,
                "p·√p·T": round(envelope),
                "ratio": m.stats.energy / envelope,
                "depth": m.stats.max_depth,
                "3T+2": 3 * prog.steps + 2,
            }
        )
    return rows


def _crcw_vs_erew(rng):
    rows = []
    for p in (16, 64):
        x = rng.standard_normal(p)
        m_e = SpatialMachine()
        simulate_erew(m_e, TreeSumEREW(x))
        m_c = SpatialMachine()
        simulate_crcw(m_c, TreeSumEREW(x))
        m_f = SpatialMachine()
        simulate_crcw(m_f, FanInMaxCRCW(rng.standard_normal(p), rounds=2))
        rows.append(
            {
                "p": p,
                "EREW depth": m_e.stats.max_depth,
                "CRCW depth": m_c.stats.max_depth,
                "depth gap": m_c.stats.max_depth / m_e.stats.max_depth,
                "CRCW fan-in depth": m_f.stats.max_depth,
                "EREW energy": m_e.stats.energy,
                "CRCW energy": m_c.stats.energy,
            }
        )
    return rows


def test_pram_erew(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _erew_sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Lemma VII.1 — EREW simulation: O(p√p·T) energy, O(T) depth",
        )
    )
    for r in rows:
        assert r["ratio"] < 8
        assert r["depth"] <= r["3T+2"]


def test_pram_crcw_gap(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _crcw_vs_erew(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Lemma VII.2 — CRCW pays a polylog depth factor over EREW",
        )
    )
    # the sort-based concurrency resolution costs a clearly superconstant
    # depth factor that grows with p
    gaps = [r["depth gap"] for r in rows]
    assert gaps[0] > 3
    assert gaps[-1] > gaps[0]


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "pram",
    artifact="Lemmas VII.1-VII.2 — EREW/CRCW PRAM simulation costs",
    grid=[
        {"p": 16, "mode": "erew"},
        {"p": 64, "mode": "erew"},
        {"p": 256, "mode": "erew"},
        {"p": 16, "mode": "crcw"},
        {"p": 64, "mode": "crcw"},
    ],
    quick=[{"p": 16, "mode": "erew"}, {"p": 16, "mode": "crcw"}],
)
def _suite_point(params, rng):
    p = params["p"]
    x = rng.standard_normal(p)
    prog = TreeSumEREW(x)
    m = SpatialMachine()
    if params["mode"] == "erew":
        mem, _ = simulate_erew(m, prog)
        assert abs(mem.payload[0] - x.sum()) < 1e-9
    else:
        simulate_crcw(m, prog)
    return point_from_machine(m, steps=prog.steps)
