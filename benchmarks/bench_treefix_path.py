"""E-trees — Section II.A: path treefix in Θ(n) energy.

Prior spatial treefix sums pay Θ(n log n) energy; the paper's scan improves
the path case by Θ(log n).  The bench runs the Euler-tour rootfix on a path
(scan layout) against the 1D binary-tree prefix (the prior-work energy
regime represented by `tree_scan_1d`) and prints both series.
"""

import numpy as np

from repro.analysis import render_table
from repro.core.scan_baselines import tree_scan_1d
from repro.machine import Region, SpatialMachine
from repro.trees import SpatialTree

NODES = [128, 512, 2048, 8192]


def _sweep(rng):
    rows = []
    for n in NODES:
        parents = np.concatenate([[0], np.arange(n - 1)])
        m = SpatialMachine()
        tree = SpatialTree(m, parents)
        tree.rootfix_sum(rng.random(n))
        slots = 2 * n
        m_tree = SpatialMachine()
        side = 1
        while side * side < slots:
            side *= 2
        region = Region(0, 0, side, side)
        tree_scan_1d(m_tree, m_tree.place_rowmajor(rng.random(side * side), region), region)
        rows.append(
            {
                "path nodes": n,
                "tour slots": slots,
                "scan-treefix E/slot": m.stats.energy / slots,
                "1D-tree E/slot": m_tree.stats.energy / (side * side),
                "scan depth": m.stats.max_depth,
            }
        )
    return rows


def test_treefix_path(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Section II.A — path treefix: Θ(n) via the scan vs Θ(n log n) via 1D trees",
        )
    )
    scan_series = [r["scan-treefix E/slot"] for r in rows]
    tree_series = [r["1D-tree E/slot"] for r in rows]
    assert max(scan_series) < 8  # linear energy, flat per slot
    assert tree_series[-1] > tree_series[0] * 1.4  # the log factor grows
    report("the scan layout removes the Θ(log n) treefix energy factor on paths.")


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "treefix_path",
    artifact="§II.A — path treefix in Θ(n) energy via the scan",
    grid={"nodes": [128, 512, 2048]},
    quick={"nodes": [128]},
)
def _suite_point(params, rng):
    n = params["nodes"]
    parents = np.concatenate([[0], np.arange(n - 1)])
    m = SpatialMachine()
    tree = SpatialTree(m, parents)
    tree.rootfix_sum(rng.random(n))
    return point_from_machine(m, tour_slots=2 * n)
