"""E-2select — Lemma V.6: rank selection in two sorted arrays costs
O(n^{5/4}) energy, O(log n) depth, O(sqrt(n)) distance, and multiselection
(the merge's three ranks) shares the sample sort."""

import numpy as np

from repro.analysis import fit_power_law, render_table
from repro.core.sorting.sortutil import as_sort_payload
from repro.core.sorting.two_sorted_select import (
    select_rank_two_sorted,
    select_ranks_two_sorted,
)
from repro.machine import Region, SpatialMachine

HALVES = [64, 256, 1024, 4096]


def _sweep(rng):
    rows = []
    for half in HALVES:
        n = 2 * half
        a = np.sort(rng.standard_normal(half))
        b = np.sort(rng.standard_normal(half))
        m = SpatialMachine()
        A = m.place_rowmajor(as_sort_payload(a), Region(0, 0, 64, 64))
        B = m.place_rowmajor(as_sort_payload(b), Region(0, 64, 64, 64))
        s = select_rank_two_sorted(m, A, B, half)
        merged = np.sort(np.concatenate([a, b]))
        assert np.allclose(
            np.sort(np.concatenate([a[: s.cut_a], b[: s.cut_b]])), merged[:half]
        )
        ks = [n // 4, n // 2, 3 * n // 4]
        # shared-sample multiselect of the merge's three ranks ...
        m3 = SpatialMachine()
        A3 = m3.place_rowmajor(as_sort_payload(a), Region(0, 0, 64, 64))
        B3 = m3.place_rowmajor(as_sort_payload(b), Region(0, 64, 64, 64))
        select_ranks_two_sorted(m3, A3, B3, ks)
        # ... versus three independent single-rank calls for the same ranks
        msep = SpatialMachine()
        As = msep.place_rowmajor(as_sort_payload(a), Region(0, 0, 64, 64))
        Bs = msep.place_rowmajor(as_sort_payload(b), Region(0, 64, 64, 64))
        for k in ks:
            select_rank_two_sorted(msep, As, Bs, k)
        rows.append(
            {
                "n": n,
                "energy(1 rank)": m.stats.energy,
                "E/n^1.25": m.stats.energy / n**1.25,
                "multi(3 ranks)": m3.stats.energy,
                "3 separate": msep.stats.energy,
                "multi/separate": m3.stats.energy / msep.stats.energy,
                "depth": s.depth,
                "dist/sqrt(n)": s.dist / np.sqrt(n),
            }
        )
    return rows


def test_two_sorted_select(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Lemma V.6 — two-sorted-array rank selection: O(n^1.25) energy",
        )
    )
    ns = np.array([r["n"] for r in rows], dtype=float)
    fit = fit_power_law(ns[-3:], np.array([r["energy(1 rank)"] for r in rows])[-3:])
    report(f"energy tail exponent: {fit} (paper: 1.25)")
    assert 0.9 < fit.exponent < 1.5
    # sharing the sample sort makes the multiselect strictly cheaper than
    # three independent selections of the same ranks
    assert all(r["multi/separate"] < 1.0 for r in rows)


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "two_sorted_select",
    artifact="Lemma V.6 — rank selection in two sorted arrays: O(n^1.25) E",
    grid={"half": [64, 256, 1024, 4096]},
    quick={"half": [64]},
)
def _suite_point(params, rng):
    half = params["half"]
    a = np.sort(rng.standard_normal(half))
    b = np.sort(rng.standard_normal(half))
    m = SpatialMachine()
    A = m.place_rowmajor(as_sort_payload(a), Region(0, 0, 64, 64))
    B = m.place_rowmajor(as_sort_payload(b), Region(0, 64, 64, 64))
    s = select_rank_two_sorted(m, A, B, half)
    merged = np.sort(np.concatenate([a, b]))
    assert np.allclose(
        np.sort(np.concatenate([a[: s.cut_a], b[: s.cut_b]])), merged[:half]
    )
    return point_from_machine(m, sel_depth=s.depth, sel_dist=s.dist)
