"""Serving-layer throughput/latency — the full stack minus process forking.

Each sweep point boots a real :class:`~repro.service.server.SpatialService`
on a loopback socket (inline executor: sweep workers are daemonic and may
not fork children), then drives a seeded closed-loop request mix through
the loadgen over persistent connections.  The *gated* metrics are the model
costs summed over the served responses — the request multiset is a pure
function of the mix seed, and every response carries the simulator's
deterministic counters, so the sums are reproducible no matter how requests
interleave, coalesce, or hit the cache.  Wall-clock figures (throughput,
latency percentiles, cache/batch efficiency) ride along in ``extra``.
"""

import asyncio

from repro.service.loadgen import build_requests, run_load
from repro.service.server import ServiceConfig, SpatialService

#: small-n mix: every distinct key simulates in well under a second
MIX = (
    ("scan", (64, 256, 1024)),
    ("sort", (64, 256)),
    ("select", (64, 256)),
    ("spmv", (16, 64)),
)


def _serve_load(requests: int, concurrency: int, mix_seed: int) -> dict:
    """Boot a service, push the seeded mix through it, return the report."""

    async def go():
        config = ServiceConfig(
            port=0,
            inline=True,
            workers=4,
            batch_window=0.02,
            max_inflight=max(64, 2 * concurrency),
            disk_cache=False,
            drain_timeout=30.0,
        )
        service = SpatialService(config)
        await service.start()
        try:
            mix = build_requests(requests, mix_seed, mix=MIX, seed_pool=2)
            report = await run_load(
                "127.0.0.1", service.port, mix,
                concurrency=concurrency, timeout=120.0,
            )
            snapshot = service.metrics_doc()
        finally:
            await service.drain(10.0)
            await service.stop()
        if report.ok != requests:
            raise RuntimeError(
                f"service dropped work: {report.ok}/{requests} ok, "
                f"errors={report.errors[:3]}, statuses={dict(report.by_status)}"
            )
        return report, snapshot

    return asyncio.run(go())


def test_service_throughput(benchmark, report):
    rep, snap = benchmark.pedantic(
        lambda: _serve_load(40, 16, mix_seed=1), rounds=1, iterations=1
    )
    doc = rep.as_dict()
    report(
        f"service: {doc['requests']} requests at c=16 -> "
        f"{doc['throughput_rps']} req/s, p95 {doc['latency_p95_ms']} ms, "
        f"{doc['cache_hits']} cache hits, {doc['batched']} batched, "
        f"{snap['batching']['executions']} executions"
    )
    assert doc["dropped"] == 0
    assert doc["ok"] == 40
    # 16 concurrent arrivals over <=14 distinct keys: coalescing must happen
    assert snap["batching"]["executions"] < 40


# -- repro.runner suite ----------------------------------------------------
from repro.runner import register_suite


@register_suite(
    "service",
    artifact="serving layer — summed model costs gate; wall-clock in extra",
    grid={"requests": [120], "concurrency": [32]},
    quick={"requests": [40], "concurrency": [16]},
    timeout=300.0,
)
def _suite_point(params, rng):
    mix_seed = int(rng.integers(0, 2**31))
    rep, snap = _serve_load(params["requests"], params["concurrency"], mix_seed)
    doc = rep.as_dict()
    metrics = rep.model_metrics
    return {
        "metrics": {
            "energy": int(metrics["energy"]),
            "messages": int(metrics["messages"]),
            "rounds": int(metrics["rounds"]),
            "max_depth": int(metrics["max_depth"]),
            "max_distance": int(metrics["max_distance"]),
        },
        "phases": [],
        "extra": {
            "requests": doc["requests"],
            "throughput_rps": doc["throughput_rps"],
            "latency_p50_ms": doc["latency_p50_ms"],
            "latency_p95_ms": doc["latency_p95_ms"],
            "cache_hits": doc["cache_hits"],
            "batched_responses": doc["batched"],
            "executions": snap["batching"]["executions"],
            "coalesced_requests": snap["batching"]["coalesced_requests"],
            "peak_inflight": snap["requests"]["peak_inflight"],
        },
    }
