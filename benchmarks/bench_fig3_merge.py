"""F3 — Figure 3 / Lemma V.7: the rank-splitting 2D merge.

Fig. 3 shows the recursion splitting A||B by the rank n/4, n/2, 3n/4
elements into quadrants, then permuting from the recursion's order to
row-major.  The bench sweeps merge sizes, prints energy/depth/distance, and
verifies the Lemma V.7 envelopes; it also reports the final-permutation
share of the energy (the Fig. 3d step).
"""

import numpy as np

from repro.analysis import render_table, tail_exponent
from repro.core.sorting.merge2d import merge_sorted_2d
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine

SIDES = [8, 16, 32, 64]


def _sweep(rng):
    rows = []
    for side in SIDES:
        half = side * side
        a = np.sort(rng.standard_normal(half))
        b = np.sort(rng.standard_normal(half))
        m = SpatialMachine()
        A = m.place_rowmajor(as_sort_payload(a), Region(0, 0, side, side))
        B = m.place_rowmajor(as_sort_payload(b), Region(0, side, side, side))
        out = merge_sorted_2d(m, A, B, Region(0, 0, side, 2 * side))
        assert np.allclose(out.payload[:, 0], np.sort(np.concatenate([a, b])))
        n = 2 * half
        rows.append(
            {
                "n": n,
                "energy": m.stats.energy,
                "E/n^1.5": m.stats.energy / n**1.5,
                "depth": out.max_depth(),
                "log2(n)^2": round(np.log2(n) ** 2),
                "distance": out.max_dist(),
                "dist/sqrt(n)": out.max_dist() / np.sqrt(n),
            }
        )
    return rows


def test_fig3_merge(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Figure 3 / Lemma V.7 — 2D merge: O(n^1.5) energy, O(log² n) depth",
        )
    )
    ns = np.array([r["n"] for r in rows], dtype=float)
    exp = tail_exponent(ns, np.array([r["energy"] for r in rows]), points=3)
    report(f"energy tail exponent: {exp:.3f} (paper: 1.5)")
    assert 1.1 < exp < 1.8
    for r in rows:
        assert r["depth"] <= 3 * r["log2(n)^2"]


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "fig3_merge",
    artifact="Figure 3 / Lemma V.7 — rank-splitting 2D merge: O(n^1.5) E, O(log² n) D",
    grid={"side": [8, 16, 32, 64]},
    quick={"side": [8]},
)
def _suite_point(params, rng):
    side = params["side"]
    half = side * side
    a = np.sort(rng.standard_normal(half))
    b = np.sort(rng.standard_normal(half))
    m = SpatialMachine()
    A = m.place_rowmajor(as_sort_payload(a), Region(0, 0, side, side))
    B = m.place_rowmajor(as_sort_payload(b), Region(0, side, side, side))
    out = merge_sorted_2d(m, A, B, Region(0, 0, side, 2 * side))
    assert np.allclose(out.payload[:, 0], np.sort(np.concatenate([a, b])))
    return point_from_machine(m, out_depth=out.max_depth(), out_distance=out.max_dist())
