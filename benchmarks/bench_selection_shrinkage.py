"""E-sel-shrink — Lemma VI.2: the active set shrinks like N -> ~N^{3/4}·√ln n.

The selection records its N_t trajectory; the bench aggregates many seeded
runs and compares each observed step against the lemma's bound
``N_{t+1} <= (1+ε) N_t^{3/4} sqrt(ln n)`` (ε = 0.5 here), printing the
violation rate — which the lemma says decays exponentially.
"""

import numpy as np

from repro.analysis import render_table
from repro.core.selection import rank_select
from repro.machine import Region, SpatialMachine

SEEDS = 25
EPS = 0.5


def _sweep(rng):
    rows = []
    for n in (1024, 4096, 16384):
        side = int(np.sqrt(n))
        region = Region(0, 0, side, side)
        x = rng.standard_normal(n)
        ln_n = np.log(n)
        steps = 0
        violations = 0
        ratios = []
        for seed in range(SEEDS):
            m = SpatialMachine()
            res = rank_select(
                m, m.place_zorder(x, region), region, n // 2, np.random.default_rng(seed)
            )
            hist = res.active_history or []
            for a, b in zip(hist[:-1], hist[1:]):
                steps += 1
                bound = (1 + EPS) * a**0.75 * np.sqrt(ln_n)
                violations += b > bound
                ratios.append(np.log(max(b, 2)) / np.log(a))
        rows.append(
            {
                "n": n,
                "steps observed": steps,
                "violations": violations,
                "violation rate": violations / steps,
                "mean log-ratio": float(np.mean(ratios)),
                "lemma exponent": 0.75,
            }
        )
    return rows


def test_selection_shrinkage(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Lemma VI.2 — active-set shrinkage N_t -> N_{t+1} vs (1+ε)N^{3/4}√ln n",
        )
    )
    for r in rows:
        assert r["violation rate"] <= 0.10  # w.h.p. bound, ε = 0.5 slack
        # the observed contraction exponent sits near (at most slightly
        # above) the lemma's 3/4 once the √ln n factor is accounted for
        assert r["mean log-ratio"] < 0.95
    report("observed contraction matches the Lemma VI.2 regime.")


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "selection_shrinkage",
    artifact="Lemma VI.2 — active-set shrinkage N_t -> ~N^{3/4}√ln n",
    grid={"n": [1024, 4096]},
    quick={"n": [1024]},
    seeds=(0, 1, 2),
)
def _suite_point(params, rng):
    n = params["n"]
    side = int(np.sqrt(n))
    region = Region(0, 0, side, side)
    x = rng.standard_normal(n)
    m = SpatialMachine()
    res = rank_select(m, m.place_zorder(x, region), region, n // 2, rng)
    hist = res.active_history or []
    bound = lambda a: (1 + EPS) * a**0.75 * np.sqrt(np.log(n))  # noqa: E731
    violations = sum(b > bound(a) for a, b in zip(hist[:-1], hist[1:]))
    return point_from_machine(
        m, steps=max(len(hist) - 1, 0), violations=int(violations)
    )
