"""T1-select — Table I row 3 / Theorem VI.3.

Claim: randomized rank selection costs Θ(n) energy, O(log² n) depth and
Θ(sqrt(n)) distance w.h.p., with O(1) sampling iterations.  Sweeps n with
several seeds per size and prints mean/max rows.
"""

import numpy as np

from repro.analysis import fit_power_law, render_table
from repro.core.selection import rank_select
from repro.machine import Region, SpatialMachine

SIZES = [4**k for k in range(3, 9)]  # 64 .. 65536
SEEDS = 5


def _sweep(rng):
    rows = []
    for n in SIZES:
        side = int(np.sqrt(n))
        region = Region(0, 0, side, side)
        x = rng.standard_normal(n)
        energies, depths, dists, iters, fbs = [], [], [], [], 0
        for seed in range(SEEDS):
            m = SpatialMachine()
            res = rank_select(
                m, m.place_zorder(x, region), region, n // 2, np.random.default_rng(seed)
            )
            assert res.value == np.sort(x)[n // 2 - 1]
            energies.append(m.stats.energy)
            depths.append(m.stats.max_depth)
            dists.append(m.stats.max_distance)
            iters.append(res.iterations)
            fbs += res.fell_back
        rows.append(
            {
                "n": n,
                "energy(mean)": float(np.mean(energies)),
                "E/n": float(np.mean(energies)) / n,
                "depth(max)": max(depths),
                "log2(n)^2": round(np.log2(n) ** 2),
                "dist/sqrt(n)": float(np.mean(dists)) / np.sqrt(n),
                "iters(max)": max(iters),
                "fallbacks": fbs,
            }
        )
    return rows


def test_table1_selection(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Table I row 3 — Rank Selection: Θ(n) energy, O(log² n) depth w.h.p.",
        )
    )
    ns = np.array([r["n"] for r in rows], dtype=float)
    e_fit = fit_power_law(ns[-4:], np.array([r["energy(mean)"] for r in rows])[-4:])
    report(f"energy tail exponent: {e_fit} (paper: 1.0)")
    assert abs(e_fit.exponent - 1.0) < 0.2
    assert all(r["iters(max)"] <= 8 for r in rows)  # O(1) iterations
    assert all(r["depth(max)"] <= 8 * r["log2(n)^2"] for r in rows)


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "table1_selection",
    artifact="Table I row 3 — rank selection: Θ(n) E, O(log² n) D w.h.p.",
    grid={"n": [64, 256, 1024, 4096, 16384]},
    quick={"n": [64, 256]},
    seeds=(0, 1, 2),
)
def _suite_point(params, rng):
    n = params["n"]
    side = int(np.sqrt(n))
    region = Region(0, 0, side, side)
    x = rng.standard_normal(n)
    m = SpatialMachine()
    res = rank_select(m, m.place_zorder(x, region), region, n // 2, rng)
    assert res.value == np.sort(x)[n // 2 - 1]
    return point_from_machine(m, iterations=res.iterations, fell_back=int(res.fell_back))
