"""Machine overhead — the fast path's wall-clock win over the reference oracle.

The fast machine replaces per-call scalar accounting with vectorized
kernels and closed-form charging; the :class:`ReferenceMachine` keeps the
original per-call implementations as the executable specification.  This
bench times both on the Figure-2 sorting workload (Bitonic Sort + 2D
Mergesort per grid) **in-process** — the sweep runner forks a worker per
point, and ~25 ms of interpreter start-up would drown the small sides and
flatter the large ones, so the ref/fast pair is timed inside one process
with best-of-``REPEATS`` wall clocks.

Two guarantees ride along:

* **exactness** — before timing, one run per machine class must agree on
  payload bytes, :class:`MachineStats`, and the per-phase cost tree (the
  fast path is an optimization, never an approximation);
* **speed** — at the largest side the fast machine must win by at least
  :data:`MIN_SPEEDUP_LARGEST`x (measured ~5.9x at side 32; the gate leaves
  noise margin below the measurement but still fails any real regression).
"""

import time

import numpy as np

from repro.analysis import render_table
from repro.core.sorting.bitonic import bitonic_sort
from repro.core.sorting.mergesort2d import sort_values
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, ReferenceMachine, SpatialMachine

SIDES = [8, 16, 32]
REPEATS = 3
MIN_SPEEDUP_LARGEST = 5.0


def _workload(mclass, side: int, seed: int):
    """One fig2-style point: bitonic + mergesort on a side x side grid."""
    rng = np.random.default_rng(seed)
    x = rng.random(side * side)
    region = Region(0, 0, side, side)
    mb = mclass()
    out_b = bitonic_sort(mb, mb.place_rowmajor(as_sort_payload(x), region), region)
    mm = mclass()
    out_m = sort_values(mm, x, region)
    return mb, out_b, mm, out_m


def _counters_equal(side: int, seed: int) -> bool:
    rb, ob, rm, om = _workload(ReferenceMachine, side, seed)
    fb, pb, fm, pm = _workload(lambda: SpatialMachine(fast=True, strict=False), side, seed)
    return (
        rb.stats == fb.stats
        and rm.stats == fm.stats
        and rb.cost_tree.as_dict() == fb.cost_tree.as_dict()
        and rm.cost_tree.as_dict() == fm.cost_tree.as_dict()
        and ob.payload.tobytes() == pb.payload.tobytes()
        and om.payload.tobytes() == pm.payload.tobytes()
    )


def _time(mclass, side: int, seed: int) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        _workload(mclass, side, seed)
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(side: int, seed: int = 0) -> dict:
    equal = _counters_equal(side, seed)  # also serves as the warm-up
    ref = _time(ReferenceMachine, side, seed)
    fast = _time(lambda: SpatialMachine(fast=True, strict=False), side, seed)
    return {
        "side": side,
        "ref_wall_s": ref,
        "fast_wall_s": fast,
        "speedup": ref / fast,
        "counters_equal": equal,
    }


def test_machine_overhead(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [_measure(side) for side in SIDES], rounds=1, iterations=1
    )
    report(
        render_table(
            ["side", "ref ms", "fast ms", "speedup", "counters"],
            [
                [
                    r["side"],
                    f"{r['ref_wall_s'] * 1e3:.1f}",
                    f"{r['fast_wall_s'] * 1e3:.1f}",
                    f"{r['speedup']:.2f}x",
                    "=" if r["counters_equal"] else "DIFF",
                ]
                for r in rows
            ],
            title="fast machine vs reference oracle (fig2 workload, in-process)",
        )
    )
    assert all(r["counters_equal"] for r in rows), "fast path drifted from oracle"
    largest = rows[-1]
    assert largest["speedup"] >= MIN_SPEEDUP_LARGEST, (
        f"fast path win at side={largest['side']} fell to "
        f"{largest['speedup']:.2f}x (gate: {MIN_SPEEDUP_LARGEST}x)"
    )
    # the win must grow with n (vectorization amortizes per-call overhead)
    assert rows[-1]["speedup"] > rows[0]["speedup"]


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "machine_overhead",
    artifact="Fast-path machine vs per-call reference oracle: exactness + wall-clock",
    grid={"side": SIDES},
    quick={"side": [8, 32]},
)
def _suite_point(params, rng):
    side = params["side"]
    seed = int(rng.integers(0, 2**31))
    r = _measure(side, seed)
    # counters are the artifact: record the (identical) fast-machine stats so
    # the energy/depth baseline also pins the model, not just the wall clock
    mb, _, _, _ = _workload(lambda: SpatialMachine(fast=True, strict=False), side, seed)
    return point_from_machine(
        mb,
        ref_wall_s=r["ref_wall_s"],
        fast_wall_s=r["fast_wall_s"],
        speedup=r["speedup"],
        counters_equal=r["counters_equal"],
    )
