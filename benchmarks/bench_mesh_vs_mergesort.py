"""E-mesh — Section II.B: mesh-model sorting vs the 2D Mergesort.

Any K-round mesh algorithm costs depth K; mesh sorting needs Θ(sqrt(n))
rounds, so its depth is a *power* of n, while the 2D Mergesort's is polylog.
The bench sweeps n with the Shearsort baseline and prints the depth
crossover trend (and the opposite energy ordering — mesh hops are unit
distance, the regime trade-off the paper discusses).
"""

import numpy as np

from repro.analysis import fit_power_law, render_table
from repro.core.sorting.mergesort2d import sort_values
from repro.core.sorting.mesh_sort import shearsort
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine

SIDES = [8, 16, 32, 64]


def _sweep(rng):
    rows = []
    for side in SIDES:
        n = side * side
        region = Region(0, 0, side, side)
        x = rng.random(n)
        m_mesh = SpatialMachine()
        out_mesh = shearsort(
            m_mesh, m_mesh.place_rowmajor(as_sort_payload(x), region), region
        )
        m_ms = SpatialMachine()
        out_ms = sort_values(m_ms, x, region)
        assert np.allclose(out_mesh.payload[:, 0], out_ms.payload[:, 0])
        rows.append(
            {
                "n": n,
                "mesh depth": out_mesh.max_depth(),
                "mergesort depth": out_ms.max_depth(),
                "mesh/mergesort depth": out_mesh.max_depth() / out_ms.max_depth(),
                "mesh E": m_mesh.stats.energy,
                "mergesort E": m_ms.stats.energy,
            }
        )
    return rows


def test_mesh_vs_mergesort(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Section II.B — Θ(√n)-depth mesh sort vs polylog-depth 2D Mergesort",
        )
    )
    ns = np.array([r["n"] for r in rows], dtype=float)
    mesh_fit = fit_power_law(ns, np.array([r["mesh depth"] for r in rows]))
    report(f"mesh depth exponent: {mesh_fit} (theory: 0.5 + log factor)")
    assert mesh_fit.exponent > 0.4  # a genuine power
    # growth-ratio signature: the mesh's 4x-n depth ratio stays near
    # 2 (a power law) while the mergesort's declines towards 1 (polylog)
    mesh_d = [r["mesh depth"] for r in rows]
    ms_d = [r["mergesort depth"] for r in rows]
    mesh_ratios = [mesh_d[i + 1] / mesh_d[i] for i in range(len(mesh_d) - 1)]
    ms_ratios = [ms_d[i + 1] / ms_d[i] for i in range(len(ms_d) - 1)]
    assert mesh_ratios[-1] > 2.0
    assert ms_ratios[-1] < mesh_ratios[-1]
    assert ms_ratios[-1] < ms_ratios[0]  # mergesort ratio declining
    report(
        "mesh depth keeps quadrupling-rate ~2 per 4x n (a power) while the "
        "mergesort's growth ratio falls towards 1 (polylog): at scale the "
        "mergesort dominates — the §II.B motivation."
    )


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "mesh_vs_mergesort",
    artifact="§II.B — Θ(√n)-depth mesh shearsort vs polylog 2D mergesort",
    grid={"side": [8, 16, 32]},
    quick={"side": [8]},
)
def _suite_point(params, rng):
    side = params["side"]
    region = Region(0, 0, side, side)
    x = rng.random(side * side)
    m_mesh = SpatialMachine()
    out_mesh = shearsort(
        m_mesh, m_mesh.place_rowmajor(as_sort_payload(x), region), region
    )
    m_ms = SpatialMachine()
    out_ms = sort_values(m_ms, x, region)
    assert np.allclose(out_mesh.payload[:, 0], out_ms.payload[:, 0])
    return point_from_machine(
        m_mesh,
        mergesort_energy=m_ms.stats.energy,
        mesh_depth=out_mesh.max_depth(),
        mergesort_depth=out_ms.max_depth(),
    )
