"""T1-scan — Table I row 1 / Lemma IV.3.

Claim: the parallel scan costs Θ(n) energy, O(log n) depth, Θ(sqrt(n))
distance on a sqrt(n) x sqrt(n) grid.  The bench sweeps n, prints the
measured row per size, and fits the energy/distance exponents.
"""

import numpy as np

from repro.analysis import fit_power_law, phase_exponents, render_cost_tree, render_table
from repro.core.scan import scan
from repro.machine import Region, SpatialMachine

SIZES = [4**k for k in range(3, 10)]  # 64 .. 262144


def _sweep(rng):
    rows = []
    trees = []
    for n in SIZES:
        side = int(np.sqrt(n))
        m = SpatialMachine()
        region = Region(0, 0, side, side)
        res = scan(m, m.place_zorder(rng.random(n), region), region)
        trees.append(m.cost_tree.clone())
        rows.append(
            {
                "n": n,
                "energy": m.stats.energy,
                "energy/n": m.stats.energy / n,
                "depth": res.inclusive.max_depth(),
                "2log4(n)": 2 * int(np.log2(n) / 2),
                "distance": res.inclusive.max_dist(),
                "dist/sqrt(n)": res.inclusive.max_dist() / np.sqrt(n),
            }
        )
    return rows, trees


def test_table1_scan(benchmark, report, rng):
    rows, trees = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Table I row 1 — Parallel Scan: Θ(n) energy, O(log n) depth, Θ(√n) distance",
        )
    )
    ns = np.array([r["n"] for r in rows], dtype=float)
    e_fit = fit_power_law(ns, np.array([r["energy"] for r in rows]))
    d_fit = fit_power_law(ns, np.array([r["distance"] for r in rows]))
    report(f"energy exponent: {e_fit}   (paper: 1.0)")
    report(f"distance exponent: {d_fit} (paper: 0.5)")
    report(render_cost_tree(trees[-1], title=f"per-phase breakdown at n={rows[-1]['n']}"))
    fits = phase_exponents(ns, trees)
    for path in sorted(fits):
        report(f"  {path:<30} {fits[path]}")
    assert abs(e_fit.exponent - 1.0) < 0.1
    assert abs(d_fit.exponent - 0.5) < 0.1
    # both sweeps are linear-energy; the up-sweep carries values toward the
    # corner and must dominate neither asymptotically (same Θ(n) exponent)
    assert abs(fits["scan/up_sweep"].exponent - 1.0) < 0.1
    assert abs(fits["scan/down_sweep"].exponent - 1.0) < 0.1
    # depth exactly 2 log4 n
    assert all(r["depth"] == r["2log4(n)"] for r in rows)


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "table1_scan",
    artifact="Table I row 1 — parallel scan: Θ(n) E, O(log n) D, Θ(√n) distance",
    grid={"n": [64, 256, 1024, 4096, 16384, 65536]},
    quick={"n": [64, 256]},
)
def _suite_point(params, rng):
    n = params["n"]
    side = int(np.sqrt(n))
    region = Region(0, 0, side, side)
    x = rng.random(n)
    m = SpatialMachine()
    res = scan(m, m.place_zorder(x, region), region)
    assert np.allclose(res.inclusive.payload, np.cumsum(x))
    return point_from_machine(
        m, out_depth=res.inclusive.max_depth(), out_distance=res.inclusive.max_dist()
    )
