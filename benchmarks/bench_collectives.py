"""E-bcast — Lemma IV.1 / Corollary IV.2: multicast-free broadcast & reduce.

Claims: O(hw + h log h) energy, O(log n) depth, O(w + h) distance; on square
grids this beats the prior O(log n)-depth binary-tree reduce's Ω(n log n)
energy by Θ(log n).  The binary-tree rival is the 1D Blelloch machinery
(`tree_scan_1d`-style pairing), represented here by the 1D broadcast run on
the row-major flattening of the square.
"""

import numpy as np

from repro.analysis import render_table
from repro.core.collectives import broadcast, broadcast_1d, reduce
from repro.core.ops import ADD
from repro.machine import Region, SpatialMachine

SIDES = [8, 16, 32, 64, 128]


def _square_sweep(rng):
    rows = []
    for side in SIDES:
        n = side * side
        region = Region(0, 0, side, side)
        mb = SpatialMachine()
        out = broadcast(mb, mb.place(np.array([1.0]), [0], [0]), region)
        mr = SpatialMachine()
        total = reduce(mr, mr.place_rowmajor(rng.random(n), region), region, ADD)
        # the 1D binary-tree alternative: broadcast over the n cells flattened
        m1 = SpatialMachine()
        line = Region(0, 0, 1, n)
        broadcast_1d(m1, m1.place(np.array([1.0]), [0], [0]), line)
        rows.append(
            {
                "n": n,
                "bcast E/n": mb.stats.energy / n,
                "reduce E/n": mr.stats.energy / n,
                "1D-tree E/n": m1.stats.energy / n,
                "bcast depth": out.max_depth(),
                "reduce depth": int(total.depth[0]),
                "log2(n)": int(np.log2(n)),
            }
        )
    return rows


def _rect_sweep(rng):
    rows = []
    for h, w in ((64, 64), (256, 16), (1024, 4), (4096, 1)):
        region = Region(0, 0, h, w)
        m = SpatialMachine()
        if w == 1:
            out = broadcast_1d(m, m.place(np.array([1.0]), [0], [0]), region)
        else:
            out = broadcast(m, m.place(np.array([1.0]), [0], [0]), region)
        pred = h * w + h * max(np.log2(h), 1)
        rows.append(
            {
                "h": h,
                "w": w,
                "energy": m.stats.energy,
                "hw+h·log h": round(pred),
                "ratio": m.stats.energy / pred,
                "depth": out.max_depth(),
                "distance": out.max_dist(),
            }
        )
    return rows


def test_collectives_square(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _square_sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Lemma IV.1 / Cor. IV.2 — broadcast & reduce vs 1D binary tree",
        )
    )
    # 2D collectives stay linear-energy; the 1D tree's energy/n grows with n
    assert max(r["bcast E/n"] for r in rows) < 4
    assert max(r["reduce E/n"] for r in rows) < 4
    tree = [r["1D-tree E/n"] for r in rows]
    assert tree[-1] > tree[0] * 1.5
    for r in rows:
        assert r["bcast depth"] <= r["log2(n)"] + 2
    report("2D collectives: Θ(n) energy at log depth — the Θ(log n) win of §IV.B.")


def test_collectives_rectangles(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _rect_sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Lemma IV.1 — general h x w broadcast vs O(hw + h log h)",
        )
    )
    assert max(r["ratio"] for r in rows) < 4


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "collectives",
    artifact="Lemma IV.1 / Cor. IV.2 — broadcast & reduce: O(hw + h log h) E, O(log n) D",
    grid={"side": [8, 16, 32, 64]},
    quick={"side": [8]},
)
def _suite_point(params, rng):
    side = params["side"]
    n = side * side
    region = Region(0, 0, side, side)
    mb = SpatialMachine()
    out = broadcast(mb, mb.place(np.array([1.0]), [0], [0]), region)
    mr = SpatialMachine()
    reduce(mr, mr.place_rowmajor(rng.random(n), region), region, ADD)
    return point_from_machine(
        mb, bcast_depth=out.max_depth(), reduce_energy=mr.stats.energy
    )
