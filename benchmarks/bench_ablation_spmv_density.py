"""E-density — Section IX open question: SpMV energy vs matrix density.

The paper proves SpMV energy-optimality for m = O(n) and leaves "the optimal
energy for denser matrices" open.  This ablation fixes n and sweeps the
density m/n, measuring how the sort-dominated energy grows and where the
permutation-style lower-bound intuition (each of the m entries moving across
a sqrt(m) grid) tracks the measurement.
"""

import numpy as np

from repro.analysis import fit_power_law, render_table
from repro.machine import SpatialMachine
from repro.spmv import random_coo, spmv_spatial

N = 64
DENSITIES = [1, 2, 4, 8, 16]


def _sweep(rng):
    rows = []
    x = rng.standard_normal(N)
    for d in DENSITIES:
        A = random_coo(N, d * N, rng)
        m = SpatialMachine()
        y = spmv_spatial(m, A, x)
        assert np.allclose(y.payload, A.multiply_dense(x))
        side = 1
        while side * side < A.nnz:
            side *= 2
        padded = side * side  # entries are padded onto a power-of-4 square
        rows.append(
            {
                "m/n": d,
                "nnz": A.nnz,
                "grid": padded,
                "energy": m.stats.energy,
                "E/grid^1.5": m.stats.energy / padded**1.5,
                "depth": m.stats.max_depth,
                "distance": m.stats.max_distance,
            }
        )
    return rows


def test_ablation_spmv_density(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Section IX open question — SpMV energy vs density (fixed n=64)",
        )
    )
    ms = np.array([r["grid"] for r in rows], dtype=float)
    fit = fit_power_law(ms, np.array([r["energy"] for r in rows]))
    report(f"energy-vs-grid exponent at fixed n: {fit}")
    # energy keeps following the m^{3/2} sorting cost of the (padded) entry
    # grid even past m >> n — the m = O(n) optimality proof's regime
    # boundary is not visible in the upper bound, consistent with the
    # Section IX open question
    assert 1.1 < fit.exponent < 1.9
    # depth stays polylog in m across the density sweep
    for r in rows:
        assert r["depth"] <= 2 * np.log2(r["nnz"]) ** 3


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "ablation_spmv_density",
    artifact="§IX open question — SpMV energy vs matrix density at fixed n",
    grid={"n": [64], "density": [1, 2, 4, 8, 16]},
    quick={"n": [16], "density": [2, 4]},
)
def _suite_point(params, rng):
    n, d = params["n"], params["density"]
    x = rng.standard_normal(n)
    A = random_coo(n, d * n, rng)
    m = SpatialMachine()
    y = spmv_spatial(m, A, x)
    assert np.allclose(y.payload, A.multiply_dense(x))
    return point_from_machine(m, nnz=A.nnz)
