"""E-blocked — Section I.D future work: blocked local memory.

The paper assumes O(1) words per PE and names larger local memories as
future work.  The blocked scan puts B consecutive elements on one PE: local
prefix (free compute), spatial scan over the n/B block totals, local fix-up.
Claim to verify: communication energy scales as Θ(n/B) and distance as
Θ(sqrt(n/B)) — block size is a pure communication win, quantifying what a
"fatter" PE buys (relevant to systems with fewer, larger PEs).
"""

import numpy as np

from repro.analysis import render_table
from repro.core.blocked import blocked_scan
from repro.machine import SpatialMachine

N = 4**7  # 16384 elements
BLOCKS = [1, 4, 16, 64, 256]


def _sweep(rng):
    x = rng.standard_normal(N)
    want = np.cumsum(x)
    rows = []
    for b in BLOCKS:
        m = SpatialMachine()
        res = blocked_scan(m, x, block=b)
        assert np.allclose(res.prefix, want)
        rows.append(
            {
                "B": b,
                "PEs": N // b,
                "energy": m.stats.energy,
                "E·B/n": m.stats.energy * b / N,
                "depth": res.max_depth(),
                "distance": res.max_dist(),
                "dist·sqrt(B/n)": res.max_dist() * np.sqrt(b / N),
            }
        )
    return rows


def test_ablation_blocked_scan(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Section I.D extension — blocked scan: energy Θ(n/B), distance Θ(√(n/B))",
        )
    )
    # the normalized energy E*B/n stays flat: energy is Θ(n/B)
    norms = [r["E·B/n"] for r in rows]
    assert max(norms) / min(norms) < 2.5
    # distance shrinks with the grid: dist * sqrt(B/n) flat
    dnorms = [r["dist·sqrt(B/n)"] for r in rows]
    assert max(dnorms) / min(dnorms) < 2.5
    # depth falls as the grid shrinks
    depths = [r["depth"] for r in rows]
    assert depths == sorted(depths, reverse=True)
    report("every factor-4 block growth saves ~4x energy and ~2x distance.")


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "ablation_blocked_scan",
    artifact="§I.D extension — blocked scan: Θ(n/B) E, Θ(√(n/B)) distance",
    grid={"n": [16384], "block": [1, 4, 16, 64, 256]},
    quick={"n": [1024], "block": [1, 16]},
)
def _suite_point(params, rng):
    n, b = params["n"], params["block"]
    x = rng.standard_normal(n)
    m = SpatialMachine()
    res = blocked_scan(m, x, block=b)
    assert np.allclose(res.prefix, np.cumsum(x))
    return point_from_machine(m, out_depth=res.max_depth(), out_distance=res.max_dist())
