"""Chaos sweep — fault injection and recovery across every primitive.

Runs each algorithm clean and under a seeded fault plan, asserts the results
stay bit-identical (recovery is result-transparent by construction), and
records the price of survival: energy/depth inflation plus the recovery
accounting (retries, detours, spared placements).
"""

import numpy as np

from repro.analysis import render_table
from repro.runner import point_from_machine, register_suite
from repro.runner.chaos import CHAOS_ALGOS, CHAOS_PROFILES, run_chaos_pair

# a representative cross-section for pytest-benchmark reporting; the runner
# suite below sweeps the full algorithm list
SMOKE_ALGOS = ("scan", "select", "mergesort", "spmv")


def test_chaos_smoke(benchmark, report):
    def _sweep():
        rows = []
        for algo in SMOKE_ALGOS:
            for profile in CHAOS_PROFILES:
                r, _, _ = run_chaos_pair(algo, profile, side=4, seed=0)
                assert r["exact_match"], f"{algo}/{profile} diverged under faults"
                rows.append([algo, profile, f"{r['energy_inflation']:.3f}",
                             r["recovery"]["retries"], r["recovery"]["spared"]])
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(render_table(["algo", "profile", "E infl", "retries", "spared"], rows,
                        title="chaos smoke: bit-identical results under faults"))


# -- repro.runner suite ----------------------------------------------------
@register_suite(
    "chaos",
    artifact="Fault-injection sweep: bit-identical recovery with bounded cost inflation",
    grid={"algo": list(CHAOS_ALGOS), "profile": list(CHAOS_PROFILES), "side": [8]},
    quick={"algo": ["scan", "select", "mergesort", "spmv"], "profile": ["mixed"], "side": [4]},
)
def _suite_point(params, rng):
    algo, profile, side = params["algo"], params["profile"], params["side"]
    seed = int(rng.integers(2**31))
    r, clean_m, faulty_m = run_chaos_pair(algo, profile, side=side, seed=seed)
    assert r["exact_match"], f"{algo}/{profile} diverged under faults"
    # recovery must stay a constant-factor tax, never change the asymptotics
    assert r["energy_inflation"] < 3.0
    assert np.isfinite(r["energy_inflation"])
    return point_from_machine(
        faulty_m,
        exact_match=r["exact_match"],
        clean_energy=r["clean_energy"],
        energy_inflation=r["energy_inflation"],
        depth_inflation=r["depth_inflation"],
        recovery_energy=r["recovery_phase_energy"],
        retries=r["recovery"]["retries"],
        detoured=r["recovery"]["detoured"],
        spared=r["recovery"]["spared"],
    )
