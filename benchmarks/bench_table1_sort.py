"""T1-sort — Table I row 2 / Theorem V.8.

Claim: 2D Mergesort costs Θ(n^{3/2}) energy, O(log³ n) depth, Θ(sqrt(n))
distance.  Sweeps n, prints measured rows, fits the energy exponent on the
sweep tail and checks depth stays under log³.
"""

import numpy as np

from repro.analysis import phase_exponents, render_cost_tree, render_table, tail_exponent
from repro.core.sorting.mergesort2d import sort_values
from repro.machine import Region, SpatialMachine

SIDES = [8, 16, 32, 64]  # n = 64 .. 4096


def _sweep(rng):
    rows = []
    trees = []
    for side in SIDES:
        n = side * side
        m = SpatialMachine()
        out = sort_values(m, rng.random(n), Region(0, 0, side, side))
        trees.append(m.cost_tree.clone())
        rows.append(
            {
                "n": n,
                "energy": m.stats.energy,
                "E/n^1.5": m.stats.energy / n**1.5,
                "depth": out.max_depth(),
                "log2(n)^3": round(np.log2(n) ** 3),
                "distance": out.max_dist(),
                "dist/sqrt(n)": out.max_dist() / np.sqrt(n),
            }
        )
    return rows, trees


def test_table1_sort(benchmark, report, rng):
    rows, trees = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Table I row 2 — 2D Mergesort: Θ(n^1.5) energy, O(log³ n) depth, Θ(√n) distance",
        )
    )
    ns = np.array([r["n"] for r in rows], dtype=float)
    exp = tail_exponent(ns, np.array([r["energy"] for r in rows]), points=3)
    report(f"energy tail exponent: {exp:.3f} (paper: 1.5; small-n selection terms bias it down)")
    report(render_cost_tree(trees[-1], title=f"per-phase breakdown at n={rows[-1]['n']}"))
    fits = phase_exponents(ns, trees)
    for path in sorted(fits):
        report(f"  {path or 'total':<40} {fits[path]}")
    assert 1.2 < exp < 1.8
    # the merge tree is where the Θ(n^1.5) lives: its fitted exponent must
    # track the total's, i.e. the breakdown attributes the dominant term
    assert abs(fits["mergesort2d/merge2d"].exponent - fits["total"].exponent) < 0.2
    for r in rows:
        assert r["depth"] <= r["log2(n)^3"]
    # the E/n^1.5 normalization flattens out at the tail (Θ, not ω)
    assert rows[-1]["E/n^1.5"] < rows[-2]["E/n^1.5"] * 1.25


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "table1_sort",
    artifact="Table I row 2 — 2D mergesort: Θ(n^1.5) E, O(log³ n) D, Θ(√n) distance",
    grid={"side": [8, 16, 32, 64]},
    quick={"side": [8, 16]},
)
def _suite_point(params, rng):
    side = params["side"]
    x = rng.random(side * side)
    m = SpatialMachine()
    out = sort_values(m, x, Region(0, 0, side, side))
    assert np.allclose(out.payload[:, 0], np.sort(x))
    return point_from_machine(m, out_depth=out.max_depth(), out_distance=out.max_dist())
