"""Tuner evaluation suite — every auto-tuner measurement runs through here.

Unlike the artifact benches, this suite's point function is a *dispatcher*:
``params`` name a :class:`repro.tuner.space.TuneConfig` (algorithm class,
variant, arrival layout, block factor) plus ``n``, and the point runs that
configuration on a fresh machine via :func:`repro.tuner.variants.run_config_point`.
Registering it as a normal suite is what gives the tuner the runner's
process-pool executor, content-addressed cache, and ``suite_code_version``
staleness for free — and what lets CI gate tuner drift with the ordinary
``repro bench run --quick --suite tuner`` + baseline compare.

The grids below are *representative pins* for baseline tracking (one point
per variant family); the tuner itself enumerates its own configurations and
does not read these grids.
"""

from repro.runner import register_suite
from repro.tuner.variants import run_config_point


def _cfg(algo_class, variant, layout, n, block=None):
    return {
        "algo_class": algo_class,
        "variant": variant,
        "layout": layout,
        "block": block,
        "n": n,
    }


QUICK = [
    _cfg("sort", "bitonic", "rowmajor", 64),
    _cfg("sort", "mergesort", "rowmajor", 64),
    _cfg("sort", "shearsort", "rowmajor", 64),
    _cfg("sort", "allpairs", "rowmajor", 64),
    _cfg("scan", "tree", "zorder", 64),
    _cfg("scan", "blocked", "host", 64, block=4),
    _cfg("spmv", "direct", "coo", 16),
    _cfg("spmv", "planned", "coo", 16),
]

FULL = QUICK + [
    _cfg("sort", "oddeven", "rowmajor", 64),
    _cfg("sort", "quicksort", "rowmajor", 64),
    _cfg("sort", "merge2d", "rowmajor", 64),
    _cfg("sort", "bitonic", "zorder", 64),
    _cfg("sort", "bitonic", "rowmajor", 256),
    _cfg("scan", "tree", "zorder", 256),
    _cfg("scan", "tree", "rowmajor", 64),
    _cfg("scan", "blocked", "host", 256, block=16),
    _cfg("spmv", "direct", "coo", 64),
    _cfg("spmv", "planned", "coo", 64),
]


@register_suite(
    "tuner",
    artifact="auto-tuner configuration space: (variant, layout, block) cost pins",
    grid=FULL,
    quick=QUICK,
    timeout=120.0,
)
def _suite_point(params, rng):
    return run_config_point(params, rng)


def test_tuner_suite_points(rng):
    """Every quick pin runs, verifies its output, and reports sane counters."""
    for params in QUICK:
        payload = _suite_point(dict(params), rng)
        m = payload["metrics"]
        assert m["energy"] >= 0 and m["max_depth"] >= 0
        assert payload["extra"]["edp"] == m["energy"] * m["max_depth"]
