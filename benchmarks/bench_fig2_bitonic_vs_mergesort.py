"""F2 — Figure 2 / Lemmas V.3-V.4: bitonic networks vs the 2D Mergesort.

Fig. 2's point: the bitonic recursion reduces rows first, then columns, so
the network "eventually turns into a 1D algorithm" and pays
Θ(n^{3/2} log n) energy — a Θ(log n) factor above the mergesort's optimal
Θ(n^{3/2}).  The bench sweeps square grids, prints both series and their
ratio, and checks the ratio *grows* with n (the log factor) while depth
favours the network (log² vs log³).
"""

import numpy as np

from repro.analysis import render_table
from repro.core.sorting.bitonic import bitonic_merge, bitonic_sort
from repro.core.sorting.mergesort2d import sort_values
from repro.core.sorting.odd_even import odd_even_mergesort
from repro.core.sorting.sortutil import as_sort_payload
from repro.machine import Region, SpatialMachine

SIDES = [8, 16, 32, 64]


def _sweep(rng):
    rows = []
    for side in SIDES:
        n = side * side
        region = Region(0, 0, side, side)
        x = rng.random(n)
        mb = SpatialMachine()
        out_b = bitonic_sort(mb, mb.place_rowmajor(as_sort_payload(x), region), region)
        mo = SpatialMachine()
        out_o = odd_even_mergesort(
            mo, mo.place_rowmajor(as_sort_payload(x), region), region
        )
        mm = SpatialMachine()
        out_m = sort_values(mm, x, region)
        assert np.allclose(out_b.payload[:, 0], out_m.payload[:, 0])
        assert np.allclose(out_o.payload[:, 0], out_m.payload[:, 0])
        rows.append(
            {
                "n": n,
                "bitonic E": mb.stats.energy,
                "bitonic E/n^1.5": mb.stats.energy / n**1.5,
                "odd-even E/n^1.5": mo.stats.energy / n**1.5,
                "mergesort E": mm.stats.energy,
                "mergesort E/n^1.5": mm.stats.energy / n**1.5,
                "bitonic depth": out_b.max_depth(),
                "mergesort depth": out_m.max_depth(),
            }
        )
    return rows


def _rect_merge(rng):
    """Lemma V.3's Θ(h²w + w²h) on rectangles (the Fig. 2 layouts)."""
    rows = []
    for h, w in ((4, 16), (8, 8), (16, 4), (16, 16), (32, 8)):
        n = h * w
        region = Region(0, 0, h, w)
        x = np.concatenate(
            [np.sort(rng.random(n // 2)), np.sort(rng.random(n // 2))[::-1]]
        )
        m = SpatialMachine()
        out = bitonic_merge(m, m.place_rowmajor(as_sort_payload(x), region), region)
        assert np.allclose(out.payload[:, 0], np.sort(x))
        pred = h * h * w + w * w * h
        rows.append(
            {
                "h": h,
                "w": w,
                "energy": m.stats.energy,
                "h²w+w²h": pred,
                "ratio": m.stats.energy / pred,
                "depth": out.max_depth(),
            }
        )
    return rows


def test_fig2_bitonic_vs_mergesort(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Figure 2 / Lemma V.4 — Bitonic Sort vs 2D Mergesort (square grids)",
        )
    )
    # the networks' E/n^1.5 keeps growing (the log factor) — for BOTH
    # Batcher networks, showing the pathology is 1D-ness, not the schedule...
    bseries = [r["bitonic E/n^1.5"] for r in rows]
    oseries = [r["odd-even E/n^1.5"] for r in rows]
    assert bseries[-1] > bseries[0] * 1.5
    assert oseries[-1] > oseries[0] * 1.5
    # ...while the mergesort's flattens (tail ratio close to 1)
    mseries = [r["mergesort E/n^1.5"] for r in rows]
    assert mseries[-1] < mseries[-2] * 1.25
    # depth: network log² < mergesort log³
    assert all(r["bitonic depth"] < r["mergesort depth"] for r in rows)
    report(
        "bitonic E/n^1.5 grows (Θ(log n) suboptimality), mergesort's flattens; "
        "bitonic wins depth (log² vs log³) — both as in Sections V.B-V.C."
    )


def test_fig2_lemma_v3_rectangles(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _rect_merge(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Lemma V.3 — Bitonic Merge energy vs Θ(h²w + w²h) prediction",
        )
    )
    ratios = [r["ratio"] for r in rows]
    assert max(ratios) / min(ratios) < 4  # constant-factor agreement


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "fig2_bitonic_vs_mergesort",
    artifact="Figure 2 / Lemma V.4 — bitonic network vs 2D mergesort energy",
    grid={"side": [8, 16, 32]},
    quick={"side": [8]},
)
def _suite_point(params, rng):
    side = params["side"]
    region = Region(0, 0, side, side)
    x = rng.random(side * side)
    mb = SpatialMachine()
    out_b = bitonic_sort(mb, mb.place_rowmajor(as_sort_payload(x), region), region)
    mm = SpatialMachine()
    out_m = sort_values(mm, x, region)
    assert np.allclose(out_b.payload[:, 0], out_m.payload[:, 0])
    return point_from_machine(
        mb,
        mergesort_energy=mm.stats.energy,
        bitonic_depth=out_b.max_depth(),
        mergesort_depth=out_m.max_depth(),
    )
