"""Shared fixtures for the reproduction benchmark harness.

Every bench regenerates one paper artifact (a Table I row, a figure's
comparison, or a lemma's cost claim), prints the measured rows live (so they
land in ``bench_output.txt``) and appends them to ``benchmark_report.txt`` at
the repo root.  Wall-clock timing via pytest-benchmark is secondary — the
measured quantities are the model's energy / depth / distance counters.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "benchmark_report.txt"

DEFAULT_SEED = 20250705


def pytest_addoption(parser):
    parser.addoption(
        "--bench-seed",
        type=int,
        default=DEFAULT_SEED,
        help="seed for the shared rng fixture (every bench draws its data "
        "from an explicit np.random.Generator seeded here)",
    )


@pytest.fixture(scope="session", autouse=True)
def _fresh_report():
    if REPORT_PATH.exists():
        REPORT_PATH.unlink()
    yield


@pytest.fixture
def report(capsys):
    """Print a block of text live (despite capture) and persist it."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print(text)
        with open(REPORT_PATH, "a") as fh:
            fh.write(text + "\n")

    return emit


@pytest.fixture
def rng(request) -> np.random.Generator:
    return np.random.default_rng(request.config.getoption("--bench-seed"))
