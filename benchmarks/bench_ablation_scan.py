"""E-scan-ablation — Section IV.C's three-way scan trade-off.

The naive 1D binary-tree prefix sum pays Ω(n log n) energy at log depth; the
sequential scan pays Θ(n) energy at Θ(n) depth; the paper's 2D scan gets the
best of both: Θ(n) energy *and* O(log n) depth.
"""

import numpy as np

from repro.analysis import render_table
from repro.core.scan import scan
from repro.core.scan_baselines import sequential_scan, tree_scan_1d
from repro.machine import Region, SpatialMachine

SIZES = [4**k for k in range(3, 8)]  # 64 .. 16384


def _sweep(rng):
    rows = []
    for n in SIZES:
        side = int(np.sqrt(n))
        region = Region(0, 0, side, side)
        x = rng.random(n)
        m2 = SpatialMachine()
        r2 = scan(m2, m2.place_zorder(x, region), region)
        ms = SpatialMachine()
        rs = sequential_scan(ms, ms.place_zorder(x, region), region)
        mt = SpatialMachine()
        rt = tree_scan_1d(mt, mt.place_rowmajor(x, region), region)
        for out in (r2.inclusive, rs, rt):
            assert np.allclose(out.payload, np.cumsum(x))
        rows.append(
            {
                "n": n,
                "2D E/n": m2.stats.energy / n,
                "seq E/n": ms.stats.energy / n,
                "1Dtree E/n": mt.stats.energy / n,
                "2D depth": r2.inclusive.max_depth(),
                "seq depth": rs.max_depth(),
                "1Dtree depth": rt.max_depth(),
            }
        )
    return rows


def test_ablation_scan(benchmark, report, rng):
    rows = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    report(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Section IV.C ablation — 2D scan vs sequential vs 1D binary tree",
        )
    )
    last = rows[-1]
    n = last["n"]
    # energy: 2D ~ sequential (both linear), 1D tree clearly superlinear
    assert last["2D E/n"] < 6
    assert last["1Dtree E/n"] > 2 * last["2D E/n"]
    # depth: 2D ~ 1D tree (both log), sequential linear
    assert last["2D depth"] <= 2 * np.log2(n)
    assert last["seq depth"] == n - 1
    report(
        "2D scan: linear energy at log depth — dominates both baselines "
        "(the §IV.C claim)."
    )


# -- repro.runner suite ----------------------------------------------------
from repro.runner import point_from_machine, register_suite


@register_suite(
    "ablation_scan",
    artifact="§IV.C ablation — 2D scan vs sequential vs 1D binary tree",
    grid={"n": [64, 256, 1024, 4096]},
    quick={"n": [64]},
)
def _suite_point(params, rng):
    n = params["n"]
    side = int(np.sqrt(n))
    region = Region(0, 0, side, side)
    x = rng.random(n)
    m2 = SpatialMachine()
    r2 = scan(m2, m2.place_zorder(x, region), region)
    assert np.allclose(r2.inclusive.payload, np.cumsum(x))
    ms = SpatialMachine()
    sequential_scan(ms, ms.place_zorder(x, region), region)
    mt = SpatialMachine()
    tree_scan_1d(mt, mt.place_rowmajor(x, region), region)
    return point_from_machine(
        m2, seq_energy=ms.stats.energy, tree1d_energy=mt.stats.energy
    )
