"""Setup shim.

This environment lacks the ``wheel`` package, so PEP 660 editable installs
(``pip install -e .`` via the pyproject backend) cannot build. This shim lets
``pip install -e . --no-use-pep517`` (and plain ``python setup.py develop``)
work offline; all real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
