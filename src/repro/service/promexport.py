"""Prometheus text exposition for the ``/metrics`` snapshots.

``GET /metrics?format=prometheus`` on the server and the gateway renders
the exact same snapshot dict that the JSON default serves — no separate
counter registry, so the two views can never drift.  The mapping is
structural:

* nested dict paths become underscore-joined metric names under the
  ``repro_`` prefix (``requests.total`` -> ``repro_requests_total``);
* known per-key tables (``by_status``, ``by_algo``, ``by_shard``,
  ``forwarded_by_backend``) become one metric with a label;
* histogram dicts (the :class:`~repro.service.metrics.LatencyHistogram`
  shape) become a proper Prometheus histogram: cumulative ``_bucket{le=}``
  series plus ``_sum`` and ``_count``;
* strings, lists, and deep diagnostic tables (breaker transitions, health
  history, shard rosters) are skipped — they stay JSON-only.
"""

from __future__ import annotations

import re

__all__ = ["PROM_CONTENT_TYPE", "render_prometheus"]

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: sub-dicts rendered as one labelled metric instead of nested names
_LABELLED = {
    "by_status": "status",
    "by_algo": "algo",
    "by_shard": "shard",
    "forwarded_by_backend": "backend",
}

#: snapshot keys whose values are diagnostic tables, not scalars
_SKIPPED = {"shards", "breakers", "health", "errors"}

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _name(part: str) -> str:
    return _NAME_RE.sub("_", str(part))


def _is_histogram(value: object) -> bool:
    return isinstance(value, dict) and "buckets" in value and "count" in value and "sum_ms" in value


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _emit_histogram(lines: list[str], name: str, doc: dict) -> None:
    lines.append(f"# TYPE {name} histogram")
    cumulative = 0
    for label, count in doc["buckets"].items():
        cumulative += int(count)
        # bucket keys are "le_{bound}ms" / "le_inf" (see LatencyHistogram)
        le = "+Inf" if label == "le_inf" else label[3:-2]
        lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
    lines.append(f"{name}_sum {doc['sum_ms']}")
    lines.append(f"{name}_count {doc['count']}")


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render one ``/metrics`` snapshot dict as Prometheus text format."""
    lines: list[str] = []

    def emit_scalar(name: str, value: object) -> None:
        if isinstance(value, bool):
            value = int(value)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value}")

    def walk(path: str, doc: dict) -> None:
        for key, value in doc.items():
            if key in _SKIPPED:
                continue
            name = f"{path}_{_name(key)}"
            if _is_histogram(value):
                _emit_histogram(lines, f"{name}_ms", value)
            elif key in _LABELLED and isinstance(value, dict):
                label = _LABELLED[key]
                lines.append(f"# TYPE {name} gauge")
                for lkey, lvalue in sorted(value.items()):
                    if isinstance(lvalue, bool) or not isinstance(lvalue, (int, float)):
                        continue
                    lines.append(f'{name}{{{label}="{_escape_label(str(lkey))}"}} {lvalue}')
            elif isinstance(value, dict):
                walk(name, value)
            elif isinstance(value, (int, float)) or isinstance(value, bool):
                emit_scalar(name, value)
            # strings and lists stay JSON-only
    walk(_name(prefix), snapshot)
    return "\n".join(lines) + "\n"
