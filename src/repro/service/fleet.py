"""Resilient sharded front tier: the ``repro fleet`` gateway.

The gateway sits in front of ``shards x replicas`` independent ``repro
serve`` processes and routes each request by **consistent hashing** of its
routing key (algo, n, seed, profile — the identity that also drives the
content-addressed cache).  Identical keys always land on the same shard, so
the shard's micro-batcher co-batches them; different keys spread across the
ring.  Within a shard, a key has a stable preferred replica (affinity keeps
co-batching effective) with the other replicas as failover targets.

Resilience is layered, in order of engagement:

1. **health loop** (:mod:`repro.service.health`) — background liveness +
   readiness probes per replica; routing prefers ready replicas.
2. **circuit breakers** (:mod:`repro.service.breaker`) — one per replica;
   consecutive failures open the breaker and traffic skips the replica
   until a half-open probe succeeds.
3. **deadline-budgeted failover** — a failed or timed-out attempt moves to
   the next replica while the request's overall deadline allows.
4. **hedged requests** — when the first attempt is slow, a bounded fraction
   of requests start a second attempt on another replica; the first answer
   wins and the loser is cancelled.
5. **graceful degradation** — when no replica can answer, the gateway
   serves a stale result from the shared content-addressed disk cache
   (marked ``"degraded": true``) or sheds the request with 503 +
   Retry-After.

Everything timing-related is seeded (breaker jitter, probe jitter) so the
fleet chaos harness (:mod:`repro.service.fleetchaos`) can assert exact
invariants across runs.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import json
import math
import os
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass

from ..obs.context import TRACE_HEADER, TRACE_HEADER_LOWER, TraceContext
from ..obs.tracer import ENV_TRACE_DIR, tracer_from_env
from ..runner.cache import DEFAULT_CACHE_DIR, ResultCache
from ..runner.cachekey import suite_code_version
from ..runner.registry import load_suites
from .breaker import BreakerConfig, CircuitBreaker
from .cache import ServiceCache
from .health import BackendState, HealthMonitor
from .httpio import (
    BadRequest,
    http_call,
    read_http_request,
    write_json_response,
    write_text_response,
)
from .metrics import FleetMetrics
from .protocol import (
    ALGO_SUITES,
    AUTO_CLASSES,
    AUTO_PREFIX,
    AUTO_SIZE_LIMITS,
    SIZE_LIMITS,
    TUNER_SUITE_NAME,
    RequestError,
    ServiceRequest,
)

__all__ = [
    "FleetConfig",
    "FleetGateway",
    "HashRing",
    "ShardProcess",
    "fleet_main",
    "group_backends",
    "parse_backend_list",
    "routing_key",
    "serve_argv",
]


def _stable_hash(data: str) -> int:
    """First 8 bytes of sha256 as an int — stable across processes/runs."""
    return int.from_bytes(hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


def routing_key(request: ServiceRequest) -> str:
    """The request identity the ring hashes on.

    Matches the cache-key inputs (minus code version, which is uniform
    across the fleet) so identical requests co-locate and co-batch."""
    key = f"{request.algo}|{request.n}|{request.seed}|{int(request.profile)}"
    if request.is_auto:
        key += f"|{request.metric}"
    return key


class HashRing:
    """Consistent-hash ring mapping keys onto shard indices.

    ``vnodes`` virtual nodes per shard smooth the key distribution; the
    ring is a pure function of (shards, vnodes), so every gateway instance
    agrees on placement without coordination."""

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        self.shards = max(1, int(shards))
        self.vnodes = max(1, int(vnodes))
        points = sorted(
            (_stable_hash(f"shard-{s}-vnode-{v}"), s)
            for s in range(self.shards)
            for v in range(self.vnodes)
        )
        self._points = points
        self._hashes = [h for h, _ in points]

    def shard_for(self, key: str) -> int:
        i = bisect.bisect_right(self._hashes, _stable_hash(key)) % len(self._points)
        return self._points[i][1]

    def spread(self, keys) -> list[int]:
        """Per-shard key counts — handy for balance tests."""
        counts = [0] * self.shards
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts


@dataclass
class FleetConfig:
    """Knobs for one gateway instance."""

    host: str = "127.0.0.1"
    port: int = 8640
    vnodes: int = 64
    max_inflight: int = 256
    #: overall per-request deadline across all failover attempts
    request_timeout: float = 30.0
    #: per-attempt budget (connect + response) before failing over
    attempt_timeout: float = 5.0
    #: seconds a first attempt may be quiet before a hedge is considered
    hedge_after: float = 0.75
    #: hedges_started stays <= hedge_rate * requests_total (0 disables)
    hedge_rate: float = 0.05
    probe_interval: float = 0.5
    probe_timeout: float = 2.0
    fall: int = 2
    rise: int = 1
    failure_threshold: int = 3
    cooldown: float = 1.0
    max_cooldown: float = 15.0
    seed: int = 0
    cache_dir: str = DEFAULT_CACHE_DIR
    disk_cache: bool = True
    bench_dir: str = ""
    drain_timeout: float = 30.0
    #: span-sink directory; non-empty enables distributed tracing
    trace_dir: str = ""


class _AttemptFailed(Exception):
    """One backend attempt failed; carries the reason for accounting."""

    def __init__(self, backend: BackendState, reason: str, retry_after: str = "") -> None:
        super().__init__(f"{backend.name}: {reason}")
        self.backend = backend
        self.reason = reason
        self.retry_after = retry_after


class FleetGateway:
    """The front-tier HTTP server: route, probe, break, hedge, degrade."""

    def __init__(
        self,
        config: FleetConfig,
        backends: list[list[tuple[str, int]]],
        tracer=None,
    ) -> None:
        if not backends or any(not group for group in backends):
            raise ValueError("every shard needs at least one replica")
        self.config = config
        self._trace_env_set = False
        if config.trace_dir and os.environ.get(ENV_TRACE_DIR, "") != config.trace_dir:
            os.environ[ENV_TRACE_DIR] = config.trace_dir
            self._trace_env_set = True
        self.obs = tracer if tracer is not None else tracer_from_env("gateway")
        self.shards: list[list[BackendState]] = []
        flat: list[BackendState] = []
        self.breakers: dict[str, CircuitBreaker] = {}
        bcfg = BreakerConfig(
            failure_threshold=config.failure_threshold,
            cooldown_s=config.cooldown,
            max_cooldown_s=config.max_cooldown,
        )
        for s, group in enumerate(backends):
            states = []
            for r, (host, port) in enumerate(group):
                st = BackendState(
                    name=f"s{s}r{r}", host=host, port=int(port), shard=s, replica=r
                )
                states.append(st)
                flat.append(st)
                self.breakers[st.name] = CircuitBreaker(
                    st.name, bcfg, seed=config.seed * 1000003 + len(flat)
                )
            self.shards.append(states)
        if self.obs.enabled:
            # breaker transitions and health flaps become typed trace events
            # next to their in-memory logs (the banner-print replacement)
            for br in self.breakers.values():
                br.on_transition = self._breaker_event
        self.ring = HashRing(len(self.shards), config.vnodes)
        self.monitor = HealthMonitor(
            flat,
            interval=config.probe_interval,
            timeout=config.probe_timeout,
            fall=config.fall,
            rise=config.rise,
            seed=config.seed,
            on_flip=self._health_event if self.obs.enabled else None,
        )
        self.metrics = FleetMetrics()
        disk = ResultCache(config.cache_dir) if config.disk_cache else None
        #: stale-serving tier: the same content-addressed cache the shards
        #: write through, read here only when no replica can answer
        self.stale_cache = ServiceCache(maxsize=256, disk=disk)
        suites = load_suites(config.bench_dir or None)
        self.code_versions = {
            algo: suite_code_version(suites[suite_name])
            for algo, suite_name in ALGO_SUITES.items()
            if suite_name in suites
        }
        self.draining = False
        self.port = config.port
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.monitor.start()

    async def drain(self, timeout: float | None = None) -> bool:
        self.draining = True
        if self._server is not None:
            self._server.close()
        budget = self.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while self.metrics.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        return self.metrics.inflight == 0

    async def stop(self) -> None:
        self.draining = True
        await self.monitor.stop()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception, asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), 2.0)
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        self.obs.close()
        if self._trace_env_set:
            os.environ.pop(ENV_TRACE_DIR, None)
            self._trace_env_set = False

    # -- tracing hooks ----------------------------------------------------
    def _breaker_event(self, name: str, record: dict) -> None:
        self.obs.event(
            "breaker_transition",
            attrs={"backend": name, "from": record["from"], "to": record["to"],
                   "reason": record["reason"]},
        )

    def _health_event(self, backend: BackendState, ready: bool, reason: str) -> None:
        self.obs.event(
            "health_flap",
            attrs={"backend": backend.name, "ready": ready, "reason": reason},
        )

    # -- routing ---------------------------------------------------------
    def _candidates(self, shard: int, key: str) -> list[BackendState]:
        """Replicas of ``shard`` in preference order for ``key``.

        A stable per-key rotation gives each key a preferred replica (so
        repeats co-batch); a stable sort by health rank moves not-ready
        replicas to the back without disturbing the rotation."""
        replicas = self.shards[shard]
        start = _stable_hash(f"replica:{key}") % len(replicas)
        rotated = replicas[start:] + replicas[:start]
        rank = {True: 0, None: 1, False: 2}
        return sorted(rotated, key=lambda st: rank[st.ready])

    async def _attempt(
        self, st: BackendState, path: str, payload: dict, timeout: float, span=None
    ) -> tuple[int, dict, BackendState]:
        """One forwarded request; settles the replica's breaker either way.

        ``span`` is this attempt's already-open ``gateway.attempt`` span (or
        None); its context propagates to the replica via the trace header,
        and it ends here with the attempt's outcome — except on
        cancellation, where :meth:`_settle` ends it as ``cancelled``."""
        br = self.breakers[st.name]
        req_headers = None
        if span is not None:
            req_headers = [(TRACE_HEADER, span.ctx.header_value())]
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(st.host, st.port), timeout
            )
            try:
                status, headers, doc, _closed = await http_call(
                    reader, writer, "POST", path, payload,
                    timeout=timeout, keep_alive=False, headers=req_headers,
                )
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
        except (OSError, asyncio.TimeoutError, ConnectionError, ValueError,
                json.JSONDecodeError) as exc:
            reason = type(exc).__name__
            br.record_failure(reason)
            self.metrics.attempt_failed(st.name, reason)
            if span is not None:
                span.set(reason=reason)
                span.end("error")
            raise _AttemptFailed(st, reason) from exc
        if status == 429:
            # the replica answered — just saturated; back off without
            # penalizing the breaker
            br.record_success()
            self.metrics.attempt_failed(st.name, "http 429")
            if span is not None:
                span.set(reason="http 429", status_code=429)
                span.end("error")
            raise _AttemptFailed(st, "http 429", headers.get("retry-after", ""))
        if status >= 500:
            br.record_failure(f"http {status}")
            self.metrics.attempt_failed(st.name, f"http {status}")
            if span is not None:
                span.set(reason=f"http {status}", status_code=status)
                span.end("error")
            raise _AttemptFailed(st, f"http {status}", headers.get("retry-after", ""))
        br.record_success()
        if span is not None:
            span.set(status_code=status)
            span.end("ok")
        return status, doc, st

    async def _settle(
        self,
        tasks: dict[asyncio.Task, tuple[BackendState, object]],
        primary: asyncio.Task | None = None,
    ) -> tuple[int, dict, BackendState] | None:
        """Await racing attempts; first success wins, losers are cancelled.

        ``tasks`` maps each attempt task to ``(backend, span)`` — the span
        (None when tracing is off) was opened before the task was scheduled,
        so even a hedge cancelled before its coroutine first ran still
        records a ``cancelled`` attempt span."""
        pending = set(tasks)
        winner = None
        while pending and winner is None:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for t in done:
                try:
                    winner = t.result()
                except _AttemptFailed:
                    continue
                if primary is not None and t is not primary and len(tasks) > 1:
                    self.metrics.hedge_wins += 1
                break
        for t in pending:
            t.cancel()
            self.metrics.hedges_cancelled += 1
            # the cancelled attempt never settles its breaker: return the
            # half-open probe slot it may be holding
            self.breakers[tasks[t][0].name].release()
        for t in pending:
            with contextlib.suppress(asyncio.CancelledError, _AttemptFailed):
                await t
            span = tasks[t][1]
            if span is not None:
                span.end("cancelled")  # no-op if _attempt already ended it
        return winner

    def _attempt_span(self, st: BackendState, parent, *, hedge: bool):
        """One pre-scheduled ``gateway.attempt`` span (None when disabled).

        Opened *before* the attempt task is created so the span count
        matches the metrics counters exactly, even for hedges cancelled
        before their coroutine first runs."""
        if not self.obs.enabled:
            return None
        return self.obs.start_span(
            "gateway.attempt",
            parent=parent,
            attrs={"backend": st.name, "shard": st.shard, "hedge": hedge},
        )

    async def _try_backends(
        self,
        path: str,
        payload: dict,
        order: list[BackendState],
        deadline: float,
        *,
        hedge: bool = False,
        parent=None,
    ) -> tuple[int, dict, BackendState] | None:
        """Failover walk over ``order`` (two passes) within ``deadline``."""
        cfg = self.config
        m = self.metrics
        queue = list(order) + list(order)
        first = True
        while queue:
            st = queue.pop(0)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            if not self.breakers[st.name].allow():
                if self.obs.enabled:
                    self.obs.event(
                        "breaker_skip", parent=parent, attrs={"backend": st.name}
                    )
                continue
            timeout = min(cfg.attempt_timeout, remaining)
            span = self._attempt_span(st, parent, hedge=False)
            task = asyncio.create_task(self._attempt(st, path, payload, timeout, span))
            tasks: dict[asyncio.Task, tuple[BackendState, object]] = {task: (st, span)}
            if hedge and first and cfg.hedge_rate > 0 and cfg.hedge_after < timeout:
                done, _ = await asyncio.wait({task}, timeout=cfg.hedge_after)
                if not done:
                    h_st = next(
                        (
                            c for c in queue
                            if c.name != st.name
                            and self.breakers[c.name].would_allow()
                        ),
                        None,
                    )
                    if (
                        h_st is not None
                        and m.hedge_allowed(cfg.hedge_rate)
                        and self.breakers[h_st.name].allow()
                    ):
                        m.hedges_started += 1
                        h_timeout = min(
                            cfg.attempt_timeout, deadline - time.monotonic()
                        )
                        h_span = self._attempt_span(h_st, parent, hedge=True)
                        h_task = asyncio.create_task(
                            self._attempt(h_st, path, payload, h_timeout, h_span)
                        )
                        tasks[h_task] = (h_st, h_span)
            first = False
            outcome = await self._settle(tasks, primary=task)
            if outcome is not None:
                return outcome
            m.failovers += 1
            if self.obs.enabled:
                self.obs.event("failover", parent=parent, attrs={"from": st.name})
        return None

    # -- degradation -----------------------------------------------------
    def _degrade(
        self, request: ServiceRequest, shard: int, parent=None
    ) -> tuple[int, dict, list]:
        """No replica answered: stale cache hit, else 503 + Retry-After."""
        m = self.metrics
        if not request.is_auto and request.algo in self.code_versions:
            key = request.cache_key(self.code_versions[request.algo])
            payload, tier = self.stale_cache.get(key)
            if payload is not None:
                m.degraded_stale += 1
                if self.obs.enabled:
                    self.obs.event(
                        "stale_degrade",
                        parent=parent,
                        attrs={"shard": shard, "tier": tier},
                    )
                doc = {
                    "ok": True,
                    **request.describe(),
                    "cached": "stale",
                    "batched": False,
                    "degraded": True,
                    "fleet": {"shard": shard, "replica": None, "stale_tier": tier},
                    **payload,
                }
                return 200, doc, []
        m.shed += 1
        waits = [
            self.breakers[st.name].seconds_until_probe()
            for st in self.shards[shard]
        ]
        retry = max(1.0, min(waits)) if waits else 1.0
        return (
            503,
            {
                "ok": False,
                "error": f"no replica available for shard {shard}",
                "degraded": False,
            },
            [("Retry-After", str(int(math.ceil(retry))))],
        )

    # -- request handlers ------------------------------------------------
    async def _serve_run(
        self, body: bytes, headers: dict | None = None
    ) -> tuple[int, dict, list]:
        m = self.metrics
        m.request_received()
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            m.response_only(400)
            return 400, {"ok": False, "error": f"invalid JSON body: {exc}"}, []
        try:
            request = ServiceRequest.from_payload(doc)
        except RequestError as exc:
            m.response_only(400)
            return 400, {"ok": False, "error": str(exc), "field": exc.field}, []
        span = None
        if self.obs.enabled:
            incoming = TraceContext.parse((headers or {}).get(TRACE_HEADER_LOWER, ""))
            span = self.obs.start_span(
                "gateway.request",
                parent=incoming,
                attrs={"algo": request.algo, "n": request.n, "seed": request.seed},
            )
        if self.draining:
            m.response_only(503)
            if span is not None:
                span.set(outcome="draining", status_code=503)
                span.end("error")
            return (
                503,
                {"ok": False, "error": "gateway is draining"},
                [("Retry-After", "1")],
            )
        if m.inflight >= self.config.max_inflight:
            m.rejected += 1
            m.response_only(429)
            if span is not None:
                span.set(outcome="rejected", status_code=429)
                span.end("error")
            return (
                429,
                {"ok": False, "error": "gateway at capacity"},
                [("Retry-After", "1")],
            )
        key = routing_key(request)
        shard = self.ring.shard_for(key)
        m.routed_by_shard[shard] += 1
        m.request_admitted()
        if span is not None:
            span.set(shard=shard)
        started = time.monotonic()
        status = 502
        try:
            deadline = time.monotonic() + self.config.request_timeout
            outcome = await self._try_backends(
                "/run", doc, self._candidates(shard, key), deadline, hedge=True,
                parent=span.ctx if span is not None else None,
            )
            if outcome is not None:
                status, out, st = outcome
                m.forwarded_by_backend[st.name] += 1
                if isinstance(out, dict):
                    out["fleet"] = {"shard": shard, "replica": st.name}
                    if span is not None:
                        span.set(outcome="forwarded", backend=st.name)
                        # annotate the response with this hop's trace identity
                        # and add the gateway stage to the per-stage breakdown
                        trace = out.setdefault(
                            "trace",
                            {"trace_id": span.trace_id, "span_id": span.span_id},
                        )
                        stages = trace.setdefault("stages_ms", {})
                        stages["gateway"] = round(
                            (time.monotonic() - started) * 1000.0, 3
                        )
                elif span is not None:
                    span.set(outcome="forwarded", backend=st.name)
                return status, out, []
            status, out, extra = self._degrade(
                request, shard, parent=span.ctx if span is not None else None
            )
            if span is not None:
                span.set(outcome="degraded" if status == 200 else "shed")
            return status, out, extra
        except Exception as exc:  # defensive: the gateway must keep serving
            status = 502
            if span is not None:
                span.set(outcome="error", error=repr(exc)[:200])
            return 502, {"ok": False, "error": f"gateway error: {exc!r}"}, []
        finally:
            m.request_finished(status, time.monotonic() - started)
            if span is not None:
                span.set(status_code=status)
                span.end("ok" if status == 200 else "error")

    async def _serve_plan(
        self, body: bytes, headers: dict | None = None
    ) -> tuple[int, dict, list]:
        """Forward a plan request, routed by its tuning identity (no hedge —
        a cold plan can trigger an expensive tuning run on the shard)."""
        m = self.metrics
        m.request_received()
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            m.response_only(400)
            return 400, {"ok": False, "error": f"invalid JSON body: {exc}"}, []
        if not isinstance(doc, dict):
            m.response_only(400)
            return 400, {"ok": False, "error": "body must be a JSON object"}, []
        if self.draining:
            m.response_only(503)
            return (
                503,
                {"ok": False, "error": "gateway is draining"},
                [("Retry-After", "1")],
            )
        cls = str(doc.get("algo_class") or doc.get("algo") or "")
        key = f"plan|{cls}|{doc.get('n')}|{doc.get('metric', 'edp')}"
        shard = self.ring.shard_for(key)
        m.routed_by_shard[shard] += 1
        m.request_admitted()
        span = None
        if self.obs.enabled:
            incoming = TraceContext.parse((headers or {}).get(TRACE_HEADER_LOWER, ""))
            # named gateway.plan, not gateway.request: plan forwards have no
            # server.request chain for the collector to demand
            span = self.obs.start_span(
                "gateway.plan", parent=incoming, attrs={"shard": shard}
            )
        started = time.monotonic()
        status = 502
        try:
            deadline = time.monotonic() + self.config.request_timeout
            outcome = await self._try_backends(
                "/plan", doc, self._candidates(shard, key), deadline,
                parent=span.ctx if span is not None else None,
            )
            if outcome is not None:
                status, out, st = outcome
                m.forwarded_by_backend[st.name] += 1
                if isinstance(out, dict):
                    out["fleet"] = {"shard": shard, "replica": st.name}
                return status, out, []
            m.shed += 1
            status = 503
            return (
                503,
                {"ok": False, "error": f"no replica available for shard {shard}"},
                [("Retry-After", "1")],
            )
        except Exception as exc:
            status = 502
            return 502, {"ok": False, "error": f"gateway error: {exc!r}"}, []
        finally:
            m.request_finished(status, time.monotonic() - started)
            if span is not None:
                span.set(status_code=status)
                span.end("ok" if status == 200 else "error")

    # -- observability ---------------------------------------------------
    def metrics_doc(self) -> dict:
        shards = [
            {
                "shard": i,
                "replicas": [st.name for st in group],
                "ready": sum(1 for st in group if st.ready),
            }
            for i, group in enumerate(self.shards)
        ]
        breakers = {name: br.snapshot() for name, br in sorted(self.breakers.items())}
        return self.metrics.snapshot(
            shards=shards,
            breakers=breakers,
            health=self.monitor.snapshot(),
            extra={
                "gateway": {
                    "draining": self.draining,
                    "shards": len(self.shards),
                    "replicas": sum(len(g) for g in self.shards),
                    "vnodes": self.ring.vnodes,
                    "hedge_rate": self.config.hedge_rate,
                    "probe_interval_s": self.config.probe_interval,
                    "probe_rounds": self.monitor.rounds,
                },
            },
        )

    async def _route(
        self,
        method: str,
        path: str,
        query: str = "",
        headers: dict | None = None,
        body: bytes = b"",
    ) -> tuple[int, dict | str, list]:
        if path == "/run":
            if method != "POST":
                self.metrics.response_only(405)
                return 405, {"ok": False, "error": "use POST /run"}, [("Allow", "POST")]
            return await self._serve_run(body, headers)
        if path == "/plan":
            if method != "POST":
                self.metrics.response_only(405)
                return 405, {"ok": False, "error": "use POST /plan"}, [("Allow", "POST")]
            return await self._serve_plan(body, headers)
        if method != "GET":
            self.metrics.response_only(405)
            return 405, {"ok": False, "error": f"{method} not allowed here"}, [("Allow", "GET")]
        if path == "/healthz":
            return 200, {"status": "ok", "role": "gateway", "draining": self.draining}, []
        if path == "/readyz":
            per_shard = [sum(1 for st in group if st.ready) for group in self.shards]
            all_ready = all(st.ready for group in self.shards for st in group)
            ok = not self.draining and all(c > 0 for c in per_shard)
            doc = {
                "ready": ok,
                "draining": self.draining,
                "shards_ready": per_shard,
                "all_ready": all_ready,
            }
            if ok:
                return 200, doc, []
            return 503, doc, [("Retry-After", "1")]
        if path == "/metrics":
            if "format=prometheus" in (query or ""):
                from .promexport import render_prometheus

                return 200, render_prometheus(self.metrics_doc()), []
            return 200, self.metrics_doc(), []
        if path == "/algos":
            algos = {
                algo: {"suite": suite_name, "n_range": list(SIZE_LIMITS[algo])}
                for algo, suite_name in sorted(ALGO_SUITES.items())
            }
            for cls_name in AUTO_CLASSES:
                algos[f"{AUTO_PREFIX}{cls_name}"] = {
                    "suite": TUNER_SUITE_NAME,
                    "n_range": list(AUTO_SIZE_LIMITS[cls_name]),
                }
            return 200, {"algos": algos}, []
        if path == "/":
            return (
                200,
                {"endpoints": ["/run", "/plan", "/healthz", "/readyz", "/metrics", "/algos"]},
                [],
            )
        self.metrics.response_only(404)
        return 404, {"ok": False, "error": f"no route for {path}"}, []

    async def _handle_conn(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    parsed = await read_http_request(reader)
                except BadRequest as exc:
                    self.metrics.response_only(400)
                    await write_json_response(
                        writer, 400, {"ok": False, "error": str(exc)}, [], False
                    )
                    break
                if parsed is None:
                    break
                method, target, headers, body = parsed
                path, _, query = target.partition("?")
                keep_alive = (
                    not self.draining and headers.get("connection", "").lower() != "close"
                )
                status, doc, extra = await self._route(
                    method.upper(), path, query, headers, body
                )
                if isinstance(doc, str):
                    from .promexport import PROM_CONTENT_TYPE

                    await write_text_response(
                        writer, status, doc, extra, keep_alive,
                        content_type=PROM_CONTENT_TYPE,
                    )
                else:
                    await write_json_response(writer, status, doc, extra, keep_alive)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()


# -- shard process management -------------------------------------------

_BANNER_RE = re.compile(r"listening on http://[\d.]+:(\d+)")


def serve_argv(
    shard_id: str,
    *,
    port: int = 0,
    workers: int = 1,
    cache_dir: str = "",
    bench_dir: str = "",
    batch_window: float | None = None,
    timeout: float | None = None,
    extra: tuple = (),
) -> list[str]:
    """Build the ``repro serve`` command line for one shard replica."""
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1",
        "--port", str(port),
        "--shard-id", shard_id,
        "--workers", str(workers),
    ]
    if cache_dir:
        argv += ["--cache-dir", cache_dir]
    if bench_dir:
        argv += ["--bench-dir", bench_dir]
    if batch_window is not None:
        argv += ["--batch-window", str(batch_window)]
    if timeout is not None:
        argv += ["--timeout", str(timeout)]
    argv += list(extra)
    return argv


class ShardProcess:
    """One spawned shard replica: banner-parsed port, log capture, signals."""

    def __init__(self, name: str, argv: list[str], env: dict | None = None) -> None:
        self.name = name
        self.argv = list(argv)
        self.env = env
        self.proc: subprocess.Popen | None = None
        self.port = 0
        self.log: list[str] = []
        self._banner = threading.Event()

    def start(self, timeout: float = 30.0) -> int:
        self.proc = subprocess.Popen(
            self.argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=self.env,
            start_new_session=True,
        )
        threading.Thread(target=self._pump, daemon=True).start()
        if not self._banner.wait(timeout) or not self.port:
            raise RuntimeError(
                f"{self.name}: no listen banner within {timeout:.0f}s "
                f"(log tail: {self.log[-3:]})"
            )
        return self.port

    def _pump(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        for line in self.proc.stdout:
            self.log.append(line.rstrip("\n"))
            if not self._banner.is_set():
                match = _BANNER_RE.search(line)
                if match:
                    self.port = int(match.group(1))
                    self._banner.set()
        self._banner.set()  # EOF without a banner unblocks start()

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def _signal(self, sig: int, group: bool = False) -> None:
        if self.proc is not None and self.proc.poll() is None:
            with contextlib.suppress(ProcessLookupError, OSError):
                if group:
                    # The replica runs in its own session (start_new_session),
                    # so the group covers its forked pool workers too — a bare
                    # SIGKILL to the parent would orphan them forever.
                    os.killpg(os.getpgid(self.proc.pid), sig)
                else:
                    self.proc.send_signal(sig)

    def kill(self) -> None:
        self._signal(signal.SIGKILL, group=True)

    def suspend(self) -> None:
        self._signal(signal.SIGSTOP)

    def resume(self) -> None:
        self._signal(signal.SIGCONT)

    def terminate(self) -> None:
        self._signal(signal.SIGTERM)

    def wait(self, timeout: float = 10.0) -> int | None:
        if self.proc is None:
            return None
        with contextlib.suppress(subprocess.TimeoutExpired):
            return self.proc.wait(timeout)
        return None


def parse_backend_list(spec: str) -> list[tuple[str, int]]:
    """``"host:port,host:port,..."`` -> [(host, port), ...]."""
    out = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, _, port = part.rpartition(":")
        try:
            out.append((host or "127.0.0.1", int(port)))
        except ValueError:
            raise SystemExit(f"bad backend address {part!r} (want host:port)")
    return out


def group_backends(flat: list[tuple[str, int]], shards: int) -> list[list[tuple[str, int]]]:
    """Deal ``flat`` round-robin into ``shards`` replica groups."""
    shards = max(1, int(shards))
    if len(flat) < shards:
        raise SystemExit(f"{len(flat)} backend(s) cannot fill {shards} shard(s)")
    return [flat[i::shards] for i in range(shards)]


async def _fleet_amain(
    config: FleetConfig, backends: list[list[tuple[str, int]]]
) -> int:
    gateway = FleetGateway(config, backends)
    await gateway.start()
    print(
        f"repro-fleet: listening on http://{config.host}:{gateway.port} "
        f"(shards={len(backends)}, replicas={sum(len(g) for g in backends)}, "
        f"hedge_rate={config.hedge_rate})",
        flush=True,
    )
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop_event.set)
        except NotImplementedError:  # pragma: no cover - non-posix loops
            signal.signal(sig, lambda *_: stop_event.set())
    await stop_event.wait()
    print("repro-fleet: draining...", flush=True)
    clean = await gateway.drain()
    await gateway.stop()
    total = gateway.metrics.requests_total
    if clean:
        print(f"repro-fleet: drained cleanly after {total} request(s)", flush=True)
        return 0
    print(
        f"repro-fleet: drain timed out with {gateway.metrics.inflight} request(s) "
        "still in flight",
        flush=True,
    )
    return 1


def fleet_main(args) -> int:
    """Entry point for the ``repro fleet`` CLI verb."""
    procs: list[ShardProcess] = []
    trace_dir = getattr(args, "trace_dir", "") or ""
    if trace_dir:
        # set before spawning shards so replicas (and their pool workers)
        # inherit the flag and write their own span sinks
        os.environ[ENV_TRACE_DIR] = trace_dir
    try:
        if args.backends:
            groups = group_backends(parse_backend_list(args.backends), args.shards)
        else:
            groups = []
            for s in range(args.shards):
                group = []
                for r in range(args.replicas):
                    name = f"s{s}r{r}"
                    proc = ShardProcess(
                        name,
                        serve_argv(
                            name,
                            workers=args.workers,
                            cache_dir=args.cache_dir,
                            bench_dir=args.bench_dir,
                        ),
                    )
                    procs.append(proc)
                    port = proc.start()
                    group.append(("127.0.0.1", port))
                    print(f"repro-fleet: shard {name} up on :{port}", flush=True)
                groups.append(group)
        config = FleetConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            request_timeout=args.request_timeout,
            attempt_timeout=args.attempt_timeout,
            hedge_after=args.hedge_after,
            hedge_rate=args.hedge_rate,
            probe_interval=args.probe_interval,
            seed=args.seed,
            cache_dir=args.cache_dir,
            disk_cache=not args.no_disk_cache,
            bench_dir=args.bench_dir,
            trace_dir=trace_dir,
        )
        return asyncio.run(_fleet_amain(config, groups))
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(10)
