"""Fleet-level chaos harness: ``repro fleet-chaos``.

Extends the repo's fault-injection discipline (simulator-level ``repro
chaos``, single-server ``--chaos`` drain tests) to the sharded serving
tier.  The harness runs the same seeded request multiset twice through a
``shards x replicas`` fleet behind an in-process gateway:

1. a **clean run** — no faults, establishing the baseline summed model
   counters (deterministic simulations make the sums a pure function of
   the request multiset);
2. a **chaos run** — a seeded schedule kills one replica (SIGKILL),
   hangs another on a *different* shard (SIGSTOP), restarts the killed
   replica on its old port mid-run (slow start: the gateway must not route
   to it until its worker pool is warm), and finally resumes the hung one.

Because every shard keeps at least one live replica throughout, the gates
are exact, not statistical:

* zero dropped requests and zero failed (non-200) client responses;
* summed model counters **byte-identical** to the clean run;
* hedged duplicate executions bounded by the configured hedge rate;
* at least one circuit breaker ``-> open`` transition in the gateway's
  ``/metrics`` during chaos;
* surviving replicas drain cleanly on SIGTERM (banner grep).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path

from ..obs.tracer import ENV_TRACE_DIR, make_tracer
from .fleet import FleetConfig, FleetGateway, ShardProcess, serve_argv
from .loadgen import build_requests, run_load

__all__ = ["ChaosEvent", "build_schedule", "fleet_chaos_main", "main"]


@dataclass(frozen=True)
class ChaosEvent:
    """One fault, fired when ``fraction`` of the load has completed."""

    fraction: float
    action: str  # kill | hang | restart | resume
    target: str  # replica name, e.g. "s1r0"


def build_schedule(shards: int, replicas: int, seed: int) -> list[ChaosEvent]:
    """The seeded kill/hang/restart/resume schedule.

    The killed and hung replicas live on different shards, so with
    ``replicas >= 2`` every shard keeps at least one untouched replica and
    the exact invariants are achievable."""
    if replicas < 2:
        raise SystemExit("fleet-chaos needs --replicas >= 2 to keep every shard alive")
    rng = random.Random(seed)
    kill_shard = rng.randrange(shards)
    if shards > 1:
        hang_shard = (kill_shard + 1 + rng.randrange(shards - 1)) % shards
    else:
        hang_shard = kill_shard
    kill_target = f"s{kill_shard}r{rng.randrange(replicas)}"
    hang_target = f"s{hang_shard}r{rng.randrange(replicas)}"
    if shards == 1 and hang_target == kill_target:
        # single-shard fallback: hang a different replica than the kill
        hang_target = f"s0r{(int(kill_target[-1]) + 1) % replicas}"
    return [
        ChaosEvent(0.20, "kill", kill_target),
        ChaosEvent(0.40, "hang", hang_target),
        ChaosEvent(0.60, "restart", kill_target),
        ChaosEvent(0.80, "resume", hang_target),
    ]


def _spawn_fleet(
    shards: int,
    replicas: int,
    *,
    workers: int,
    cache_dir: str,
    bench_dir: str = "",
    trace_dir: str = "",
) -> dict[str, ShardProcess]:
    env = dict(os.environ, **{ENV_TRACE_DIR: trace_dir}) if trace_dir else None
    procs: dict[str, ShardProcess] = {}
    try:
        for s in range(shards):
            for r in range(replicas):
                name = f"s{s}r{r}"
                proc = ShardProcess(
                    name,
                    serve_argv(
                        name, workers=workers, cache_dir=cache_dir, bench_dir=bench_dir
                    ),
                    env=env,
                )
                procs[name] = proc
                proc.start()
    except Exception:
        for proc in procs.values():
            proc.kill()
        raise
    return procs


async def _controller(
    gateway: FleetGateway,
    procs: dict[str, ShardProcess],
    retired: list[ShardProcess],
    schedule: list[ChaosEvent],
    total: int,
    fired: list[dict],
    respawn,
) -> None:
    """Fire each event once ``fraction * total`` responses have completed."""

    def finished() -> int:
        return gateway.metrics.latency.count

    for event in schedule:
        threshold = event.fraction * total
        while finished() < threshold:
            await asyncio.sleep(0.05)
        proc = procs[event.target]
        if event.action == "kill":
            proc.kill()
        elif event.action == "hang":
            proc.suspend()
        elif event.action == "resume":
            proc.resume()
        elif event.action == "restart":
            retired.append(proc)
            fresh = respawn(event.target, proc.port)
            procs[event.target] = fresh

            def _start(p=fresh, t=event.target):
                try:
                    p.start()
                except RuntimeError as exc:
                    fired.append({"action": "restart-failed", "target": t,
                                  "error": str(exc)})

            # don't block the controller on the slow start: the point is that
            # the gateway keeps routing around the replica while it warms
            asyncio.get_running_loop().run_in_executor(None, _start)
        fired.append(
            {
                "action": event.action,
                "target": event.target,
                "at_responses": finished(),
            }
        )
        print(
            f"fleet-chaos: {event.action} {event.target} "
            f"at {finished()}/{total} responses",
            flush=True,
        )


async def _drive(
    config: FleetConfig,
    groups: list[list[tuple[str, int]]],
    requests: list[dict],
    *,
    concurrency: int,
    timeout: float,
    seed: int,
    schedule: list[ChaosEvent] | None,
    procs: dict[str, ShardProcess],
    retired: list[ShardProcess],
    respawn,
    gw_tracer=None,
    lg_tracer=None,
) -> tuple[dict, dict, list[dict]]:
    gateway = FleetGateway(config, groups, tracer=gw_tracer)
    await gateway.start()
    deadline = time.monotonic() + 60.0
    while not all(st.ready for group in gateway.shards for st in group):
        if time.monotonic() > deadline:
            await gateway.stop()
            raise RuntimeError("fleet never became ready (pool warm-up stalled?)")
        await asyncio.sleep(0.05)
    fired: list[dict] = []
    controller = None
    if schedule:
        controller = asyncio.create_task(
            _controller(gateway, procs, retired, schedule, len(requests), fired, respawn)
        )
    report = await run_load(
        "127.0.0.1",
        gateway.port,
        requests,
        concurrency=concurrency,
        timeout=timeout,
        max_retries=12,
        backoff_seed=seed,
        tracer=lg_tracer,
    )
    if controller is not None:
        controller.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await controller
    metrics = gateway.metrics_doc()
    await gateway.drain(5.0)
    await gateway.stop()
    return report.as_dict(), metrics, fired


def _run_scenario(
    label: str,
    args,
    cache_dir: str,
    schedule: list[ChaosEvent] | None,
    trace_dir: str = "",
) -> tuple[dict, dict, list[dict], dict[str, list[str]]]:
    """Spawn a fleet, drive the load (with optional chaos), drain, collect logs."""
    print(
        f"fleet-chaos: {label} run — {args.shards}x{args.replicas} fleet, "
        f"{args.requests} requests",
        flush=True,
    )
    procs = _spawn_fleet(
        args.shards,
        args.replicas,
        workers=args.workers,
        cache_dir=cache_dir,
        bench_dir=args.bench_dir,
        trace_dir=trace_dir,
    )
    retired: list[ShardProcess] = []
    respawn_env = dict(os.environ, **{ENV_TRACE_DIR: trace_dir}) if trace_dir else None

    def respawn(name: str, port: int) -> ShardProcess:
        return ShardProcess(
            name,
            serve_argv(
                name,
                port=port,
                workers=args.workers,
                cache_dir=cache_dir,
                bench_dir=args.bench_dir,
            ),
            env=respawn_env,
        )

    groups = [
        [("127.0.0.1", procs[f"s{s}r{r}"].port) for r in range(args.replicas)]
        for s in range(args.shards)
    ]
    config = FleetConfig(
        host="127.0.0.1",
        port=0,
        request_timeout=45.0,
        attempt_timeout=2.0,
        hedge_after=0.5,
        hedge_rate=args.hedge_rate,
        probe_interval=0.3,
        probe_timeout=1.0,
        fall=2,
        rise=1,
        failure_threshold=2,
        cooldown=0.5,
        max_cooldown=4.0,
        seed=args.seed,
        cache_dir=cache_dir,
    )
    requests = build_requests(args.requests, args.seed)
    # explicit tracers for the in-process halves: the env var is reserved for
    # the spawned shard children so the harness process stays untraced by it
    gw_tracer = lg_tracer = None
    if trace_dir:
        gw_tracer = make_tracer("gateway", trace_dir, seed=args.seed, max_records=500000)
        lg_tracer = make_tracer("loadgen", trace_dir, seed=args.seed, max_records=500000)
    try:
        report, metrics, fired = asyncio.run(
            _drive(
                config,
                groups,
                requests,
                concurrency=args.concurrency,
                timeout=args.timeout,
                seed=args.seed,
                schedule=schedule,
                procs=procs,
                retired=retired,
                respawn=respawn,
                gw_tracer=gw_tracer,
                lg_tracer=lg_tracer,
            )
        )
    finally:
        if gw_tracer is not None:
            gw_tracer.close()
        if lg_tracer is not None:
            lg_tracer.close()
        # un-freeze anything still SIGSTOP'd so SIGTERM can drain it
        for proc in procs.values():
            proc.resume()
            proc.terminate()
        for proc in procs.values():
            proc.wait(15)
        for proc in retired:
            proc.kill()
            proc.wait(5)
    logs = {name: list(proc.log) for name, proc in procs.items()}
    for proc in retired:
        logs[f"{proc.name} (retired)"] = list(proc.log)
    return report, metrics, fired, logs


def _gate(args, clean: dict, chaos: dict, metrics: dict, logs: dict) -> list[str]:
    """The exact invariants; returns a list of failure strings."""
    failures = []
    if clean["dropped"] or clean["ok"] != clean["requests"]:
        failures.append(
            f"clean run not clean: {clean['ok']}/{clean['requests']} ok, "
            f"{clean['dropped']} dropped, statuses {clean['by_status']}"
        )
    if chaos["dropped"]:
        failures.append(f"{chaos['dropped']} request(s) dropped under chaos")
    if chaos["ok"] != chaos["requests"]:
        failures.append(
            f"failed responses under chaos: {chaos['ok']}/{chaos['requests']} ok, "
            f"statuses {chaos['by_status']}"
        )
    if clean["model_metrics"] != chaos["model_metrics"]:
        failures.append(
            "summed model counters diverged: "
            f"clean={clean['model_metrics']} chaos={chaos['model_metrics']}"
        )
    total = max(1, metrics["requests"]["total"])
    hedge_frac = metrics["hedging"]["started"] / total
    if hedge_frac > args.hedge_rate + 1e-9:
        failures.append(
            f"hedge rate {hedge_frac:.4f} exceeds the {args.hedge_rate} budget"
        )
    opens = sum(
        1
        for br in metrics.get("breakers", {}).values()
        for t in br.get("transitions", [])
        if t.get("to") == "open"
    )
    if opens == 0:
        failures.append("no circuit breaker opened during chaos")
    drained = [
        name
        for name, lines in logs.items()
        if any("drained cleanly" in line for line in lines)
    ]
    if not drained:
        failures.append("no surviving shard logged a clean drain")
    return failures


def _trace_gate(trace_dir: str, metrics: dict, out_dir: Path, label: str) -> list[str]:
    """Exact span/metric correspondence gates for a traced chaos run.

    Every failover and hedge the gateway counted in ``/metrics`` must appear
    as spans/events in the collected trace — same counts, not approximations.
    """
    from ..obs.collect import (
        aligned_events,
        aligned_spans,
        chrome_trace_doc,
        group_traces,
        load_trace_dir,
    )

    failures: list[str] = []
    try:
        logs = load_trace_dir(Path(trace_dir))
    except FileNotFoundError:
        return [f"trace gate ({label}): no span sinks found in {trace_dir}"]
    truncated = [log.service for log in logs if log.truncated]
    if truncated:
        failures.append(
            f"trace gate ({label}): truncated span sinks for {sorted(truncated)}"
        )
    spans = aligned_spans(logs)
    events = aligned_events(logs)
    attempts = [s for s in spans if s["name"] == "gateway.attempt"]

    error_attempts = sum(1 for a in attempts if a["status"] == "error")
    counted_failures = sum(
        sum(reasons.values())
        for reasons in metrics["routing"]["attempt_failures"].values()
    )
    if error_attempts != counted_failures:
        failures.append(
            f"trace gate ({label}): {error_attempts} error attempt spans vs "
            f"{counted_failures} attempt_failures in /metrics"
        )

    hedge_spans = sum(1 for a in attempts if a.get("attrs", {}).get("hedge"))
    hedges_started = metrics["hedging"]["started"]
    if hedge_spans != hedges_started:
        failures.append(
            f"trace gate ({label}): {hedge_spans} hedge attempt spans vs "
            f"{hedges_started} hedges_started in /metrics"
        )

    failover_events = [e for e in events if e["type"] == "failover"]
    failovers = metrics["routing"]["failovers"]
    if len(failover_events) != failovers:
        failures.append(
            f"trace gate ({label}): {len(failover_events)} failover events vs "
            f"{failovers} failovers in /metrics"
        )

    # every failed-over request's trace must actually show the failed attempt
    traces = group_traces(spans)
    for ev in failover_events:
        tid = ev.get("trace", "")
        bad = [
            s
            for s in traces.get(tid, [])
            if s["name"] == "gateway.attempt" and s["status"] != "ok"
        ]
        if not bad:
            failures.append(
                f"trace gate ({label}): failover in trace {tid[:8]} has "
                "no non-ok attempt span"
            )
            break

    (out_dir / f"trace_{label}.json").write_text(
        json.dumps(chrome_trace_doc(logs, label=f"fleet-chaos {label}"))
    )
    return failures


def fleet_chaos_main(args) -> int:
    """Entry point for the ``repro fleet-chaos`` CLI verb."""
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    schedule = build_schedule(args.shards, args.replicas, args.seed)
    tracing = bool(getattr(args, "trace", False))
    clean_trace = str(out_dir / "trace_clean") if tracing else ""
    chaos_trace = str(out_dir / "trace_chaos") if tracing else ""

    clean_report, clean_metrics, _, _clean_logs = _run_scenario(
        "clean", args, str(out_dir / "cache_clean"), None, trace_dir=clean_trace
    )
    chaos_report, chaos_metrics, fired, chaos_logs = _run_scenario(
        "chaos", args, str(out_dir / "cache_chaos"), schedule, trace_dir=chaos_trace
    )

    failures = _gate(args, clean_report, chaos_report, chaos_metrics, chaos_logs)
    if tracing:
        failures += _trace_gate(clean_trace, clean_metrics, out_dir, "clean")
        failures += _trace_gate(chaos_trace, chaos_metrics, out_dir, "chaos")

    doc = {
        "shards": args.shards,
        "replicas": args.replicas,
        "requests": args.requests,
        "seed": args.seed,
        "schedule": [
            {"fraction": e.fraction, "action": e.action, "target": e.target}
            for e in schedule
        ],
        "events_fired": fired,
        "clean": clean_report,
        "chaos": chaos_report,
        "failures": failures,
    }
    (out_dir / "report.json").write_text(json.dumps(doc, indent=2, sort_keys=True))
    (out_dir / "gateway_metrics_clean.json").write_text(
        json.dumps(clean_metrics, indent=2, sort_keys=True)
    )
    (out_dir / "gateway_metrics_chaos.json").write_text(
        json.dumps(chaos_metrics, indent=2, sort_keys=True)
    )
    (out_dir / "shard_logs_chaos.txt").write_text(
        "\n".join(
            f"[{name}] {line}" for name, lines in chaos_logs.items() for line in lines
        )
        + "\n"
    )
    print(
        f"fleet-chaos: clean {clean_report['ok']}/{clean_report['requests']} ok; "
        f"chaos {chaos_report['ok']}/{chaos_report['requests']} ok, "
        f"{chaos_report['backoff_retries']} backoff retries, "
        f"{chaos_report['degraded']} degraded, "
        f"{chaos_metrics['hedging']['started']} hedges, "
        f"{chaos_metrics['routing']['failovers']} failovers",
        flush=True,
    )
    print(f"fleet-chaos: artifacts -> {out_dir}", flush=True)
    if failures:
        for failure in failures:
            print(f"fleet-chaos: FAIL: {failure}", flush=True)
        return 1
    print("fleet-chaos: PASS — surviving fleet matched the clean run exactly", flush=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.fleetchaos",
        description="Shard-kill chaos gates for the fleet gateway.",
    )
    add_fleet_chaos_args(parser)
    return fleet_chaos_main(parser.parse_args(argv))


def add_fleet_chaos_args(parser) -> None:
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes per shard replica")
    parser.add_argument("--hedge-rate", type=float, default=0.05)
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="client-side per-request timeout")
    parser.add_argument("--bench-dir", default="")
    parser.add_argument("--out", default="chaos_fleet_out",
                        help="artifact directory (reports, metrics, caches)")
    parser.add_argument("--trace", action="store_true",
                        help="trace both runs and gate span counts against "
                             "the gateway's /metrics failover/hedge counters")


if __name__ == "__main__":
    raise SystemExit(main())
