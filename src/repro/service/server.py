"""The asyncio HTTP/1.1 server behind ``repro serve``.

Endpoints (all JSON; see ``docs/SERVICE.md``):

* ``POST /run``   — execute one validated simulation request; ``"algo":
  "auto:<class>"`` resolves the tuned variant through the plan database first
* ``POST /plan``  — resolve a tuning plan without executing it
* ``GET /healthz`` — liveness (reports draining state)
* ``GET /readyz``  — readiness: 503 while the worker pool is warming or the
  server is draining, 200 once it can take traffic (fleet gateways route on
  this, see :mod:`repro.service.fleet`)
* ``GET /metrics`` — counters, latency histograms, cache/batch efficiency
* ``GET /algos``   — served algorithms and admitted size ranges

The request path is: admission control (in-flight cap and bounded queue →
429 + Retry-After) → two-tier cache lookup → micro-batcher (identical
in-flight requests coalesce onto one execution) → worker pool.  Each request
races a deadline; losing it returns 504 while any shared execution keeps
running for the other waiters.  SIGTERM/SIGINT triggers a graceful drain:
the listener closes, in-flight requests finish, workers shut down, and the
process exits 0 after printing ``drained cleanly``.

The HTTP handling is deliberately minimal — request line, headers,
``Content-Length`` bodies, keep-alive — and shared with the fleet gateway
and the load generator through :mod:`repro.service.httpio`, because the
protocol surface is a few JSON endpoints, not a general web server.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import time
from dataclasses import dataclass

from ..runner.cache import DEFAULT_CACHE_DIR, ResultCache
from ..runner.cachekey import suite_code_version
from ..runner.registry import load_suites
from ..tuner.planner import ServicePlanner
from ..tuner.tuner import TuneError
from .batcher import Batcher
from .cache import ServiceCache
from .executor import ExecutionCrash, ExecutionError, ExecutionTimeout, ServiceExecutor
from .httpio import BadRequest, read_http_request, write_json_response
from .metrics import ServiceMetrics
from .protocol import (
    ALGO_SUITES,
    AUTO_CLASSES,
    AUTO_PREFIX,
    AUTO_SIZE_LIMITS,
    SIZE_LIMITS,
    TUNER_SUITE_NAME,
    RequestError,
    ServiceRequest,
)

__all__ = ["ServiceConfig", "SpatialService", "serve_main"]


@dataclass
class ServiceConfig:
    """Knobs for one ``repro serve`` instance."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2
    #: run simulations on event-loop threads instead of the worker pool
    #: (for contexts that cannot fork; disables ``profile`` requests)
    inline: bool = False
    max_inflight: int = 64
    max_queue: int = 256
    batch_window: float = 0.02
    #: execution deadline; the request deadline adds the batch window + 1s
    timeout: float = 30.0
    memory_cache: int = 512
    cache_dir: str = DEFAULT_CACHE_DIR
    disk_cache: bool = True
    bench_dir: str = ""
    drain_timeout: float = 30.0
    #: tuner plan database answering ``/plan`` and ``auto:`` dispatch
    plan_db: str = "benchmarks/plans/plan_db.json"
    #: fleet identity ("s0r1" = shard 0, replica 1); echoed on /healthz,
    #: /readyz and /metrics so gateways and chaos harnesses can tell
    #: replicas apart
    shard_id: str = ""


class SpatialService:
    """One serving instance: listener, batcher, cache, executor, metrics."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        suites = load_suites(config.bench_dir or None)
        missing = [a for a, s in sorted(ALGO_SUITES.items()) if s not in suites]
        if TUNER_SUITE_NAME not in suites:
            missing.append("auto:*")
        if missing:
            raise RuntimeError(
                f"registry is missing suites for algo(s): {', '.join(missing)}"
            )
        # unsalted per-suite code versions; requests salt for profile runs
        self.code_versions = {
            algo: suite_code_version(suites[suite_name])
            for algo, suite_name in ALGO_SUITES.items()
        }
        tuner_ver = suite_code_version(suites[TUNER_SUITE_NAME])
        for cls_name in AUTO_CLASSES:
            self.code_versions[f"{AUTO_PREFIX}{cls_name}"] = tuner_ver
        disk = ResultCache(config.cache_dir) if config.disk_cache else None
        self.cache = ServiceCache(maxsize=config.memory_cache, disk=disk)
        self.planner = ServicePlanner(
            bench_dir=config.bench_dir or None,
            cache=disk,
            db_path=config.plan_db or None,
        )
        self.batcher = Batcher(window=config.batch_window)
        self.executor = ServiceExecutor(
            workers=config.workers,
            bench_dir=config.bench_dir,
            inline=config.inline,
            timeout=config.timeout,
        )
        self.metrics = ServiceMetrics()
        self.draining = False
        self.port = config.port
        self._server: asyncio.AbstractServer | None = None
        self._executing = 0
        self._writers: set[asyncio.StreamWriter] = set()
        self._bg: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting work; wait for in-flight requests. True if empty."""
        self.draining = True
        if self._server is not None:
            self._server.close()
        budget = self.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while (self.metrics.inflight > 0 or self._bg) and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        return self.metrics.inflight == 0 and not self._bg

    async def stop(self) -> None:
        self.draining = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception, asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), 2.0)
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        self.executor.close()

    # -- request processing ---------------------------------------------
    def queue_depth(self) -> int:
        """Admitted requests not currently occupying an execution slot."""
        return max(0, self.metrics.inflight - self._executing)

    async def _resolve_auto(self, request: ServiceRequest) -> tuple[ServiceRequest, dict]:
        """Plan an ``auto:`` request; returns (resolved request, provenance)."""
        try:
            plan, source = await asyncio.to_thread(
                self.planner.plan,
                request.algo_class,
                request.n,
                request.metric,
                request.seed,
            )
        except TuneError as exc:
            raise ExecutionError(str(exc)) from exc
        resolved = request.resolve(plan.best_config.params(request.n))
        provenance = {
            "config": dict(plan.best["config"]),
            "label": plan.best["label"],
            "metric": plan.metric,
            "value": plan.best["value"],
            "source": source,
        }
        return resolved, provenance

    async def _process(self, request: ServiceRequest) -> dict:
        """Cache lookup -> batcher -> executor; returns payload + provenance."""
        plan_doc = None
        if request.is_auto:
            request, plan_doc = await self._resolve_auto(request)
        key = request.cache_key(self.code_versions[request.algo])
        payload, tier = self.cache.get(key)
        if tier is not None:
            self.metrics.cache_hit(tier)
            return {
                "payload": payload, "cached": tier, "batched": False,
                "plan": plan_doc, "request": request,
            }
        self.metrics.cache_misses += 1

        async def _execute() -> dict:
            self._executing += 1
            try:
                payload, exec_s = await self.executor.execute(request)
            except BaseException:
                self.metrics.execution_failures += 1
                raise
            finally:
                self._executing -= 1
                self.metrics.executions += 1
            self.metrics.execution_latency.observe(exec_s)
            self.cache.put(key, request, payload, exec_s)
            return payload

        outcome = await self.batcher.submit(key, _execute)
        if outcome.leader:
            if outcome.batched:
                self.metrics.batched_executions += 1
        else:
            self.metrics.coalesced_requests += 1
        return {
            "payload": outcome.payload, "cached": False, "batched": outcome.batched,
            "plan": plan_doc, "request": request,
        }

    def _track(self, task: asyncio.Task) -> None:
        self._bg.add(task)

        def _done(t: asyncio.Task) -> None:
            self._bg.discard(t)
            if not t.cancelled():
                t.exception()  # retrieved; abandoned (504) leaders stay quiet

        task.add_done_callback(_done)

    async def _serve_run(self, body: bytes) -> tuple[int, dict, list]:
        self.metrics.request_received()
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.metrics.response_only(400)
            return 400, {"ok": False, "error": f"invalid JSON body: {exc}"}, []
        try:
            request = ServiceRequest.from_payload(doc)
        except RequestError as exc:
            self.metrics.response_only(400)
            return 400, {"ok": False, "error": str(exc), "field": exc.field}, []
        if self.draining:
            self.metrics.response_only(503)
            return (
                503,
                {"ok": False, "error": "server is draining"},
                [("Retry-After", "1")],
            )
        if self.metrics.inflight >= self.config.max_inflight:
            self.metrics.rejected += 1
            self.metrics.response_only(429)
            return (
                429,
                {"ok": False, "error": "too many in-flight requests"},
                [("Retry-After", "1")],
            )
        if self.queue_depth() >= self.config.max_queue:
            self.metrics.rejected += 1
            self.metrics.response_only(429)
            return 429, {"ok": False, "error": "queue full"}, [("Retry-After", "1")]

        started = time.monotonic()
        self.metrics.request_admitted(request.algo)
        status = 200
        result: dict = {}
        task = asyncio.create_task(self._process(request))
        self._track(task)
        deadline = self.config.timeout + self.config.batch_window + 1.0
        try:
            out = await asyncio.wait_for(asyncio.shield(task), deadline)
            result = {
                "ok": True,
                **out.get("request", request).describe(),
                "cached": out["cached"] or False,
                "batched": out["batched"],
                "wall_time_s": round(time.monotonic() - started, 6),
                **out["payload"],
            }
            if out.get("plan") is not None:
                result["plan"] = out["plan"]
        except asyncio.TimeoutError:
            status = 504
            self.metrics.timeouts += 1
            result = {"ok": False, "error": f"request timed out after {deadline:.1f}s"}
        except ExecutionCrash as exc:
            status = 504
            self.metrics.crashed += 1
            result = {"ok": False, "error": str(exc)}
        except ExecutionTimeout as exc:
            status = 504
            self.metrics.timeouts += 1
            result = {"ok": False, "error": str(exc)}
        except RequestError as exc:
            status = 400
            result = {"ok": False, "error": str(exc), "field": exc.field}
        except ExecutionError as exc:
            status = 500
            result = {"ok": False, "error": str(exc)}
        except Exception as exc:  # defensive: never tear the connection down
            status = 500
            result = {"ok": False, "error": f"internal error: {exc!r}"}
        finally:
            self.metrics.request_finished(status, time.monotonic() - started)
        return status, result, []

    async def _serve_plan(self, body: bytes) -> tuple[int, dict, list]:
        """Resolve a tuning plan (memo/DB/tune) without executing anything."""
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.metrics.response_only(400)
            return 400, {"ok": False, "error": f"invalid JSON body: {exc}"}, []
        if isinstance(doc, dict) and "algo_class" in doc and "algo" not in doc:
            doc = dict(doc)
            doc["algo"] = f"{AUTO_PREFIX}{doc.pop('algo_class')}"
        try:
            request = ServiceRequest.from_payload(doc)
            if not request.is_auto:
                raise RequestError(
                    f"/plan takes an auto: algo or algo_class, got {request.algo!r}",
                    "algo",
                )
        except RequestError as exc:
            self.metrics.response_only(400)
            return 400, {"ok": False, "error": str(exc), "field": exc.field}, []
        if self.draining:
            self.metrics.response_only(503)
            return 503, {"ok": False, "error": "server is draining"}, []
        try:
            plan, source = await asyncio.to_thread(
                self.planner.plan,
                request.algo_class,
                request.n,
                request.metric,
                request.seed,
            )
        except TuneError as exc:
            self.metrics.response_only(500)
            return 500, {"ok": False, "error": str(exc)}, []
        self.metrics.response_only(200)
        return (
            200,
            {
                "ok": True,
                "algo_class": request.algo_class,
                "n": request.n,
                "metric": request.metric,
                "seed": request.seed,
                "plan": dict(plan.best),
                "counts": dict(plan.counts),
                "pareto": list(plan.pareto),
                "source": source,
                "code_version": plan.code_version,
                "space_hash": plan.space_hash,
            },
            [],
        )

    def metrics_doc(self) -> dict:
        return self.metrics.snapshot(
            queue_depth=self.queue_depth(),
            extra={
                "service": {
                    "shard": self.config.shard_id,
                    "draining": self.draining,
                    "executor": self.executor.stats(),
                    "open_batches": self.batcher.depth(),
                    "memory_cache_entries": len(self.cache),
                    "batch_window_s": self.config.batch_window,
                    "max_inflight": self.config.max_inflight,
                    "max_queue": self.config.max_queue,
                    "planner": self.planner.stats(),
                },
            },
        )

    async def _route(self, method: str, path: str, body: bytes) -> tuple[int, dict, list]:
        if path == "/run":
            if method != "POST":
                self.metrics.response_only(405)
                return 405, {"ok": False, "error": "use POST /run"}, [("Allow", "POST")]
            return await self._serve_run(body)
        if path == "/plan":
            if method != "POST":
                self.metrics.response_only(405)
                return 405, {"ok": False, "error": "use POST /plan"}, [("Allow", "POST")]
            return await self._serve_plan(body)
        if method != "GET":
            self.metrics.response_only(405)
            return 405, {"ok": False, "error": f"{method} not allowed here"}, [("Allow", "GET")]
        if path == "/healthz":
            doc = {"status": "ok", "draining": self.draining}
            if self.config.shard_id:
                doc["shard"] = self.config.shard_id
            return 200, doc, []
        if path == "/readyz":
            reason = ""
            if self.draining:
                reason = "draining"
            elif not self.executor.ready():
                reason = "warming"
            doc = {"ready": not reason, "draining": self.draining}
            if self.config.shard_id:
                doc["shard"] = self.config.shard_id
            if reason:
                doc["reason"] = reason
                return 503, doc, [("Retry-After", "1")]
            return 200, doc, []
        if path == "/metrics":
            return 200, self.metrics_doc(), []
        if path == "/algos":
            algos = {
                algo: {"suite": suite_name, "n_range": list(SIZE_LIMITS[algo])}
                for algo, suite_name in sorted(ALGO_SUITES.items())
            }
            for cls_name in AUTO_CLASSES:
                algos[f"{AUTO_PREFIX}{cls_name}"] = {
                    "suite": TUNER_SUITE_NAME,
                    "n_range": list(AUTO_SIZE_LIMITS[cls_name]),
                }
            return 200, {"algos": algos}, []
        if path == "/":
            return (
                200,
                {"endpoints": ["/run", "/plan", "/healthz", "/readyz", "/metrics", "/algos"]},
                [],
            )
        self.metrics.response_only(404)
        return 404, {"ok": False, "error": f"no route for {path}"}, []

    # -- HTTP plumbing (byte-level pieces live in .httpio) ----------------
    async def _handle_conn(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    parsed = await read_http_request(reader)
                except BadRequest as exc:
                    self.metrics.response_only(400)
                    await write_json_response(
                        writer, 400, {"ok": False, "error": str(exc)}, [], False
                    )
                    break
                if parsed is None:
                    break
                method, target, headers, body = parsed
                path = target.split("?", 1)[0]
                keep_alive = (
                    not self.draining and headers.get("connection", "").lower() != "close"
                )
                status, doc, extra = await self._route(method.upper(), path, body)
                await write_json_response(writer, status, doc, extra, keep_alive)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()


async def _amain(config: ServiceConfig) -> int:
    service = SpatialService(config)
    await service.start()
    backend = "inline" if config.inline else f"pool({config.workers})"
    shard = f", shard={config.shard_id}" if config.shard_id else ""
    print(
        f"repro-serve: listening on http://{config.host}:{service.port} "
        f"(backend={backend}, window={config.batch_window}s{shard})",
        flush=True,
    )
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop_event.set)
        except NotImplementedError:  # pragma: no cover - non-posix loops
            signal.signal(sig, lambda *_: stop_event.set())
    await stop_event.wait()
    print("repro-serve: draining...", flush=True)
    clean = await service.drain()
    await service.stop()
    total = service.metrics.requests_total
    if clean:
        print(f"repro-serve: drained cleanly after {total} request(s)", flush=True)
        return 0
    print(
        f"repro-serve: drain timed out with {service.metrics.inflight} request(s) "
        "still in flight",
        flush=True,
    )
    return 1


def serve_main(args) -> int:
    """Entry point for the ``repro serve`` CLI verb."""
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        inline=args.inline,
        max_inflight=args.max_inflight,
        max_queue=args.queue,
        batch_window=args.batch_window,
        timeout=args.timeout,
        memory_cache=args.memory_cache,
        cache_dir=args.cache_dir,
        disk_cache=not args.no_disk_cache,
        bench_dir=args.bench_dir,
        drain_timeout=args.drain_timeout,
        plan_db=getattr(args, "plan_db", "benchmarks/plans/plan_db.json"),
        shard_id=getattr(args, "shard_id", "") or "",
    )
    return asyncio.run(_amain(config))
