"""The asyncio HTTP/1.1 server behind ``repro serve``.

Endpoints (all JSON; see ``docs/SERVICE.md``):

* ``POST /run``   — execute one validated simulation request; ``"algo":
  "auto:<class>"`` resolves the tuned variant through the plan database first
* ``POST /plan``  — resolve a tuning plan without executing it
* ``GET /healthz`` — liveness (reports draining state)
* ``GET /readyz``  — readiness: 503 while the worker pool is warming or the
  server is draining, 200 once it can take traffic (fleet gateways route on
  this, see :mod:`repro.service.fleet`)
* ``GET /metrics`` — counters, latency histograms, cache/batch efficiency
* ``GET /algos``   — served algorithms and admitted size ranges

The request path is: admission control (in-flight cap and bounded queue →
429 + Retry-After) → two-tier cache lookup → micro-batcher (identical
in-flight requests coalesce onto one execution) → worker pool.  Each request
races a deadline; losing it returns 504 while any shared execution keeps
running for the other waiters.  SIGTERM/SIGINT triggers a graceful drain:
the listener closes, in-flight requests finish, workers shut down, and the
process exits 0 after printing ``drained cleanly``.

The HTTP handling is deliberately minimal — request line, headers,
``Content-Length`` bodies, keep-alive — and shared with the fleet gateway
and the load generator through :mod:`repro.service.httpio`, because the
protocol surface is a few JSON endpoints, not a general web server.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import time
from dataclasses import dataclass

from ..obs.context import TRACE_HEADER_LOWER, TraceContext
from ..obs.tracer import ENV_TRACE_DIR, tracer_from_env
from ..runner.cache import DEFAULT_CACHE_DIR, ResultCache
from ..runner.cachekey import suite_code_version
from ..runner.registry import load_suites
from ..tuner.planner import ServicePlanner
from ..tuner.tuner import TuneError
from .batcher import Batcher
from .cache import ServiceCache
from .executor import ExecutionCrash, ExecutionError, ExecutionTimeout, ServiceExecutor
from .httpio import BadRequest, read_http_request, write_json_response, write_text_response
from .metrics import ServiceMetrics
from .protocol import (
    ALGO_SUITES,
    AUTO_CLASSES,
    AUTO_PREFIX,
    AUTO_SIZE_LIMITS,
    SIZE_LIMITS,
    TUNER_SUITE_NAME,
    RequestError,
    ServiceRequest,
)

__all__ = ["ServiceConfig", "SpatialService", "serve_main"]


@dataclass
class ServiceConfig:
    """Knobs for one ``repro serve`` instance."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2
    #: run simulations on event-loop threads instead of the worker pool
    #: (for contexts that cannot fork; disables ``profile`` requests)
    inline: bool = False
    max_inflight: int = 64
    max_queue: int = 256
    batch_window: float = 0.02
    #: execution deadline; the request deadline adds the batch window + 1s
    timeout: float = 30.0
    memory_cache: int = 512
    cache_dir: str = DEFAULT_CACHE_DIR
    disk_cache: bool = True
    bench_dir: str = ""
    drain_timeout: float = 30.0
    #: tuner plan database answering ``/plan`` and ``auto:`` dispatch
    plan_db: str = "benchmarks/plans/plan_db.json"
    #: fleet identity ("s0r1" = shard 0, replica 1); echoed on /healthz,
    #: /readyz and /metrics so gateways and chaos harnesses can tell
    #: replicas apart
    shard_id: str = ""
    #: span-sink directory; non-empty enables distributed tracing for this
    #: process and (via the inherited environment) its pool workers
    trace_dir: str = ""


class SpatialService:
    """One serving instance: listener, batcher, cache, executor, metrics."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        # the env flag must be set before the executor forks its pool so the
        # workers inherit it and can trace their side of each task
        self._trace_env_set = False
        if config.trace_dir and os.environ.get(ENV_TRACE_DIR, "") != config.trace_dir:
            os.environ[ENV_TRACE_DIR] = config.trace_dir
            self._trace_env_set = True
        self.obs = tracer_from_env(f"shard-{config.shard_id}" if config.shard_id else "server")
        suites = load_suites(config.bench_dir or None)
        missing = [a for a, s in sorted(ALGO_SUITES.items()) if s not in suites]
        if TUNER_SUITE_NAME not in suites:
            missing.append("auto:*")
        if missing:
            raise RuntimeError(
                f"registry is missing suites for algo(s): {', '.join(missing)}"
            )
        # unsalted per-suite code versions; requests salt for profile runs
        self.code_versions = {
            algo: suite_code_version(suites[suite_name])
            for algo, suite_name in ALGO_SUITES.items()
        }
        tuner_ver = suite_code_version(suites[TUNER_SUITE_NAME])
        for cls_name in AUTO_CLASSES:
            self.code_versions[f"{AUTO_PREFIX}{cls_name}"] = tuner_ver
        disk = ResultCache(config.cache_dir) if config.disk_cache else None
        self.cache = ServiceCache(maxsize=config.memory_cache, disk=disk)
        self.planner = ServicePlanner(
            bench_dir=config.bench_dir or None,
            cache=disk,
            db_path=config.plan_db or None,
        )
        self.batcher = Batcher(window=config.batch_window)
        self.executor = ServiceExecutor(
            workers=config.workers,
            bench_dir=config.bench_dir,
            inline=config.inline,
            timeout=config.timeout,
        )
        self.metrics = ServiceMetrics()
        self.draining = False
        self.port = config.port
        self._server: asyncio.AbstractServer | None = None
        self._executing = 0
        self._writers: set[asyncio.StreamWriter] = set()
        self._bg: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting work; wait for in-flight requests. True if empty."""
        self.draining = True
        if self._server is not None:
            self._server.close()
        self.obs.event("drain_started", attrs={"inflight": self.metrics.inflight})
        budget = self.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while (self.metrics.inflight > 0 or self._bg) and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        clean = self.metrics.inflight == 0 and not self._bg
        self.obs.event(
            "drain_finished",
            attrs={"clean": clean, "inflight": self.metrics.inflight},
        )
        return clean

    async def stop(self) -> None:
        self.draining = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception, asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), 2.0)
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        self.executor.close()
        self.obs.close()
        if self._trace_env_set:
            os.environ.pop(ENV_TRACE_DIR, None)
            self._trace_env_set = False

    # -- request processing ---------------------------------------------
    def queue_depth(self) -> int:
        """Admitted requests not currently occupying an execution slot."""
        return max(0, self.metrics.inflight - self._executing)

    async def _resolve_auto(self, request: ServiceRequest) -> tuple[ServiceRequest, dict]:
        """Plan an ``auto:`` request; returns (resolved request, provenance)."""
        try:
            plan, source = await asyncio.to_thread(
                self.planner.plan,
                request.algo_class,
                request.n,
                request.metric,
                request.seed,
            )
        except TuneError as exc:
            raise ExecutionError(str(exc)) from exc
        resolved = request.resolve(plan.best_config.params(request.n))
        provenance = {
            "config": dict(plan.best["config"]),
            "label": plan.best["label"],
            "metric": plan.metric,
            "value": plan.best["value"],
            "source": source,
        }
        return resolved, provenance

    async def _process(self, request: ServiceRequest, parent=None) -> dict:
        """Cache lookup -> batcher -> executor; returns payload + provenance.

        ``parent`` is the request's open ``server.request`` span when tracing
        is enabled (else None); the cache probe, batch wait, and execution
        each get a child span, and their durations come back as ``stages``
        for the response's trace annotation."""
        plan_doc = None
        stages: dict[str, float] = {}
        if request.is_auto:
            request, plan_doc = await self._resolve_auto(request)
        key = request.cache_key(self.code_versions[request.algo])
        probe = None
        if parent is not None:
            probe = self.obs.start_span("server.cache_probe", parent=parent.ctx)
        payload, tier = self.cache.get(key)
        if probe is not None:
            probe.set(tier=tier or "miss")
            probe.end()
            stages["cache_probe"] = round(probe.duration_ms, 3)
        if tier is not None:
            self.metrics.cache_hit(tier)
            return {
                "payload": payload, "cached": tier, "batched": False, "leader": None,
                "plan": plan_doc, "request": request, "stages": stages,
            }
        self.metrics.cache_misses += 1

        async def _execute() -> dict:
            self._executing += 1
            espan = None
            if parent is not None:
                espan = self.obs.start_span(
                    "server.execute",
                    parent=parent.ctx,
                    attrs={"backend": "inline" if self.config.inline else "pool"},
                )
            try:
                payload, exec_s = await self.executor.execute(
                    request, trace=espan.ctx if espan is not None else None
                )
            except BaseException:
                self.metrics.execution_failures += 1
                if espan is not None:
                    espan.end("error")
                raise
            finally:
                self._executing -= 1
                self.metrics.executions += 1
            if espan is not None:
                espan.set(exec_s=round(exec_s, 6))
                espan.end()
                stages["execute"] = round(espan.duration_ms, 3)
            self.metrics.execution_latency.observe(exec_s)
            self.cache.put(key, request, payload, exec_s)
            return payload

        bspan = None
        if parent is not None:
            bspan = self.obs.start_span("server.batch", parent=parent.ctx)
        outcome = await self.batcher.submit(key, _execute)
        if bspan is not None:
            bspan.set(
                leader=outcome.leader, batched=outcome.batched,
                batch_size=getattr(outcome, "batch_size", None),
            )
            bspan.end()
            # a leader's batch span covers the execution too; its queue-side
            # wait is what remains after the execute stage
            wait = bspan.duration_ms - stages.get("execute", 0.0)
            stages["batch_wait"] = round(max(0.0, wait), 3)
        if outcome.leader:
            if outcome.batched:
                self.metrics.batched_executions += 1
        else:
            self.metrics.coalesced_requests += 1
        return {
            "payload": outcome.payload, "cached": False, "batched": outcome.batched,
            "leader": outcome.leader, "plan": plan_doc, "request": request,
            "stages": stages,
        }

    def _track(self, task: asyncio.Task) -> None:
        self._bg.add(task)

        def _done(t: asyncio.Task) -> None:
            self._bg.discard(t)
            if not t.cancelled():
                t.exception()  # retrieved; abandoned (504) leaders stay quiet

        task.add_done_callback(_done)

    async def _serve_run(
        self, body: bytes, headers: dict | None = None
    ) -> tuple[int, dict, list]:
        self.metrics.request_received()
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.metrics.response_only(400)
            return 400, {"ok": False, "error": f"invalid JSON body: {exc}"}, []
        try:
            request = ServiceRequest.from_payload(doc)
        except RequestError as exc:
            self.metrics.response_only(400)
            return 400, {"ok": False, "error": str(exc), "field": exc.field}, []
        span = None
        if self.obs.enabled:
            incoming = TraceContext.parse((headers or {}).get(TRACE_HEADER_LOWER, ""))
            span = self.obs.start_span(
                "server.request",
                parent=incoming,
                attrs={
                    "algo": request.algo, "n": request.n, "seed": request.seed,
                    "shard": self.config.shard_id or None,
                },
            )
        if self.draining:
            self.metrics.response_only(503)
            if span is not None:
                span.set(status_code=503, rejected="draining")
                span.end("error")
            return (
                503,
                {"ok": False, "error": "server is draining"},
                [("Retry-After", "1")],
            )
        if self.metrics.inflight >= self.config.max_inflight:
            self.metrics.rejected += 1
            self.metrics.response_only(429)
            if span is not None:
                span.set(status_code=429, rejected="max_inflight")
                span.end("error")
            return (
                429,
                {"ok": False, "error": "too many in-flight requests"},
                [("Retry-After", "1")],
            )
        if self.queue_depth() >= self.config.max_queue:
            self.metrics.rejected += 1
            self.metrics.response_only(429)
            if span is not None:
                span.set(status_code=429, rejected="queue_full")
                span.end("error")
            return 429, {"ok": False, "error": "queue full"}, [("Retry-After", "1")]

        started = time.monotonic()
        self.metrics.request_admitted(request.algo)
        status = 200
        result: dict = {}
        task = asyncio.create_task(self._process(request, parent=span))
        self._track(task)
        deadline = self.config.timeout + self.config.batch_window + 1.0
        try:
            out = await asyncio.wait_for(asyncio.shield(task), deadline)
            result = {
                "ok": True,
                **out.get("request", request).describe(),
                "cached": out["cached"] or False,
                "batched": out["batched"],
                "wall_time_s": round(time.monotonic() - started, 6),
                **out["payload"],
            }
            if out.get("plan") is not None:
                result["plan"] = out["plan"]
            if span is not None:
                span.set(
                    cached=out["cached"] or False,
                    batched=out["batched"],
                    leader=out.get("leader"),
                )
                stages = dict(out.get("stages") or {})
                stages["total"] = round((time.monotonic() - started) * 1000.0, 3)
                result["trace"] = {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "stages_ms": stages,
                }
        except asyncio.TimeoutError:
            status = 504
            self.metrics.timeouts += 1
            result = {"ok": False, "error": f"request timed out after {deadline:.1f}s"}
        except ExecutionCrash as exc:
            status = 504
            self.metrics.crashed += 1
            result = {"ok": False, "error": str(exc)}
            self.obs.event(
                "worker_crash",
                parent=span.ctx if span is not None else None,
                attrs={"algo": request.algo, "error": str(exc)[:200]},
            )
        except ExecutionTimeout as exc:
            status = 504
            self.metrics.timeouts += 1
            result = {"ok": False, "error": str(exc)}
        except RequestError as exc:
            status = 400
            result = {"ok": False, "error": str(exc), "field": exc.field}
        except ExecutionError as exc:
            status = 500
            result = {"ok": False, "error": str(exc)}
        except Exception as exc:  # defensive: never tear the connection down
            status = 500
            result = {"ok": False, "error": f"internal error: {exc!r}"}
        finally:
            self.metrics.request_finished(status, time.monotonic() - started)
            if span is not None:
                span.set(status_code=status)
                span.end("ok" if status == 200 else "error")
        return status, result, []

    async def _serve_plan(self, body: bytes) -> tuple[int, dict, list]:
        """Resolve a tuning plan (memo/DB/tune) without executing anything."""
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.metrics.response_only(400)
            return 400, {"ok": False, "error": f"invalid JSON body: {exc}"}, []
        if isinstance(doc, dict) and "algo_class" in doc and "algo" not in doc:
            doc = dict(doc)
            doc["algo"] = f"{AUTO_PREFIX}{doc.pop('algo_class')}"
        try:
            request = ServiceRequest.from_payload(doc)
            if not request.is_auto:
                raise RequestError(
                    f"/plan takes an auto: algo or algo_class, got {request.algo!r}",
                    "algo",
                )
        except RequestError as exc:
            self.metrics.response_only(400)
            return 400, {"ok": False, "error": str(exc), "field": exc.field}, []
        if self.draining:
            self.metrics.response_only(503)
            return 503, {"ok": False, "error": "server is draining"}, []
        try:
            plan, source = await asyncio.to_thread(
                self.planner.plan,
                request.algo_class,
                request.n,
                request.metric,
                request.seed,
            )
        except TuneError as exc:
            self.metrics.response_only(500)
            return 500, {"ok": False, "error": str(exc)}, []
        self.metrics.response_only(200)
        return (
            200,
            {
                "ok": True,
                "algo_class": request.algo_class,
                "n": request.n,
                "metric": request.metric,
                "seed": request.seed,
                "plan": dict(plan.best),
                "counts": dict(plan.counts),
                "pareto": list(plan.pareto),
                "source": source,
                "code_version": plan.code_version,
                "space_hash": plan.space_hash,
            },
            [],
        )

    def metrics_doc(self) -> dict:
        return self.metrics.snapshot(
            queue_depth=self.queue_depth(),
            extra={
                "service": {
                    "shard": self.config.shard_id,
                    "draining": self.draining,
                    "executor": self.executor.stats(),
                    "open_batches": self.batcher.depth(),
                    "memory_cache_entries": len(self.cache),
                    "batch_window_s": self.config.batch_window,
                    "max_inflight": self.config.max_inflight,
                    "max_queue": self.config.max_queue,
                    "planner": self.planner.stats(),
                },
            },
        )

    async def _route(
        self,
        method: str,
        path: str,
        query: str = "",
        headers: dict | None = None,
        body: bytes = b"",
    ) -> tuple[int, dict | str, list]:
        if path == "/run":
            if method != "POST":
                self.metrics.response_only(405)
                return 405, {"ok": False, "error": "use POST /run"}, [("Allow", "POST")]
            return await self._serve_run(body, headers)
        if path == "/plan":
            if method != "POST":
                self.metrics.response_only(405)
                return 405, {"ok": False, "error": "use POST /plan"}, [("Allow", "POST")]
            return await self._serve_plan(body)
        if method != "GET":
            self.metrics.response_only(405)
            return 405, {"ok": False, "error": f"{method} not allowed here"}, [("Allow", "GET")]
        if path == "/healthz":
            doc = {"status": "ok", "draining": self.draining}
            if self.config.shard_id:
                doc["shard"] = self.config.shard_id
            return 200, doc, []
        if path == "/readyz":
            reason = ""
            if self.draining:
                reason = "draining"
            elif not self.executor.ready():
                reason = "warming"
            doc = {"ready": not reason, "draining": self.draining}
            if self.config.shard_id:
                doc["shard"] = self.config.shard_id
            if reason:
                doc["reason"] = reason
                return 503, doc, [("Retry-After", "1")]
            return 200, doc, []
        if path == "/metrics":
            if "format=prometheus" in (query or ""):
                from .promexport import render_prometheus

                return 200, render_prometheus(self.metrics_doc()), []
            return 200, self.metrics_doc(), []
        if path == "/algos":
            algos = {
                algo: {"suite": suite_name, "n_range": list(SIZE_LIMITS[algo])}
                for algo, suite_name in sorted(ALGO_SUITES.items())
            }
            for cls_name in AUTO_CLASSES:
                algos[f"{AUTO_PREFIX}{cls_name}"] = {
                    "suite": TUNER_SUITE_NAME,
                    "n_range": list(AUTO_SIZE_LIMITS[cls_name]),
                }
            return 200, {"algos": algos}, []
        if path == "/":
            return (
                200,
                {"endpoints": ["/run", "/plan", "/healthz", "/readyz", "/metrics", "/algos"]},
                [],
            )
        self.metrics.response_only(404)
        return 404, {"ok": False, "error": f"no route for {path}"}, []

    # -- HTTP plumbing (byte-level pieces live in .httpio) ----------------
    async def _handle_conn(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    parsed = await read_http_request(reader)
                except BadRequest as exc:
                    self.metrics.response_only(400)
                    await write_json_response(
                        writer, 400, {"ok": False, "error": str(exc)}, [], False
                    )
                    break
                if parsed is None:
                    break
                method, target, headers, body = parsed
                path, _, query = target.partition("?")
                keep_alive = (
                    not self.draining and headers.get("connection", "").lower() != "close"
                )
                status, doc, extra = await self._route(
                    method.upper(), path, query, headers, body
                )
                if isinstance(doc, str):
                    from .promexport import PROM_CONTENT_TYPE

                    await write_text_response(
                        writer, status, doc, extra, keep_alive,
                        content_type=PROM_CONTENT_TYPE,
                    )
                else:
                    await write_json_response(writer, status, doc, extra, keep_alive)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()


async def _amain(config: ServiceConfig) -> int:
    service = SpatialService(config)
    await service.start()
    backend = "inline" if config.inline else f"pool({config.workers})"
    shard = f", shard={config.shard_id}" if config.shard_id else ""
    print(
        f"repro-serve: listening on http://{config.host}:{service.port} "
        f"(backend={backend}, window={config.batch_window}s{shard})",
        flush=True,
    )
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop_event.set)
        except NotImplementedError:  # pragma: no cover - non-posix loops
            signal.signal(sig, lambda *_: stop_event.set())
    await stop_event.wait()
    print("repro-serve: draining...", flush=True)
    clean = await service.drain()
    await service.stop()
    total = service.metrics.requests_total
    if clean:
        print(f"repro-serve: drained cleanly after {total} request(s)", flush=True)
        return 0
    print(
        f"repro-serve: drain timed out with {service.metrics.inflight} request(s) "
        "still in flight",
        flush=True,
    )
    return 1


def serve_main(args) -> int:
    """Entry point for the ``repro serve`` CLI verb."""
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        inline=args.inline,
        max_inflight=args.max_inflight,
        max_queue=args.queue,
        batch_window=args.batch_window,
        timeout=args.timeout,
        memory_cache=args.memory_cache,
        cache_dir=args.cache_dir,
        disk_cache=not args.no_disk_cache,
        bench_dir=args.bench_dir,
        drain_timeout=args.drain_timeout,
        plan_db=getattr(args, "plan_db", "benchmarks/plans/plan_db.json"),
        shard_id=getattr(args, "shard_id", "") or "",
        trace_dir=getattr(args, "trace_dir", "") or "",
    )
    return asyncio.run(_amain(config))
