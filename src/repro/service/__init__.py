"""repro.service — an async batch-serving layer for spatial-model simulations.

``repro serve`` exposes the benchmark registry's Table I primitives over a
minimal HTTP/1.1 interface (stdlib asyncio only, no new dependencies):

* :mod:`repro.service.protocol` — request validation against the runner
  registry (``{"algo": "scan", "n": 4096, "seed": 7, "profile": false}``);
* :mod:`repro.service.executor` — execution backends: a persistent
  :class:`~repro.runner.pool.WorkerPool` of forked workers, or inline
  threads for contexts that cannot fork (benchmarks inside sweep workers);
* :mod:`repro.service.batcher` — dynamic micro-batching: identical in-flight
  requests coalesce into one execution fanned back out to every waiter;
* :mod:`repro.service.cache` — an in-process LRU over the content-addressed
  on-disk :class:`~repro.runner.cache.ResultCache` (keys shared with
  ``repro bench run`` via :mod:`repro.runner.cachekey`);
* :mod:`repro.service.metrics` — request counters, latency histograms,
  cache/batch efficiency, queue depth (served as JSON at ``/metrics``);
* :mod:`repro.service.server` — the HTTP server: admission control
  (429 + Retry-After), per-request timeouts (504), graceful SIGTERM drain;
* :mod:`repro.service.loadgen` — a closed-loop load generator used by the
  tests, the CI ``service-smoke`` job, and ``benchmarks/bench_service.py``.

See ``docs/SERVICE.md`` for endpoint and semantics documentation.
"""

from .batcher import Batcher
from .cache import ServiceCache
from .executor import ExecutionError, ExecutionTimeout, ServiceExecutor
from .metrics import LatencyHistogram, ServiceMetrics
from .protocol import ALGO_SUITES, RequestError, ServiceRequest
from .server import ServiceConfig, SpatialService, serve_main

__all__ = [
    "ALGO_SUITES",
    "Batcher",
    "ExecutionError",
    "ExecutionTimeout",
    "LatencyHistogram",
    "RequestError",
    "ServiceCache",
    "ServiceConfig",
    "ServiceExecutor",
    "ServiceMetrics",
    "ServiceRequest",
    "SpatialService",
    "serve_main",
]
