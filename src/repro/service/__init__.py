"""repro.service — an async batch-serving layer for spatial-model simulations.

``repro serve`` exposes the benchmark registry's Table I primitives over a
minimal HTTP/1.1 interface (stdlib asyncio only, no new dependencies):

* :mod:`repro.service.protocol` — request validation against the runner
  registry (``{"algo": "scan", "n": 4096, "seed": 7, "profile": false}``);
* :mod:`repro.service.httpio` — the shared byte-level HTTP/1.1 plumbing
  (request parsing, JSON responses, client calls) used by the server, the
  fleet gateway, and the load generator;
* :mod:`repro.service.executor` — execution backends: a persistent
  :class:`~repro.runner.pool.WorkerPool` of forked workers, or inline
  threads for contexts that cannot fork (benchmarks inside sweep workers);
* :mod:`repro.service.batcher` — dynamic micro-batching: identical in-flight
  requests coalesce into one execution fanned back out to every waiter;
* :mod:`repro.service.cache` — an in-process LRU over the content-addressed
  on-disk :class:`~repro.runner.cache.ResultCache` (keys shared with
  ``repro bench run`` via :mod:`repro.runner.cachekey`);
* :mod:`repro.service.metrics` — request counters, latency histograms,
  cache/batch efficiency, queue depth (served as JSON at ``/metrics``);
* :mod:`repro.service.promexport` — Prometheus text exposition of the same
  snapshots (``GET /metrics?format=prometheus`` on server and gateway);
* :mod:`repro.service.server` — the HTTP server: admission control
  (429 + Retry-After), liveness/readiness split (``/healthz`` vs
  ``/readyz``), per-request timeouts (504), graceful SIGTERM drain;
* :mod:`repro.service.loadgen` — a closed-loop load generator (Retry-After
  honoring backoff, multi-target fan-out) used by the tests, the CI smoke
  jobs, and ``benchmarks/bench_service.py``.

``repro fleet`` layers a resilient sharded front tier on top:

* :mod:`repro.service.fleet` — the consistent-hash gateway: key-affine
  routing over ``shards x replicas`` backends, deadline-budgeted failover,
  bounded hedged retries, stale-cache degradation;
* :mod:`repro.service.health` — background liveness/readiness probing with
  debounced state flips and periodic backend metrics scrapes;
* :mod:`repro.service.breaker` — per-replica circuit breakers with seeded
  jitter and an assertable transition log;
* :mod:`repro.service.fleetchaos` — ``repro fleet-chaos``: kills, hangs and
  restarts replicas mid-load and gates on exact clean-run equivalence.

Distributed tracing lives in :mod:`repro.obs`: every tier accepts an
``X-Repro-Trace`` context, records spans to per-process JSONL sinks when a
trace directory is configured, and ``repro trace-collect`` merges them.

See ``docs/SERVICE.md`` for endpoint and semantics documentation and
``docs/OBSERVABILITY.md`` for the tracing subsystem.
"""

from .batcher import Batcher
from .breaker import BreakerConfig, CircuitBreaker
from .cache import ServiceCache
from .executor import ExecutionCrash, ExecutionError, ExecutionTimeout, ServiceExecutor
from .fleet import FleetConfig, FleetGateway, HashRing, fleet_main
from .health import BackendState, HealthMonitor
from .metrics import FleetMetrics, LatencyHistogram, ServiceMetrics
from .promexport import PROM_CONTENT_TYPE, render_prometheus
from .protocol import ALGO_SUITES, RequestError, ServiceRequest
from .server import ServiceConfig, SpatialService, serve_main

__all__ = [
    "ALGO_SUITES",
    "PROM_CONTENT_TYPE",
    "BackendState",
    "Batcher",
    "BreakerConfig",
    "CircuitBreaker",
    "ExecutionCrash",
    "ExecutionError",
    "ExecutionTimeout",
    "FleetConfig",
    "FleetGateway",
    "FleetMetrics",
    "HashRing",
    "HealthMonitor",
    "LatencyHistogram",
    "RequestError",
    "ServiceCache",
    "ServiceConfig",
    "ServiceExecutor",
    "ServiceMetrics",
    "ServiceRequest",
    "SpatialService",
    "fleet_main",
    "render_prometheus",
    "serve_main",
]
