"""Per-backend circuit breakers for the fleet gateway.

The state machine is the classic three-state breaker, with the repo's
fault-recovery discipline applied: every timing decision is seeded and
deterministic, and every transition is recorded so it can be asserted on
from ``/metrics``.

* **closed** — traffic flows; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker open.
* **open** — traffic is rejected until a cooldown (with deterministic,
  seeded jitter so a fleet of breakers does not probe in lockstep)
  expires; the next ``allow()`` after that moves to half-open.
* **half-open** — exactly one probe request is admitted.  Success closes
  the breaker and resets the cooldown; failure re-opens it with the
  cooldown doubled (capped at ``max_cooldown_s``).

The breaker never touches wall-clock state on its own: callers drive it
through ``allow()`` / ``record_success()`` / ``record_failure()``, and the
clock is injectable for tests.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "BreakerConfig", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables for one :class:`CircuitBreaker`."""

    #: consecutive failures in the closed state that trip the breaker
    failure_threshold: int = 3
    #: initial open-state cooldown before a half-open probe is admitted
    cooldown_s: float = 2.0
    #: cooldown cap as repeated probe failures keep doubling it
    max_cooldown_s: float = 30.0
    #: +/- fraction of the cooldown drawn from the seeded rng per trip
    jitter: float = 0.2


class CircuitBreaker:
    """Three-state breaker with seeded jitter and a transition log."""

    def __init__(
        self,
        name: str = "",
        config: BreakerConfig | None = None,
        *,
        seed: int = 0,
        clock=time.monotonic,
        max_transitions: int = 256,
    ) -> None:
        self.name = name
        self.config = config or BreakerConfig()
        self._clock = clock
        self._rng = random.Random(seed)
        self._max_transitions = max(1, int(max_transitions))
        self.state = CLOSED
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self.rejected = 0
        self.transitions: list[dict] = []
        #: optional ``(name, transition_record)`` observer — the gateway uses
        #: it to emit typed trace events alongside the in-memory log
        self.on_transition = None
        self._cooldown = self.config.cooldown_s
        self._open_until = 0.0
        self._probe_inflight = False

    # -- state machine ---------------------------------------------------
    def _transition(self, to: str, reason: str) -> None:
        record = {
            "t": round(self._clock(), 3),
            "from": self.state,
            "to": to,
            "reason": reason,
        }
        self.transitions.append(record)
        if len(self.transitions) > self._max_transitions:
            del self.transitions[: -self._max_transitions]
        self.state = to
        if self.on_transition is not None:
            self.on_transition(self.name, record)

    def _trip_open(self, reason: str) -> None:
        jitter = 1.0 + self.config.jitter * (2.0 * self._rng.random() - 1.0)
        self._open_until = self._clock() + self._cooldown * jitter
        self._probe_inflight = False
        self._transition(OPEN, reason)

    def allow(self) -> bool:
        """May a request be sent now?  Consumes the half-open probe slot."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() < self._open_until:
                self.rejected += 1
                return False
            self._transition(HALF_OPEN, "cooldown elapsed")
            self._probe_inflight = True
            return True
        # half-open: one probe at a time
        if self._probe_inflight:
            self.rejected += 1
            return False
        self._probe_inflight = True
        return True

    def would_allow(self) -> bool:
        """Non-mutating availability check (no probe slot is consumed)."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            return self._clock() >= self._open_until
        return not self._probe_inflight

    def release(self) -> None:
        """Return an unused probe slot (the admitted attempt was cancelled)."""
        self._probe_inflight = False

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._cooldown = self.config.cooldown_s
            self._probe_inflight = False
            self._transition(CLOSED, "probe succeeded")

    def record_failure(self, reason: str = "error") -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._cooldown = min(self._cooldown * 2.0, self.config.max_cooldown_s)
            self._trip_open(f"probe failed: {reason}")
        elif (
            self.state == CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self._trip_open(reason)
        # a failure while already open (an in-flight request finishing after
        # the trip) only bumps the counters

    # -- observability ---------------------------------------------------
    def seconds_until_probe(self) -> float:
        """Time until the next half-open probe would be admitted."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self._open_until - self._clock())

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "successes": self.successes,
            "rejected": self.rejected,
            "cooldown_s": round(self._cooldown, 3),
            "seconds_until_probe": round(self.seconds_until_probe(), 3),
            "transitions": list(self.transitions),
        }
