"""Two-tier result cache for the serving layer.

Tier 1 is a bounded in-process LRU (payload dicts keyed by the request's
content-addressed key); tier 2 is the same on-disk
:class:`~repro.runner.cache.ResultCache` that ``repro bench run`` writes.
Because both layers key through :mod:`repro.runner.cachekey`, a sweep run
yesterday warms today's service — and vice versa: a served miss is persisted
as a schema-valid :class:`~repro.runner.result.PointResult` that a later
``repro bench run`` replays without re-executing.
"""

from __future__ import annotations

from collections import OrderedDict

from ..runner.cache import ResultCache
from ..runner.result import PointResult
from .protocol import ServiceRequest

__all__ = ["ServiceCache"]


def _payload_from_result(res: PointResult) -> dict:
    payload = {
        "metrics": dict(res.metrics or {}),
        "phases": list(res.phases),
        "extra": dict(res.extra),
    }
    if res.profile is not None:
        payload["profile"] = dict(res.profile)
    return payload


class ServiceCache:
    """In-process LRU over the shared content-addressed disk cache."""

    def __init__(self, maxsize: int = 512, disk: ResultCache | None = None) -> None:
        self.maxsize = max(1, int(maxsize))
        self.disk = disk
        self._lru: OrderedDict[str, dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._lru)

    def _remember(self, key: str, payload: dict) -> None:
        self._lru[key] = payload
        self._lru.move_to_end(key)
        while len(self._lru) > self.maxsize:
            self._lru.popitem(last=False)

    def get(self, key: str) -> tuple[dict | None, str | None]:
        """Look up ``key``; return ``(payload, tier)`` with tier in
        ``("memory", "disk", None)``.  Disk hits are promoted into the LRU."""
        hit = self._lru.get(key)
        if hit is not None:
            self._lru.move_to_end(key)
            return hit, "memory"
        if self.disk is not None:
            res = self.disk.get(key)
            if res is not None:
                payload = _payload_from_result(res)
                self._remember(key, payload)
                return payload, "disk"
        return None, None

    def put(self, key: str, request: ServiceRequest, payload: dict, wall_time_s: float) -> None:
        """Store a completed execution in both tiers."""
        self._remember(key, payload)
        if self.disk is not None:
            self.disk.put(
                key,
                PointResult(
                    params=request.params(),
                    seed=request.seed,
                    repeat=0,
                    status="ok",
                    wall_time_s=wall_time_s,
                    metrics=payload.get("metrics"),
                    phases=list(payload.get("phases", [])),
                    extra=dict(payload.get("extra", {})),
                    profile=payload.get("profile"),
                ),
            )
