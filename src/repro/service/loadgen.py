"""Closed-loop load generator for the serving layer.

``run_load`` drives ``N`` requests through a fixed set of persistent
connections: every worker opens its connection, all workers start together
(so the server really sees ``concurrency`` simultaneous requests), and each
worker issues its next request as soon as the previous response lands.

The request mix is pre-generated from a seed over small algo/size/seed
pools, which has two useful consequences: duplicates exist (so coalescing
and cache hits actually happen under load), and the multiset of requests —
hence the summed model metrics in the report — is a pure function of
``(count, seed)`` no matter how the requests interleave.  That determinism
is what lets ``benchmarks/bench_service.py`` gate on the summed metrics.

Back-pressure is honored, not counted as failure: a 429 or 503 answer with
``Retry-After`` makes the worker sleep for the server's hint (with seeded
jitter so a fleet of loadgen workers does not retry in lockstep) and resend,
up to ``max_retries`` times.  Only the final status of a request is
recorded, so the report's summed model metrics stay a pure function of the
request multiset even when the server sheds load mid-run.

Also usable directly::

    python -m repro.service.loadgen --port 8642 --requests 200 --require-hits 1
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from collections import Counter, deque
from dataclasses import dataclass, field

from ..obs.collect import quantile
from ..obs.context import TRACE_HEADER, deterministic_span_id, deterministic_trace_id
from ..obs.tracer import make_tracer, tracer_from_env
from .httpio import http_call

__all__ = ["DEFAULT_MIX", "LoadReport", "build_requests", "fetch_metrics", "run_load", "wait_ready"]

#: (algo, candidate sizes) pools the generator draws from; deliberately small
#: so a few hundred requests revisit the same (algo, n, seed) keys
DEFAULT_MIX = (
    ("scan", (256, 1024, 4096)),
    ("sort", (256, 1024)),
    ("select", (256, 1024)),
    ("spmv", (16, 64)),
)

#: model metrics summed (vs maxed) across responses when aggregating
_SUM_METRICS = ("energy", "messages", "rounds")
_MAX_METRICS = ("max_depth", "max_distance")


#: algo classes the tuner can auto-dispatch (``--auto`` rewrites these)
_AUTO_CLASSES = frozenset({"sort", "scan", "spmv"})


def build_requests(
    count: int,
    seed: int,
    *,
    mix: tuple = DEFAULT_MIX,
    seed_pool: int = 3,
    zipf_alpha: float = 0.0,
    auto: bool = False,
) -> list[dict]:
    """Deterministic request multiset for ``(count, seed)``.

    ``zipf_alpha == 0`` (the default) draws uniformly — byte-identical to
    the historical generator, which ``benchmarks/bench_service.py`` gates
    on.  ``zipf_alpha > 0`` enumerates every ``(algo, n, seed)`` key the
    pools can produce and draws with probability proportional to
    ``1 / rank**alpha`` (rank 1 = first enumerated key), the classic
    skewed-popularity shape: a few hot keys dominate, so cache hits and
    coalescing climb with ``alpha`` while the multiset stays a pure
    function of ``(count, seed, alpha)``.

    ``auto=True`` rewrites tunable algos to their ``auto:<class>`` form so
    the served requests exercise plan-based dispatch.
    """
    rng = random.Random(seed)
    requests = []
    if zipf_alpha > 0.0:
        keys = [
            {"algo": algo, "n": n, "seed": s}
            for algo, sizes in mix
            for n in sizes
            for s in range(seed_pool)
        ]
        weights = [1.0 / (rank + 1) ** zipf_alpha for rank in range(len(keys))]
        requests = [dict(k) for k in rng.choices(keys, weights=weights, k=count)]
    else:
        for _ in range(count):
            algo, sizes = mix[rng.randrange(len(mix))]
            requests.append(
                {
                    "algo": algo,
                    "n": sizes[rng.randrange(len(sizes))],
                    "seed": rng.randrange(seed_pool),
                }
            )
    if auto:
        for payload in requests:
            if payload["algo"] in _AUTO_CLASSES:
                payload["algo"] = f"auto:{payload['algo']}"
    return requests


@dataclass
class LoadReport:
    """Client-side view of one load run."""

    requests: int = 0
    ok: int = 0
    by_status: Counter = field(default_factory=Counter)
    errors: list = field(default_factory=list)
    cache_hits: int = 0
    batched: int = 0
    #: 429/503 responses resent after honoring Retry-After (not failures)
    backoff_retries: int = 0
    #: responses marked ``"degraded": true`` (stale cache served by a gateway)
    degraded: int = 0
    latencies_s: list = field(default_factory=list)
    wall_s: float = 0.0
    model_metrics: dict = field(default_factory=dict)
    #: per-stage latency samples (ms) from response ``trace`` annotations:
    #: server stages (cache_probe/batch_wait/execute/total), the gateway
    #: stage, and the derived client-side network remainder
    stage_ms: dict = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        """Requests that never got an HTTP response."""
        return len(self.errors)

    def throughput_rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def record(self, status: int, doc: dict, latency_s: float) -> None:
        self.by_status[status] += 1
        self.latencies_s.append(latency_s)
        if status != 200 or not doc.get("ok"):
            return
        self.ok += 1
        if doc.get("cached"):
            self.cache_hits += 1
        if doc.get("batched"):
            self.batched += 1
        if doc.get("degraded"):
            self.degraded += 1
        metrics = doc.get("metrics") or {}
        for name in _SUM_METRICS:
            if name in metrics:
                self.model_metrics[name] = self.model_metrics.get(name, 0) + metrics[name]
        for name in _MAX_METRICS:
            if name in metrics:
                self.model_metrics[name] = max(self.model_metrics.get(name, 0), metrics[name])
        trace = doc.get("trace")
        if isinstance(trace, dict):
            stages = trace.get("stages_ms") or {}
            for name, value in stages.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    self.stage_ms.setdefault(name, []).append(float(value))
            # the client-observed remainder: wire + connect + queueing in
            # front of whichever tier annotated the response
            upstream = stages.get("gateway", stages.get("total"))
            if isinstance(upstream, (int, float)) and not isinstance(upstream, bool):
                net = max(0.0, latency_s * 1000.0 - float(upstream))
                self.stage_ms.setdefault("network (client)", []).append(net)

    def stage_rows(self) -> list[dict]:
        """Per-stage latency breakdown rows (sorted by stage name)."""
        rows = []
        for name in sorted(self.stage_ms):
            values = self.stage_ms[name]
            rows.append(
                {
                    "stage": name,
                    "count": len(values),
                    "mean_ms": round(sum(values) / len(values), 3),
                    "p50_ms": round(quantile(values, 0.50), 3),
                    "p95_ms": round(quantile(values, 0.95), 3),
                    "max_ms": round(max(values), 3),
                }
            )
        return rows

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "dropped": self.dropped,
            "by_status": {str(k): v for k, v in sorted(self.by_status.items())},
            "errors": list(self.errors[:20]),
            "cache_hits": self.cache_hits,
            "batched": self.batched,
            "backoff_retries": self.backoff_retries,
            "degraded": self.degraded,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": round(self.throughput_rps(), 2),
            "latency_p50_ms": round(self.latency_quantile(0.50) * 1000.0, 3),
            "latency_p95_ms": round(self.latency_quantile(0.95) * 1000.0, 3),
            "latency_p99_ms": round(self.latency_quantile(0.99) * 1000.0, 3),
            "latency_max_ms": round(max(self.latencies_s) * 1000.0, 3) if self.latencies_s else 0.0,
            "model_metrics": dict(self.model_metrics),
            "stages_ms": self.stage_rows(),
        }


async def _http(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    payload: dict | None = None,
    timeout: float = 30.0,
) -> tuple[int, dict, bool]:
    """One request on an open connection -> (status, doc, server_closed).

    Thin compatibility wrapper over :func:`repro.service.httpio.http_call`
    for callers that do not need the response headers."""
    status, _headers, doc, closed = await http_call(
        reader, writer, method, path, payload, timeout=timeout
    )
    return status, doc, closed


async def fetch_metrics(host: str, port: int, timeout: float = 10.0) -> dict:
    """One-shot ``GET /metrics``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        _status, doc, _closed = await _http(reader, writer, "GET", "/metrics", timeout=timeout)
        return doc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


async def wait_ready(host: str, port: int, timeout: float = 10.0) -> bool:
    """Poll ``/healthz`` until the server answers or the timeout lapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                status, _doc, _closed = await _http(reader, writer, "GET", "/healthz", timeout=2.0)
            finally:
                writer.close()
            if status == 200:
                return True
        except (OSError, asyncio.TimeoutError, ConnectionError, ValueError):
            pass
        await asyncio.sleep(0.05)
    return False


async def run_load(
    host: str,
    port: int,
    requests: list[dict],
    *,
    concurrency: int = 16,
    timeout: float = 30.0,
    max_retries: int = 8,
    backoff_seed: int = 0,
    targets: list[tuple[str, int]] | None = None,
    tracer=None,
) -> LoadReport:
    """Drive ``requests`` through ``concurrency`` persistent connections.

    429/503 responses are resent after sleeping for the server's
    ``Retry-After`` hint (seeded jitter, up to ``max_retries`` per request);
    only the final status is recorded.  ``targets`` optionally spreads the
    workers round-robin over several (host, port) endpoints — e.g. every
    replica of a fleet — instead of the single ``(host, port)``.

    ``tracer`` (or the ``REPRO_TRACE_DIR`` environment) enables distributed
    tracing: each request gets a root ``loadgen.request`` span with
    deterministic ids (a pure function of ``backoff_seed`` and the request
    index), and its context propagates downstream via the trace header.
    """
    report = LoadReport(requests=len(requests))
    obs = tracer if tracer is not None else tracer_from_env("loadgen")
    own_tracer = tracer is None and obs.enabled
    pending = deque(enumerate(requests))
    workers = max(1, min(int(concurrency), len(requests)))
    ready = 0
    start_gate = asyncio.Event()

    async def worker(windex: int) -> None:
        nonlocal ready
        t_host, t_port = targets[windex % len(targets)] if targets else (host, port)
        rng = random.Random((backoff_seed << 16) ^ windex)
        reader, writer = await asyncio.open_connection(t_host, t_port)
        ready += 1
        if ready == workers:
            start_gate.set()
        await start_gate.wait()
        try:
            while True:
                try:
                    idx, payload = pending.popleft()
                except IndexError:
                    return
                span = None
                trace_headers = None
                if obs.enabled:
                    span = obs.start_span(
                        "loadgen.request",
                        trace_id=deterministic_trace_id("load", backoff_seed, idx),
                        span_id=deterministic_span_id("load", backoff_seed, idx),
                        attrs={"algo": payload["algo"], "n": payload["n"], "index": idx},
                    )
                    trace_headers = [(TRACE_HEADER, span.ctx.header_value())]
                t0 = time.monotonic()
                retries = 0
                while True:
                    status = None
                    for attempt in (1, 2):
                        try:
                            status, headers, doc, closed = await http_call(
                                reader, writer, "POST", "/run", payload,
                                timeout=timeout, headers=trace_headers,
                            )
                            break
                        except (
                            ConnectionError,
                            OSError,
                            asyncio.IncompleteReadError,
                            asyncio.TimeoutError,
                            ValueError,
                        ) as exc:
                            if attempt == 2:
                                report.errors.append(f"{payload['algo']}/{payload['n']}: {exc!r}")
                                if span is not None:
                                    span.set(error=repr(exc)[:200])
                                    span.end("error")
                                return
                            # stale connection: reconnect once and resend
                            writer.close()
                            reader, writer = await asyncio.open_connection(t_host, t_port)
                    if status is None:
                        if span is not None:
                            span.end("error")
                        return
                    if status in (429, 503) and retries < max_retries:
                        retries += 1
                        report.backoff_retries += 1
                        try:
                            base = float(headers.get("retry-after", "") or 0.5)
                        except ValueError:
                            base = 0.5
                        base = min(max(base, 0.05), 5.0)
                        # seeded jitter: sleep 0.5x..1.5x of the server hint
                        await asyncio.sleep(base * (0.5 + rng.random()))
                        if closed:
                            reader, writer = await asyncio.open_connection(t_host, t_port)
                        continue
                    break
                report.record(status, doc, time.monotonic() - t0)
                if span is not None:
                    span.set(status_code=status, retries=retries)
                    span.end("ok" if status == 200 else "error")
                if closed:
                    reader, writer = await asyncio.open_connection(t_host, t_port)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    t_start = time.monotonic()
    outcomes = await asyncio.gather(
        *(worker(i) for i in range(workers)), return_exceptions=True
    )
    report.wall_s = time.monotonic() - t_start
    for out in outcomes:
        if isinstance(out, BaseException):
            report.errors.append(f"worker crashed: {out!r}")
    if own_tracer:
        obs.close()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Closed-loop load generator for `repro serve`.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--zipf-alpha", type=float, default=0.0,
                        help="key-popularity skew: 0 = uniform (historical mix), "
                        "higher = fewer, hotter keys (see build_requests)")
    parser.add_argument("--auto", action="store_true",
                        help="rewrite tunable algos to auto:<class> (plan dispatch)")
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--max-retries", type=int, default=8,
                        help="Retry-After-honoring resends per request on 429/503")
    parser.add_argument("--targets", default="",
                        help="comma-separated host:port list to spread workers "
                        "over round-robin (overrides --host/--port per worker)")
    parser.add_argument("--wait", type=float, default=0.0, help="seconds to wait for /healthz first")
    parser.add_argument("--out", default="", help="write the load report JSON here")
    parser.add_argument("--metrics-out", default="", help="scrape /metrics afterwards into this file")
    parser.add_argument("--require-hits", type=int, default=0, help="fail unless >= N cache hits")
    parser.add_argument(
        "--require-batched", type=int, default=0, help="fail unless >= N responses were batched"
    )
    parser.add_argument(
        "--slo-p99-ms", type=float, default=0.0,
        help="fail when the client-observed p99 latency exceeds this bound (0 disables)",
    )
    parser.add_argument(
        "--trace-dir", default="",
        help="span-sink directory: emit a root span per request and propagate "
        "its context downstream via the trace header",
    )
    args = parser.parse_args(argv)

    if args.wait > 0 and not asyncio.run(wait_ready(args.host, args.port, args.wait)):
        print(f"loadgen: no /healthz from {args.host}:{args.port} after {args.wait}s", file=sys.stderr)
        return 2

    requests = build_requests(
        args.requests, args.seed, zipf_alpha=args.zipf_alpha, auto=args.auto
    )
    targets = None
    if args.targets:
        from .fleet import parse_backend_list

        targets = parse_backend_list(args.targets)
    tracer = None
    if args.trace_dir:
        tracer = make_tracer("loadgen", args.trace_dir, seed=args.seed)
    report = asyncio.run(
        run_load(
            args.host,
            args.port,
            requests,
            concurrency=args.concurrency,
            timeout=args.timeout,
            max_retries=args.max_retries,
            backoff_seed=args.seed,
            targets=targets,
            tracer=tracer,
        )
    )
    if tracer is not None:
        tracer.close()
    doc = report.as_dict()
    print(
        f"loadgen: {report.ok}/{report.requests} ok, {report.dropped} dropped, "
        f"{report.cache_hits} cache hits, {report.batched} batched, "
        f"{report.backoff_retries} backoff retries, "
        f"{doc['throughput_rps']} req/s, p95 {doc['latency_p95_ms']}ms, "
        f"p99 {doc['latency_p99_ms']}ms"
    )
    if doc["stages_ms"]:
        width = max(len(r["stage"]) for r in doc["stages_ms"])
        print(f"{'stage'.ljust(width)}  {'count':>6}  {'p50_ms':>9}  {'p95_ms':>9}  {'max_ms':>9}")
        for row in doc["stages_ms"]:
            print(
                f"{row['stage'].ljust(width)}  {row['count']:>6}  "
                f"{row['p50_ms']:>9.3f}  {row['p95_ms']:>9.3f}  {row['max_ms']:>9.3f}"
            )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"loadgen: report -> {args.out}")
    if args.metrics_out:
        metrics = asyncio.run(fetch_metrics(args.host, args.port, timeout=args.timeout))
        with open(args.metrics_out, "w") as fh:
            json.dump(metrics, fh, indent=2, sort_keys=True)
        print(f"loadgen: metrics -> {args.metrics_out}")

    failures = []
    if report.dropped:
        failures.append(f"{report.dropped} request(s) got no response")
    non_ok = report.requests - report.dropped - report.ok
    if non_ok:
        failures.append(f"{non_ok} non-200 response(s): {dict(report.by_status)}")
    if report.cache_hits < args.require_hits:
        failures.append(f"cache hits {report.cache_hits} < required {args.require_hits}")
    if report.batched < args.require_batched:
        failures.append(f"batched responses {report.batched} < required {args.require_batched}")
    if args.slo_p99_ms > 0 and doc["latency_p99_ms"] > args.slo_p99_ms:
        failures.append(
            f"latency p99 {doc['latency_p99_ms']}ms exceeds SLO {args.slo_p99_ms}ms"
        )
    if failures:
        for failure in failures:
            print(f"loadgen: FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
