"""Service observability: counters and latency histograms for ``/metrics``.

Everything here is mutated from the single event-loop thread, so plain ints
suffice — no locks.  The snapshot is deliberately plain JSON (no Prometheus
text format) to stay consistent with the rest of the repo's artifacts:
``MachineStats`` counters and ``CostTree`` rows already travel as JSON in
``BENCH_*.json`` documents, and per-request cost payloads reuse exactly that
serialization (see :func:`repro.runner.registry.point_from_machine`).
"""

from __future__ import annotations

import time
from collections import Counter

__all__ = ["LATENCY_BUCKETS_MS", "FleetMetrics", "LatencyHistogram", "ServiceMetrics"]

#: upper bucket bounds in milliseconds; requests above the last bound land
#: in a +Inf overflow bucket.  The sub-millisecond bounds exist for cache
#: hits and gateway attempts, which would otherwise all collapse into the
#: first bucket.
LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (cumulative-friendly, JSON-served)."""

    def __init__(self, bounds_ms: tuple[float, ...] = LATENCY_BUCKETS_MS) -> None:
        self.bounds_ms = tuple(bounds_ms)
        self.counts = [0] * (len(self.bounds_ms) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        self.count += 1
        self.sum_ms += ms
        self.max_ms = max(self.max_ms, ms)
        for i, bound in enumerate(self.bounds_ms):
            if ms <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Quantile in ms, linearly interpolated within the matching bucket.

        Observations are assumed uniform inside their bucket; the overflow
        bucket interpolates between the last bound and the observed max."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0.0
        lower = 0.0
        for i, bound in enumerate(self.bounds_ms):
            c = self.counts[i]
            if c > 0 and seen + c >= target:
                frac = (target - seen) / c
                return lower + (float(bound) - lower) * frac
            seen += c
            lower = float(bound)
        c = self.counts[-1]
        if c <= 0 or self.max_ms <= lower:
            return self.max_ms
        frac = min(1.0, max(0.0, (target - seen) / c))
        return lower + (self.max_ms - lower) * frac

    def as_dict(self) -> dict:
        buckets = {f"le_{b:g}ms": c for b, c in zip(self.bounds_ms, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum_ms": round(self.sum_ms, 3),
            "mean_ms": round(self.sum_ms / self.count, 3) if self.count else 0.0,
            "max_ms": round(self.max_ms, 3),
            "p50_ms": round(self.quantile(0.50), 3),
            "p95_ms": round(self.quantile(0.95), 3),
            "p99_ms": round(self.quantile(0.99), 3),
            "buckets": buckets,
        }


class ServiceMetrics:
    """All counters behind ``/metrics``; single-threaded by construction."""

    def __init__(self) -> None:
        self.started_monotonic = time.monotonic()
        self.started_at = time.time()
        self.requests_total = 0
        self.responses_by_status: Counter[int] = Counter()
        self.requests_by_algo: Counter[str] = Counter()
        self.cache_hits_memory = 0
        self.cache_hits_disk = 0
        self.cache_misses = 0
        self.executions = 0
        self.execution_failures = 0
        self.batched_executions = 0
        self.coalesced_requests = 0
        self.rejected = 0
        self.timeouts = 0
        #: requests answered 504 because the executing worker died mid-task
        self.crashed = 0
        self.inflight = 0
        self.peak_inflight = 0
        self.drained = 0
        self.latency = LatencyHistogram()
        self.execution_latency = LatencyHistogram()

    # -- request lifecycle ----------------------------------------------
    def request_received(self) -> None:
        """Any ``POST /run`` attempt, valid or not."""
        self.requests_total += 1

    def request_admitted(self, algo: str | None = None) -> None:
        if algo is not None:
            self.requests_by_algo[algo] += 1
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)

    def request_finished(self, status: int, latency_s: float) -> None:
        self.inflight -= 1
        self.drained += 1
        self.responses_by_status[status] += 1
        self.latency.observe(latency_s)

    def response_only(self, status: int) -> None:
        """A response that never entered the request lifecycle (404, 429...)."""
        self.responses_by_status[status] += 1

    # -- cache / batch accounting ---------------------------------------
    def cache_hit(self, tier: str) -> None:
        if tier == "memory":
            self.cache_hits_memory += 1
        else:
            self.cache_hits_disk += 1

    @property
    def cache_hits(self) -> int:
        return self.cache_hits_memory + self.cache_hits_disk

    # -- snapshot --------------------------------------------------------
    def snapshot(self, *, queue_depth: int = 0, extra: dict | None = None) -> dict:
        lookups = self.cache_hits + self.cache_misses
        doc = {
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "started_at_unix": round(self.started_at, 3),
            "requests": {
                "total": self.requests_total,
                "by_algo": dict(self.requests_by_algo),
                "inflight": self.inflight,
                "peak_inflight": self.peak_inflight,
                "queue_depth": queue_depth,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "crashed": self.crashed,
            },
            "responses": {
                "by_status": {str(k): v for k, v in sorted(self.responses_by_status.items())},
            },
            "cache": {
                "hits": self.cache_hits,
                "hits_memory": self.cache_hits_memory,
                "hits_disk": self.cache_hits_disk,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hits / lookups, 4) if lookups else 0.0,
            },
            "batching": {
                "executions": self.executions,
                "execution_failures": self.execution_failures,
                "batched_executions": self.batched_executions,
                "coalesced_requests": self.coalesced_requests,
            },
            "latency": self.latency.as_dict(),
            "execution_latency": self.execution_latency.as_dict(),
        }
        if extra:
            doc.update(extra)
        return doc


class FleetMetrics:
    """Gateway-side counters: routing, failover, hedging, degradation.

    Like :class:`ServiceMetrics`, everything mutates on the gateway's single
    event-loop thread.  Per-shard and per-backend aggregation lives here so
    the gateway's ``/metrics`` can answer "which shard is limping" without
    scraping every replica on the request path; the health monitor's
    periodic backend scrapes are folded in by the snapshot.
    """

    def __init__(self) -> None:
        self.started_monotonic = time.monotonic()
        self.started_at = time.time()
        self.requests_total = 0
        self.responses_by_status: Counter[int] = Counter()
        self.inflight = 0
        self.peak_inflight = 0
        self.rejected = 0
        #: requests routed per shard index, and outcomes per backend name
        self.routed_by_shard: Counter[int] = Counter()
        self.forwarded_by_backend: Counter[str] = Counter()
        self.attempt_failures: dict[str, Counter] = {}
        self.failovers = 0
        self.hedges_started = 0
        self.hedge_wins = 0
        self.hedges_cancelled = 0
        self.degraded_stale = 0
        self.shed = 0
        self.latency = LatencyHistogram()

    # -- request lifecycle ----------------------------------------------
    def request_received(self) -> None:
        self.requests_total += 1

    def request_admitted(self) -> None:
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)

    def request_finished(self, status: int, latency_s: float) -> None:
        self.inflight -= 1
        self.responses_by_status[status] += 1
        self.latency.observe(latency_s)

    def response_only(self, status: int) -> None:
        self.responses_by_status[status] += 1

    # -- routing accounting ---------------------------------------------
    def attempt_failed(self, backend: str, reason: str) -> None:
        self.attempt_failures.setdefault(backend, Counter())[reason] += 1

    def hedge_allowed(self, rate: float) -> bool:
        """Would starting one more hedge keep hedges within ``rate``?"""
        return self.hedges_started + 1 <= rate * max(1, self.requests_total)

    # -- snapshot --------------------------------------------------------
    def snapshot(
        self,
        *,
        shards: list[dict] | None = None,
        breakers: dict | None = None,
        health: list[dict] | None = None,
        extra: dict | None = None,
    ) -> dict:
        doc = {
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "started_at_unix": round(self.started_at, 3),
            "requests": {
                "total": self.requests_total,
                "inflight": self.inflight,
                "peak_inflight": self.peak_inflight,
                "rejected": self.rejected,
            },
            "responses": {
                "by_status": {str(k): v for k, v in sorted(self.responses_by_status.items())},
            },
            "routing": {
                "by_shard": {str(k): v for k, v in sorted(self.routed_by_shard.items())},
                "forwarded_by_backend": dict(self.forwarded_by_backend),
                "attempt_failures": {
                    name: dict(counts) for name, counts in sorted(self.attempt_failures.items())
                },
                "failovers": self.failovers,
            },
            "hedging": {
                "started": self.hedges_started,
                "wins": self.hedge_wins,
                "cancelled": self.hedges_cancelled,
            },
            "degraded": {
                "stale_served": self.degraded_stale,
                "shed": self.shed,
            },
            "latency": self.latency.as_dict(),
        }
        if shards is not None:
            doc["shards"] = shards
        if breakers is not None:
            doc["breakers"] = breakers
        if health is not None:
            doc["health"] = health
        if extra:
            doc.update(extra)
        return doc
