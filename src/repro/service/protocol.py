"""Request validation for the serving layer.

A request is a small JSON object::

    {"algo": "scan", "n": 4096, "seed": 7, "profile": false}

``algo`` selects one of the Table I primitives; each maps onto a suite in
the benchmark registry (:data:`ALGO_SUITES`), so a served request is the
same unit of work as a ``repro bench run`` sweep point — same point
function, same determinism contract, same cache identity.  Validation is
strict: unknown fields, wrong types, and out-of-range sizes are rejected
with :class:`RequestError` (HTTP 400) before any work is admitted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from ..runner.cachekey import PROFILE_SALT, point_key
from ..runner.spec import PointSpec

__all__ = ["ALGO_SUITES", "SIZE_LIMITS", "RequestError", "ServiceRequest"]

#: served algorithm -> registered suite executing it
ALGO_SUITES = {
    "scan": "table1_scan",
    "sort": "table1_sort",
    "select": "table1_selection",
    "spmv": "table1_spmv",
}

#: inclusive (min, max) admitted problem size per algorithm.  The caps match
#: each suite's full sweep grid — sizes the repo's own benchmarks exercise.
SIZE_LIMITS = {
    "scan": (64, 65536),
    "sort": (64, 4096),
    "select": (64, 16384),
    "spmv": (4, 1024),
}

#: algorithms whose ``n`` must be a power of four (square power-of-two grid)
_POWER_OF_FOUR = frozenset({"scan", "sort", "select"})

_ALLOWED_FIELDS = frozenset({"algo", "n", "seed", "profile"})

_MAX_SEED = 2**32


class RequestError(ValueError):
    """A malformed or unserviceable request (surfaces as HTTP 400)."""

    def __init__(self, message: str, field: str | None = None) -> None:
        super().__init__(message)
        self.field = field


def _is_power_of_four(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0 and n.bit_length() % 2 == 1


def _require_int(doc: Mapping[str, Any], field: str, default: int | None) -> int:
    value = doc.get(field, default)
    if value is None:
        raise RequestError(f"missing required field {field!r}", field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"field {field!r} must be an integer", field)
    return value


@dataclass(frozen=True)
class ServiceRequest:
    """One validated simulation request."""

    algo: str
    n: int
    seed: int = 0
    profile: bool = False

    @classmethod
    def from_payload(cls, doc: Any) -> ServiceRequest:
        """Validate a decoded JSON body; raise :class:`RequestError` if bad."""
        if not isinstance(doc, dict):
            raise RequestError("request body must be a JSON object")
        unknown = sorted(set(doc) - _ALLOWED_FIELDS)
        if unknown:
            raise RequestError(
                f"unknown field(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(_ALLOWED_FIELDS))}",
                unknown[0],
            )
        algo = doc.get("algo")
        if not isinstance(algo, str) or algo not in ALGO_SUITES:
            raise RequestError(
                f"unknown algo {algo!r}; served: {', '.join(sorted(ALGO_SUITES))}",
                "algo",
            )
        n = _require_int(doc, "n", None)
        lo, hi = SIZE_LIMITS[algo]
        if not lo <= n <= hi:
            raise RequestError(f"n={n} out of range for {algo} (admitted: {lo}..{hi})", "n")
        if algo in _POWER_OF_FOUR and not _is_power_of_four(n):
            raise RequestError(f"n={n} must be a power of 4 for {algo}", "n")
        seed = _require_int(doc, "seed", 0)
        if not 0 <= seed < _MAX_SEED:
            raise RequestError(f"seed must be in [0, 2**32), got {seed}", "seed")
        profile = doc.get("profile", False)
        if not isinstance(profile, bool):
            raise RequestError("field 'profile' must be a boolean", "profile")
        return cls(algo=algo, n=n, seed=seed, profile=profile)

    @property
    def suite_name(self) -> str:
        return ALGO_SUITES[self.algo]

    def params(self) -> dict:
        # table1_sort sweeps the grid side, every other suite sweeps n
        if self.algo == "sort":
            return {"side": math.isqrt(self.n)}
        return {"n": self.n}

    def point(self) -> PointSpec:
        """The registry sweep point this request denotes."""
        return PointSpec(suite=self.suite_name, params=self.params(), seed=self.seed)

    def cache_key(self, code_ver: str) -> str:
        """Content-addressed identity, shared with ``repro bench run``.

        ``code_ver`` is the *unsalted* suite code version; profiled requests
        are salted here so the two payload shapes never alias.
        """
        ver = code_ver + PROFILE_SALT if self.profile else code_ver
        return point_key(self.point(), ver)

    def describe(self) -> dict:
        return {
            "algo": self.algo,
            "n": self.n,
            "seed": self.seed,
            "profile": self.profile,
            "suite": self.suite_name,
            "params": self.params(),
        }
