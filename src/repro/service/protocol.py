"""Request validation for the serving layer.

A request is a small JSON object::

    {"algo": "scan", "n": 4096, "seed": 7, "profile": false}

``algo`` selects one of the Table I primitives; each maps onto a suite in
the benchmark registry (:data:`ALGO_SUITES`), so a served request is the
same unit of work as a ``repro bench run`` sweep point — same point
function, same determinism contract, same cache identity.  Validation is
strict: unknown fields, wrong types, and out-of-range sizes are rejected
with :class:`RequestError` (HTTP 400) before any work is admitted.

``algo`` may also be ``"auto:<class>"`` (``auto:sort``, ``auto:scan``,
``auto:spmv``) with an optional ``metric`` (energy | max_depth | edp,
default edp): the server consults the tuner's plan database for the best
(variant, layout, block) configuration at this ``n`` and executes *that* as
a ``tuner``-suite point.  Auto requests validate here but carry no concrete
sweep params until the server resolves the plan (:meth:`ServiceRequest.resolve`).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Mapping

from ..runner.cachekey import PROFILE_SALT, point_key
from ..runner.spec import PointSpec

__all__ = [
    "ALGO_SUITES",
    "SIZE_LIMITS",
    "AUTO_PREFIX",
    "AUTO_CLASSES",
    "AUTO_SIZE_LIMITS",
    "TUNER_SUITE_NAME",
    "RequestError",
    "ServiceRequest",
]

#: served algorithm -> registered suite executing it
ALGO_SUITES = {
    "scan": "table1_scan",
    "sort": "table1_sort",
    "select": "table1_selection",
    "spmv": "table1_spmv",
    "graph": "graph",
}

#: inclusive (min, max) admitted problem size per algorithm.  The caps match
#: each suite's full sweep grid — sizes the repo's own benchmarks exercise.
SIZE_LIMITS = {
    "scan": (64, 65536),
    "sort": (64, 4096),
    "select": (64, 16384),
    "spmv": (4, 1024),
    "graph": (8, 256),
}

#: algorithms whose ``n`` must be a power of four (square power-of-two grid)
_POWER_OF_FOUR = frozenset({"scan", "sort", "select"})

#: auto-tuned dispatch: ``"auto:<class>"`` resolves through the plan DB
AUTO_PREFIX = "auto:"
AUTO_CLASSES = ("sort", "scan", "spmv")
TUNER_SUITE_NAME = "tuner"

#: tighter caps for auto requests — resolving a cold plan simulates several
#: candidate configurations, so admitted sizes stay tuning-affordable
AUTO_SIZE_LIMITS = {
    "sort": (16, 1024),
    "scan": (16, 4096),
    "spmv": (4, 256),
}

#: classes whose auto ``n`` must be a power of four (square regions)
_AUTO_POWER_OF_FOUR = frozenset({"sort", "scan"})

_TUNE_METRICS = ("energy", "max_depth", "edp")

_ALLOWED_FIELDS = frozenset({"algo", "n", "seed", "profile", "metric"})

_MAX_SEED = 2**32


class RequestError(ValueError):
    """A malformed or unserviceable request (surfaces as HTTP 400)."""

    def __init__(self, message: str, field: str | None = None) -> None:
        super().__init__(message)
        self.field = field


def _is_power_of_four(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0 and n.bit_length() % 2 == 1


def _require_int(doc: Mapping[str, Any], field: str, default: int | None) -> int:
    value = doc.get(field, default)
    if value is None:
        raise RequestError(f"missing required field {field!r}", field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"field {field!r} must be an integer", field)
    return value


@dataclass(frozen=True)
class ServiceRequest:
    """One validated simulation request."""

    algo: str
    n: int
    seed: int = 0
    profile: bool = False
    #: tuning objective; only meaningful (and only accepted) for auto requests
    metric: str = "edp"
    #: plan-selected ``tuner``-suite params, set by :meth:`resolve` (auto only)
    resolved_params: tuple | None = None

    @classmethod
    def from_payload(cls, doc: Any) -> ServiceRequest:
        """Validate a decoded JSON body; raise :class:`RequestError` if bad."""
        if not isinstance(doc, dict):
            raise RequestError("request body must be a JSON object")
        unknown = sorted(set(doc) - _ALLOWED_FIELDS)
        if unknown:
            raise RequestError(
                f"unknown field(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(_ALLOWED_FIELDS))}",
                unknown[0],
            )
        algo = doc.get("algo")
        auto_class = None
        if isinstance(algo, str) and algo.startswith(AUTO_PREFIX):
            auto_class = algo[len(AUTO_PREFIX):]
            if auto_class not in AUTO_CLASSES:
                raise RequestError(
                    f"unknown auto class {auto_class!r}; tunable: "
                    + ", ".join(f"{AUTO_PREFIX}{c}" for c in AUTO_CLASSES),
                    "algo",
                )
        elif not isinstance(algo, str) or algo not in ALGO_SUITES:
            served = sorted(ALGO_SUITES) + [f"{AUTO_PREFIX}{c}" for c in AUTO_CLASSES]
            raise RequestError(
                f"unknown algo {algo!r}; served: {', '.join(served)}",
                "algo",
            )
        n = _require_int(doc, "n", None)
        lo, hi = (AUTO_SIZE_LIMITS[auto_class] if auto_class else SIZE_LIMITS[algo])
        if not lo <= n <= hi:
            raise RequestError(f"n={n} out of range for {algo} (admitted: {lo}..{hi})", "n")
        pow4 = (
            auto_class in _AUTO_POWER_OF_FOUR
            if auto_class
            else algo in _POWER_OF_FOUR
        )
        if pow4 and not _is_power_of_four(n):
            raise RequestError(f"n={n} must be a power of 4 for {algo}", "n")
        seed = _require_int(doc, "seed", 0)
        if not 0 <= seed < _MAX_SEED:
            raise RequestError(f"seed must be in [0, 2**32), got {seed}", "seed")
        profile = doc.get("profile", False)
        if not isinstance(profile, bool):
            raise RequestError("field 'profile' must be a boolean", "profile")
        metric = doc.get("metric", "edp")
        if "metric" in doc and auto_class is None:
            raise RequestError(
                "field 'metric' only applies to auto: requests", "metric"
            )
        if not isinstance(metric, str) or metric not in _TUNE_METRICS:
            raise RequestError(
                f"unknown metric {metric!r}; known: {', '.join(_TUNE_METRICS)}",
                "metric",
            )
        if auto_class is not None and profile:
            raise RequestError(
                "profile runs are not supported for auto: requests", "profile"
            )
        return cls(algo=algo, n=n, seed=seed, profile=profile, metric=metric)

    # -- auto dispatch ----------------------------------------------------
    @property
    def is_auto(self) -> bool:
        return self.algo.startswith(AUTO_PREFIX)

    @property
    def algo_class(self) -> str:
        """The tunable class of an auto request (``auto:sort`` -> ``sort``)."""
        if not self.is_auto:
            raise ValueError(f"{self.algo!r} is not an auto: request")
        return self.algo[len(AUTO_PREFIX):]

    def resolve(self, config_params: Mapping[str, Any]) -> ServiceRequest:
        """Bind the plan-selected ``tuner``-suite params to this request."""
        if not self.is_auto:
            raise ValueError(f"{self.algo!r} is not an auto: request")
        return dataclasses.replace(
            self, resolved_params=tuple(sorted(config_params.items()))
        )

    @property
    def suite_name(self) -> str:
        if self.is_auto:
            return TUNER_SUITE_NAME
        return ALGO_SUITES[self.algo]

    def params(self) -> dict:
        if self.is_auto:
            if self.resolved_params is None:
                raise RuntimeError(
                    f"auto request {self.algo} n={self.n} has no resolved plan yet"
                )
            return dict(self.resolved_params)
        # table1_sort sweeps the grid side, every other suite sweeps n
        if self.algo == "sort":
            return {"side": math.isqrt(self.n)}
        return {"n": self.n}

    def point(self) -> PointSpec:
        """The registry sweep point this request denotes."""
        return PointSpec(suite=self.suite_name, params=self.params(), seed=self.seed)

    def cache_key(self, code_ver: str) -> str:
        """Content-addressed identity, shared with ``repro bench run``.

        ``code_ver`` is the *unsalted* suite code version; profiled requests
        are salted here so the two payload shapes never alias.
        """
        ver = code_ver + PROFILE_SALT if self.profile else code_ver
        return point_key(self.point(), ver)

    def describe(self) -> dict:
        out = {
            "algo": self.algo,
            "n": self.n,
            "seed": self.seed,
            "profile": self.profile,
            "suite": self.suite_name,
        }
        if self.is_auto:
            out["metric"] = self.metric
            if self.resolved_params is not None:
                out["params"] = self.params()
        else:
            out["params"] = self.params()
        return out
