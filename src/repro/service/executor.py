"""Execution backends for the serving layer.

The default backend is a persistent :class:`~repro.runner.pool.WorkerPool`
of forked worker processes — imports warm, one pipe round-trip per task, a
crashed or hung worker replaced without taking the server down.  The inline
backend runs the point function on the event loop's thread pool instead;
it exists for contexts that are not allowed to fork children (daemonic
sweep workers, i.e. ``benchmarks/bench_service.py`` running under
``repro bench run``), at the cost of no kill-on-timeout and no ``profile``
support (the REPRO_PROFILE environment flag is process-global and cannot be
scoped to one thread).
"""

from __future__ import annotations

import asyncio
import time

from ..runner.pool import PoolCrash, PoolError, PoolTaskError, PoolTimeout, WorkerPool
from ..runner.worker import run_suite_point
from .protocol import RequestError, ServiceRequest

__all__ = ["ExecutionCrash", "ExecutionError", "ExecutionTimeout", "ServiceExecutor"]


class ExecutionError(RuntimeError):
    """The simulation failed; ``detail`` carries the worker traceback tail."""

    status = 500

    def __init__(self, message: str, detail: str = "") -> None:
        super().__init__(message)
        self.detail = detail


class ExecutionTimeout(ExecutionError):
    """The simulation exceeded the execution deadline."""

    status = 504


class ExecutionCrash(ExecutionError):
    """The executing worker died mid-task (segfault, OOM, kill).

    Maps to 504 like a timeout — the request did not complete and is safe
    to retry (a gateway fails it over to another replica); the pool has
    already replaced the dead worker.
    """

    status = 504


class ServiceExecutor:
    """Bounded simulation execution: worker pool or inline threads."""

    def __init__(
        self,
        workers: int = 2,
        bench_dir: str = "",
        *,
        inline: bool = False,
        timeout: float = 60.0,
    ) -> None:
        self.workers = max(1, int(workers))
        self.bench_dir = str(bench_dir or "")
        self.inline = bool(inline)
        self.timeout = float(timeout)
        self._pool: WorkerPool | None = None
        if not self.inline:
            # fork the pool eagerly, before the event loop spawns any threads
            self._pool = WorkerPool(size=self.workers, bench_dir=self.bench_dir)
        self._inline_slots = asyncio.Semaphore(self.workers)

    async def execute(self, request: ServiceRequest, trace=None) -> tuple[dict, float]:
        """Run one request; return ``(payload, execution_seconds)``.

        ``trace`` is the executing span's :class:`~repro.obs.context
        .TraceContext` (or None); the pool backend ships it to the worker so
        the worker-side span links into the request's trace.  Raises
        :class:`ExecutionError` / :class:`ExecutionTimeout`; both map onto
        HTTP statuses in the server."""
        started = time.monotonic()
        if self._pool is not None:
            payload = await self._run_pooled(request, trace)
        else:
            payload = await self._run_inline(request)
        return payload, time.monotonic() - started

    async def _run_pooled(self, request: ServiceRequest, trace=None) -> dict:
        assert self._pool is not None
        try:
            return await asyncio.to_thread(
                self._pool.run,
                request.suite_name,
                request.params(),
                request.seed,
                request.profile,
                timeout=self.timeout,
                trace={"trace": trace.trace_id, "parent": trace.span_id} if trace else None,
            )
        except PoolTimeout as exc:
            raise ExecutionTimeout(f"execution exceeded {self.timeout:.1f}s") from exc
        except PoolTaskError as exc:
            tail = str(exc).strip().splitlines()[-1] if str(exc).strip() else "?"
            raise ExecutionError(f"simulation failed: {tail}", detail=str(exc)) from exc
        except PoolCrash as exc:
            raise ExecutionCrash(str(exc)) from exc
        except PoolError as exc:
            raise ExecutionError(str(exc)) from exc

    async def _run_inline(self, request: ServiceRequest) -> dict:
        if request.profile:
            raise RequestError(
                "profile runs need the worker pool; restart without --inline",
                "profile",
            )
        async with self._inline_slots:
            try:
                return await asyncio.to_thread(
                    run_suite_point,
                    self.bench_dir,
                    request.suite_name,
                    request.params(),
                    request.seed,
                    False,
                )
            except Exception as exc:
                raise ExecutionError(f"simulation failed: {exc}") from exc

    def ready(self) -> bool:
        """True once the backend can serve without a warm-up stall."""
        if self._pool is None:
            return True
        return self._pool.ready()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def stats(self) -> dict:
        doc = {
            "backend": "inline" if self.inline else "pool",
            "workers": self.workers,
        }
        if self._pool is not None:
            doc["pool_tasks"] = self._pool.tasks
            doc["pool_replaced"] = self._pool.replaced
        return doc
