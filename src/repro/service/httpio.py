"""Minimal shared HTTP/1.1 plumbing for the serving tier.

Three parties speak the same deliberately small HTTP dialect — request line,
headers, ``Content-Length`` bodies, keep-alive: the single-process server
(:mod:`repro.service.server`), the fleet gateway (:mod:`repro.service.fleet`,
which is a server on one side and a client on the other), and the load
generator (:mod:`repro.service.loadgen`).  Factoring the byte-level pieces
here keeps them in lockstep; none of them is a general web server and none
should grow into one.
"""

from __future__ import annotations

import asyncio
import json

__all__ = [
    "MAX_BODY",
    "REASONS",
    "BadRequest",
    "http_call",
    "read_http_request",
    "write_json_response",
    "write_text_response",
]

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_BODY = 1 << 20


class BadRequest(Exception):
    """Unparseable HTTP: answer 400 and close the connection."""


async def read_http_request(reader: asyncio.StreamReader):
    """Parse one request off ``reader``: (method, target, headers, body).

    Returns ``None`` on a cleanly closed connection; raises
    :class:`BadRequest` on malformed bytes or an oversized body.
    """
    start = await reader.readline()
    if not start:
        return None
    try:
        method, target, _version = start.decode("latin-1").split()
    except ValueError:
        raise BadRequest(f"malformed request line: {start[:80]!r}")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise BadRequest("non-integer Content-Length")
    if length < 0 or length > MAX_BODY:
        raise BadRequest(f"body of {length} bytes exceeds the {MAX_BODY} limit")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def write_json_response(
    writer: asyncio.StreamWriter,
    status: int,
    doc: dict,
    extra_headers: list,
    keep_alive: bool,
) -> None:
    """Serialize ``doc`` as the JSON body of one HTTP/1.1 response."""
    body = json.dumps(doc).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


async def write_text_response(
    writer: asyncio.StreamWriter,
    status: int,
    text: str,
    extra_headers: list,
    keep_alive: bool,
    content_type: str = "text/plain; charset=utf-8",
) -> None:
    """Serialize ``text`` as the body of one HTTP/1.1 response (e.g. the
    Prometheus exposition of ``/metrics?format=prometheus``)."""
    body = text.encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


async def http_call(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    payload: dict | None = None,
    timeout: float = 30.0,
    *,
    keep_alive: bool = True,
    headers: list | None = None,
) -> tuple[int, dict, dict, bool]:
    """One client request on an open connection.

    ``headers`` adds extra request headers (name, value) — the trace-context
    header travels this way so request bodies stay strictly validated.
    Returns ``(status, headers, doc, server_closed)`` where ``headers`` maps
    lower-cased names to values and ``server_closed`` is True when the
    response asked to close the connection.
    """
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    extra = "".join(f"{name}: {value}\r\n" for name, value in headers) if headers else ""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: repro\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    status_line = await asyncio.wait_for(reader.readline(), timeout)
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout)
        if line in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    raw = await asyncio.wait_for(reader.readexactly(length), timeout) if length else b""
    doc = json.loads(raw) if raw else {}
    return status, headers, doc, headers.get("connection", "").lower() == "close"
