"""Dynamic micro-batching: coalesce identical in-flight requests.

Simulations are deterministic given ``(algo, n, seed, profile)``, so two
concurrent requests for the same key need exactly one execution.  The first
arrival (the *leader*) opens a batch, sleeps a small collection window so
near-simultaneous duplicates can attach, then executes once and fans the
payload out to every waiter.  Requests arriving while the execution is still
running also attach — the batch stays open until the result lands.

All bookkeeping runs on the event-loop thread; the only awaits are the
window sleep, the execution itself, and the waiters' future."""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable

__all__ = ["BatchOutcome", "Batcher"]


@dataclass
class _Batch:
    future: asyncio.Future
    waiters: int = 1


@dataclass(frozen=True)
class BatchOutcome:
    """One request's view of a batched execution."""

    payload: dict
    #: True when this request shared an execution with at least one other
    batched: bool
    #: True when this request was the one that executed
    leader: bool
    #: waiters sharing the execution, as seen at fan-out time
    batch_size: int = 1


@dataclass
class Batcher:
    """Coalesce identical in-flight work onto single executions."""

    window: float = 0.02
    _inflight: dict[str, _Batch] = field(default_factory=dict)

    def depth(self) -> int:
        """Open batches right now (each maps to at most one execution)."""
        return len(self._inflight)

    async def submit(
        self,
        key: str,
        execute: Callable[[], Awaitable[dict]],
    ) -> BatchOutcome:
        """Join the in-flight batch for ``key``, or lead a new one.

        The leader's exceptions propagate to every waiter.  Cancelling a
        waiter never cancels the shared execution."""
        batch = self._inflight.get(key)
        if batch is not None:
            batch.waiters += 1
            payload = await asyncio.shield(batch.future)
            return BatchOutcome(
                payload=payload,
                batched=True,
                leader=False,
                batch_size=batch.waiters,
            )

        batch = _Batch(asyncio.get_running_loop().create_future())
        self._inflight[key] = batch
        try:
            if self.window > 0:
                await asyncio.sleep(self.window)
            payload = await execute()
        except BaseException as exc:
            # closing the batch and resolving the future happen back-to-back
            # with no await in between, so late arrivals either joined before
            # (and see the exception) or open a fresh batch after
            self._inflight.pop(key, None)
            if batch.waiters > 1:
                batch.future.set_exception(exc)
            else:
                batch.future.cancel()
            raise
        self._inflight.pop(key, None)
        batch.future.set_result(payload)
        return BatchOutcome(
            payload=payload,
            batched=batch.waiters > 1,
            leader=True,
            batch_size=batch.waiters,
        )
