"""Background health probing for the fleet's shard servers.

The monitor keeps one :class:`BackendState` per shard replica and runs a
single asyncio loop that probes every backend each interval (with seeded
jitter so a fleet of gateways does not thunder in lockstep):

* **readiness** — ``GET /readyz`` on the backend.  200 means the replica is
  warm and accepting work; 503 means it is alive but warming or draining;
  a connect error or timeout means it is down.  Servers that predate
  ``/readyz`` (404) fall back to ``/healthz``.
* **liveness** — implied: any HTTP answer marks the process alive.

State flips are debounced: ``fall`` consecutive failed probes mark a
backend down, ``rise`` consecutive successes mark it ready again.  Every
flip is recorded with a timestamp so the gateway's ``/metrics`` can show
the health history next to the breaker transitions.

Every ``metrics_every``-th probe of a backend also scrapes a compact
summary of the backend's own ``/metrics`` (request totals, executions,
cache hits) which the gateway aggregates per shard.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import time
from dataclasses import dataclass, field

from .httpio import http_call

__all__ = ["BackendState", "HealthMonitor"]


@dataclass
class BackendState:
    """Last-known health of one shard replica, as seen by the prober."""

    name: str
    host: str
    port: int
    shard: int
    replica: int
    #: None = never probed; True/False once the debounce thresholds are met
    alive: bool | None = None
    ready: bool | None = None
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    probes: int = 0
    last_probe_unix: float = 0.0
    last_latency_ms: float = 0.0
    last_status: int = 0
    last_error: str = ""
    #: compact scrape of the backend's own /metrics (refreshed periodically)
    backend_metrics: dict = field(default_factory=dict)
    transitions: list = field(default_factory=list)

    def _flip(self, ready: bool, reason: str) -> bool:
        """Record a readiness change; True when the state actually flipped."""
        changed = self.ready != ready
        if changed:
            self.transitions.append(
                {
                    "t": round(time.monotonic(), 3),
                    "ready": ready,
                    "reason": reason,
                }
            )
            del self.transitions[:-64]
        self.ready = ready
        return changed

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "address": f"{self.host}:{self.port}",
            "shard": self.shard,
            "replica": self.replica,
            "alive": self.alive,
            "ready": self.ready,
            "probes": self.probes,
            "consecutive_failures": self.consecutive_failures,
            "last_latency_ms": round(self.last_latency_ms, 3),
            "last_status": self.last_status,
            "last_error": self.last_error,
            "transitions": list(self.transitions),
        }


class HealthMonitor:
    """One background probe loop over a set of backends."""

    def __init__(
        self,
        backends: list[BackendState],
        *,
        interval: float = 0.5,
        timeout: float = 2.0,
        fall: int = 2,
        rise: int = 1,
        seed: int = 0,
        metrics_every: int = 8,
        on_flip=None,
    ) -> None:
        self.backends = list(backends)
        self.interval = float(interval)
        self.timeout = float(timeout)
        self.fall = max(1, int(fall))
        self.rise = max(1, int(rise))
        self.metrics_every = max(1, int(metrics_every))
        #: optional ``(backend, ready, reason)`` observer for debounced flips
        self.on_flip = on_flip
        self._rng = random.Random(seed)
        self._task: asyncio.Task | None = None
        self.rounds = 0

    # -- probing ---------------------------------------------------------
    async def _get(self, backend: BackendState, path: str):
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(backend.host, backend.port), self.timeout
        )
        try:
            status, _headers, doc, _closed = await http_call(
                reader, writer, "GET", path, timeout=self.timeout, keep_alive=False
            )
            return status, doc
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def probe(self, backend: BackendState) -> bool:
        """One readiness probe; returns True when the backend answered ready."""
        backend.probes += 1
        backend.last_probe_unix = time.time()
        t0 = time.monotonic()
        try:
            status, _doc = await self._get(backend, "/readyz")
            if status == 404:  # pre-/readyz server: liveness is the best signal
                status, _doc = await self._get(backend, "/healthz")
        except (OSError, asyncio.TimeoutError, ConnectionError, ValueError) as exc:
            backend.last_latency_ms = (time.monotonic() - t0) * 1000.0
            backend.last_status = 0
            backend.last_error = f"{type(exc).__name__}: {exc}"
            self._mark(backend, ok=False, alive=False, reason=backend.last_error)
            return False
        backend.last_latency_ms = (time.monotonic() - t0) * 1000.0
        backend.last_status = status
        backend.last_error = ""
        backend.alive = True
        ok = status == 200
        self._mark(backend, ok=ok, alive=True, reason=f"http {status}")
        if ok and backend.probes % self.metrics_every == 1:
            with contextlib.suppress(
                OSError, asyncio.TimeoutError, ConnectionError, ValueError, KeyError
            ):
                await self.scrape_metrics(backend)
        return ok

    def _mark(self, backend: BackendState, *, ok: bool, alive: bool, reason: str) -> None:
        if ok:
            backend.consecutive_successes += 1
            backend.consecutive_failures = 0
            if backend.consecutive_successes >= self.rise:
                if backend._flip(True, reason) and self.on_flip is not None:
                    self.on_flip(backend, True, reason)
        else:
            backend.consecutive_failures += 1
            backend.consecutive_successes = 0
            if backend.consecutive_failures >= self.fall:
                if not alive:
                    backend.alive = False
                if backend._flip(False, reason) and self.on_flip is not None:
                    self.on_flip(backend, False, reason)

    async def scrape_metrics(self, backend: BackendState) -> None:
        """Refresh the compact per-backend /metrics summary."""
        status, doc = await self._get(backend, "/metrics")
        if status != 200:
            return
        backend.backend_metrics = {
            "requests_total": doc.get("requests", {}).get("total", 0),
            "by_status": dict(doc.get("responses", {}).get("by_status", {})),
            "executions": doc.get("batching", {}).get("executions", 0),
            "cache_hits": doc.get("cache", {}).get("hits", 0),
            "shard": doc.get("service", {}).get("shard", ""),
        }

    async def probe_all(self) -> None:
        self.rounds += 1
        await asyncio.gather(*(self.probe(b) for b in self.backends))

    # -- lifecycle -------------------------------------------------------
    async def _loop(self) -> None:
        while True:
            await self.probe_all()
            # deterministic jitter: 0.75x..1.25x of the interval per round
            await asyncio.sleep(self.interval * (0.75 + 0.5 * self._rng.random()))

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._loop())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    def snapshot(self) -> list[dict]:
        return [b.snapshot() for b in self.backends]
