"""Command-line interface: quick cost measurements without writing code.

    python -m repro scan --n 4096
    python -m repro sort --n 1024 --workload reversed
    python -m repro select --n 4096 --k 100 --seed 3
    python -m repro spmv --n 64 --density 4
    python -m repro table1 --quick
    python -m repro report --algo sort --per-phase
    python -m repro report --algo sort --format json
    python -m repro trace --algo scan --out scan.jsonl
    python -m repro profile scan -n 4096 --heatmap out.svg --trace out.json
    python -m repro chaos --profiles mixed --side 8
    python -m repro conformance --side 8 --seeds 3
    python -m repro bench list
    python -m repro bench run --suite table1_sort --jobs 4
    python -m repro bench compare --baseline benchmarks/baselines/quick
    python -m repro serve --port 8642 --workers 2
    python -m repro trace-collect --dir trace_out --out trace.json

Each subcommand runs the primitive on the Spatial Computer simulator and
prints the measured energy / depth / distance next to the paper's bound.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis import make_workload, render_table
from .core.scan import scan
from .core.selection import rank_select
from .core.sorting.mergesort2d import sort_values
from .machine import Region, SpatialMachine
from .spmv import random_coo, spmv_spatial

__all__ = ["main"]


def _square_for(n: int) -> Region:
    side = 1
    while side * side < n:
        side *= 2
    if side * side != n:
        raise SystemExit(f"--n must be a power of 4, got {n}")
    return Region(0, 0, side, side)


def _cmd_scan(args) -> int:
    region = _square_for(args.n)
    rng = np.random.default_rng(args.seed)
    x = make_workload(args.workload, args.n, rng)
    m = SpatialMachine()
    res = scan(m, m.place_zorder(x, region), region)
    assert np.allclose(res.inclusive.payload, np.cumsum(x))
    _print_costs("parallel scan", "Θ(n) E, O(log n) D", m,
                 res.inclusive.max_depth(), res.inclusive.max_dist())
    return 0


def _cmd_sort(args) -> int:
    region = _square_for(args.n)
    rng = np.random.default_rng(args.seed)
    x = make_workload(args.workload, args.n, rng)
    m = SpatialMachine()
    if args.algorithm == "merge":
        out = sort_values(m, x, region)
        name, bound = "2D mergesort", "Θ(n^1.5) E, O(log³ n) D"
        got = out.payload[:, 0]
    elif args.algorithm == "quick":
        from .core.sorting.quicksort2d import quicksort_2d

        out = quicksort_2d(m, x, region, rng)
        name, bound = "2D quicksort", "Θ(n^1.5) E w.h.p., polylog D"
        got = out.payload
    elif args.algorithm == "bitonic":
        from .core.sorting.bitonic import bitonic_sort
        from .core.sorting.sortutil import as_sort_payload

        out = bitonic_sort(m, m.place_rowmajor(as_sort_payload(x), region), region)
        name, bound = "bitonic network", "Θ(n^1.5 log n) E, Θ(log² n) D"
        got = out.payload[:, 0]
    elif args.algorithm == "oddeven":
        from .core.sorting.odd_even import odd_even_mergesort
        from .core.sorting.sortutil import as_sort_payload

        out = odd_even_mergesort(m, m.place_rowmajor(as_sort_payload(x), region), region)
        name, bound = "odd-even network", "Θ(n^1.5 log n) E, Θ(log² n) D"
        got = out.payload[:, 0]
    else:  # shear
        from .core.sorting.mesh_sort import shearsort
        from .core.sorting.sortutil import as_sort_payload

        out = shearsort(m, m.place_rowmajor(as_sort_payload(x), region), region)
        name, bound = "shearsort (mesh)", "Θ(n^1.5 log n) E, Θ(√n log n) D"
        got = out.payload[:, 0]
    assert np.allclose(got, np.sort(x))
    _print_costs(name, bound, m, out.max_depth(), out.max_dist())
    return 0


def _cmd_select(args) -> int:
    region = _square_for(args.n)
    rng = np.random.default_rng(args.seed)
    x = make_workload(args.workload, args.n, rng)
    k = args.k if args.k else args.n // 2
    m = SpatialMachine()
    res = rank_select(m, m.place_zorder(x, region), region, k, rng)
    assert res.value == np.sort(x)[k - 1]
    _print_costs(f"rank select (k={k})", "Θ(n) E, O(log² n) D w.h.p.", m,
                 m.stats.max_depth, m.stats.max_distance)
    print(f"  iterations={res.iterations} fallback={res.fell_back} value={res.value:.6g}")
    return 0


def _cmd_spmv(args) -> int:
    rng = np.random.default_rng(args.seed)
    A = random_coo(args.n, args.density * args.n, rng)
    x = rng.standard_normal(args.n)
    m = SpatialMachine()
    y = spmv_spatial(m, A, x)
    assert np.allclose(y.payload, A.multiply_dense(x))
    _print_costs(f"SpMV (n={args.n}, m={A.nnz})", "Θ(m^1.5) E, O(log³ n) D", m,
                 m.stats.max_depth, m.stats.max_distance)
    return 0


def _cmd_table1(args) -> int:
    rng = np.random.default_rng(args.seed)
    sizes = (64, 256, 1024) if args.quick else (64, 256, 1024, 4096)
    rows = []
    for n in sizes:
        region = _square_for(n)
        x = rng.standard_normal(n)

        m1 = SpatialMachine()
        r = scan(m1, m1.place_zorder(x, region), region)
        m2 = SpatialMachine()
        s = sort_values(m2, x, region)
        m3 = SpatialMachine()
        rank_select(m3, m3.place_zorder(x, region), region, n // 2, rng)
        A = random_coo(int(np.sqrt(n)) * 2, n // 2, rng)
        m4 = SpatialMachine()
        spmv_spatial(m4, A, rng.standard_normal(A.n))
        rows.append(
            [
                n,
                m1.stats.energy,
                r.inclusive.max_depth(),
                m2.stats.energy,
                s.max_depth(),
                m3.stats.energy,
                m3.stats.max_depth,
                m4.stats.energy,
                m4.stats.max_depth,
            ]
        )
    print(
        render_table(
            ["n", "scan E", "scan D", "sort E", "sort D", "sel E", "sel D",
             "spmv E", "spmv D"],
            rows,
            title="Table I measured (E = energy, D = depth)",
        )
    )
    return 0


def _print_costs(name: str, bound: str, m: SpatialMachine, depth: int, dist: int) -> None:
    print(f"{name}: energy={m.stats.energy} messages={m.stats.messages} "
          f"depth={depth} distance={dist}")
    print(f"  paper bound: {bound}")


def _run_algo(algo: str, n: int, seed: int, workload: str, trace: bool,
              profile: bool = False):
    """Run one primitive on a fresh machine; return (machine, label)."""
    rng = np.random.default_rng(seed)
    m = SpatialMachine(trace=trace, profile=profile)
    if algo == "scan":
        region = _square_for(n)
        x = make_workload(workload, n, rng)
        res = scan(m, m.place_zorder(x, region), region)
        assert np.allclose(res.inclusive.payload, np.cumsum(x))
        return m, f"parallel scan (n={n})"
    if algo == "sort":
        region = _square_for(n)
        x = make_workload(workload, n, rng)
        out = sort_values(m, x, region)
        assert np.allclose(out.payload[:, 0], np.sort(x))
        return m, f"2D mergesort (n={n})"
    if algo == "select":
        region = _square_for(n)
        x = make_workload(workload, n, rng)
        res = rank_select(m, m.place_zorder(x, region), region, n // 2, rng)
        assert res.value == np.sort(x)[n // 2 - 1]
        return m, f"rank select (n={n}, k={n // 2})"
    if algo == "spmv":
        dim = max(4, int(np.sqrt(n)))
        A = random_coo(dim, max(dim, n // 2), rng)
        x = rng.standard_normal(dim)
        y = spmv_spatial(m, A, x)
        assert np.allclose(y.payload, A.multiply_dense(x))
        return m, f"SpMV (n={dim}, m={A.nnz})"
    raise SystemExit(f"unknown algorithm {algo!r}")


def _cmd_graph(args) -> int:
    from .graphs import (
        bfs_distances,
        bfs_reference,
        cc_reference,
        connected_components,
        degree_table,
        generate_graph,
        iteration_costs,
        pagerank,
        pagerank_reference,
    )

    rng = np.random.default_rng(args.seed)
    try:
        A = generate_graph(args.generator, args.n, rng)
    except ValueError as e:
        raise SystemExit(str(e))
    want_profiler = bool(args.heatmap or args.trace or args.ascii)
    m = SpatialMachine(profile=want_profiler)
    phase = args.algo
    if args.algo == "cc":
        labels = connected_components(m, A, max_rounds=args.max_rounds)
        assert np.array_equal(labels, cc_reference(A))
        extra = f"components={len(np.unique(labels))}"
        label = f"connected components ({args.generator}, n={args.n}, m={A.nnz})"
    elif args.algo == "bfs":
        dist = bfs_distances(m, A, args.source, max_rounds=args.max_rounds)
        assert np.array_equal(dist, bfs_reference(A, args.source))
        reached = int(np.isfinite(dist).sum())
        extra = f"source={args.source} reached={reached}/{args.n}"
        label = f"BFS ({args.generator}, n={args.n}, m={A.nnz})"
    elif args.algo == "pagerank":
        res = pagerank(m, A, damping=args.damping, tol=args.tol,
                       max_rounds=args.max_rounds or 50)
        ref = pagerank_reference(A, damping=args.damping, tol=args.tol,
                                 max_rounds=args.max_rounds or 50)
        assert np.allclose(res.ranks, ref.ranks, rtol=1e-9, atol=1e-12)
        extra = (f"rounds={res.rounds} converged={res.converged} "
                 f"residual={res.residual:.3g}")
        label = f"PageRank ({args.generator}, n={args.n}, m={A.nnz})"
    else:  # degrees
        deg = degree_table(m, A)
        ref_deg = np.zeros(A.n)
        np.add.at(ref_deg, np.asarray(A.rows), np.asarray(A.vals))
        assert np.array_equal(deg, np.rint(ref_deg).astype(np.int64))
        extra = f"max_degree={int(deg.max())}"
        label = f"degree table ({args.generator}, n={args.n}, m={A.nnz})"
        phase = "degrees"
    _print_costs(label, "Θ(m^1.5) E, O(log³ n) D per round", m,
                 m.stats.max_depth, m.stats.max_distance)
    print(f"  {extra}")
    total = m.cost_tree.total()
    assert total.energy == m.stats.energy and total.messages == m.stats.messages

    rounds = iteration_costs(m.cost_tree, phase)
    if args.per_round and rounds:
        print()
        print(
            render_table(
                ["round", "energy", "messages", "depth", "distance"],
                [[r["round"], r["energy"], r["messages"], r["max_depth"],
                  r["max_distance"]] for r in rounds],
                title=f"{label} — per-iteration attribution",
            )
        )
    elif rounds:
        energies = [r["energy"] for r in rounds]
        print(f"  rounds={len(rounds)} round energy min={min(energies)} "
              f"max={max(energies)} total={sum(energies)}")

    if want_profiler:
        from .machine.chrometrace import write_chrome_trace
        from .machine.heatmap import render_ascii, write_heatmap

        cells = m.profiler.cell_energy()
        if args.ascii:
            print()
            print(render_ascii(cells, title=f"{label} — energy per cell"))
        if args.heatmap:
            try:
                fmt = write_heatmap(cells, args.heatmap,
                                    title=f"{label} — energy per cell")
            except OSError as e:
                raise SystemExit(f"cannot write heatmap to {args.heatmap}: {e}")
            print(f"wrote {fmt} heatmap to {args.heatmap}")
        if args.trace:
            try:
                count = write_chrome_trace(m.profiler, args.trace, label=label)
            except OSError as e:
                raise SystemExit(f"cannot write trace to {args.trace}: {e}")
            print(f"wrote {count} trace event(s) to {args.trace} "
                  "(load in ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_chaos(args) -> int:
    import json

    from .runner.chaos import CHAOS_ALGOS, CHAOS_PROFILES, run_chaos_grid

    algos = list(CHAOS_ALGOS) if args.algos == "all" else args.algos.split(",")
    profiles = list(CHAOS_PROFILES) if args.profiles == "all" else args.profiles.split(",")
    seeds = tuple(range(args.seed, args.seed + args.plans))
    try:
        reports = run_chaos_grid(algos, profiles, side=args.side, seeds=seeds)
    except ValueError as e:
        # unknown algo/profile names: exit with a usage error, not a traceback
        raise SystemExit(str(e))

    rows = [
        [
            r["algo"],
            r["profile"],
            r["seed"],
            "ok" if r["exact_match"] else "MISMATCH",
            f"{r['energy_inflation']:.3f}",
            f"{r['depth_inflation']:.3f}",
            r["recovery"]["retries"],
            r["recovery"]["detoured"],
            r["recovery"]["spared"],
            r["recovery_phase_energy"],
        ]
        for r in reports
    ]
    print(
        render_table(
            ["algo", "profile", "seed", "result", "E infl", "D infl",
             "retries", "detours", "spared", "recovery E"],
            rows,
            title=f"chaos sweep (side={args.side}, {len(reports)} points)",
        )
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(reports, fh, indent=2)
        print(f"wrote {len(reports)} chaos reports to {args.out}")
    bad = [r for r in reports if not r["exact_match"]]
    if bad:
        print(f"FAULT-RECOVERY FAILURE: {len(bad)} point(s) diverged from the "
              f"fault-free run", file=sys.stderr)
        return 1
    return 0


def _cmd_conformance(args) -> int:
    import json

    from .runner.conformance import (
        CONFORMANCE_ALGOS,
        CONFORMANCE_PROFILES,
        diff_point,
        run_conformance_grid,
    )

    algos = list(CONFORMANCE_ALGOS) if args.algos == "all" else args.algos.split(",")
    profiles = (
        list(CONFORMANCE_PROFILES) if args.profiles == "all" else args.profiles.split(",")
    )
    seeds = tuple(range(args.seed, args.seed + args.seeds))
    try:
        reports = run_conformance_grid(algos, profiles, side=args.side, seeds=seeds)
    except ValueError as e:
        raise SystemExit(str(e))

    rows = [
        [
            r["algo"],
            r["profile"],
            r["seed"],
            "ok" if r["conformant"] else "MISMATCH",
            "=" if r["payload_equal"] else "DIFF",
            "=" if r["stats_equal"] else "DIFF",
            "=" if r["cost_tree_equal"] else "DIFF",
            "=" if r["recovery_equal"] else "DIFF",
            r["fast_stats"]["energy"],
        ]
        for r in reports
    ]
    print(
        render_table(
            ["algo", "profile", "seed", "result", "payload", "stats",
             "cost tree", "recovery", "energy"],
            rows,
            title=f"fast-vs-reference conformance (side={args.side}, "
                  f"{len(reports)} points)",
        )
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(reports, fh, indent=2)
        print(f"wrote {len(reports)} conformance reports to {args.out}")
    bad = [r for r in reports if not r["conformant"]]
    if bad:
        for r in bad:
            print(f"  {r['algo']}/{r['profile']}/seed={r['seed']}: {diff_point(r)}",
                  file=sys.stderr)
        print(f"CONFORMANCE FAILURE: {len(bad)} point(s) diverged from the "
              f"reference oracle", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    import json

    m, label = _run_algo(args.algo, args.n, args.seed, args.workload, trace=False)
    s = m.stats
    if args.format == "json":
        doc = {
            "label": label,
            "algo": args.algo,
            "n": args.n,
            "seed": args.seed,
            "workload": args.workload,
            "metrics": {
                "energy": s.energy,
                "messages": s.messages,
                "rounds": s.rounds,
                "max_depth": s.max_depth,
                "max_distance": s.max_distance,
            },
            "cost_tree": m.cost_tree.as_dict(),
        }
        print(json.dumps(doc, indent=2, sort_keys=False))
        return 0
    print(f"{label}: energy={s.energy} messages={s.messages} rounds={s.rounds} "
          f"depth={s.max_depth} distance={s.max_distance}")
    if args.per_phase:
        print()
        print(m.cost_tree.render(min_energy=args.min_energy))
    return 0


def _cmd_profile(args) -> int:
    from .machine.chrometrace import write_chrome_trace
    from .machine.heatmap import render_ascii, write_heatmap

    m, label = _run_algo(args.algo, args.n, args.seed, args.workload,
                         trace=False, profile=True)
    prof = m.profiler
    s = m.stats
    print(f"{label}: energy={s.energy} messages={s.messages} rounds={s.rounds} "
          f"depth={s.max_depth} distance={s.max_distance}")

    stats = prof.hotspot_stats(args.metric)
    bbox = stats["bbox"]
    where = (f"rows {bbox[0]}..{bbox[2]}, cols {bbox[1]}..{bbox[3]}"
             if bbox else "(empty)")
    print(f"{args.metric} grid: {stats['active_cells']} active cell(s) over "
          f"{where}; max={stats['max']} mean={stats['mean']} "
          f"gini={stats['gini']} max/mean={stats['max_mean_skew']}")
    print(f"top {args.top} hotspot(s) by {args.metric}:")
    for cell, v in prof.top_cells(args.top, by=args.metric):
        print(f"  {cell}: {v}")

    if args.witness in ("depth", "both"):
        w = prof.depth_witness()
        print()
        print(w.render())
        if w.complete and w.replayed() != s.max_depth:  # pragma: no cover
            print("  WARNING: witness replay disagrees with MachineStats.max_depth",
                  file=sys.stderr)
    if args.witness in ("distance", "both"):
        w = prof.distance_witness()
        print()
        print(w.render())
        if w.complete and w.replayed() != s.max_distance:  # pragma: no cover
            print("  WARNING: witness replay disagrees with MachineStats.max_distance",
                  file=sys.stderr)

    grids = {
        "energy": prof.cell_energy,
        "sent": lambda: prof.sent,
        "received": lambda: prof.received,
        "links": prof.link_load,
    }
    cells = grids[args.metric]()
    if args.ascii:
        print()
        print(render_ascii(cells, title=f"{label} — {args.metric} per cell"))
    if args.heatmap:
        try:
            fmt = write_heatmap(cells, args.heatmap,
                                title=f"{label} — {args.metric} per cell")
        except OSError as e:
            raise SystemExit(f"cannot write heatmap to {args.heatmap}: {e}")
        print(f"wrote {fmt} heatmap to {args.heatmap}")
    if args.trace:
        try:
            count = write_chrome_trace(prof, args.trace, label=label)
        except OSError as e:
            raise SystemExit(f"cannot write trace to {args.trace}: {e}")
        print(f"wrote {count} trace event(s) to {args.trace} "
              "(load in ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_serve(args) -> int:
    # lazy import: the service layer pulls in asyncio/pool machinery that the
    # one-shot CLI verbs never need
    from .service.server import serve_main

    return serve_main(args)


def _cmd_fleet(args) -> int:
    from .service.fleet import fleet_main

    return fleet_main(args)


def _cmd_fleet_chaos(args) -> int:
    from .service.fleetchaos import fleet_chaos_main

    return fleet_chaos_main(args)


def _cmd_trace_collect(args) -> int:
    from .obs.collect import trace_collect_main

    return trace_collect_main(args)


def _cmd_trace(args) -> int:
    m, label = _run_algo(args.algo, args.n, args.seed, args.workload, trace=True)
    if args.out:
        try:
            count = m.tracer.to_jsonl(args.out)
        except OSError as e:
            raise SystemExit(f"cannot write trace to {args.out}: {e}")
        print(f"{label}: wrote {count} message records to {args.out}")
    else:
        m.tracer.to_jsonl(sys.stdout)
    return 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__
    from .runner.cli import add_bench_parser
    from .tuner.cli import add_tune_parser

    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp, default_n=1024):
        sp.add_argument("-n", "--n", type=int, default=default_n,
                        help="input size (power of 4)")
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--workload", default="uniform",
                        choices=("uniform", "reversed", "sorted", "few_distinct", "zipf"))

    sp = sub.add_parser("scan", help="energy-optimal parallel scan (§IV.C)")
    common(sp, 4096)
    sp.set_defaults(func=_cmd_scan)

    sp = sub.add_parser("sort", help="sorting algorithms (§V and extensions)")
    common(sp, 1024)
    sp.add_argument(
        "--algorithm",
        default="merge",
        choices=("merge", "quick", "bitonic", "oddeven", "shear"),
        help="2D mergesort (default), selection quicksort, the two Batcher "
        "networks, or the mesh shearsort baseline",
    )
    sp.set_defaults(func=_cmd_sort)

    sp = sub.add_parser("select", help="randomized rank selection (§VI)")
    common(sp, 4096)
    sp.add_argument("--k", type=int, default=0, help="1-based rank (default: median)")
    sp.set_defaults(func=_cmd_select)

    sp = sub.add_parser("spmv", help="sparse matrix-vector product (§VIII)")
    sp.add_argument("--n", type=int, default=64, help="matrix dimension")
    sp.add_argument("--density", type=int, default=4, help="nonzeros per row (approx)")
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(func=_cmd_spmv)

    sp = sub.add_parser("table1", help="the whole Table I sweep")
    sp.add_argument("--quick", action="store_true", help="smaller sizes")
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(func=_cmd_table1)

    def algo_common(sp, default_n=1024):
        common(sp, default_n)
        sp.add_argument(
            "--algo",
            default="sort",
            choices=("scan", "sort", "select", "spmv"),
            help="which primitive to run (default: 2D mergesort)",
        )

    sp = sub.add_parser("report", help="cost report, optionally broken down by phase")
    algo_common(sp)
    sp.add_argument("--per-phase", action="store_true",
                    help="print the hierarchical phase-cost tree")
    sp.add_argument("--min-energy", type=int, default=0,
                    help="hide phases cheaper than this energy")
    sp.add_argument("--format", default="text", choices=("text", "json"),
                    help="output format; json dumps the full CostTree for scripts")
    sp.set_defaults(func=_cmd_report)

    sp = sub.add_parser(
        "profile",
        help="spatial profiler: per-cell heatmaps, link load, critical-path witnesses",
    )
    sp.add_argument("algo", choices=("scan", "sort", "select", "spmv"),
                    help="which primitive to profile")
    common(sp, 1024)
    sp.add_argument("--metric", default="energy",
                    choices=("energy", "sent", "received", "links"),
                    help="cell metric for hotspots/heatmaps (default: wire energy)")
    sp.add_argument("--top", type=int, default=8, help="hotspot cells to list")
    sp.add_argument("--witness", default="both",
                    choices=("depth", "distance", "both", "none"),
                    help="which critical-path witness chain(s) to print")
    sp.add_argument("--ascii", action="store_true",
                    help="print an ASCII heatmap to stdout")
    sp.add_argument("--heatmap", default="",
                    help="write a heatmap file (.svg for SVG, else ASCII text)")
    sp.add_argument("--trace", default="",
                    help="write Chrome trace-event JSON (Perfetto-loadable)")
    sp.set_defaults(func=_cmd_profile)

    sp = sub.add_parser("trace", help="run with tracing on and dump JSONL message records")
    algo_common(sp)
    sp.add_argument("--out", default="", help="output path (default: stdout)")
    sp.set_defaults(func=_cmd_trace)

    sp = sub.add_parser(
        "graph",
        help="graph-analytics workloads: iterated-SpMV CC/BFS/PageRank with "
        "per-iteration cost attribution",
    )
    sp.add_argument("algo", choices=("cc", "bfs", "pagerank", "degrees"),
                    help="which graph algorithm to run")
    sp.add_argument("-n", "--n", type=int, default=64, help="vertex count "
                    "(grid generator needs a perfect square)")
    sp.add_argument("--generator", default="rmat",
                    choices=("rmat", "grid", "powerlaw"),
                    help="seeded workload graph family (default: rmat)")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--source", type=int, default=0, help="BFS source vertex")
    sp.add_argument("--damping", type=float, default=0.85,
                    help="PageRank damping factor")
    sp.add_argument("--tol", type=float, default=1e-8,
                    help="PageRank convergence tolerance (0 = fixed rounds)")
    sp.add_argument("--max-rounds", type=int, default=None,
                    help="iteration cap (default: derived from convergence; "
                    "PageRank: 50)")
    sp.add_argument("--per-round", action="store_true",
                    help="print the full per-iteration cost table")
    sp.add_argument("--ascii", action="store_true",
                    help="print an ASCII energy heatmap to stdout")
    sp.add_argument("--heatmap", default="",
                    help="write an energy heatmap file (.svg for SVG, else ASCII)")
    sp.add_argument("--trace", default="",
                    help="write Chrome trace-event JSON (Perfetto-loadable)")
    sp.set_defaults(func=_cmd_graph)

    sp = sub.add_parser(
        "chaos",
        help="fault-injection sweep: every primitive under seeded fault plans",
    )
    sp.add_argument("--algos", default="all",
                    help="comma-separated algorithm names, or 'all'")
    sp.add_argument("--profiles", default="all",
                    help="comma-separated fault profiles (drops, corruption, dead, mixed), or 'all'")
    sp.add_argument("--side", type=int, default=8, help="working-set square side")
    sp.add_argument("--seed", type=int, default=0, help="first fault-plan seed")
    sp.add_argument("--plans", type=int, default=1,
                    help="number of consecutive seeds per (algo, profile)")
    sp.add_argument("--out", default="", help="also dump the JSON reports here")
    sp.set_defaults(func=_cmd_chaos)

    sp = sub.add_parser(
        "conformance",
        help="differential check: fast machine vs per-call reference oracle",
    )
    sp.add_argument("--algos", default="all",
                    help="comma-separated algorithm names, or 'all'")
    sp.add_argument("--profiles", default="all",
                    help="comma-separated profiles (clean, drops, corruption, "
                    "dead, mixed), or 'all'")
    sp.add_argument("--side", type=int, default=8, help="working-set square side")
    sp.add_argument("--seed", type=int, default=0, help="first algorithm/plan seed")
    sp.add_argument("--seeds", type=int, default=1,
                    help="number of consecutive seeds per (algo, profile)")
    sp.add_argument("--out", default="", help="also dump the JSON reports here")
    sp.set_defaults(func=_cmd_conformance)

    sp = sub.add_parser(
        "serve",
        help="HTTP serving layer: batch, cache, and execute simulation requests",
    )
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=8642,
                    help="listen port (0 picks a free one)")
    sp.add_argument("--workers", type=int, default=2,
                    help="persistent simulation worker processes")
    sp.add_argument("--inline", action="store_true",
                    help="run simulations on threads instead of the worker pool "
                    "(for hosts that cannot fork; disables profile requests)")
    sp.add_argument("--max-inflight", type=int, default=64,
                    help="admitted requests in flight before 429")
    sp.add_argument("--queue", type=int, default=256,
                    help="admitted-but-not-executing requests before 429")
    sp.add_argument("--batch-window", type=float, default=0.02,
                    help="seconds to hold a new key for duplicate coalescing")
    sp.add_argument("--timeout", type=float, default=30.0,
                    help="per-execution deadline in seconds (overrun -> 504)")
    sp.add_argument("--memory-cache", type=int, default=512,
                    help="in-process LRU entries")
    sp.add_argument("--cache-dir", default=".bench_cache",
                    help="content-addressed disk cache shared with `repro bench run`")
    sp.add_argument("--no-disk-cache", action="store_true",
                    help="serve from the in-memory LRU only")
    sp.add_argument("--bench-dir", default="",
                    help="suite directory (default: ./benchmarks)")
    sp.add_argument("--drain-timeout", type=float, default=30.0,
                    help="seconds to wait for in-flight requests on SIGTERM")
    sp.add_argument("--plan-db", default="benchmarks/plans/plan_db.json",
                    help="tuner plan database answering /plan and auto: dispatch")
    sp.add_argument("--shard-id", default="",
                    help="fleet identity (e.g. s0r1) echoed on /healthz, /readyz "
                    "and /metrics")
    sp.add_argument("--trace-dir", default="",
                    help="write request spans to spans-*.jsonl files here "
                    "(empty = tracing off; merge with `repro trace-collect`)")
    sp.set_defaults(func=_cmd_serve)

    sp = sub.add_parser(
        "fleet",
        help="consistent-hash gateway over replicated `repro serve` shards",
    )
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=8640,
                    help="gateway listen port (0 picks a free one)")
    sp.add_argument("--shards", type=int, default=2)
    sp.add_argument("--replicas", type=int, default=2,
                    help="replicas per shard when spawning (ignored with --backends)")
    sp.add_argument("--backends", default="",
                    help="comma-separated host:port list of running shard servers, "
                    "dealt round-robin into --shards groups; empty = spawn "
                    "shards x replicas `repro serve` children")
    sp.add_argument("--workers", type=int, default=1,
                    help="worker processes per spawned shard replica")
    sp.add_argument("--max-inflight", type=int, default=256)
    sp.add_argument("--request-timeout", type=float, default=30.0,
                    help="overall per-request deadline across failover attempts")
    sp.add_argument("--attempt-timeout", type=float, default=5.0,
                    help="per-attempt budget before failing over to the next replica")
    sp.add_argument("--hedge-after", type=float, default=0.75,
                    help="seconds before a slow first attempt may be hedged")
    sp.add_argument("--hedge-rate", type=float, default=0.05,
                    help="maximum fraction of requests that start a hedge (0 disables)")
    sp.add_argument("--probe-interval", type=float, default=0.5,
                    help="health-probe loop interval per replica")
    sp.add_argument("--seed", type=int, default=0,
                    help="seed for breaker jitter, probe jitter")
    sp.add_argument("--cache-dir", default=".bench_cache",
                    help="shared content-addressed cache (stale serving reads it)")
    sp.add_argument("--no-disk-cache", action="store_true",
                    help="disable stale-result serving from the disk cache")
    sp.add_argument("--bench-dir", default="")
    sp.add_argument("--trace-dir", default="",
                    help="trace the gateway and its spawned shards into "
                    "spans-*.jsonl files here (empty = tracing off)")
    sp.set_defaults(func=_cmd_fleet)

    sp = sub.add_parser(
        "fleet-chaos",
        help="shard-kill chaos gates: clean vs faulted fleet must match exactly",
    )
    from .service.fleetchaos import add_fleet_chaos_args

    add_fleet_chaos_args(sp)
    sp.set_defaults(func=_cmd_fleet_chaos)

    sp = sub.add_parser(
        "trace-collect",
        help="merge spans-*.jsonl from a traced run into one Chrome trace "
        "with a per-stage latency breakdown",
    )
    from .obs.collect import add_trace_collect_args

    add_trace_collect_args(sp)
    sp.set_defaults(func=_cmd_trace_collect)

    add_bench_parser(sub)
    add_tune_parser(sub)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
