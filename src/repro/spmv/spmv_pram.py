"""SpMV via CRCW PRAM simulation — the Section VIII baseline upper bound.

The paper first derives ``O(m^{3/2})`` energy / ``O(log^4 n)`` depth /
``O(sqrt(m) log n)`` distance for SpMV by running the textbook
``O(log n)``-step CRCW PRAM algorithm (:class:`repro.pram.programs.SpMVCRCW`)
through the sort-based simulation of Lemma VII.2, then beats its depth and
distance by a logarithmic factor with the direct algorithm
(:mod:`repro.spmv.spmv`).  This module packages the baseline so the benches
can show that separation.

The simulation needs the processor count (= non-zeros) to fill a power-of-4
square, so the entry list is padded with zero-valued ``(0, 0, 0)`` entries —
they join row 0's segment and add exact zeros.
"""

from __future__ import annotations

import numpy as np

from ..machine.machine import SpatialMachine
from ..pram.programs import SpMVCRCW
from ..pram.simulate import simulate_crcw
from .coo import COOMatrix

__all__ = ["spmv_pram_simulated"]


def _pad_to_pow4(matrix: COOMatrix) -> COOMatrix:
    nnz = matrix.nnz
    target = 1
    while target < nnz:
        target *= 4
    pad = target - nnz
    if pad == 0:
        return matrix
    return COOMatrix(
        np.concatenate([matrix.rows, np.zeros(pad, dtype=np.int64)]),
        np.concatenate([matrix.cols, np.zeros(pad, dtype=np.int64)]),
        np.concatenate([matrix.vals, np.zeros(pad)]),
        matrix.n,
    )


def spmv_pram_simulated(
    machine: SpatialMachine, matrix: COOMatrix, x: np.ndarray
) -> np.ndarray:
    """Run ``y = A x`` through the full CRCW PRAM spatial simulation.

    Returns ``y`` as a plain array (the simulated shared memory's output
    cells); all costs are metered on ``machine``.
    """
    padded = _pad_to_pow4(matrix)
    prog = SpMVCRCW(padded.rows, padded.cols, padded.vals, padded.n, np.asarray(x))
    with machine.phase("spmv_pram"):
        memory, _ = simulate_crcw(machine, prog)
    return np.asarray(
        memory.payload[padded.n + padded.nnz : 2 * padded.n + padded.nnz]
    )
