"""Low-depth SpMV on the Spatial Computer Model (paper, Section VIII).

``y = A x`` for a COO matrix with ``m`` non-zeros on a ``sqrt(m) x sqrt(m)``
subgrid and ``x`` on a ``sqrt(n) x sqrt(n)`` subgrid next to it:

1. 2D-Mergesort the triples by **column** — same-column entries become
   contiguous segments;
2. each entry learns whether it leads its segment from its predecessor
   (one neighbour message);
3. column leaders fetch ``x_j`` (request/reply messages) and a **segmented
   broadcast** (a parallel scan, Section IV.C) spreads it over the segment;
4. every entry forms ``A_ij * x_j`` locally;
5. 2D-Mergesort the partial products by **row**;
6. row leaders are identified as in step 2;
7. a **segmented scan** sums each row's products; the tail of each segment
   holds ``(A x)_i`` and ships it to the output cell.

Costs (Theorem VIII.2): ``O(m^{3/2})`` energy, ``O(log^3 n)`` depth,
``O(sqrt(m))`` distance — sorting and scanning dominate, improving the PRAM
simulation route (:mod:`repro.spmv.spmv_pram`) by a ``Θ(log n)`` factor in
depth and distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.ops import ADD, Monoid
from ..core.scan import segmented_broadcast, segmented_scan
from ..core.validate import check_finite_values
from ..core.sorting.mergesort2d import mergesort_2d
from ..machine.geometry import Region
from ..machine.machine import SpatialMachine, TrackedArray
from ..machine.zorder import zorder_coords
from .coo import COOMatrix

__all__ = ["SpMVLayout", "spmv_spatial"]


@dataclass(frozen=True)
class SpMVLayout:
    """Grid placement of the SpMV operands."""

    entry_region: Region
    x_region: Region
    y_region: Region

    @classmethod
    def default(cls, n: int, nnz: int) -> "SpMVLayout":
        es = 1
        while es * es < nnz:
            es *= 2
        xs = 1
        while xs * xs < n:
            xs *= 2
        return cls(
            entry_region=Region(0, 0, es, es),
            x_region=Region(0, es, xs, xs),
            y_region=Region(xs, es, xs, xs),
        )


def _neighbour_leaders(
    machine: SpatialMachine, sorted_t: TrackedArray, col: int
) -> tuple[np.ndarray, TrackedArray]:
    """Step 2/6: flag entries whose payload[col] differs from the predecessor."""
    n = len(sorted_t)
    flags = np.ones(n, dtype=bool)
    informed = sorted_t.copy()
    if n > 1:
        shifted = machine.send(sorted_t[: n - 1], sorted_t.rows[1:], sorted_t.cols[1:])
        flags[1:] = sorted_t.payload[1:, col] != shifted.payload[:, col]
        informed.depth[1:] = np.maximum(informed.depth[1:], shifted.depth)
        informed.dist[1:] = np.maximum(informed.dist[1:], shifted.dist)
    return flags, informed


def spmv_spatial(
    machine: SpatialMachine,
    matrix: COOMatrix,
    x: np.ndarray,
    layout: SpMVLayout | None = None,
    base_case: int = 16,
    rng: np.random.Generator | None = None,
    combine: Monoid = ADD,
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.multiply,
) -> TrackedArray:
    """Compute ``y = A x`` over a semiring; ``y`` lands row-major on the
    output subgrid.

    Entries are placed in a random arbitrary order (the paper's input model)
    unless ``rng`` is None, in which case input order is used.  ``base_case``
    is forwarded to the mergesorts.

    The scan primitive works "for any associative operator" (Section IV.C),
    so SpMV inherits semiring generality: ``combine`` is the row-accumulation
    monoid (default ``ADD``) and ``multiply`` the elementwise product (e.g.
    ``combine=MIN, multiply=lambda a, x: x`` gives the min-label propagation
    used for connected components in :mod:`repro.apps.graph`).  Rows with no
    entries receive ``combine.identity_scalar``.

    Fault-transparent: ``y`` is bit-identical under any
    :class:`~repro.machine.FaultPlan`; recovery only inflates costs.
    """
    n, nnz = matrix.n, matrix.nnz
    check_finite_values(machine, np.asarray(x), "spmv x vector")
    check_finite_values(machine, matrix.vals, "spmv matrix values")
    if nnz == 0:
        raise ValueError("SpMV needs at least one non-zero")
    layout = layout or SpMVLayout.default(n, nnz)
    ereg = layout.entry_region

    # ---- place operands; pad entries with +inf sentinels to fill the square
    triples = np.stack(
        [
            matrix.cols.astype(np.float64),
            matrix.rows.astype(np.float64),
            matrix.vals,
        ],
        axis=1,
    )
    if rng is not None:
        triples = triples[rng.permutation(nnz)]
    pad = ereg.size - nnz
    if pad:
        triples = np.concatenate(
            [triples, np.full((pad, 3), np.inf)], axis=0
        )
    entries = machine.place_rowmajor(triples, ereg)
    x_ta = machine.place_rowmajor(np.asarray(x, dtype=np.float64), layout.x_region)
    xr, xc = layout.x_region.rowmajor_coords(n)

    with machine.phase("spmv"):
        # ---- 1-2: sort by column, find column leaders
        with machine.phase("sort_by_col"):
            by_col = mergesort_2d(machine, entries, ereg, key_cols=1, base_case=base_case)
            col_flags, by_col = _neighbour_leaders(machine, by_col, col=0)
        real = by_col.payload[:, 0] != np.inf
        leaders = np.nonzero(col_flags & real)[0]

        # ---- 3: leaders fetch x_j, segmented broadcast spreads it
        with machine.phase("fetch_x"):
            j = by_col.payload[leaders, 0].astype(np.int64)
            req = machine.send(by_col[leaders], xr[j], xc[j])
            reply = x_ta[j].combined_with(req, payload=x_ta.payload[j])
            back = machine.send(reply, by_col.rows[leaders], by_col.cols[leaders])
        carried = np.full(len(by_col), np.nan)
        carried[leaders] = back.payload
        holder = by_col.with_payload(
            np.concatenate([by_col.payload, carried[:, None]], axis=1)
        )
        holder.depth[leaders] = np.maximum(holder.depth[leaders], back.depth)
        holder.dist[leaders] = np.maximum(holder.dist[leaders], back.dist)
        with machine.phase("spread_x"):
            # permute once to Z-order for the scan-based broadcast
            zr, zc = zorder_coords(ereg)
            z_entries = machine.send(holder, zr, zc)
            spread = segmented_broadcast(
                machine,
                col_flags.astype(np.float64),
                z_entries.with_payload(z_entries.payload[:, 3]),
                ereg,
            )

        # ---- 4: local partial products A_ij (x) x_j  (payload -> (row, product))
        real_mask = z_entries.payload[:, 2] != np.inf
        products = np.full(len(z_entries), np.inf)
        products[real_mask] = multiply(
            z_entries.payload[real_mask, 2], spread.payload[real_mask]
        )
        prod = z_entries.combined_with(
            spread,
            payload=np.stack([z_entries.payload[:, 1], products], axis=1),
        )

        # ---- 5-6: sort by row, find row leaders; order entries row-major first
        with machine.phase("sort_by_row"):
            order = ereg.rowmajor_index(prod.rows, prod.cols)
            prod = prod[np.argsort(order, kind="stable")]
            by_row = mergesort_2d(machine, prod, ereg, key_cols=1, base_case=base_case)
            row_flags, by_row = _neighbour_leaders(machine, by_row, col=0)

        # ---- 7: segmented scan combines each row; segment tails hold (Ax)_i
        with machine.phase("row_sum"):
            z_prod = machine.send(by_row, zr, zc)
            seg_vals = z_prod.with_payload(
                np.where(
                    z_prod.payload[:, 0] != np.inf,
                    z_prod.payload[:, 1],
                    float(combine.identity_scalar),
                )
            )
            scanned = segmented_scan(
                machine, row_flags.astype(np.float64), seg_vals, ereg, combine
            )
        tails = np.ones(len(by_row), dtype=bool)
        tails[:-1] = row_flags[1:]
        real_rows = by_row.payload[:, 0] != np.inf
        out_src = np.nonzero(tails & real_rows)[0]
        i_idx = by_row.payload[out_src, 0].astype(np.int64)
        yr, yc = layout.y_region.rowmajor_coords(n)
        with machine.phase("ship_y"):
            shipped = machine.send(scanned.inclusive[out_src], yr[i_idx], yc[i_idx])

    # assemble dense y: rows with no entries hold the identity (local, free)
    payload = np.full(n, float(combine.identity_scalar))
    depth = np.zeros(n, dtype=np.int64)
    dist = np.zeros(n, dtype=np.int64)
    payload[i_idx] = shipped.payload
    depth[i_idx] = shipped.depth
    dist[i_idx] = shipped.dist
    return TrackedArray(machine, payload, yr, yc, depth, dist)
