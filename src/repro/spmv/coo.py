"""COO sparse matrices and workload generators (paper, Section VIII setup).

The paper's SpMV input convention: an ``n x n`` matrix with ``m >= n``
non-zeros in coordinate format, one ``(i, j, A_ij)`` triple per processor of
a ``sqrt(m) x sqrt(m)`` subgrid (arbitrary order); the vector ``x`` on a
``sqrt(n) x sqrt(n)`` subgrid, one entry per processor.

Generators cover the evaluation sweeps: uniform random sparsity, banded
(stencil-like) matrices, permutation matrices (the lower-bound witness of
Lemma VIII.1), and graph adjacency/Laplacian matrices via networkx (the GNN /
graph-algorithm motivation of the introduction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:  # scipy is an install dependency; guard for minimal environments
    import scipy.sparse as sp
except ImportError:  # pragma: no cover
    sp = None

__all__ = [
    "COOMatrix",
    "random_coo",
    "banded_coo",
    "permutation_coo",
    "graph_adjacency_coo",
]


@dataclass
class COOMatrix:
    """An ``n x n`` sparse matrix in coordinate format."""

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    n: int

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.vals = np.asarray(self.vals, dtype=np.float64)
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise ValueError("COO component length mismatch")
        if len(self.rows) and (
            self.rows.min() < 0
            or self.rows.max() >= self.n
            or self.cols.min() < 0
            or self.cols.max() >= self.n
        ):
            raise ValueError("COO indices out of range")

    @property
    def nnz(self) -> int:
        return len(self.vals)

    def multiply_dense(self, x: np.ndarray) -> np.ndarray:
        """Reference ``A @ x`` via NumPy scatter-add (the functional oracle)."""
        y = np.zeros(self.n)
        np.add.at(y, self.rows, self.vals * np.asarray(x, dtype=np.float64)[self.cols])
        return y

    @classmethod
    def from_scipy(cls, mat) -> "COOMatrix":
        """Build from any scipy.sparse matrix (must be square)."""
        coo = mat.tocoo()
        if coo.shape[0] != coo.shape[1]:
            raise ValueError("COOMatrix is square-only")
        return cls(coo.row, coo.col, coo.data, coo.shape[0])

    def to_scipy(self):
        """Cross-check handle: the same matrix as ``scipy.sparse.coo_matrix``."""
        if sp is None:  # pragma: no cover
            raise RuntimeError("scipy not available")
        return sp.coo_matrix((self.vals, (self.rows, self.cols)), shape=(self.n, self.n))

    def deduplicated(self) -> "COOMatrix":
        """Sum duplicate coordinates into single entries."""
        key = self.rows * self.n + self.cols
        uniq, inv = np.unique(key, return_inverse=True)
        vals = np.zeros(len(uniq))
        np.add.at(vals, inv, self.vals)
        return COOMatrix(uniq // self.n, uniq % self.n, vals, self.n)


def random_coo(n: int, nnz: int, rng: np.random.Generator) -> COOMatrix:
    """Uniformly random coordinates (duplicates merged, so ``nnz`` is an
    upper bound on the realized count)."""
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    return COOMatrix(rows, cols, vals, n).deduplicated()


def banded_coo(n: int, bandwidth: int, rng: np.random.Generator) -> COOMatrix:
    """A stencil-style band matrix: diagonals ``-bandwidth .. bandwidth``."""
    rows_list = []
    cols_list = []
    for d in range(-bandwidth, bandwidth + 1):
        i = np.arange(max(0, -d), min(n, n - d), dtype=np.int64)
        rows_list.append(i)
        cols_list.append(i + d)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return COOMatrix(rows, cols, rng.standard_normal(len(rows)), n)


def permutation_coo(perm: np.ndarray) -> COOMatrix:
    """The permutation matrix ``P`` with ``(P x)[i] = x[perm[i]]`` — the
    Lemma VIII.1 lower-bound witness (SpMV can realize any permutation)."""
    perm = np.asarray(perm, dtype=np.int64)
    n = len(perm)
    return COOMatrix(np.arange(n, dtype=np.int64), perm, np.ones(n), n)


def graph_adjacency_coo(n: int, rng: np.random.Generator, kind: str = "gnp") -> COOMatrix:
    """Adjacency matrix of a random graph (networkx substrate).

    ``kind``: ``"gnp"`` (Erdős-Rényi with expected degree ~4) or ``"ba"``
    (Barabási-Albert power-law, the irregular-degree stress case).
    """
    import networkx as nx

    seed = int(rng.integers(0, 2**31 - 1))
    if kind == "gnp":
        g = nx.gnp_random_graph(n, min(1.0, 4.0 / max(n - 1, 1)), seed=seed)
    elif kind == "ba":
        g = nx.barabasi_albert_graph(n, min(2, max(1, n - 1)), seed=seed)
    else:
        raise ValueError(f"unknown graph kind {kind!r}")
    if g.number_of_edges() == 0:
        g.add_edge(0, min(1, n - 1))
    edges = np.asarray(g.edges(), dtype=np.int64)
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    return COOMatrix(rows, cols, np.ones(len(rows)), n).deduplicated()
