"""Planned SpMV: sort once, multiply many times.

Iterative methods (PageRank, CG, power iteration) multiply by the *same*
matrix every round.  In the Section VIII algorithm the two 2D Mergesorts are
data-independent of ``x`` — they permute the matrix entries by column and by
row — so their (large-constant) cost can be paid **once**:

* **plan** (once): sort the triples by column with the real 2D Mergesort;
  record the column segments and their leaders; run the second mergesort on
  the (row, position) keys to learn the row permutation; precompute the
  output shipping lanes.  Everything is metered on the machine like any
  other computation.
* **apply** (per vector): leaders fetch ``x_j``; one segmented broadcast;
  local products; one *direct routing* of the products along the
  precomputed row permutation; one segmented scan; ship the row tails.

Per-apply costs stay ``O(m^{3/2})`` energy (the permutation must still be
executed — that is the Lemma V.1 floor) but with the *permutation's* constant
instead of the full sort's, and the depth drops from ``O(log^3 n)`` to
``O(log n)`` (two scans and a hop).  ``bench_ablation_planned_spmv.py``
quantifies both.

Entry values stay placed along the Z-order curve between applies so the
segmented scans run with no extra re-layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.ops import ADD, Monoid
from ..core.scan import segmented_broadcast, segmented_scan
from ..core.sorting.mergesort2d import mergesort_2d
from ..machine.machine import SpatialMachine, TrackedArray
from ..machine.zorder import zorder_coords
from .coo import COOMatrix
from .spmv import SpMVLayout, _neighbour_leaders

__all__ = ["SpMVPlan", "plan_spmv"]


@dataclass
class SpMVPlan:
    """A reusable multiplication plan for one matrix (see module docstring)."""

    machine: SpatialMachine
    layout: SpMVLayout
    n: int
    #: A values at Z-order cells, ordered by (column, input order); +inf pads
    entries: TrackedArray
    cols: np.ndarray
    col_flags: np.ndarray
    leaders: np.ndarray
    #: destination coordinates routing col-sorted slot -> row-sorted slot
    route_rows: np.ndarray
    route_cols: np.ndarray
    #: row-sorted slot index each col-sorted slot routes to
    dest_slot: np.ndarray
    #: per row-sorted slot: the row index (inf for pads) and segment data
    row_ids: np.ndarray
    row_flags: np.ndarray
    tails: np.ndarray
    plan_cost_energy: int = 0
    applies: int = field(default=0)

    def apply(
        self,
        x: np.ndarray,
        combine: Monoid = ADD,
        multiply: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.multiply,
    ) -> TrackedArray:
        """Compute ``y = A x`` along the precomputed lanes."""
        machine = self.machine
        n = self.n
        ereg = self.layout.entry_region
        x_ta = machine.place_rowmajor(np.asarray(x, dtype=np.float64), self.layout.x_region)
        xr, xc = self.layout.x_region.rowmajor_coords(n)

        with machine.phase("spmv_apply"):
            return self._apply_metered(x_ta, xr, xc, ereg, combine, multiply)

    def _apply_metered(self, x_ta, xr, xc, ereg, combine, multiply) -> TrackedArray:
        machine = self.machine
        n = self.n
        # -- leaders fetch x_j (request/reply), segmented broadcast spreads it
        j = self.cols[self.leaders]
        req = machine.send(self.entries[self.leaders], xr[j], xc[j])
        reply = x_ta[j].combined_with(req, payload=x_ta.payload[j])
        back = machine.send(
            reply, self.entries.rows[self.leaders], self.entries.cols[self.leaders]
        )
        carried = np.full(len(self.entries), np.nan)
        carried[self.leaders] = back.payload
        holder = self.entries.with_payload(carried)
        holder.depth[self.leaders] = np.maximum(holder.depth[self.leaders], back.depth)
        holder.dist[self.leaders] = np.maximum(holder.dist[self.leaders], back.dist)
        spread = segmented_broadcast(
            machine, self.col_flags.astype(np.float64), holder, ereg
        )

        # -- local products, one routed hop along the planned permutation
        real = self.entries.payload != np.inf
        products = np.full(len(self.entries), float(combine.identity_scalar))
        products[real] = multiply(self.entries.payload[real], spread.payload[real])
        prod = self.entries.combined_with(spread, payload=products)
        routed = machine.send(prod, self.route_rows, self.route_cols)
        # entry order follows the route: re-sort to row-sorted slot order
        routed = routed[np.argsort(self.dest_slot, kind="stable")]

        # -- segmented scan per row; tails ship the results
        scanned = segmented_scan(
            machine, self.row_flags.astype(np.float64), routed, ereg, combine
        )
        out_src = self.tails
        i_idx = self.row_ids[out_src].astype(np.int64)
        yr, yc = self.layout.y_region.rowmajor_coords(n)
        shipped = machine.send(scanned.inclusive[out_src], yr[i_idx], yc[i_idx])

        payload = np.full(n, float(combine.identity_scalar))
        depth = np.zeros(n, dtype=np.int64)
        dist = np.zeros(n, dtype=np.int64)
        payload[i_idx] = shipped.payload
        depth[i_idx] = shipped.depth
        dist[i_idx] = shipped.dist
        self.applies += 1
        return TrackedArray(self.machine, payload, yr, yc, depth, dist)

def plan_spmv(
    machine: SpatialMachine,
    matrix: COOMatrix,
    layout: SpMVLayout | None = None,
    base_case: int = 16,
) -> SpMVPlan:
    """Build (and meter) a reusable plan for ``matrix``."""
    n, nnz = matrix.n, matrix.nnz
    if nnz == 0:
        raise ValueError("SpMV needs at least one non-zero")
    layout = layout or SpMVLayout.default(n, nnz)
    start = machine.snapshot()

    with machine.phase("spmv_plan"):
        return _plan_metered(machine, matrix, layout, base_case, start)


def _plan_metered(
    machine: SpatialMachine,
    matrix: COOMatrix,
    layout: SpMVLayout,
    base_case: int,
    start,
) -> SpMVPlan:
    n, nnz = matrix.n, matrix.nnz
    ereg = layout.entry_region
    # ---- sort triples by column (the real mergesort), land in Z-order
    triples = np.stack(
        [matrix.cols.astype(np.float64), matrix.rows.astype(np.float64), matrix.vals],
        axis=1,
    )
    pad = ereg.size - nnz
    if pad:
        triples = np.concatenate([triples, np.full((pad, 3), np.inf)], axis=0)
    placed = machine.place_rowmajor(triples, ereg)
    by_col = mergesort_2d(machine, placed, ereg, key_cols=1, base_case=base_case)
    col_flags, by_col = _neighbour_leaders(machine, by_col, col=0)
    real = by_col.payload[:, 0] != np.inf
    leaders = np.nonzero(col_flags & real)[0]

    zr, zc = zorder_coords(ereg)
    z_entries = machine.send(by_col, zr, zc)

    # ---- learn the row permutation with the second (planning-time) sort
    keys = np.stack(
        [z_entries.payload[:, 1], np.arange(len(z_entries), dtype=np.float64)],
        axis=1,
    )
    key_ta = z_entries.with_payload(keys)
    order = ereg.rowmajor_index(key_ta.rows, key_ta.cols)
    key_ta = key_ta[np.argsort(order, kind="stable")]
    by_row = mergesort_2d(machine, key_ta, ereg, key_cols=1, base_case=base_case)
    # row-sorted slot s holds the entry that was at col-slot src[s]
    src = np.rint(by_row.payload[:, 1]).astype(np.int64)
    dest_slot = np.empty(len(src), dtype=np.int64)
    dest_slot[src] = np.arange(len(src), dtype=np.int64)

    row_ids = by_row.payload[:, 0].copy()
    row_flags = np.ones(len(by_row), dtype=bool)
    row_flags[1:] = row_ids[1:] != row_ids[:-1]
    tails = np.ones(len(by_row), dtype=bool)
    tails[:-1] = row_flags[1:]
    real_rows = row_ids != np.inf
    tails = np.nonzero(tails & real_rows)[0]

    entries = z_entries.with_payload(z_entries.payload[:, 2].copy())
    cols_arr = z_entries.payload[:, 0].copy()
    cols_arr[cols_arr == np.inf] = 0
    plan = SpMVPlan(
        machine=machine,
        layout=layout,
        n=n,
        entries=entries,
        cols=cols_arr.astype(np.int64),
        col_flags=col_flags,
        leaders=leaders,
        route_rows=zr[dest_slot],
        route_cols=zc[dest_slot],
        dest_slot=dest_slot,
        row_ids=row_ids,
        row_flags=row_flags,
        tails=tails,
        plan_cost_energy=machine.stats.energy - start.energy,
    )
    return plan
