"""Sparse matrix-vector multiplication on the spatial model (Section VIII)."""

from .coo import COOMatrix, banded_coo, graph_adjacency_coo, permutation_coo, random_coo
from .planned import SpMVPlan, plan_spmv
from .spmv import SpMVLayout, spmv_spatial
from .spmv_pram import spmv_pram_simulated

__all__ = [
    "COOMatrix",
    "banded_coo",
    "graph_adjacency_coo",
    "permutation_coo",
    "random_coo",
    "SpMVPlan",
    "plan_spmv",
    "SpMVLayout",
    "spmv_spatial",
    "spmv_pram_simulated",
]
