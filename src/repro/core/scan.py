"""Energy-optimal parallel scan (paper, Section IV.C and Fig. 1).

The input array lives along the Z-order curve of a square subgrid.  A 4-ary
summation tree is laid over the grid: the node of a height-``i`` subtree is
hosted by the ``i``-th processor *in Z-order* of that subtree's quadrant, so
tree edges stay inside quadrants and the total wire length telescopes like the
Z-order curve itself.

* **up-sweep** — each node receives its four children's subtree sums (in
  Z-order) and stores both them and their running prefixes;
* **down-sweep** — each node receives the prefix ``x`` of everything before
  its subtree and forwards ``x``, ``x+s0``, ``x+s0+s1``, ``x+s0+s1+s2`` to its
  children's host processors; a leaf finally adds its own element.

Costs (Lemma IV.3): ``Θ(n)`` energy, ``O(log n)`` depth, ``O(sqrt(n))``
distance.  Works for any associative monoid; in particular the *segmented*
monoid (:func:`repro.core.ops.segmented`) turns it into a segmented scan with
identical costs, which Section VIII's SpMV uses for its row sums and
segmented broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.geometry import Region
from ..machine.machine import SpatialMachine, TrackedArray, concat_tracked
from ..machine.zorder import zorder_coords
from .ops import ADD, Monoid, pack_segmented, segmented, unpack_segmented

__all__ = ["scan", "scan_any", "segmented_scan", "ScanResult", "segmented_broadcast"]


@dataclass
class ScanResult:
    """Outputs of one scan run.

    ``inclusive[i]`` / ``exclusive[i]`` live at the i-th Z-order cell, i.e.
    exactly where input ``i`` was stored.  ``total`` is the overall sum, at
    the summation-tree root's host processor.
    """

    inclusive: TrackedArray
    exclusive: TrackedArray
    total: TrackedArray


def _levels(n: int) -> int:
    """log4(n) for n a power of 4."""
    lvl = 0
    m = n
    while m > 1:
        if m % 4:
            raise ValueError(f"scan input size must be a power of 4, got {n}")
        m //= 4
        lvl += 1
    return lvl


def scan(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    monoid: Monoid = ADD,
) -> ScanResult:
    """Prefix-``monoid`` over ``ta`` stored in Z-order on square ``region``.

    ``ta`` entry ``i`` must be located at the ``i``-th Z-order cell of
    ``region`` (use :meth:`SpatialMachine.place_zorder`).  The operator is
    combined strictly left-to-right, so non-commutative monoids (segmented
    operators) are safe.

    Fault-transparent: under a :class:`~repro.machine.FaultPlan` the scan
    outputs are bit-identical to the fault-free run; only costs inflate.
    """
    n = len(ta)
    if n == 0:
        raise ValueError("scan of empty input")
    if n != region.size:
        raise ValueError(f"scan expects one value per cell ({region.size}), got {n}")
    nlevels = _levels(n)
    zrows, zcols = zorder_coords(region)

    if n == 1:
        return ScanResult(inclusive=ta, exclusive=ta.with_payload(
            monoid.identity(1, like=ta.payload)), total=ta)

    with machine.phase("scan"):
        # ---------------- up-sweep ----------------
        # cur: one value per node of the current level, in Z-order of blocks.
        cur = ta
        child_store: list[tuple[TrackedArray, ...]] = []
        with machine.phase("up_sweep"):
            for lvl in range(1, nlevels + 1):
                nblocks = n // 4**lvl
                parents_z = np.arange(nblocks, dtype=np.int64) * 4**lvl + lvl
                prow, pcol = zrows[parents_z], zcols[parents_z]
                received = tuple(
                    machine.send(cur[q::4], prow, pcol) for q in range(4)
                )
                payload = received[0].payload
                for q in range(1, 4):
                    payload = monoid(payload, received[q].payload)
                cur = received[0].combined_with(*received[1:], payload=payload)
                child_store.append(received)
        total = cur  # single value at the root's host processor

        # ---------------- down-sweep ----------------
        ident = monoid.identity(1, like=ta.payload)
        x = TrackedArray(
            machine,
            ident,
            total.rows.copy(),
            total.cols.copy(),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        )
        with machine.phase("down_sweep"):
            for lvl in range(nlevels, 0, -1):
                nblocks = n // 4**lvl
                received = child_store[lvl - 1]
                # running prefixes t_q = x ∘ s_0 ∘ ... ∘ s_{q-1}, local at the node
                prefixes = [x]
                for q in range(1, 4):
                    prev = prefixes[-1]
                    payload = monoid(prev.payload, received[q - 1].payload)
                    prefixes.append(prev.combined_with(received[q - 1], payload=payload))
                # forward prefix q to child q's host processor
                block_starts = np.arange(nblocks, dtype=np.int64) * 4**lvl
                sent = []
                for q in range(4):
                    child_z = block_starts + q * 4 ** (lvl - 1) + (lvl - 1)
                    sent.append(machine.send(prefixes[q], zrows[child_z], zcols[child_z]))
                merged = concat_tracked(sent)
                # restore Z-order: entry for child q of block p belongs at index 4p+q
                target = np.concatenate(
                    [np.arange(q, 4 * nblocks, 4, dtype=np.int64) for q in range(4)]
                )
                x = merged[np.argsort(target, kind="stable")]

        exclusive = x
        inclusive = exclusive.combined_with(
            ta, payload=monoid(exclusive.payload, ta.payload)
        )
    return ScanResult(inclusive=inclusive, exclusive=exclusive, total=total)


def scan_any(
    machine: SpatialMachine,
    values: np.ndarray,
    monoid: Monoid = ADD,
    region: Region | None = None,
) -> np.ndarray:
    """Inclusive prefix-``monoid`` of a plain array of *any* length.

    Pads with identity elements up to the next power-of-4 square (a
    placement-time decision, costing nothing extra beyond the slightly
    larger grid), runs :func:`scan`, and returns the first ``len(values)``
    inclusive results as a NumPy array.  The convenience entry point for
    callers that do not manage placements themselves.
    """
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n == 0:
        return values.copy()
    side = 1
    while side * side < n:
        side *= 2
    region = region or Region(0, 0, side, side)
    padded = monoid.identity(region.size, like=values)
    padded[:n] = values
    ta = machine.place_zorder(padded, region)
    res = scan(machine, ta, region, monoid)
    return res.inclusive.payload[:n].copy()


def segmented_scan(
    machine: SpatialMachine,
    flags: np.ndarray,
    ta: TrackedArray,
    region: Region,
    monoid: Monoid = ADD,
) -> ScanResult:
    """Segmented scan: restart the prefix at every ``flags[i] != 0`` position.

    Runs the plain scan with the segmented operator (Section IV.C); costs are
    identical to :func:`scan`.  The returned payloads are unpacked back to
    plain values.
    """
    packed = ta.with_payload(pack_segmented(flags, ta.payload))
    res = scan(machine, packed, region, segmented(monoid))

    def unpack(t: TrackedArray) -> TrackedArray:
        _, vals = unpack_segmented(t.payload)
        return t.with_payload(vals)

    return ScanResult(
        inclusive=unpack(res.inclusive),
        exclusive=unpack(res.exclusive),
        total=unpack(res.total),
    )


def segmented_broadcast(
    machine: SpatialMachine,
    flags: np.ndarray,
    ta: TrackedArray,
    region: Region,
) -> TrackedArray:
    """Deliver each segment head's value to every member of its segment.

    Implemented as a segmented *copy* scan (the paper's Section VIII step 3:
    "a segmented broadcast implemented via a parallel scan").  Entry ``i`` of
    the result holds the value of the most recent flagged position ``<= i``.
    """

    def copy_op(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # "first" semigroup: segments carry their head's value rightward
        return a

    first = Monoid("first", copy_op, np.nan, commutative=False)
    with machine.phase("segmented_broadcast"):
        res = segmented_scan(machine, flags, ta, region, first)
    return res.inclusive
