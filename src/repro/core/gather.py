"""Scan-based gather/scatter collectives.

Section VI's selection repeatedly "gathers those elements in a square
subgrid, using a scan to assign each sampled element an index within the
subgrid and a broadcast to communicate the size of the sample".  That
pattern — compact an arbitrary masked subset of a region into a dense square
staging area — is useful well beyond selection, so it lives here as a
collective:

* :func:`gather_masked` — scan the 0/1 mask (Θ(n) energy, O(log n) depth),
  broadcast the count, move the selected elements to the staging square's
  first cells; each move depends on both the scan result and the count
  broadcast, so measured depth covers the full control chain.
* :func:`scatter_back` — the inverse: spread staged values back to recorded
  home coordinates.

Both work on Z-order-placed regions (the scan's layout).
"""

from __future__ import annotations

import numpy as np

from ..machine.geometry import Region
from ..machine.machine import SpatialMachine, TrackedArray
from .collectives import broadcast
from .ops import ADD
from .scan import scan

__all__ = ["gather_masked", "scatter_back", "staging_square"]


def staging_square(count: int, region: Region) -> Region:
    """Smallest power-of-two square at ``region``'s corner holding ``count``."""
    side = 1
    while side * side < max(count, 1):
        side *= 2
    return Region(region.row, region.col, side, side)


def gather_masked(
    machine: SpatialMachine,
    elems: TrackedArray,
    mask: np.ndarray,
    region: Region,
    staging: Region | None = None,
) -> TrackedArray:
    """Compact the ``mask``-selected entries of ``elems`` into a square.

    ``elems`` must hold one value per cell of ``region`` in Z-order entry
    order.  Returns the selected elements parked row-major on the staging
    square (default: :func:`staging_square` at the region's corner), in
    their original relative order, with scan/broadcast dependencies folded
    into their metadata.
    """
    if len(elems) != region.size:
        raise ValueError("gather_masked expects one value per cell")
    mask = np.asarray(mask, dtype=bool)
    with machine.phase("gather"):
        flags = elems.with_payload(mask.astype(np.float64))
        res = scan(machine, flags, region, ADD)
        corner_total = machine.send(
            res.total, np.array([region.row]), np.array([region.col])
        )
        total_bc = broadcast(machine, corner_total, region)
        count = int(round(float(np.asarray(res.total.payload).reshape(-1)[0])))
        if staging is None:
            staging = staging_square(count, region)
        rows, cols = staging.rowmajor_coords(count)
        picked = elems[mask]
        slot = np.rint(res.inclusive.payload[mask]).astype(np.int64) - 1
        picked = picked.depending_on(res.inclusive[mask])
        cell_idx = region.rowmajor_index(picked.rows, picked.cols)
        picked = picked.depending_on(total_bc[cell_idx])
        return machine.send(picked, rows[slot], cols[slot])


def scatter_back(
    machine: SpatialMachine,
    staged: TrackedArray,
    home_rows: np.ndarray,
    home_cols: np.ndarray,
) -> TrackedArray:
    """Return staged values to recorded home coordinates (plain messages)."""
    return machine.send(staged, home_rows, home_cols)
