"""The paper's algorithmic contributions (Sections IV-VI).

* :mod:`collectives` — multicast-free broadcast / reduce / all-reduce;
* :mod:`scan` — the energy-optimal parallel (and segmented) scan;
* :mod:`scan_baselines` — sequential and 1D binary-tree scans;
* :mod:`sorting` — bitonic, all-pairs, 2D merge(sort), mesh baseline, bounds;
* :mod:`selection` — randomized linear-energy rank selection;
* :mod:`ops` — monoids and segmented operators.
"""

from .collectives import all_reduce, broadcast, broadcast_1d, broadcast_2d, reduce, reduce_2d
from .ops import ADD, MAX, MIN, Monoid, segmented
from .scan import ScanResult, scan, scan_any, segmented_broadcast, segmented_scan
from .scan_baselines import sequential_scan, tree_scan_1d
from .selection import SelectionResult, rank_select

__all__ = [
    "all_reduce",
    "broadcast",
    "broadcast_1d",
    "broadcast_2d",
    "reduce",
    "reduce_2d",
    "ADD",
    "MAX",
    "MIN",
    "Monoid",
    "segmented",
    "ScanResult",
    "scan",
    "scan_any",
    "segmented_broadcast",
    "segmented_scan",
    "sequential_scan",
    "tree_scan_1d",
    "SelectionResult",
    "rank_select",
]
