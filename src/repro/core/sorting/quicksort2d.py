"""2D Quicksort — the Section IX "simplification" direction, implemented.

The paper's conclusion asks for a *simpler* energy-optimal sorter: the 2D
Mergesort needs the two-sorted-array multiselection machinery (Lemma V.6)
inside every merge node.  This module shows that the paper's *own*
primitives already yield one: a quadrant quicksort whose splitters come from
the Section VI randomized rank selection and whose partition is two scans.

Per square region of n elements:

1. select the rank n/4, n/2, 3n/4 elements with :func:`rank_select`
   (Θ(n) energy, O(log² n) depth each, w.h.p.);
2. broadcast the pivots; each element decides its quadrant locally, with
   pivot ties broken by Z-position via one tie-indicator scan (so splits are
   exactly n/4 even with duplicate keys);
3. one more scan assigns every element its slot inside its quadrant;
4. route all elements to their quadrant (n messages over the region
   diameter — the same geometric series as the mergesort's Lemma V.7) and
   recurse; tiny blocks finish with the All-Pairs sorter.

Costs: routing dominates — ``Θ(n^{3/2})`` energy, ``O(log³ n)`` depth,
``O(sqrt(n))`` distance, now *with high probability* (the selection is
randomized) instead of deterministically.  No multiselection, no mirrored-L
geometry, no rectangle merges: every recursion step is square.

``bench_ablation_quicksort.py`` compares the constants against the
deterministic mergesort.  Keys only (no satellite columns): ties are
interchangeable, which is what lets the partition rule stay local.
"""

from __future__ import annotations

import numpy as np

from ...machine.geometry import Region
from ...machine.machine import SpatialMachine, TrackedArray, concat_tracked
from ...machine.zorder import is_power_of_two, zorder_coords
from ..collectives import all_reduce, broadcast
from ..ops import ADD
from ..scan import scan
from ..validate import check_finite_values
from .allpairs import allpairs_sort
from .sortutil import as_sort_payload

__all__ = ["quicksort_2d"]


def quicksort_2d(
    machine: SpatialMachine,
    values: np.ndarray,
    region: Region,
    rng: np.random.Generator,
    base_case: int = 16,
) -> TrackedArray:
    """Sort ``values`` into row-major order on the square ``region``.

    ``values`` is a 1-D array with one element per cell.  Randomized
    (splitter selection); exact output for every input, w.h.p. cost bounds.
    """
    if not region.is_square or not is_power_of_two(region.width):
        raise ValueError(f"quicksort_2d needs a power-of-two square region, got {region}")
    values = np.asarray(values, dtype=np.float64)
    check_finite_values(machine, values, "quicksort_2d input")
    n = len(values)
    if n != region.size:
        raise ValueError(f"expected one value per cell ({region.size}), got {n}")
    ta = machine.place_zorder(values, region)

    with machine.phase("quicksort2d"):
        placed_parts: list[TrackedArray] = []
        rank_parts: list[np.ndarray] = []
        _rec(machine, ta, region, rng, max(4, base_case), 0, placed_parts, rank_parts)
        placed = concat_tracked(placed_parts)
        ranks = np.concatenate(rank_parts)
        rows, cols = region.rowmajor_coords(n)
        out = machine.send(placed, rows[ranks], cols[ranks])
        return out[np.argsort(ranks, kind="stable")]


def _rec(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    rng: np.random.Generator,
    base_case: int,
    offset: int,
    placed_parts: list[TrackedArray],
    rank_parts: list[np.ndarray],
) -> None:
    """``ta`` holds one value per cell of ``region`` in Z-order entry order."""
    n = len(ta)
    if n <= base_case:
        out = allpairs_sort(
            machine,
            ta.with_payload(as_sort_payload(ta.payload)),
            out_region=region,
            key_cols=1,
            workspace=Region(region.row, region.col, 1, 1),
        )
        placed_parts.append(out.with_payload(out.payload[:, 0]))
        rank_parts.append(offset + np.arange(n, dtype=np.int64))
        return

    quarter = n // 4
    vals = ta.payload

    # deferred import: selection itself sorts its samples (cycle breaker)
    from ..selection import rank_select

    # ---- 1: three splitters via randomized rank selection (Section VI)
    pivots = []
    sel_depth = sel_dist = 0
    for q in (1, 2, 3):
        sel = rank_select(machine, ta, region, q * quarter, rng)
        pivots.append(sel.value)
        sel_depth = max(sel_depth, sel.depth)
        sel_dist = max(sel_dist, sel.dist)

    # ---- 2: broadcast the pivots; elements classify themselves locally
    piv_ta = machine.place(np.array([1.0]), [region.row], [region.col])
    piv_ta = piv_ta.depending_on_meta(sel_depth, sel_dist)
    blanket = broadcast(machine, piv_ta, region)
    ta = ta.depending_on(blanket[region.rowmajor_index(ta.rows, ta.cols)])

    # tie-indicator scan: Z-position rank among elements tied with each pivot
    tie_cols = np.stack([(vals == p).astype(np.float64) for p in pivots], axis=1)
    tie_scan = scan(machine, ta.with_payload(tie_cols), region, ADD)
    tie_rank = tie_scan.inclusive.payload  # 1-based among ties, in Z order

    # global strictly-below counts per pivot: an all-reduce, so every element
    # learns how many tied elements each cut still needs
    less_cols = np.stack([(vals < p).astype(np.float64) for p in pivots], axis=1)
    totals = all_reduce(machine, ta.with_payload(less_cols), region, ADD)
    counts_less = np.rint(totals.payload[0]).astype(np.int64)
    ta = ta.depending_on(totals[region.rowmajor_index(ta.rows, ta.cols)])
    in_first = np.zeros((n, 3), dtype=bool)
    for i, p in enumerate(pivots):
        need = i + 1
        k_i = need * quarter
        need_ties = k_i - counts_less[i]
        in_first[:, i] = (vals < p) | ((vals == p) & (tie_rank[:, i] <= need_ties))
    quadrant = 3 - in_first.sum(axis=1)

    # ---- 3: slot inside the quadrant via one more scan
    slot_cols = np.stack(
        [(quadrant == q).astype(np.float64) for q in range(4)], axis=1
    )
    slot_scan = scan(machine, ta.with_payload(slot_cols), region, ADD)
    slot = (
        slot_scan.inclusive.payload[np.arange(n), quadrant].astype(np.int64) - 1
    )
    ta = ta.depending_on(tie_scan.inclusive).depending_on(slot_scan.inclusive)

    # ---- 4: route to the quadrants (Z-order cells) and recurse
    quads = region.quadrants()
    for q in range(4):
        mask = quadrant == q
        sub = quads[q]
        zr, zc = zorder_coords(sub)
        part = machine.send(ta[mask], zr[slot[mask]], zc[slot[mask]])
        part = part[np.argsort(slot[mask], kind="stable")]
        _rec(
            machine,
            part,
            sub,
            rng,
            base_case,
            offset + q * quarter,
            placed_parts,
            rank_parts,
        )
