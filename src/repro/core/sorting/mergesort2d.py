"""Energy-optimal 2D Mergesort (paper, Section V.C, Theorem V.8).

Recursively sort the four quadrants of the square subgrid, merge the two top
quadrants (into the wide top half), merge the two bottom quadrants, then
merge the two halves — every merge being the rank-splitting 2D merge of
Lemma V.7.  Costs on a ``sqrt(n) x sqrt(n)`` grid:

* energy ``O(n^{3/2})`` — optimal by the permutation lower bound
  (Corollary V.2);
* depth ``O(log^3 n)``;
* distance ``O(sqrt(n))``.

Tiny blocks are finished with the ``O(log n)``-depth All-Pairs Sort — the
auxiliary sorter the paper pairs with the mergesort — whose
``O(base^{5/2})`` energy is a constant per block.
"""

from __future__ import annotations

import numpy as np

from ...machine.geometry import Region
from ...machine.machine import SpatialMachine, TrackedArray
from ...machine.zorder import is_power_of_two
from ..validate import check_finite_values
from .allpairs import allpairs_sort
from .merge2d import merge_sorted_2d

__all__ = ["mergesort_2d", "sort_values", "sort_any"]


def mergesort_2d(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    key_cols: int = 1,
    base_case: int = 16,
) -> TrackedArray:
    """Sort ``ta`` (one value per cell of square ``region``, row-major entry
    order) into row-major order on the same region.

    ``region`` must be a power-of-two square.  The payload is ``(n, k)`` with
    ``key_cols`` leading key columns compared lexicographically; ties keep a
    deterministic order via the merge's A-before-B rule and the base sorter's
    position tie-break.
    """
    if not region.is_square or not is_power_of_two(region.width):
        raise ValueError(f"mergesort_2d needs a power-of-two square region, got {region}")
    n = len(ta)
    if n != region.size:
        raise ValueError(f"expected one value per cell ({region.size}), got {n}")
    if ta.payload.ndim != 2:
        raise ValueError("sort payloads are (n, k) arrays; see sortutil.as_sort_payload")
    with machine.phase("mergesort2d"):
        return _sort_rec(machine, ta, region, key_cols, max(4, base_case))


def _sort_rec(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    key_cols: int,
    base_case: int,
) -> TrackedArray:
    n = len(ta)
    if n <= base_case or region.width <= 2:
        return allpairs_sort(
            machine,
            ta,
            out_region=region,
            key_cols=key_cols,
            workspace=Region(region.row, region.col, 1, 1),
        )

    tl, tr, bl, br = region.quadrants()
    # entries are row-major over the full region; pick out each quadrant
    idx = np.arange(n, dtype=np.int64)
    r, c = idx // region.width, idx % region.width
    h2, w2 = region.height // 2, region.width // 2
    quads = {
        "tl": (r < h2) & (c < w2),
        "tr": (r < h2) & (c >= w2),
        "bl": (r >= h2) & (c < w2),
        "br": (r >= h2) & (c >= w2),
    }
    sorted_q = {
        name: _sort_rec(machine, ta[mask], reg, key_cols, base_case)
        for (name, mask), reg in zip(quads.items(), (tl, tr, bl, br))
    }

    top_half = Region(region.row, region.col, h2, region.width)
    bottom_half = Region(region.row + h2, region.col, h2, region.width)
    top = merge_sorted_2d(
        machine, sorted_q["tl"], sorted_q["tr"], top_half, key_cols, base_case
    )
    bottom = merge_sorted_2d(
        machine, sorted_q["bl"], sorted_q["br"], bottom_half, key_cols, base_case
    )
    return merge_sorted_2d(machine, top, bottom, region, key_cols, base_case)


def sort_values(
    machine: SpatialMachine,
    values: np.ndarray,
    region: Region,
    base_case: int = 16,
) -> TrackedArray:
    """Convenience wrapper: place a 1-D value array row-major on ``region``
    and 2D-mergesort it.  Returns the sorted tracked array (payload (n, 1)).

    Fault-transparent: under a :class:`~repro.machine.FaultPlan` the sorted
    output is bit-identical to the fault-free run; only costs inflate."""
    values = np.asarray(values, dtype=np.float64)
    check_finite_values(machine, values, "sort_values input")
    ta = machine.place_rowmajor(values[:, None], region)
    return mergesort_2d(machine, ta, region, key_cols=1, base_case=base_case)


def sort_any(
    machine: SpatialMachine,
    values: np.ndarray,
    base_case: int = 16,
) -> np.ndarray:
    """Sort a plain array of *any* length; returns a NumPy array.

    Pads with +inf sentinels up to the next power-of-4 square at placement
    time, runs :func:`mergesort_2d`, and strips the padding — the
    convenience entry point for callers that do not manage placements.
    """
    values = np.asarray(values, dtype=np.float64)
    check_finite_values(machine, values, "sort_any input")
    n = len(values)
    if n == 0:
        return values.copy()
    side = 1
    while side * side < n:
        side *= 2
    region = Region(0, 0, side, side)
    padded = np.full(region.size, np.inf)
    padded[:n] = values
    out = sort_values(machine, padded, region, base_case=base_case)
    return out.payload[:n, 0].copy()
