"""Shared helpers for the sorting algorithms.

All sorters operate on 2-D payloads of shape ``(n, k)`` compared
lexicographically over the first ``key_cols`` columns; remaining columns are
satellite data that travel with their element.  To make ranks well-defined
under duplicate keys, the public entry points append a unique tie-break
column (the element's input position) to the keys, so every comparison is
strict — this realizes the "(value, index)" total order the paper's sample
ranking implicitly relies on.
"""

from __future__ import annotations

import numpy as np

from ...machine.machine import TrackedArray

__all__ = [
    "lex_less",
    "lex_minimum",
    "lex_maximum",
    "with_tiebreak",
    "strip_tiebreak",
    "as_sort_payload",
]


def lex_less(a: np.ndarray, b: np.ndarray, key_cols: int) -> np.ndarray:
    """Elementwise ``a < b`` under lexicographic order of the key columns."""
    less = np.zeros(len(a), dtype=bool)
    tied = np.ones(len(a), dtype=bool)
    for c in range(key_cols):
        ac, bc = a[:, c], b[:, c]
        less |= tied & (ac < bc)
        tied &= ac == bc
    return less


def lex_minimum(a: np.ndarray, b: np.ndarray, key_cols: int) -> np.ndarray:
    take_a = lex_less(a, b, key_cols)
    return np.where(take_a[:, None], a, b)


def lex_maximum(a: np.ndarray, b: np.ndarray, key_cols: int) -> np.ndarray:
    take_a = lex_less(a, b, key_cols)
    return np.where(take_a[:, None], b, a)


def as_sort_payload(values: np.ndarray) -> np.ndarray:
    """Lift a 1-D value array to the (n, 1) sort payload format."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        return values[:, None]
    return values


def with_tiebreak(ta: TrackedArray, key_cols: int) -> tuple[TrackedArray, int]:
    """Insert a unique tie-break column after the key columns.

    Returns the widened array and the new key column count.  The tie-break is
    the element's position in the input enumeration, so the resulting order is
    total and the sort is deterministic.
    """
    payload = ta.payload
    if payload.ndim != 2:
        payload = as_sort_payload(payload)
    n, k = payload.shape
    widened = np.empty((n, k + 1), dtype=np.float64)
    widened[:, :key_cols] = payload[:, :key_cols]
    widened[:, key_cols] = np.arange(n, dtype=np.float64)
    widened[:, key_cols + 1 :] = payload[:, key_cols:]
    return ta.with_payload(widened), key_cols + 1


def strip_tiebreak(ta: TrackedArray, key_cols_with_tb: int) -> TrackedArray:
    """Remove the column inserted by :func:`with_tiebreak`."""
    payload = ta.payload
    tb = key_cols_with_tb - 1
    if tb + 1 == payload.shape[1]:
        kept = payload[:, :tb].copy()
    else:
        kept = np.concatenate([payload[:, :tb], payload[:, tb + 1 :]], axis=1)
    return ta.with_payload(kept)
