"""All-Pairs Sort (paper, Section V.C(a), Lemma V.5).

A brute-force ``O(log n)``-depth sorter used on *small* inputs (the samples
of the rank-selection subroutines): the computation "explodes" onto an
``n x n`` processor grid divided into ``n`` subgrids ``Γ_i`` of ``√n x √n``
processors each.

1. scatter element ``A_i`` to the first processor of ``Γ_i``;
2. broadcast ``A_i`` inside ``Γ_i``;
3. replicate the whole array ``A`` into every ``Γ_i`` with the recursive
   quadrant pattern of the 2D broadcast, treating subgrids as units;
4. every processor compares its two elements (free, local);
5. reduce the comparison bits inside each ``Γ_i`` — the result is the rank of
   ``A_i`` — and route each element straight to its ranked output cell.

Costs: ``O(n^{5/2})`` energy, ``O(log n)`` depth, ``O(n)`` distance — cheap
when ``n`` is a square-root-sized sample, hopeless as a general sorter (which
is exactly how Sections V-VI use it).
"""

from __future__ import annotations


import numpy as np

from ...machine.geometry import Region
from ...machine.machine import SpatialMachine, TrackedArray, concat_tracked
from ..collectives import broadcast_2d, reduce_2d
from ..ops import ADD
from .sortutil import lex_less, strip_tiebreak, with_tiebreak

__all__ = ["allpairs_sort", "allpairs_rank"]


def _subgrid_side(n: int) -> int:
    """Power-of-two side of each Γ_i (and of the subgrid lattice)."""
    side = 1
    while side * side < n:
        side *= 2
    return side


def allpairs_rank(
    machine: SpatialMachine,
    ta: TrackedArray,
    key_cols: int,
    workspace: Region | None = None,
) -> tuple[TrackedArray, np.ndarray]:
    """Rank every element against every other on the exploded grid.

    Returns the elements (one per subgrid corner, input order preserved) with
    the comparison reduction folded into their metadata, plus the integer
    ranks.  Keys must already be strict (use :func:`with_tiebreak`).
    """
    n = len(ta)
    s = _subgrid_side(n)
    if workspace is None:
        workspace = Region(int(ta.rows.min()), int(ta.cols.min()), s * s, s * s)
    R, C = workspace.row, workspace.col

    # -- 1. scatter A_i to the corner of Γ_i (subgrids in row-major order)
    i = np.arange(n, dtype=np.int64)
    corner_rows = R + (i // s) * s
    corner_cols = C + (i % s) * s
    pivots = machine.send(ta, corner_rows, corner_cols)

    # -- 2. broadcast A_i within Γ_i (all subgrids in lockstep); trim to the
    #       first n cells of each subgrid, which is all the copies will fill.
    blanket = broadcast_2d(machine, pivots, Region(R, C, s, s))
    # blanket entries: for each expansion they stay grouped by subgrid only
    # implicitly; regroup by (subgrid, local row-major cell) for the compare.
    local_r = (blanket.rows - R) % s
    local_c = (blanket.cols - C) % s
    sub_id = ((blanket.rows - R) // s) * s + (blanket.cols - C) // s
    cell_id = local_r * s + local_c
    order = np.lexsort((cell_id, sub_id))
    blanket = blanket[order]
    keep = (cell_id[order] < n) & (sub_id[order] < n)
    blanket = blanket[keep]  # (n used subgrids) x (n used cells)

    # -- 3. replicate the array into every subgrid: copy j of A sits at the
    #       j-th row-major cell of each Γ_i, spread by recursive quadrupling.
    home_rows = R + i // s
    home_cols = C + i % s
    copies = machine.send(ta, home_rows, home_cols)  # A compacted into Γ_0
    lat = s
    while lat > 1:
        half = lat // 2
        parts = [copies]
        for dr, dc in ((0, half), (half, 0), (half, half)):
            parts.append(
                machine.send(copies, copies.rows + dr * s, copies.cols + dc * s)
            )
        copies = concat_tracked(parts)
        lat = half
    c_sub = ((copies.rows - R) // s) * s + (copies.cols - C) // s
    c_cell = ((copies.rows - R) % s) * s + (copies.cols - C) % s
    c_order = np.lexsort((c_cell, c_sub))
    copies = copies[c_order]
    copies = copies[c_sub[c_order] < n]  # drop replicas in unused subgrids

    if len(copies) != len(blanket):
        raise AssertionError("replication/broadcast cell mismatch")

    # -- 4. local comparison: bit = [A_j < A_i] at cell j of subgrid i
    bits = blanket.combined_with(
        copies,
        payload=lex_less(copies.payload, blanket.payload, key_cols).astype(np.float64),
    )

    # -- 5. per-subgrid reduce of the bits = rank of A_i; subgrids not full
    #       square (n < s*s cells used) are padded with zero-contribution
    #       bits at the unused cells (free placement, identity values).
    full = _pad_subgrids(machine, bits, R, C, s, n)
    ranks_ta = reduce_2d(machine, full, Region(R, C, s, s), ADD)
    ranks = np.rint(ranks_ta.payload[:, 0] if ranks_ta.payload.ndim > 1 else ranks_ta.payload).astype(np.int64)

    # fold the reduction's metadata into the element sitting at the corner
    ranked = pivots.combined_with(ranks_ta.with_payload(pivots.payload), payload=pivots.payload)
    return ranked, ranks


def _pad_subgrids(
    machine: SpatialMachine, bits: TrackedArray, R: int, C: int, s: int, n: int
) -> TrackedArray:
    """Fill unused cells of each used subgrid with zero bits (local, free)."""
    per = s * s
    if per == n:
        return bits
    pads: list[TrackedArray] = [bits]
    pad_cell = np.arange(n, per, dtype=np.int64)
    for sub in range(n):
        rows = R + (sub // s) * s + pad_cell // s
        cols = C + (sub % s) * s + pad_cell % s
        payload = np.zeros((len(pad_cell),) + bits.payload.shape[1:])
        pads.append(machine.place(payload, rows, cols))
    out = concat_tracked(pads)
    sub_id = ((out.rows - R) // s) * s + (out.cols - C) // s
    cell_id = ((out.rows - R) % s) * s + (out.cols - C) % s
    order = np.lexsort((cell_id, sub_id))
    return out[order]


def allpairs_sort(
    machine: SpatialMachine,
    ta: TrackedArray,
    out_region: Region | None = None,
    key_cols: int = 1,
    workspace: Region | None = None,
) -> TrackedArray:
    """Sort ``ta`` (any placement) into row-major order on ``out_region``.

    ``out_region`` defaults to the smallest square at the input's corner.
    Returns entries ordered by rank, entry ``r`` at the r-th row-major cell.
    """
    n = len(ta)
    if ta.payload.ndim != 2:
        raise ValueError("sort payloads are (n, k) arrays")
    with machine.phase("allpairs"):
        keyed, kc = with_tiebreak(ta, key_cols)
        if out_region is None:
            side = _subgrid_side(n)
            out_region = Region(int(ta.rows.min()), int(ta.cols.min()), side, side)
        if n == 1:
            out = machine.send(keyed, *out_region.rowmajor_coords(1))
            return strip_tiebreak(out, kc)
        ranked, ranks = allpairs_rank(machine, keyed, kc, workspace)
        out_rows, out_cols = out_region.rowmajor_coords(n)
        # element with rank r goes to output cell r
        placed = machine.send(ranked, out_rows[ranks], out_cols[ranks])
        order = np.argsort(ranks, kind="stable")
        return strip_tiebreak(placed[order], kc)
