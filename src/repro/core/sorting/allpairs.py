"""All-Pairs Sort (paper, Section V.C(a), Lemma V.5).

A brute-force ``O(log n)``-depth sorter used on *small* inputs (the samples
of the rank-selection subroutines): the computation "explodes" onto an
``n x n`` processor grid divided into ``n`` subgrids ``Γ_i`` of ``√n x √n``
processors each.

1. scatter element ``A_i`` to the first processor of ``Γ_i``;
2. broadcast ``A_i`` inside ``Γ_i``;
3. replicate the whole array ``A`` into every ``Γ_i`` with the recursive
   quadrant pattern of the 2D broadcast, treating subgrids as units;
4. every processor compares its two elements (free, local);
5. reduce the comparison bits inside each ``Γ_i`` — the result is the rank of
   ``A_i`` — and route each element straight to its ranked output cell.

Costs: ``O(n^{5/2})`` energy, ``O(log n)`` depth, ``O(n)`` distance — cheap
when ``n`` is a square-root-sized sample, hopeless as a general sorter (which
is exactly how Sections V-VI use it).

Two implementations share the rank entry point.  The *reference* body (any
non-fast machine, and fast machines under strict mode, tracer/profiler, or a
fault plan) runs the operation-by-operation construction: per-call sends, the
explicit quadrupling loop, lexsort regrouping, padding, and the generic 2D
reduce.  The *fast* body exploits that every index permutation is fixed by
the exploded-grid geometry: it charges the identical counters in closed form
and composes the metadata from precomputed quadrant offset tables, never
materializing the ``n^2`` intermediate placements.  ``repro conformance``
asserts the two produce bit-identical ranks and exactly equal cost books.
"""

from __future__ import annotations


import numpy as np

from ...machine.fastpath import (
    quad_broadcast_charge,
    quad_offsets,
    quad_reduce_charge,
    quad_reduce_offsets,
)
from ...machine.geometry import Region
from ...machine.machine import SpatialMachine, TrackedArray, _tracked, concat_tracked
from ...machine.zorder import zorder_encode
from ..collectives import broadcast_2d, reduce_2d
from ..ops import ADD
from .sortutil import lex_less, strip_tiebreak, with_tiebreak

__all__ = ["allpairs_sort", "allpairs_rank"]


def _subgrid_side(n: int) -> int:
    """Power-of-two side of each Γ_i (and of the subgrid lattice)."""
    side = 1
    while side * side < n:
        side *= 2
    return side


# every index permutation used by the fast body depends only on (s, n) — the
# scatter corners, replication orders and pad cells are fixed by the
# exploded-grid geometry, not the data — so each is computed once and reused
# (coordinates are cached relative to the workspace corner)
_LAYOUT_CACHE: dict[tuple[int, int], dict[str, np.ndarray]] = {}


def _layout(s: int, n: int) -> dict[str, np.ndarray]:
    lay = _LAYOUT_CACHE.get((s, n))
    if lay is None:
        i = np.arange(n, dtype=np.int64)
        lay = {
            "corner_r": (i // s) * s,
            "corner_c": (i % s) * s,
            "home_r": i // s,
            "home_c": i % s,
        }
        _LAYOUT_CACHE[(s, n)] = lay
    return lay


def allpairs_rank(
    machine: SpatialMachine,
    ta: TrackedArray,
    key_cols: int,
    workspace: Region | None = None,
) -> tuple[TrackedArray, np.ndarray]:
    """Rank every element against every other on the exploded grid.

    Returns the elements (one per subgrid corner, input order preserved) with
    the comparison reduction folded into their metadata, plus the integer
    ranks.  Keys must already be strict (use :func:`with_tiebreak`).
    """
    n = len(ta)
    s = _subgrid_side(n)
    if workspace is None:
        workspace = Region(int(ta.rows.min()), int(ta.cols.min()), s * s, s * s)
    R, C = workspace.row, workspace.col
    plan = machine.faults
    if (
        machine.fast
        and not machine.strict
        and machine.tracer is None
        and machine.profiler is None
        and (plan is None or not plan.injects_faults)
    ):
        return _allpairs_rank_fast(machine, ta, key_cols, R, C, s, n)
    return _allpairs_rank_reference(machine, ta, key_cols, R, C, s, n)


def _allpairs_rank_fast(
    machine: SpatialMachine,
    ta: TrackedArray,
    key_cols: int,
    R: int,
    C: int,
    s: int,
    n: int,
) -> tuple[TrackedArray, np.ndarray]:
    """Closed-form rank: same counters and ranks, no ``n^2`` placements.

    After the reference regroups its replicas by (subgrid, cell), the entry
    at cell ``j`` of ``Γ_i`` holds the pair ``(A_i, A_j)``: the blanket copy
    of ``A_i`` arrived via the quadrant whose offset lands on cell ``j``, and
    the replicated copy of ``A_j`` via the quadrant landing on subgrid ``i``.
    Every metadata field is therefore an offset-table update of the two send
    outputs, and the per-block maxima of the reduce collapse to O(n) vector
    maxima.  The ranks themselves need no arithmetic at all: summing strict
    0/1 comparison bits is exact in float64, so the reduce output *is* the
    element's lexicographic rank — one ``np.lexsort`` of the (strict) keys.
    """
    lay = _layout(s, n)
    per = s * s

    # -- 1. scatter A_i to the corner of Γ_i; charge its blanket broadcast
    pivots = machine.send(ta, R + lay["corner_r"], C + lay["corner_c"])
    pd_max, ps_max = int(pivots.depth.max()), int(pivots.dist.max())
    quad_broadcast_charge(machine, n, s, 1, pd_max, ps_max)

    # -- 3. compact A into Γ_0; charge its subgrid-lattice replication
    copies0 = machine.send(ta, R + lay["home_r"], C + lay["home_c"])
    cd_max, cs_max = int(copies0.depth.max()), int(copies0.dist.max())
    quad_broadcast_charge(machine, n, s, s, cd_max, cs_max)

    doff = lay.get("doff")
    if doff is None:
        row_off, col_off, depth_off, dist_off = quad_offsets(s)
        # quadrant index landing on local row-major cell 0..n-1
        perm = np.argsort(row_off * s + col_off, kind="stable")[:n]
        doff = depth_off[perm]
        dstoff = dist_off[perm]
        lay["doff"], lay["dstoff"] = doff, dstoff
        lay["dstoff_s"] = dstoff * s
        lay["doff_max"] = int(doff.max())
        lay["dstoff_max"] = int(dstoff.max())
        # reduce offsets re-indexed by local row-major cell (tables are
        # Z-indexed); pads occupy cells n..per-1 with zero metadata
        rdo_z, rso_z, _ = quad_reduce_offsets(s)
        cells = np.arange(per, dtype=np.int64)
        z = zorder_encode(cells // s, cells % s)
        rdo_cell, rso_cell = rdo_z[z], rso_z[z]
        lay["c_rdo"], lay["c_rso"] = rdo_cell[:n].copy(), rso_cell[:n].copy()
        lay["a_dep"] = int((doff + rdo_cell[:n]).max())
        lay["a_dst"] = int((dstoff + rso_cell[:n]).max())
        lay["pad_dep"] = int(rdo_cell[n:].max()) if per != n else 0
        lay["pad_dst"] = int(rso_cell[n:].max()) if per != n else 0
    dstoff = lay["dstoff"]

    # -- 2-4. the compare at cell j of Γ_i sees metadata
    #         max(pivot[i] + off[j], copy[j] + off[i]); observe its maxima
    machine.observe_maxima(
        max(pd_max, cd_max) + lay["doff_max"],
        max(ps_max + lay["dstoff_max"], cs_max + s * lay["dstoff_max"]),
    )

    # -- 5. per-block reduce metadata: max over cells j of (bit meta + reduce
    #       carry offset), split over the two bit terms + the zero-meta pads
    quad_reduce_charge(machine, n, s)
    rdep = np.maximum(pivots.depth + lay["a_dep"], doff + int((copies0.depth + lay["c_rdo"]).max()))
    rdst = np.maximum(pivots.dist + lay["a_dst"], lay["dstoff_s"] + int((copies0.dist + lay["c_rso"]).max()))
    if per != n:
        np.maximum(rdep, rdep.dtype.type(lay["pad_dep"]), out=rdep)
        np.maximum(rdst, rdst.dtype.type(lay["pad_dst"]), out=rdst)
    machine.observe(rdep, rdst)

    # rank = number of strictly smaller rows = position in the sorted order
    P = ta.payload
    order = np.lexsort(tuple(P[:, c] for c in range(key_cols - 1, -1, -1)))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64)

    # fold the reduction's metadata into the element sitting at the corner
    out_dep = np.maximum(pivots.depth, rdep)
    out_dst = np.maximum(pivots.dist, rdst)
    machine.observe(out_dep, out_dst)
    ranked = _tracked(machine, pivots.payload, pivots.rows, pivots.cols, out_dep, out_dst)
    return ranked, ranks


def _allpairs_rank_reference(
    machine: SpatialMachine,
    ta: TrackedArray,
    key_cols: int,
    R: int,
    C: int,
    s: int,
    n: int,
) -> tuple[TrackedArray, np.ndarray]:
    """The per-operation construction (conformance oracle for the fast body)."""
    # -- 1. scatter A_i to the corner of Γ_i (subgrids in row-major order)
    i = np.arange(n, dtype=np.int64)
    corner_rows = R + (i // s) * s
    corner_cols = C + (i % s) * s
    pivots = machine.send(ta, corner_rows, corner_cols)

    # -- 2. broadcast A_i within Γ_i (all subgrids in lockstep); trim to the
    #       first n cells of each subgrid, which is all the copies will fill.
    blanket = broadcast_2d(machine, pivots, Region(R, C, s, s))
    # blanket entries: for each expansion they stay grouped by subgrid only
    # implicitly; regroup by (subgrid, local row-major cell) for the compare.
    local_r = (blanket.rows - R) % s
    local_c = (blanket.cols - C) % s
    sub_id = ((blanket.rows - R) // s) * s + (blanket.cols - C) // s
    cell_id = local_r * s + local_c
    order = np.lexsort((cell_id, sub_id))
    blanket = blanket[order]
    keep = (cell_id[order] < n) & (sub_id[order] < n)
    blanket = blanket[keep]  # (n used subgrids) x (n used cells)

    # -- 3. replicate the array into every subgrid: copy j of A sits at the
    #       j-th row-major cell of each Γ_i, spread by recursive quadrupling.
    home_rows = R + i // s
    home_cols = C + i % s
    copies = machine.send(ta, home_rows, home_cols)  # A compacted into Γ_0
    lat = s
    while lat > 1:
        half = lat // 2
        parts = [copies]
        for dr, dc in ((0, half), (half, 0), (half, half)):
            parts.append(
                machine.send(copies, copies.rows + dr * s, copies.cols + dc * s)
            )
        copies = concat_tracked(parts)
        lat = half
    c_sub = ((copies.rows - R) // s) * s + (copies.cols - C) // s
    c_cell = ((copies.rows - R) % s) * s + (copies.cols - C) % s
    c_order = np.lexsort((c_cell, c_sub))
    copies = copies[c_order]
    copies = copies[c_sub[c_order] < n]  # drop replicas in unused subgrids

    if len(copies) != len(blanket):
        raise AssertionError("replication/broadcast cell mismatch")

    # -- 4. local comparison: bit = [A_j < A_i] at cell j of subgrid i
    bits = blanket.combined_with(
        copies,
        payload=lex_less(copies.payload, blanket.payload, key_cols).astype(np.float64),
    )

    # -- 5. per-subgrid reduce of the bits = rank of A_i; subgrids not full
    #       square (n < s*s cells used) are padded with zero-contribution
    #       bits at the unused cells (free placement, identity values).
    full = _pad_subgrids(machine, bits, R, C, s, n)
    ranks_ta = reduce_2d(machine, full, Region(R, C, s, s), ADD)
    ranks = np.rint(
        ranks_ta.payload[:, 0] if ranks_ta.payload.ndim > 1 else ranks_ta.payload
    ).astype(np.int64)

    # fold the reduction's metadata into the element sitting at the corner
    ranked = pivots.combined_with(ranks_ta.with_payload(pivots.payload), payload=pivots.payload)
    return ranked, ranks


def _pad_subgrids(
    machine: SpatialMachine, bits: TrackedArray, R: int, C: int, s: int, n: int
) -> TrackedArray:
    """Fill unused cells of each used subgrid with zero bits (local, free)."""
    per = s * s
    if per == n:
        return bits
    pads: list[TrackedArray] = [bits]
    pad_cell = np.arange(n, per, dtype=np.int64)
    for sub in range(n):
        rows = R + (sub // s) * s + pad_cell // s
        cols = C + (sub % s) * s + pad_cell % s
        payload = np.zeros((len(pad_cell),) + bits.payload.shape[1:])
        pads.append(machine.place(payload, rows, cols))
    out = concat_tracked(pads)
    sub_id = ((out.rows - R) // s) * s + (out.cols - C) // s
    cell_id = ((out.rows - R) % s) * s + (out.cols - C) % s
    order = np.lexsort((cell_id, sub_id))
    return out[order]


def allpairs_sort(
    machine: SpatialMachine,
    ta: TrackedArray,
    out_region: Region | None = None,
    key_cols: int = 1,
    workspace: Region | None = None,
) -> TrackedArray:
    """Sort ``ta`` (any placement) into row-major order on ``out_region``.

    ``out_region`` defaults to the smallest square at the input's corner.
    Returns entries ordered by rank, entry ``r`` at the r-th row-major cell.
    """
    n = len(ta)
    if ta.payload.ndim != 2:
        raise ValueError("sort payloads are (n, k) arrays")
    with machine.phase("allpairs"):
        keyed, kc = with_tiebreak(ta, key_cols)
        if out_region is None:
            side = _subgrid_side(n)
            out_region = Region(int(ta.rows.min()), int(ta.cols.min()), side, side)
        if n == 1:
            out = machine.send(keyed, *out_region.rowmajor_coords(1))
            return strip_tiebreak(out, kc)
        ranked, ranks = allpairs_rank(machine, keyed, kc, workspace)
        out_rows, out_cols = out_region.rowmajor_coords(n)
        # element with rank r goes to output cell r
        placed = machine.send(ranked, out_rows[ranks], out_cols[ranks])
        order = np.argsort(ranks, kind="stable")
        return strip_tiebreak(placed[order], kc)
