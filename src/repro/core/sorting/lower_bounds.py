"""Permutation energy lower bound (paper, Section V.A, Lemma V.1).

The witness is the *reversal* permutation of the row-major layout: every
element in the first ``h/3`` rows must reach one of the last ``h/3`` rows,
which costs at least ``h/3`` energy each, for at least
``(h w / 3) * (h / 3) = h^2 w / 9`` energy overall (w.l.o.g. ``h >= w``).
Since sorting realizes arbitrary permutations (sort by target position),
``Ω(n^{3/2})`` energy is a lower bound for sorting (Corollary V.2) — making
the 2D Mergesort energy-optimal.

This module computes the exact displacement sum of the reversal (a sharper
per-instance bound: no routing can beat the sum of Manhattan displacements),
the paper's closed-form bound, and executes the optimal direct routing so the
benches can show measured-sort-energy / lower-bound staying bounded.
"""

from __future__ import annotations

import numpy as np

from ...machine.geometry import Region, manhattan_arrays
from ...machine.machine import SpatialMachine, TrackedArray

__all__ = [
    "reversal_permutation",
    "displacement_lower_bound",
    "paper_lower_bound",
    "route_permutation",
]


def reversal_permutation(n: int) -> np.ndarray:
    """The permutation sending row-major position ``i`` to ``n - 1 - i``."""
    return np.arange(n - 1, -1, -1, dtype=np.int64)


def displacement_lower_bound(region: Region, perm: np.ndarray) -> int:
    """Exact energy floor for realizing ``perm`` on ``region``.

    Any routing must move element ``i`` from row-major cell ``i`` to cell
    ``perm[i]``; the Manhattan displacement sum is therefore unbeatable.
    """
    n = len(perm)
    rows, cols = region.rowmajor_coords(n)
    return int(manhattan_arrays(rows, cols, rows[perm], cols[perm]).sum())


def paper_lower_bound(h: int, w: int) -> float:
    """Lemma V.1's closed form ``max(w,h)^2 * min(w,h) / 9``."""
    return max(w, h) ** 2 * min(w, h) / 9


def route_permutation(
    machine: SpatialMachine, ta: TrackedArray, region: Region, perm: np.ndarray
) -> TrackedArray:
    """Apply ``perm`` by direct point-to-point routing (energy-optimal).

    Entry ``i`` (at row-major cell ``i``) moves to cell ``perm[i]``; the
    measured energy equals :func:`displacement_lower_bound` exactly, which
    tests use to pin the simulator's accounting.
    """
    rows, cols = region.rowmajor_coords(len(ta))
    return machine.send(ta, rows[perm], cols[perm])
