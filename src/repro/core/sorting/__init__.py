"""Sorting on the Spatial Computer Model (paper, Section V).

* :mod:`bitonic` — the sorting-network baseline (Lemmas V.3-V.4, Fig. 2);
* :mod:`allpairs` — the O(log n)-depth brute-force auxiliary sorter (Lemma V.5);
* :mod:`two_sorted_select` — multiselection in two sorted arrays (Lemma V.6);
* :mod:`merge2d` — rank-splitting 2D merge (Lemma V.7, Fig. 3);
* :mod:`mergesort2d` — the energy-optimal sorter (Theorem V.8);
* :mod:`quicksort2d` — the simplified selection-based sorter (Section IX direction);
* :mod:`mesh_sort` — the Θ(sqrt(n))-depth mesh-model baseline (Section II.B);
* :mod:`lower_bounds` — permutation energy lower bound (Lemma V.1).
"""

from .allpairs import allpairs_rank, allpairs_sort
from .bitonic import bitonic_merge, bitonic_sort
from .merge2d import merge_sorted_2d, merge_subregions
from .mergesort2d import mergesort_2d, sort_any, sort_values
from .odd_even import odd_even_mergesort
from .quicksort2d import quicksort_2d
from .sortutil import as_sort_payload, lex_less
from .two_sorted_select import TwoArraySplit, select_rank_two_sorted, select_ranks_two_sorted

__all__ = [
    "allpairs_rank",
    "allpairs_sort",
    "bitonic_merge",
    "bitonic_sort",
    "merge_sorted_2d",
    "merge_subregions",
    "mergesort_2d",
    "sort_values",
    "sort_any",
    "quicksort_2d",
    "odd_even_mergesort",
    "as_sort_payload",
    "lex_less",
    "TwoArraySplit",
    "select_rank_two_sorted",
    "select_ranks_two_sorted",
]
