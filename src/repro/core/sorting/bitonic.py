"""Bitonic sorting network on the processor grid (paper, Section V.B).

Wires of Batcher's bitonic network are assigned to processors in **row-major**
order; each compare-exchange step is a pair of messages between the two
wires' processors.  Being data-oblivious, the communication pattern depends
only on the input size — the property that makes sorting networks attractive
on dataflow hardware — but the network "eventually turns into a 1D algorithm",
which costs energy:

* Bitonic Merge (Lemma V.3): ``Θ(h²w + w²h)`` energy, ``Θ(log n)`` depth.
* Bitonic Sort (Lemma V.4): ``Θ(h²w + w²h log h)`` energy, ``Θ(log² n)``
  depth, ``Θ(h + w log h)`` distance — a ``Θ(log n)`` energy factor worse
  than the optimal 2D Mergesort on square grids (``Θ(n³ᐟ² log n)`` total).

``benchmarks/bench_fig2_bitonic_vs_mergesort.py`` regenerates the Fig. 2
comparison.
"""

from __future__ import annotations

import numpy as np

from ...machine.geometry import Region
from ...machine.machine import SpatialMachine, TrackedArray
from ...machine.zorder import is_power_of_two
from .sortutil import lex_less, strip_tiebreak, with_tiebreak

__all__ = ["bitonic_sort", "bitonic_merge", "compare_exchange_stage"]


def compare_exchange_stage(
    machine: SpatialMachine,
    cur: TrackedArray,
    partner: np.ndarray,
    take_min: np.ndarray,
    key_cols: int,
    descending: bool = False,
) -> TrackedArray:
    """One network stage: every wire exchanges with ``partner[i]`` and keeps
    the lexicographic min (where ``take_min``) or max of the pair.

    ``cur`` is ordered by wire index; each wire sends its value to its
    partner's processor (two messages per pair, matching the Θ(wh) messages
    per stage of Lemma V.3's analysis).
    """
    recv = machine.send(cur[partner], cur.rows, cur.cols)
    own_less = lex_less(cur.payload, recv.payload, key_cols)
    recv_less = lex_less(recv.payload, cur.payload, key_cols)
    if descending:
        own_less, recv_less = recv_less, own_less
    # equal keys never swap (both sides keep their own value), so padded
    # sentinels and duplicate keys stay consistent across the pair
    keep_own = np.where(take_min, ~recv_less, ~own_less)
    payload = np.where(keep_own[:, None], cur.payload, recv.payload)
    return cur.combined_with(recv, payload=payload)


def _merge_stages(
    machine: SpatialMachine,
    cur: TrackedArray,
    k: int,
    key_cols: int,
    descending: bool,
    alternate: bool,
) -> TrackedArray:
    """The ``j = k/2 .. 1`` halving stages of a bitonic merge of blocks of
    size ``k``.  With ``alternate`` set, blocks alternate direction according
    to bit ``k`` of the wire index (the full sort's schedule); otherwise all
    blocks merge in the same direction (a standalone merge)."""
    n = len(cur)
    idx = np.arange(n, dtype=np.int64)
    j = k // 2
    while j >= 1:
        partner = idx ^ j
        lower = (idx & j) == 0
        if alternate:
            ascending_block = (idx & k) == 0
        else:
            ascending_block = np.ones(n, dtype=bool)
        take_min = lower == ascending_block
        cur = compare_exchange_stage(
            machine, cur, partner, take_min, key_cols, descending=descending
        )
        j //= 2
    return cur


def bitonic_merge(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    key_cols: int = 1,
    descending: bool = False,
) -> TrackedArray:
    """Merge a bitonic sequence (e.g. sorted-ascending ++ sorted-descending)
    laid out row-major on ``region`` into sorted row-major order."""
    n = len(ta)
    _check(ta, region)
    with machine.phase("bitonic_merge"):
        cur = _merge_stages(machine, ta, n, key_cols, descending, alternate=False)
    return cur


def bitonic_sort(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    key_cols: int = 1,
    descending: bool = False,
    tiebreak: bool = True,
) -> TrackedArray:
    """Batcher's bitonic sort of ``ta`` laid out row-major on ``region``.

    Entry ``i`` must sit at the i-th row-major cell; the sorted output is
    returned in the same layout.  ``key_cols`` leading payload columns form
    the lexicographic key; with ``tiebreak`` (default) a unique input-position
    column is appended so duplicate keys still yield a deterministic
    permutation.
    """
    n = len(ta)
    _check(ta, region)
    if n == 1:
        return ta
    if tiebreak:
        cur, kc = with_tiebreak(ta, key_cols)
    else:
        cur, kc = ta, key_cols
    with machine.phase("bitonic"):
        k = 2
        while k <= n:
            cur = _merge_stages(machine, cur, k, kc, descending, alternate=(k < n))
            k *= 2
    if tiebreak:
        cur = strip_tiebreak(cur, kc)
    return cur


def _check(ta: TrackedArray, region: Region) -> None:
    n = len(ta)
    if n != region.size:
        raise ValueError(f"need one wire per cell: {n} values, region {region}")
    if not is_power_of_two(n):
        raise ValueError(f"bitonic network needs power-of-two size, got {n}")
    if ta.payload.ndim != 2:
        raise ValueError("sort payloads are (n, k) arrays; see sortutil.as_sort_payload")
