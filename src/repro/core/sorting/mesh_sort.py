"""Mesh-model sorting baseline: Shearsort (paper, Section II.B discussion).

Fixed-connection mesh algorithms translate directly into the Spatial Computer
Model: ``K`` rounds of neighbour communication on a ``sqrt(n) x sqrt(n)``
mesh cost ``O(K n)`` energy, depth ``K`` and distance ``O(K)``.  Mesh sorting
needs ``Θ(sqrt(n))`` rounds (Thompson-Kung / Schnorr-Shamir), so *any* mesh
sorter is stuck at ``Θ(sqrt(n))`` depth — the gap the paper's polylog-depth
2D Mergesort closes while keeping ``Θ(n^{3/2})`` energy.

We implement Shearsort — ``(log h + 1)`` alternating phases of snake-order
row sorts and column sorts, each an odd-even transposition — because it is
simple, provably correct, and within a log factor of the optimal round count:
``Θ(sqrt(n) log n)`` depth, ``Θ(n^{3/2} log n)`` energy.  The crossover bench
``bench_mesh_vs_mergesort.py`` uses it as the low-constant/high-depth rival.
"""

from __future__ import annotations

import math

import numpy as np

from ...machine.geometry import Region
from ...machine.machine import SpatialMachine, TrackedArray
from .bitonic import compare_exchange_stage
from .sortutil import strip_tiebreak, with_tiebreak

__all__ = ["shearsort"]


def _transposition_round(
    machine: SpatialMachine,
    cur: TrackedArray,
    pair_lo: np.ndarray,
    stride: int,
    ascending: np.ndarray,
    key_cols: int,
    n: int,
) -> TrackedArray:
    """One odd-even transposition round over disjoint (lo, lo+stride) pairs.

    Unpaired wires partner with themselves (a free no-op in the machine).
    """
    partner = np.arange(n, dtype=np.int64)
    partner[pair_lo] = pair_lo + stride
    partner[pair_lo + stride] = pair_lo
    is_lo = np.zeros(n, dtype=bool)
    is_lo[pair_lo] = True
    take_min = is_lo == ascending
    return compare_exchange_stage(machine, cur, partner, take_min, key_cols)


def shearsort(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    key_cols: int = 1,
) -> TrackedArray:
    """Shearsort ``ta`` (row-major entries on ``region``) into row-major order.

    Rounds use only unit-distance neighbour messages, so the measured depth
    and distance both grow as ``Θ(sqrt(n) log n)`` — the mesh regime.
    """
    n = len(ta)
    h, w = region.height, region.width
    if n != region.size:
        raise ValueError("shearsort expects one value per cell")
    if ta.payload.ndim != 2:
        raise ValueError("sort payloads are (n, k) arrays")
    cur, kc = with_tiebreak(ta, key_cols)
    idx = np.arange(n, dtype=np.int64)
    row = idx // w
    col = idx % w
    snake_asc = row % 2 == 0  # even rows ascend, odd rows descend

    phases = max(1, math.ceil(math.log2(max(h, 2)))) + 1
    with machine.phase("shearsort"):
        for _ in range(phases):
            # --- row phase: odd-even transposition within rows, snake directions
            for r in range(w):
                lo = idx[(col % 2 == r % 2) & (col + 1 < w)]
                cur = _transposition_round(machine, cur, lo, 1, snake_asc, kc, n)
            # --- column phase: odd-even transposition within columns, ascending
            for r in range(h):
                lo = idx[(row % 2 == r % 2) & (row + 1 < h)]
                cur = _transposition_round(
                    machine, cur, lo, w, np.ones(n, dtype=bool), kc, n
                )
        # final row phase leaves the array snake-sorted
        for r in range(w):
            lo = idx[(col % 2 == r % 2) & (col + 1 < w)]
            cur = _transposition_round(machine, cur, lo, 1, snake_asc, kc, n)

        # convert snake order to row-major: reverse the odd rows
        target = np.where(row % 2 == 0, idx, row * w + (w - 1 - col))
        rows_rm, cols_rm = region.rowmajor_coords(n)
        moved = machine.send(cur, rows_rm[target], cols_rm[target])
        out = moved[np.argsort(target, kind="stable")]
    return strip_tiebreak(out, kc)
