"""Batcher's odd-even mergesort on the grid — the second classic network.

Section V.B analyzes Bitonic Sort as the representative sorting network; the
paper cites sorting networks in the plural [28-31].  Odd-even mergesort is
Batcher's other O(log² n)-depth network; mapped row-major onto the grid it
shows the *same* structural pathology (the recursion eventually pairs wires
one row apart, then within rows), hence the same Θ(n^{3/2} log n) energy —
evidence that the Fig. 2 suboptimality is about 1D networks per se, not
about the bitonic schedule specifically (`bench_fig2` extension).

Network schedule (iterative Batcher odd-even merge): for ``p = 1, 2, 4, ...``
and ``k = p, p/2, ..., 1``, wire ``i`` compares with ``i + k`` when
``(i & p) == (k & p) ... `` — we use the standard loop formulated by Knuth
(TAOCP vol. 3, Alg. M generalization): comparisons ``(i, i+k)`` for those
``i`` with ``i & k == r`` where ``r`` cycles; all pairs are disjoint per
stage, all directions ascending.
"""

from __future__ import annotations

import numpy as np

from ...machine.geometry import Region
from ...machine.machine import SpatialMachine, TrackedArray
from ...machine.zorder import is_power_of_two
from .bitonic import compare_exchange_stage
from .sortutil import strip_tiebreak, with_tiebreak

__all__ = ["odd_even_mergesort", "odd_even_stages"]


def odd_even_stages(n: int) -> list[list[tuple[int, int]]]:
    """The comparison pairs of Batcher's odd-even mergesort for ``n`` wires.

    Returns one list of disjoint (lo, hi) pairs per stage, in schedule order
    (Knuth's iterative formulation).
    """
    stages: list[list[tuple[int, int]]] = []
    p = 1
    while p < n:
        k = p
        while k >= 1:
            pairs = []
            for j in range(k % p, n - k, 2 * k):
                for i in range(min(k, n - j - k)):
                    lo = i + j
                    hi = i + j + k
                    if lo // (2 * p) == hi // (2 * p):
                        pairs.append((lo, hi))
            if pairs:
                stages.append(pairs)
            k //= 2
        p *= 2
    return stages


def odd_even_mergesort(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    key_cols: int = 1,
    tiebreak: bool = True,
) -> TrackedArray:
    """Sort ``ta`` (row-major wires on ``region``) with the odd-even network."""
    n = len(ta)
    if n != region.size:
        raise ValueError(f"need one wire per cell: {n} values, region {region}")
    if not is_power_of_two(n):
        raise ValueError(f"odd-even network needs power-of-two size, got {n}")
    if ta.payload.ndim != 2:
        raise ValueError("sort payloads are (n, k) arrays")
    if n == 1:
        return ta
    if tiebreak:
        cur, kc = with_tiebreak(ta, key_cols)
    else:
        cur, kc = ta, key_cols

    idx = np.arange(n, dtype=np.int64)
    with machine.phase("odd_even"):
        for pairs in odd_even_stages(n):
            partner = idx.copy()
            take_min = np.ones(n, dtype=bool)
            arr = np.asarray(pairs, dtype=np.int64)
            lo, hi = arr[:, 0], arr[:, 1]
            partner[lo] = hi
            partner[hi] = lo
            take_min[hi] = False
            cur = compare_exchange_stage(machine, cur, partner, take_min, kc)

    if tiebreak:
        cur = strip_tiebreak(cur, kc)
    return cur
