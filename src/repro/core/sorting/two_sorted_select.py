"""Rank (multi)selection in two sorted arrays (paper, Section V.C(c), Lemma V.6).

Given sorted arrays ``A`` and ``B``, find the rank-``k`` element(s) of their
union — the multiselection problem [Deo et al.], the splitter-finding engine
of the 2D merge.  The trick: rank a sqrt-sized *deterministic* sample with
the All-Pairs Sort, search the chosen sample element back into both arrays,
and finish inside two ``O(sqrt(n))``-sized windows:

1. gather every ``⌊√n⌋``-th element of ``A`` and ``B`` into a sample ``S``;
2. All-Pairs-Sort ``S`` (shared by all requested ranks — the 2D merge asks
   for ranks ``n/4``, ``n/2`` and ``3n/4`` of the same pair at once);
3. ``l = ⌊(k-1)/⌊√n⌋⌋``;
4. locate the ``l``-th ranked sample in ``A`` and in ``B`` with a *two-level*
   binary search whose probes are relayed messages with geometrically
   shrinking hops (a flat binary search from a fixed source would cost
   ``Θ(sqrt(n) log n)`` distance — the suboptimality the paper warns about);
5. narrow to windows of ``k - a - b`` elements past the located positions
   (the prefix-exclusion bound gives ``k - a - b <= 3⌊√n⌋ + 1``);
6. All-Pairs-Sort the windows and read off the rank-``(k - a - b)`` element.

Costs: ``O(n^{5/4})`` energy, ``O(log n)`` depth, ``O(sqrt(n))`` distance —
dominated by the All-Pairs Sorts of ``O(sqrt(n))`` elements (Lemma V.5).

Ties are resolved by the strict total order ``(keys, which-array, index)``,
so every rank is unique and the split sizes are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...machine.geometry import Region
from ...machine.machine import SpatialMachine, TrackedArray, concat_tracked
from .allpairs import allpairs_sort

__all__ = ["select_rank_two_sorted", "select_ranks_two_sorted", "TwoArraySplit"]


@dataclass(frozen=True)
class TwoArraySplit:
    """Result of a two-sorted-array rank selection.

    ``cut_a + cut_b == k``: the ``k`` smallest elements of ``A || B`` are
    exactly ``A[:cut_a]`` and ``B[:cut_b]``.  ``depth``/``dist`` is the cost
    metadata of the decision (available at ``where``), which callers must
    thread into everything that depends on the split.
    """

    cut_a: int
    cut_b: int
    depth: int
    dist: int
    where: tuple[int, int]
    used_fallback: bool = False


def _augment(ta: TrackedArray, key_cols: int, arr_id: float) -> TrackedArray:
    """Append (which-array, index) columns — tie-break and identity at once."""
    n = len(ta)
    p = ta.payload
    out = np.empty((n, key_cols + 2), dtype=np.float64)
    out[:, :key_cols] = p[:, :key_cols]
    out[:, key_cols] = arr_id
    out[:, key_cols + 1] = np.arange(n, dtype=np.float64)
    return ta.with_payload(out)


def _probe_plan(
    arr: TrackedArray, target_row: np.ndarray, kc: int
) -> tuple[int, np.ndarray]:
    """#elements of ``arr`` strictly below ``target_row``, plus the probe
    index sequence of the relayed two-level (block anchors, then
    within-block) binary search.  Pure planning — the caller charges the
    probes as one chain of a batched :meth:`SpatialMachine.relay_many`."""
    n = len(arr)
    if n == 0:
        return 0, np.empty(0, dtype=np.int64)
    # arr is sorted under the strict key order, so "strictly below target"
    # is a prefix: count is its lower-bound index (O(kc log n) scalar
    # compares) and any probed index i is below iff i < count
    P = arr.payload
    t = tuple(target_row[:kc])
    lo, hi = 0, n
    while lo < hi:
        mid = (lo + hi) // 2
        if tuple(P[mid, :kc]) < t:
            lo = mid + 1
        else:
            hi = mid
    count = lo

    stride = max(1, math.isqrt(n))
    probes: list[int] = []

    def bisect(lo: int, hi: int, step: int) -> int:
        """Probe indices lo, lo+step, ... to find the first not-below."""
        lo_i, hi_i = 0, (hi - lo + step - 1) // step  # block count
        while lo_i < hi_i:
            mid = (lo_i + hi_i) // 2
            idx = min(lo + mid * step, n - 1)
            probes.append(idx)
            if idx < count:
                lo_i = mid + 1
            else:
                hi_i = mid
        return lo + lo_i * step

    first_block = bisect(0, n, stride)  # anchor level
    block_lo = max(0, first_block - stride)
    bisect(block_lo, min(n, block_lo + 2 * stride), 1)  # within-block level
    return count, np.asarray(probes, dtype=np.int64)


def select_ranks_two_sorted(
    machine: SpatialMachine,
    A: TrackedArray,
    B: TrackedArray,
    ks: list[int],
    key_cols: int = 1,
    staging: Region | None = None,
) -> list[TwoArraySplit]:
    """Split sorted ``A`` and ``B`` at several ranks, sharing one sample sort.

    Ranks are 1-based.  Returns one :class:`TwoArraySplit` per requested rank,
    in order.
    """
    na, nb = len(A), len(B)
    n = na + nb
    for k in ks:
        if not 1 <= k <= n:
            raise ValueError(f"rank k={k} out of range 1..{n}")
    if na == 0 or nb == 0:
        full = A if nb == 0 else B
        where = (int(full.rows[0]), int(full.cols[0]))
        meta = (int(full.depth.max()), int(full.dist.max()))
        return [
            TwoArraySplit(k if nb == 0 else 0, 0 if nb == 0 else k, *meta, where)
            for k in ks
        ]

    Aa = _augment(A, key_cols, 0.0)
    Bb = _augment(B, key_cols, 1.0)
    kc = key_cols + 2  # strict keys: (user keys, which-array, index)

    if staging is None:
        r0 = int(min(Aa.rows.min(), Bb.rows.min()))
        c0 = int(min(Aa.cols.min(), Bb.cols.min()))
        staging = Region(r0, c0, 1, 1)

    with machine.phase("two_sorted_select"):
        step = max(1, math.isqrt(n))
        if n <= 16 or step <= 1:
            return [
                _window_select(machine, Aa, Bb, k, 0, 0, kc, key_cols, staging, 0, 0, None)
                for k in ks
            ]

        # -- 1-2: gather and All-Pairs-Sort the deterministic sample (shared)
        sa = Aa[np.arange(0, na, step, dtype=np.int64)]
        sb = Bb[np.arange(0, nb, step, dtype=np.int64)]
        sample = concat_tracked([sa, sb])
        sorted_s = allpairs_sort(
            machine,
            sample,
            out_region=None,
            key_cols=kc,
            workspace=Region(staging.row, staging.col, 1, 1),
        )

        # -- 3-4: pick each rank's l-th ranked sample and plan its A- and
        #    B-search probe chains; every chain of the round is charged in
        #    one batched relay_many call.  The B-chain starts from the
        #    A-chain's end metadata (carry), matching the sequential search.
        chains: list[tuple] = []
        carry: list[bool] = []
        per_k: list[tuple[int, int, int] | None] = []
        for k in ks:
            l = min((k - 1) // step, len(sorted_s))
            if l == 0:
                per_k.append(None)
                continue
            sl = sorted_s[l - 1 : l]
            src = (int(sl.rows[0]), int(sl.cols[0]))
            depth, dist = int(sl.depth[0]), int(sl.dist[0])
            target = sl.payload[0]
            a, pa = _probe_plan(Aa, target, kc)
            b, pb = _probe_plan(Bb, target, kc)
            chains.append((src, Aa.rows[pa], Aa.cols[pa], depth, dist))
            carry.append(False)
            chains.append((src, Bb.rows[pb], Bb.cols[pb], 0, 0))
            carry.append(True)
            per_k.append((len(chains) - 1, a, b))
        ends = machine.relay_many(chains, carry) if chains else []

        out: list[TwoArraySplit] = []
        for k, info in zip(ks, per_k):
            if info is None:
                a = b = 0
                depth = int(sorted_s.depth.max())
                dist = int(sorted_s.dist.max())
            else:
                bi, a, b = info
                depth, dist = ends[bi]
            # -- 5-6: solve inside the windows
            out.append(
                _window_select(
                    machine, Aa, Bb, k, a, b, kc, key_cols, staging, depth, dist, step
                )
            )
        return out


def select_rank_two_sorted(
    machine: SpatialMachine,
    A: TrackedArray,
    B: TrackedArray,
    k: int,
    key_cols: int = 1,
    staging: Region | None = None,
) -> TwoArraySplit:
    """Single-rank convenience wrapper around :func:`select_ranks_two_sorted`."""
    return select_ranks_two_sorted(machine, A, B, [k], key_cols, staging)[0]


def _window_select(
    machine: SpatialMachine,
    Aa: TrackedArray,
    Bb: TrackedArray,
    k: int,
    a: int,
    b: int,
    kc: int,
    key_cols: int,
    staging: Region,
    depth: int,
    dist: int,
    step: int | None,
) -> TwoArraySplit:
    na, nb = len(Aa), len(Bb)
    kp = k - a - b
    fallback = False
    if step is not None and not 1 <= kp <= 3 * step + 2:
        # sampling guarantee violated (cannot happen under the strict total
        # order; kept as a correctness net): sort the full arrays.
        a = b = 0
        kp = k
        fallback = True
    # the kp-th smallest of A[a:] || B[b:] needs only kp elements of each
    awin = Aa[a : min(na, a + kp)]
    bwin = Bb[b : min(nb, b + kp)]
    union = concat_tracked([p for p in (awin, bwin) if len(p)])
    sorted_u = allpairs_sort(
        machine,
        union,
        out_region=None,
        key_cols=kc,
        workspace=Region(staging.row, staging.col, 1, 1),
    )
    e = sorted_u[kp - 1 : kp]
    depth = max(depth, int(e.depth[0]))
    dist = max(dist, int(e.dist[0]))
    arr_id = e.payload[0, key_cols]
    idx = int(round(e.payload[0, key_cols + 1]))
    cut_a = idx + 1 if arr_id == 0.0 else k - (idx + 1)
    cut_b = k - cut_a
    return TwoArraySplit(
        cut_a,
        cut_b,
        depth,
        dist,
        (int(e.rows[0]), int(e.cols[0])),
        used_fallback=fallback,
    )
