"""2D merge of two sorted arrays (paper, Section V.C(b), Fig. 3, Lemma V.7).

Classical merges recurse on *unbalanced* halves and need binary searches with
suboptimal distance; the spatial merge instead splits **by rank**: the rank
``n/4``, ``n/2`` and ``3n/4`` elements of ``A || B`` (found with the
two-sorted-array selection of Lemma V.6) split both arrays into four chunk
pairs of exactly ``n/4`` elements, which move into the region's four
sub-quadrants and merge recursively.  After the recursion the array is sorted
along the recursion's space-filling traversal; a final permutation delivers
row-major order (Fig. 3d).

Region shapes stay in the family {square, 2:1 rectangle}: a square splits
into its four quadrants (Z-order), a wide rectangle into four tall strips
(left to right), a tall rectangle into four wide strips (top to bottom) — so
every level's sub-regions are congruent and the per-level permutation cost is
``#elements x O(level diameter)``, a geometric series summing to
``O(n^{3/2})`` energy (Lemma V.7).  Depth is ``O(log^2 n)`` (a Lemma V.6
selection per level), distance ``O(sqrt(n))``.

The split decision is *broadcast* over the region and threaded into every
element's metadata before it moves, so measured depth reflects the control
dependency "no routing before the splitters are known".
"""

from __future__ import annotations

import numpy as np

from ...machine.geometry import Region
from ...machine.machine import SpatialMachine, TrackedArray, concat_tracked
from ..collectives import broadcast
from .two_sorted_select import select_ranks_two_sorted

__all__ = ["merge_sorted_2d", "merge_subregions"]


def merge_subregions(region: Region) -> tuple[Region, Region, Region, Region]:
    """Split a square / 2:1 region into four congruent ordered sub-regions."""
    h, w = region.height, region.width
    if h == w:
        return region.quadrants()
    if w == 2 * h:
        q = w // 4
        return tuple(Region(region.row, region.col + i * q, h, q) for i in range(4))
    if h == 2 * w:
        q = h // 4
        return tuple(Region(region.row + i * q, region.col, q, w) for i in range(4))
    raise ValueError(f"merge regions must be square or 2:1, got {region}")


def merge_sorted_2d(
    machine: SpatialMachine,
    A: TrackedArray,
    B: TrackedArray,
    out_region: Region,
    key_cols: int = 1,
    base_case: int = 16,
) -> TrackedArray:
    """Merge sorted ``A`` and ``B`` into row-major order on ``out_region``.

    Both inputs must lie inside ``out_region`` (typically on its two halves)
    and satisfy ``len(A) + len(B) == out_region.size``.  Ties order ``A``
    before ``B`` (and by position within each array), consistent with the
    selection subroutine, so the output is a deterministic permutation.
    ``base_case`` (>= 4) stops the recursion once a chunk fits a tiny region.
    """
    n = len(A) + len(B)
    if n != out_region.size:
        raise ValueError(f"{n} elements vs region size {out_region.size}")
    if base_case < 4:
        raise ValueError("base_case must be at least 4")
    with machine.phase("merge2d"):
        placed_parts: list[TrackedArray] = []
        rank_parts: list[np.ndarray] = []
        _merge_rec(machine, A, B, out_region, key_cols, base_case, 0, placed_parts, rank_parts)
        placed = concat_tracked(placed_parts)
        ranks = np.concatenate(rank_parts)
        # Fig. 3d: permute from the recursion's traversal order into row-major.
        rows, cols = out_region.rowmajor_coords(n)
        out = machine.send(placed, rows[ranks], cols[ranks])
        return out[np.argsort(ranks, kind="stable")]


def _merged_order(A: TrackedArray, B: TrackedArray, key_cols: int) -> np.ndarray:
    """Indices into A||B in merged order, ties A-first then by position."""
    na, nb = len(A), len(B)
    keys = np.concatenate([A.payload[:, :key_cols], B.payload[:, :key_cols]])
    arr = np.concatenate([np.zeros(na), np.ones(nb)])
    pos = np.concatenate([np.arange(na), np.arange(nb)])
    return np.lexsort((pos, arr, *reversed([keys[:, c] for c in range(key_cols)])))


def _merge_rec(
    machine: SpatialMachine,
    A: TrackedArray,
    B: TrackedArray,
    region: Region,
    key_cols: int,
    base_case: int,
    offset: int,
    placed_parts: list[TrackedArray],
    rank_parts: list[np.ndarray],
) -> None:
    n = len(A) + len(B)
    if n == 0:
        return
    if n <= base_case or region.height == 1 or region.width == 1 or n < 4:
        # park the merged chunk in row-major order of its (tiny) region
        union = concat_tracked([p for p in (A, B) if len(p)])
        order = _merged_order(A, B, key_cols)
        rows, cols = region.rowmajor_coords(n)
        inv = np.empty(n, dtype=np.int64)
        inv[order] = np.arange(n, dtype=np.int64)
        parked = machine.send(union, rows[inv], cols[inv])
        placed_parts.append(parked)
        rank_parts.append(offset + inv)
        return

    # ---- find the three rank splitters with one shared sample (Lemma V.6)
    quarter = n // 4
    splits = select_ranks_two_sorted(
        machine,
        A,
        B,
        [quarter, 2 * quarter, 3 * quarter],
        key_cols=key_cols,
        staging=Region(region.row, region.col, 1, 1),
    )
    cuts_a = [0, *(s.cut_a for s in splits), len(A)]
    cuts_b = [0, *(s.cut_b for s in splits), len(B)]
    split_depth = max(s.depth for s in splits)
    split_dist = max(s.dist for s in splits)
    split_where = splits[-1].where

    # ---- broadcast the routing decision over the region, then move chunks
    decision = machine.place(np.array([1.0]), [split_where[0]], [split_where[1]])
    decision = decision.depending_on_meta(split_depth, split_dist)
    corner_val = machine.send(
        decision, np.array([region.row]), np.array([region.col])
    )
    blanket = broadcast(machine, corner_val, region)

    subregions = merge_subregions(region)
    for q in range(4):
        aq = A[cuts_a[q] : cuts_a[q + 1]]
        bq = B[cuts_b[q] : cuts_b[q + 1]]
        sub = subregions[q]
        rows, cols = sub.rowmajor_coords(len(aq) + len(bq))
        moved: list[TrackedArray] = []
        if len(aq):
            aq = aq.depending_on(blanket[region.rowmajor_index(aq.rows, aq.cols)])
            moved.append(machine.send(aq, rows[: len(aq)], cols[: len(aq)]))
        if len(bq):
            bq = bq.depending_on(blanket[region.rowmajor_index(bq.rows, bq.cols)])
            moved.append(machine.send(bq, rows[len(aq) :], cols[len(aq) :]))
        _merge_rec(
            machine,
            moved[0] if len(aq) else moved[0][0:0],
            moved[1] if len(aq) and len(bq) else (moved[0][0:0] if len(aq) else moved[0]),
            sub,
            key_cols,
            base_case,
            offset + q * quarter,
            placed_parts,
            rank_parts,
        )
