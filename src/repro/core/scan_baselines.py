"""Scan baselines the paper argues against (Section IV.C).

* :func:`sequential_scan` — pass one accumulator along the Z-order curve:
  ``O(n)`` energy (optimal) but ``Θ(n)`` depth (no parallelism).
* :func:`tree_scan_1d` — the classic Blelloch binary-tree scan over the array
  in **row-major** order, ignoring the grid's second dimension: ``O(log n)``
  depth but ``Ω(n log n)`` energy, "similar to the energy cost of a binary
  tree broadcast".

The energy-optimal 2D scan (:mod:`repro.core.scan`) dominates both:
``Θ(n)`` energy *and* ``O(log n)`` depth.  The ablation bench
``benchmarks/bench_ablation_scan.py`` regenerates the three-way comparison.
"""

from __future__ import annotations

import numpy as np

from ..machine.geometry import Region, manhattan_arrays
from ..machine.machine import SpatialMachine, TrackedArray
from ..machine.metrics import META_DTYPE
from ..machine.zorder import zorder_coords
from .ops import ADD, Monoid

__all__ = ["sequential_scan", "tree_scan_1d"]


def sequential_scan(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    monoid: Monoid = ADD,
) -> TrackedArray:
    """Single accumulator walking the Z-order curve (inclusive scan).

    Entry ``i`` must sit at the i-th Z-order cell.  The i-th output's depth is
    exactly ``i`` messages and its chain distance the curve length up to cell
    ``i``; total energy is the full curve length (Observation 1: ``O(n)``).

    The n-message chain is accounted for in closed form rather than as n
    Python-level ``send`` calls; the tracer (if any) does not see this
    baseline's individual hops.
    """
    n = len(ta)
    if n != region.size:
        raise ValueError("sequential_scan expects one value per cell")
    zrows, zcols = zorder_coords(region)
    hop = manhattan_arrays(zrows[:-1], zcols[:-1], zrows[1:], zcols[1:])

    # inclusive prefix values (local accumulation at each hop)
    if monoid.op is np.add:
        payload = np.cumsum(ta.payload, axis=0)
    elif monoid.op is np.maximum:
        payload = np.maximum.accumulate(ta.payload, axis=0)
    elif monoid.op is np.minimum:
        payload = np.minimum.accumulate(ta.payload, axis=0)
    else:  # generic associative op: explicit left fold
        payload = np.empty_like(ta.payload)
        payload[0] = ta.payload[0]
        for i in range(1, n):
            payload[i] = monoid(payload[i - 1 : i], ta.payload[i : i + 1])[0]

    depth = np.arange(n, dtype=META_DTYPE) + ta.depth.max()
    dist = np.concatenate([[0], np.cumsum(hop)]).astype(META_DTYPE) + ta.dist.max()
    machine.stats.energy += int(hop.sum())
    machine.stats.messages += int((hop > 0).sum())
    machine.stats.rounds += 1
    out = TrackedArray(machine, payload, ta.rows, ta.cols, depth, dist)
    machine.stats.observe(out.depth, out.dist)
    return out


def tree_scan_1d(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    monoid: Monoid = ADD,
) -> TrackedArray:
    """Blelloch binary-tree scan over the array in row-major order.

    This is the "naive 1D parallel prefix sum, implemented via a binary tree
    over the array in row-major order" of Section IV.C: logarithmic depth but
    ``Ω(n log n)`` energy, because high tree levels pair indices that are far
    apart in row-major order.  Returns the inclusive scan at the original
    cells.
    """
    n = len(ta)
    if n != region.size:
        raise ValueError("tree_scan_1d expects one value per cell")
    if n & (n - 1):
        raise ValueError("tree_scan_1d needs a power-of-two input size")
    rows, cols = region.rowmajor_coords(n)

    # working state indexed by row-major position
    work = TrackedArray(
        machine, ta.payload.copy(), rows.copy(), cols.copy(), ta.depth.copy(), ta.dist.copy()
    )

    def scatter(idx: np.ndarray, sub: TrackedArray) -> None:
        work.payload[idx] = sub.payload
        work.depth[idx] = sub.depth
        work.dist[idx] = sub.dist

    levels = int(np.log2(n))
    # ---- up-sweep: work[dst] = work[src] ∘ work[dst]
    for d in range(levels):
        step = 1 << (d + 1)
        src = np.arange((1 << d) - 1, n, step, dtype=np.int64)
        dst = src + (1 << d)
        moved = machine.send(work[src], rows[dst], cols[dst])
        tgt = work[dst]
        merged = tgt.combined_with(moved, payload=monoid(moved.payload, tgt.payload))
        scatter(dst, merged)

    # ---- down-sweep (exclusive): clear root, then swap-and-combine
    root = n - 1
    work.payload[root : root + 1] = monoid.identity(1, like=work.payload)
    for d in range(levels - 1, -1, -1):
        step = 1 << (d + 1)
        src = np.arange((1 << d) - 1, n, step, dtype=np.int64)
        dst = src + (1 << d)
        left = work[src]
        right = work[dst]
        to_dst = machine.send(left, rows[dst], cols[dst])
        to_src = machine.send(right, rows[src], cols[src])
        new_dst = to_dst.combined_with(
            right, payload=monoid(right.payload, to_dst.payload)
        )
        scatter(src, to_src)
        scatter(dst, new_dst)

    exclusive = work
    return exclusive.combined_with(
        ta, payload=monoid(exclusive.payload, ta.payload)
    )
