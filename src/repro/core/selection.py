"""Randomized rank selection with linear energy (paper, Section VI).

Selecting the rank-``k`` element (e.g. the median) takes only ``Θ(n)`` energy
— a polynomial-factor separation from sorting's ``Θ(n^{3/2})``.  Since
gathering one element across the ``sqrt(n)``-diameter grid costs
``O(sqrt(n))`` energy, the largest sample collectable in ``O(n)`` energy has
``O(sqrt(n))`` elements; the algorithm (in the spirit of Reischuk's selection)
repeats, until at most ``c*sqrt(n)`` elements remain *active*:

1. sample each active element independently with probability ``c/sqrt(N)``;
2. gather the sample into a square subgrid — a parallel scan assigns indices,
   a broadcast announces the sample size;
3. choose two pivot ranks ``r = min(|S|, c k N^{-1/2} + (c/2) N^{1/4} sqrt(ln n))``
   and ``l = c k N^{-1/2} - (c/2) N^{1/4} sqrt(ln n)`` (the low pivot is the
   dummy ``-inf`` when ``k < 0.5 N^{3/4} sqrt(ln n)``); Bitonic-Sort the
   sample to read them off;
4. broadcast both pivots;
5. count actives below ``s_l`` / above ``s_r`` with an all-reduce; if the
   pivots missed (probability ``<= 2 n^{-c/6}``, Lemma VI.1) fall back to a
   full 2D Mergesort; otherwise adjust ``k``;
6. deactivate elements outside ``(s_l, s_r)``;
7. all-reduce the new ``N``; if ``k > ceil(N/2)`` flip the comparison order
   (negate keys, locally) and set ``k = N - k + 1``.

Each iteration costs ``O(n)`` energy and the active count drops like
``N -> N^{4/5}`` w.h.p. (Lemma VI.2), so ``O(1)`` iterations suffice:
``O(n)`` energy, ``O(log^2 n)`` depth (the sample's bitonic sort),
``O(sqrt(n))`` distance, all w.h.p. (Theorem VI.3).

Ties are handled by an internal ``(value, z-position)`` total order, so exact
counts and ranks are well-defined for duplicate-heavy inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..machine.geometry import Region
from ..machine.machine import SpatialMachine, TrackedArray, concat_tracked
from .collectives import all_reduce, broadcast
from .gather import gather_masked as _gather_compact_impl
from .gather import staging_square as _staging_square_impl
from .ops import ADD
from .sorting.bitonic import bitonic_sort
from .sorting.mergesort2d import mergesort_2d
from .sorting.sortutil import lex_less

__all__ = ["rank_select", "SelectionResult"]


@dataclass
class SelectionResult:
    """Outcome of one rank selection run."""

    value: float
    iterations: int
    fell_back: bool
    #: decision metadata: depth/distance of the chain producing the answer
    depth: int
    dist: int
    #: active-element count before each iteration plus the final count —
    #: the N_t trajectory of Lemma VI.2
    active_history: list[int] | None = None



def _staging_square(count: int, region: Region) -> Region:
    return _staging_square_impl(count, region)


def _gather_compact(
    machine: SpatialMachine,
    elems: TrackedArray,
    mask: np.ndarray,
    region: Region,
) -> TrackedArray:
    """Gather the masked elements into a square at the region's corner.

    The paper's step 2: a scan assigns each sampled element its slot index
    and a broadcast announces the sample size (see
    :func:`repro.core.gather.gather_masked`).
    """
    return _gather_compact_impl(machine, elems, mask, region)


def _pad_and_bitonic(
    machine: SpatialMachine, sample: TrackedArray, region: Region
) -> TrackedArray:
    """Bitonic-sort a gathered sample, padding to a power of two with +inf."""
    ns = len(sample)
    staging = _staging_square(ns, region)
    full = staging.size  # pad to fill the whole square (one wire per cell)
    rows, cols = staging.rowmajor_coords(full)
    sample = machine.send(sample, rows[:ns], cols[:ns])
    if full > ns:
        pad = np.full((full - ns, sample.payload.shape[1]), np.inf)
        padding = machine.place(pad, rows[ns:], cols[ns:])
        sample = concat_tracked([sample, padding])
    out = bitonic_sort(machine, sample, staging, key_cols=2, tiebreak=False)
    return out[:ns]


def rank_select(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    k: int,
    rng: np.random.Generator,
    c: float = 3.0,
    max_iterations: int = 60,
) -> SelectionResult:
    """Find the ``k``-th smallest (1-based) value of ``ta`` on ``region``.

    ``ta`` holds one value per cell (payload ``(n,)`` or ``(n, 1)``), placed
    along the Z-order curve of the square power-of-two ``region`` (scans run
    over that curve).  ``c >= 3`` trades energy constants for failure
    probability (Theorem VI.3).

    Fault-transparent: given the same ``rng`` seed, the selected value is
    bit-identical under any :class:`~repro.machine.FaultPlan` (recovery
    resends never alter payloads); only costs inflate.
    """
    n = len(ta)
    if n != region.size:
        raise ValueError("rank_select expects one value per cell")
    if not 1 <= k <= n:
        raise ValueError(f"rank k={k} out of range 1..{n}")
    values = ta.payload.reshape(n, -1)[:, 0].astype(np.float64)
    uid = np.arange(n, dtype=np.float64)
    payload = np.stack([values, uid], axis=1)
    elems = ta.with_payload(payload)

    ln_n = max(math.log(n), 1.0)
    active = np.ones(n, dtype=bool)
    sign = 1.0
    iterations = 0
    threshold = c * math.sqrt(n)

    # w.l.o.g. k <= ceil(n/2) (paper, Section VI): flip the comparator up
    # front, otherwise ranks near n trip the step-5 guard immediately
    if k > (n + 1) // 2:
        sign = -sign
        payload = -payload
        elems = elems.with_payload(payload)
        k = n - k + 1

    history: list[int] = []
    with machine.phase("select"):
        while active.sum() > threshold and iterations < max_iterations:
            iterations += 1
            history.append(int(active.sum()))
            N = int(active.sum())

            # -- 1-2: sample actives, gather them into a compact square
            p = min(1.0, c / math.sqrt(N))
            mask = active & (rng.random(n) < p)
            if not mask.any():
                continue
            with machine.phase("sample_gather"):
                sample = _gather_compact(machine, elems, mask, region)
            ns = len(sample)

            # -- 3: pivot ranks (1-based), bitonic sort of the sample
            with machine.phase("sample_sort"):
                sorted_s = _pad_and_bitonic(machine, sample, region)
            spread = 0.5 * c * N**0.25 * math.sqrt(ln_n)
            center = c * k / math.sqrt(N)
            r = max(1, min(ns, math.ceil(center + spread)))
            use_low = k >= 0.5 * N**0.75 * math.sqrt(ln_n)
            l = max(1, math.floor(center - spread)) if use_low else 0
            s_r = sorted_s.payload[r - 1]
            if use_low and l >= 1:
                s_l = sorted_s.payload[l - 1]
            else:
                s_l = np.array([-np.inf, -np.inf])

            # -- 4: broadcast both pivots over the original subgrid
            with machine.phase("pivot_broadcast"):
                piv_payload = np.concatenate([s_l, s_r])[None, :]
                piv = sorted_s[r - 1 : r].with_payload(piv_payload)
                corner = machine.send(piv, np.array([region.row]), np.array([region.col]))
                blanket = broadcast(machine, corner, region)

            # -- 5: all-reduce the counts below/above the pivots
            elems = elems.depending_on(
                blanket[region.rowmajor_index(elems.rows, elems.cols)]
            )
            below = active & lex_less(payload, np.broadcast_to(s_l, payload.shape), 2)
            above = active & lex_less(np.broadcast_to(s_r, payload.shape), payload, 2)
            counts = elems.with_payload(
                np.stack([below.astype(np.float64), above.astype(np.float64)], axis=1)
            )
            with machine.phase("count"):
                totals = all_reduce(machine, counts, region, ADD)
            n_below = int(round(totals.payload[0, 0]))
            n_above = int(round(totals.payload[0, 1]))
            elems = elems.depending_on(
                totals[region.rowmajor_index(elems.rows, elems.cols)]
            )

            if n_below >= k or n_above >= N - k:
                with machine.phase("fallback_sort"):
                    return _fallback_sort(
                        machine, elems, active, region, k, sign, iterations, history
                    )
            k -= n_below

            # -- 6: deactivate everything outside (s_l, s_r)
            active = active & ~below & ~above

            # -- 7: all-reduce the new N, flip the order if k is in the top half
            live = elems.with_payload(active.astype(np.float64))
            with machine.phase("count"):
                n_live = all_reduce(machine, live, region, ADD)
            N = int(round(n_live.payload[0]))
            elems = elems.depending_on(
                n_live[region.rowmajor_index(elems.rows, elems.cols)]
            )
            if k > (N + 1) // 2:
                sign = -sign
                payload = -payload
                elems = elems.with_payload(payload)
                k = N - k + 1

        # -- epilogue: gather survivors, sort, read off rank k
        mask = active
        with machine.phase("finalize"):
            survivors = _gather_compact(machine, elems, mask, region)
            sorted_s = _pad_and_bitonic(machine, survivors, region)
        e = sorted_s[k - 1 : k]
    value = sign * float(e.payload[0, 0])
    history.append(int(active.sum()))
    return SelectionResult(
        value=value,
        iterations=iterations,
        fell_back=False,
        depth=int(e.depth[0]),
        dist=int(e.dist[0]),
        active_history=history,
    )


def _fallback_sort(
    machine: SpatialMachine,
    elems: TrackedArray,
    active: np.ndarray,
    region: Region,
    k: int,
    sign: float,
    iterations: int,
    history: list[int] | None = None,
) -> SelectionResult:
    """Pivot miss: 2D-Mergesort the active elements and read off rank k."""
    gathered = _gather_compact(machine, elems, active, region)
    ns = len(gathered)
    side = 1
    while side * side < ns:
        side *= 2
    square = Region(region.row, region.col, side, side)
    rows, cols = square.rowmajor_coords(square.size)
    parked = machine.send(gathered, rows[:ns], cols[:ns])
    if square.size > ns:
        pad = np.full((square.size - ns, parked.payload.shape[1]), np.inf)
        parked = concat_tracked([parked, machine.place(pad, rows[ns:], cols[ns:])])
    out = mergesort_2d(machine, parked, square, key_cols=2)
    e = out[k - 1 : k]
    return SelectionResult(
        value=sign * float(e.payload[0, 0]),
        iterations=iterations,
        fell_back=True,
        depth=int(e.depth[0]),
        dist=int(e.dist[0]),
        active_history=history,
    )
