"""Communication collectives without multicasting (paper, Section IV.A-B).

* ``broadcast`` — value at the top-left corner reaches every processor of an
  ``h x w`` subgrid in ``O(hw + h log h)`` energy, ``O(log n)`` depth and
  ``O(w + h)`` distance (Lemma IV.1).  Square grids use the recursive
  quadrant-corner scheme; tall grids first run a binary-tree broadcast down
  the first column and then a square broadcast inside each ``w x w`` block.
* ``reduce`` — the exact reverse communication pattern (Corollary IV.2).
* ``all_reduce`` — reduce followed by broadcast; used by the randomized
  selection of Section VI.

On a square subgrid this is a ``Θ(log n)``-factor energy improvement over the
``O(log n)``-depth binary-tree reduce of prior work, which we implement in
:mod:`repro.core.scan_baselines` for the head-to-head bench.
"""

from __future__ import annotations

import numpy as np

from ..machine.geometry import Region
from ..machine.machine import SpatialMachine, TrackedArray, _tracked, concat_tracked
from ..machine.metrics import META_DTYPE
from ..machine.zorder import is_power_of_two, zorder_encode
from .ops import Monoid

__all__ = [
    "broadcast",
    "broadcast_1d",
    "broadcast_2d",
    "reduce",
    "reduce_2d",
    "all_reduce",
]


# ----------------------------------------------------------------------
# broadcast
# ----------------------------------------------------------------------
def broadcast_2d(machine: SpatialMachine, value: TrackedArray, region: Region) -> TrackedArray:
    """Recursive quadrant broadcast on a square power-of-two region.

    ``value`` must be a batch of corner values: one value per ``region``-sized
    block, each located at its block's top-left corner.  (Passing a single
    length-1 value at ``region.corner()`` is the common case; the batched form
    lets the general ``h x w`` broadcast run all blocks in lockstep.)
    Returns one value per covered cell.
    """
    side = region.width
    if region.height != side or not is_power_of_two(side):
        raise ValueError(f"broadcast_2d needs a square power-of-two region, got {region}")
    return machine.quadrant_broadcast(value, side)


# per-element (depth, dist) offsets plus flat counters of the binary-tree
# 1D broadcast, keyed by length; the tree shape is fixed by n alone
_BC1D_CACHE: dict[int, tuple[np.ndarray, np.ndarray, int, int, int, int, int]] = {}


def _bc1d_tables(n: int) -> tuple[np.ndarray, np.ndarray, int, int, int, int, int]:
    """Simulate the reference tree once in index space.

    Returns ``(depth_off, dist_off, energy, messages, sends, dmax, smax)``:
    the metadata increments per linear index, the summed counters, and the
    number of communicating send rounds.
    """
    cached = _BC1D_CACHE.get(n)
    if cached is not None:
        return cached
    depth_off = np.zeros(n, dtype=META_DTYPE)
    dist_off = np.zeros(n, dtype=META_DTYPE)
    energy = messages = sends = 0
    lo = np.zeros(1, dtype=np.int64)
    hi = np.full(1, n - 1, dtype=np.int64)
    while True:
        rem = hi - lo
        active = rem > 0
        if not active.any():
            break
        lo_a, hi_a = lo[active], hi[active]
        s1 = (rem[active] + 1) // 2

        child_a = lo_a + 1  # hop distance 1 from the segment root at lo
        depth_off[child_a] = depth_off[lo_a] + 1
        dist_off[child_a] = dist_off[lo_a] + 1
        energy += len(child_a)
        messages += len(child_a)
        sends += 1
        new_lo = [child_a]
        new_hi = [lo_a + s1]

        has_b = lo_a + s1 + 1 <= hi_a
        if has_b.any():
            src_b = lo_a[has_b]
            child_b = (lo_a + s1 + 1)[has_b]
            d = child_b - src_b
            depth_off[child_b] = depth_off[src_b] + 1
            dist_off[child_b] = dist_off[src_b] + d
            energy += int(d.sum())
            messages += len(child_b)
            sends += 1
            new_lo.append(child_b)
            new_hi.append(hi_a[has_b])

        lo = np.concatenate(new_lo)
        hi = np.concatenate(new_hi)
    tables = (
        depth_off,
        dist_off,
        energy,
        messages,
        sends,
        int(depth_off.max()),
        int(dist_off.max()),
    )
    _BC1D_CACHE[n] = tables
    return tables


def _broadcast_1d_fast(
    machine: SpatialMachine, value: TrackedArray, region: Region, n: int, vertical: bool
) -> TrackedArray:
    """Closed form of :func:`broadcast_1d` (clean fast-mode runs only)."""
    depth_off, dist_off, energy, messages, sends, dmax, smax = _bc1d_tables(n)
    st = machine.stats
    st.energy += energy
    st.messages += messages
    st.rounds += sends
    node = machine._phase_node
    if node is not None:
        node.energy += energy
        node.messages += messages
        node.sends += sends
    d0, s0 = int(value.depth[0]), int(value.dist[0])
    machine.observe_maxima(d0 + dmax, s0 + smax)
    idx = np.arange(n, dtype=np.int64)
    if vertical:
        rows, cols = region.row + idx, np.full(n, region.col, dtype=np.int64)
    else:
        rows, cols = np.full(n, region.row, dtype=np.int64), region.col + idx
    p = value.payload
    payload = np.repeat(p, n, axis=0) if p.ndim > 1 else np.repeat(p, n)
    return _tracked(machine, payload, rows, cols, depth_off + d0, dist_off + s0)


def broadcast_1d(machine: SpatialMachine, value: TrackedArray, region: Region) -> TrackedArray:
    """Binary-tree broadcast along a 1-wide (or 1-tall) region.

    The root keeps the value, hands it to the neighbour at offset 1 (which
    roots the first half of the remainder) and to the node after that half
    (which roots the second half); both subtrees recurse (paper, Section IV.A).
    Output values are returned in linear-index order.
    """
    if region.width != 1 and region.height != 1:
        raise ValueError(f"broadcast_1d needs a 1-wide or 1-tall region, got {region}")
    n = region.size
    vertical = region.width == 1
    plan = machine.faults
    if (
        n > 1
        and len(value) == 1
        # the closed-form tables measure hops from the region root, so the
        # value must already sit there
        and int(value.rows[0]) == region.row
        and int(value.cols[0]) == region.col
        and machine.fast
        and not machine.strict
        and machine.tracer is None
        and machine.profiler is None
        and (plan is None or not plan.injects_faults)
    ):
        return _broadcast_1d_fast(machine, value, region, n, vertical)

    def coords(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if vertical:
            return region.row + idx, np.full_like(idx, region.col)
        return np.full_like(idx, region.row), region.col + idx

    received: list[TrackedArray] = [value]
    indices: list[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    lo = np.zeros(1, dtype=np.int64)
    hi = np.full(1, n - 1, dtype=np.int64)
    frontier = value
    while True:
        rem = hi - lo
        active = rem > 0
        if not active.any():
            break
        lo_a, hi_a, f_a = lo[active], hi[active], frontier[active]
        s1 = (rem[active] + 1) // 2  # first subtree size (ceil)

        child_a = lo_a + 1
        a_vals = machine.send(f_a, *coords(child_a))
        new_lo = [child_a]
        new_hi = [lo_a + s1]
        new_frontier = [a_vals]
        received.append(a_vals)
        indices.append(child_a)

        has_b = lo_a + s1 + 1 <= hi_a
        if has_b.any():
            child_b = (lo_a + s1 + 1)[has_b]
            b_vals = machine.send(f_a[has_b], *coords(child_b))
            new_lo.append(child_b)
            new_hi.append(hi_a[has_b])
            new_frontier.append(b_vals)
            received.append(b_vals)
            indices.append(child_b)

        lo = np.concatenate(new_lo)
        hi = np.concatenate(new_hi)
        frontier = concat_tracked(new_frontier)

    out = concat_tracked(received)
    order = np.argsort(np.concatenate(indices), kind="stable")
    return out[order]


def broadcast(machine: SpatialMachine, value: TrackedArray, region: Region) -> TrackedArray:
    """General ``h x w`` broadcast from the region's top-left corner.

    Sides must be powers of two.  Returns one value per cell in row-major
    order of the region.
    """
    h, w = region.height, region.width
    if not (is_power_of_two(h) and is_power_of_two(w)):
        raise ValueError(f"broadcast needs power-of-two sides, got {region}")
    if len(value) != 1:
        raise ValueError("broadcast expects a single root value")
    with machine.phase("broadcast"):
        if h == w:
            out = broadcast_2d(machine, value, region)
            return _order_rowmajor(out, region)
        if h > w:
            col0 = Region(region.row, region.col, h, 1)
            colvals = broadcast_1d(machine, value, col0)
            corner_idx = np.arange(0, h, w, dtype=np.int64)
            corners = colvals[corner_idx]
            out = broadcast_2d(machine, corners, Region(region.row, region.col, w, w))
            return _order_rowmajor(out, region)
        # wide case: mirror along the first row
        row0 = Region(region.row, region.col, 1, w)
        rowvals = broadcast_1d(machine, value, row0)
        corner_idx = np.arange(0, w, h, dtype=np.int64)
        corners = rowvals[corner_idx]
        out = broadcast_2d(machine, corners, Region(region.row, region.col, h, h))
        return _order_rowmajor(out, region)


def _order_rowmajor(ta: TrackedArray, region: Region) -> TrackedArray:
    """Reorder bookkeeping so entry i sits at the i-th row-major cell (free)."""
    idx = region.rowmajor_index(ta.rows, ta.cols)
    order = np.argsort(idx, kind="stable")
    return ta[order]


# ----------------------------------------------------------------------
# reduce
# ----------------------------------------------------------------------
def reduce_2d(
    machine: SpatialMachine, ta: TrackedArray, region: Region, monoid: Monoid
) -> TrackedArray:
    """Quadrant-tree reduce on one or more square blocks (reverse broadcast).

    ``ta`` holds one value per cell.  If it covers several equal square blocks
    they are reduced in lockstep; entries must then be grouped block-by-block.
    Combination order inside each block follows the Z-order, so any
    associative (not necessarily commutative) monoid is supported.
    Returns one value per block, located at the block corner.
    """
    side = region.width
    if region.height != side or not is_power_of_two(side):
        raise ValueError(f"reduce_2d needs square power-of-two blocks, got {region}")
    block = side * side
    if len(ta) % block:
        raise ValueError(f"{len(ta)} values is not a multiple of block size {block}")

    # order each block's entries along its Z-curve (local bookkeeping)
    nblocks = len(ta) // block
    block_ids = np.repeat(np.arange(nblocks, dtype=np.int64), block)
    # block-local Z index from modular coordinates
    z_local = zorder_encode((ta.rows - region.row) % side, (ta.cols - region.col) % side)
    order = np.lexsort((z_local, block_ids))
    return machine.quadrant_reduce(ta[order], side, monoid)


def reduce(
    machine: SpatialMachine,
    ta: TrackedArray,
    region: Region,
    monoid: Monoid,
) -> TrackedArray:
    """General ``h x w`` reduce to the top-left corner (Corollary IV.2).

    ``ta`` must hold exactly one value per cell of ``region`` (any entry
    order).  Non-commutative monoids are combined in row-major block order /
    Z-order within blocks, i.e. a fixed deterministic order.
    """
    h, w = region.height, region.width
    if not (is_power_of_two(h) and is_power_of_two(w)):
        raise ValueError(f"reduce needs power-of-two sides, got {region}")
    if len(ta) != region.size:
        raise ValueError(f"reduce expects one value per cell ({region.size}), got {len(ta)}")
    with machine.phase("reduce"):
        if h == w:
            return reduce_2d(machine, _order_block_rowmajor(ta, region, w), region, monoid)

        if h > w:
            # square-block reduce within each w x w block, then a column tree
            ta = _order_block_rowmajor(ta, region, w)
            blocks = reduce_2d(machine, ta, Region(region.row, region.col, w, w), monoid)
            col0 = Region(region.row, region.col, h, 1)
            return _tree_reduce_1d(machine, blocks, col0, stride=w, monoid=monoid)
        # wide case: blocks along the first row
        ta = _order_block_rowmajor(ta, region, h)
        blocks = reduce_2d(machine, ta, Region(region.row, region.col, h, h), monoid)
        row0 = Region(region.row, region.col, 1, w)
        return _tree_reduce_1d(machine, blocks, row0, stride=h, monoid=monoid)


def _order_block_rowmajor(ta: TrackedArray, region: Region, side: int) -> TrackedArray:
    """Group entries by their square block (blocks tile along the long axis)."""
    if region.height >= region.width:
        block_ids = (ta.rows - region.row) // side
    else:
        block_ids = (ta.cols - region.col) // side
    order = np.argsort(block_ids, kind="stable")
    return ta[order]


def _tree_reduce_1d(
    machine: SpatialMachine,
    blocks: TrackedArray,
    line: Region,
    stride: int,
    monoid: Monoid,
) -> TrackedArray:
    """Reverse of :func:`broadcast_1d` over block corners spaced ``stride`` apart.

    Only every ``stride``-th cell of ``line`` holds a block sum; the remaining
    tree nodes act as relays contributing the identity, exactly mirroring the
    broadcast tree's edges (and hence its energy/depth/distance).
    """
    n = line.size
    vertical = line.width == 1

    def coords(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if vertical:
            return line.row + idx, np.full_like(idx, line.col)
        return np.full_like(idx, line.row), line.col + idx

    # plan the broadcast tree levels (pure index arithmetic, no messages)
    levels: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    lo = np.zeros(1, dtype=np.int64)
    hi = np.full(1, n - 1, dtype=np.int64)
    while True:
        rem = hi - lo
        active = rem > 0
        if not active.any():
            break
        lo_a, hi_a = lo[active], hi[active]
        s1 = (rem[active] + 1) // 2
        child_a = lo_a + 1
        child_b_full = lo_a + s1 + 1
        has_b = child_b_full <= hi_a
        child_b = np.where(has_b, child_b_full, -1)
        levels.append((lo_a, child_a, child_b))
        lo = np.concatenate([child_a, child_b_full[has_b]])
        hi = np.concatenate([lo_a + s1, hi_a[has_b]])

    # accumulator over all n line cells: block sums or identity
    acc_payload = monoid.identity(n, like=blocks.payload)
    acc_rows, acc_cols = coords(np.arange(n, dtype=np.int64))
    acc_depth = np.zeros(n, dtype=np.int64)
    acc_dist = np.zeros(n, dtype=np.int64)
    block_idx = np.arange(0, n, stride, dtype=np.int64)
    acc_payload[block_idx] = blocks.payload
    acc_depth[block_idx] = blocks.depth
    acc_dist[block_idx] = blocks.dist
    acc = TrackedArray(machine, acc_payload, acc_rows, acc_cols, acc_depth, acc_dist)

    def scatter(idx: np.ndarray, sub: TrackedArray) -> None:
        acc.payload[idx] = sub.payload
        acc.depth[idx] = sub.depth
        acc.dist[idx] = sub.dist

    for parents, child_a, child_b in reversed(levels):
        a = machine.send(acc[child_a], *coords(parents))
        p = acc[parents]
        payload = monoid(p.payload, a.payload)
        combined = p.combined_with(a, payload=payload)
        has_b = child_b >= 0
        if has_b.any():
            pb = parents[has_b]
            b = machine.send(acc[child_b[has_b]], *coords(pb))
            cb = combined[has_b]
            payload_b = monoid(cb.payload, b.payload)
            merged_b = cb.combined_with(b, payload=payload_b)
            scatter(pb, merged_b)
            scatter(parents[~has_b], combined[~has_b])
        else:
            scatter(parents, combined)
    return acc[np.zeros(1, dtype=np.int64)]


def all_reduce(
    machine: SpatialMachine, ta: TrackedArray, region: Region, monoid: Monoid
) -> TrackedArray:
    """Reduce to the corner then broadcast back: every cell learns the total.

    Returns one value per cell in row-major order (Section VI uses this to
    count active elements).
    """
    with machine.phase("all_reduce"):
        total = reduce(machine, ta, region, monoid)
        return broadcast(machine, total, region)
