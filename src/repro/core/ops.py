"""Associative operators for scans and reductions.

A :class:`Monoid` bundles a vectorized associative binary operation with its
identity element.  Scans additionally exploit *segmented* monoids (paper,
Section IV.C): for any associative ``op`` there is an associative operator on
``(flag, value)`` pairs whose scan restarts at every flagged position, which
lets the very same up-sweep/down-sweep algorithm compute segmented scans.

Segmented payloads are ``(n, 2)`` float64 arrays with column 0 the segment
flag (0.0 / 1.0) and column 1 the value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Monoid",
    "ADD",
    "MAX",
    "MIN",
    "segmented",
    "pack_segmented",
    "unpack_segmented",
]


@dataclass(frozen=True)
class Monoid:
    """A vectorized associative operation with identity.

    ``op(a, b)`` must accept equal-shape NumPy arrays and be elementwise
    associative.  ``commutative`` is informational (reductions may reorder
    operands only when it is set).
    """

    name: str
    op: Callable[[np.ndarray, np.ndarray], np.ndarray]
    identity_scalar: object
    commutative: bool = True

    def identity(self, n: int, like: np.ndarray | None = None) -> np.ndarray:
        """``n`` copies of the identity, shaped like ``like`` rows if given."""
        if like is not None and like.ndim > 1:
            out = np.empty((n,) + like.shape[1:], dtype=like.dtype)
            out[:] = self.identity_scalar
            return out
        dtype = like.dtype if like is not None else np.float64
        return np.full(n, self.identity_scalar, dtype=dtype)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.op(a, b)


ADD = Monoid("add", np.add, 0.0, commutative=True)
MAX = Monoid("max", np.maximum, -np.inf, commutative=True)
MIN = Monoid("min", np.minimum, np.inf, commutative=True)


def pack_segmented(flags: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Pack ``(flags, values)`` into the (n, 2) segmented payload format."""
    out = np.empty((len(values), 2), dtype=np.float64)
    out[:, 0] = np.asarray(flags, dtype=np.float64)
    out[:, 1] = np.asarray(values, dtype=np.float64)
    return out


def unpack_segmented(payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_segmented`: returns ``(flags, values)``."""
    return payload[:, 0] != 0.0, payload[:, 1]


def segmented(base: Monoid) -> Monoid:
    """The segmented operator for ``base`` (Blelloch's construction).

    ``(fa, a) * (fb, b) = (fa | fb,  b if fb else a op b)`` — associative but
    **not** commutative, so scans must combine strictly left-to-right (our
    scan does; see :mod:`repro.core.scan`).
    """

    def op(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        fa, a = x[..., 0], x[..., 1]
        fb, b = y[..., 0], y[..., 1]
        out = np.empty(np.broadcast(x, y).shape, dtype=np.float64)
        out[..., 0] = np.maximum(fa, fb)
        out[..., 1] = np.where(fb != 0.0, b, base.op(a, b))
        return out

    # identity = (no flag, base identity)
    ident = np.array([0.0, base.identity_scalar], dtype=np.float64)

    class _SegMonoid(Monoid):
        def identity(self, n: int, like: np.ndarray | None = None) -> np.ndarray:
            out = np.empty((n, 2), dtype=np.float64)
            out[:] = ident
            return out

    return _SegMonoid(
        name=f"segmented({base.name})",
        op=op,
        identity_scalar=None,
        commutative=False,
    )
