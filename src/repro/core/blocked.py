"""Blocked-memory extension (paper, Section I.D future work).

The paper assumes O(1) words per processing element and names the
generalization to larger local memories as future work: "A promising
direction ... is to generalize our algorithms for cases where local memory
constitutes a significant fraction of total memory, which would be
beneficial for systems with fewer processing elements."

This module implements that generalization for the scan: ``n`` elements are
distributed in blocks of ``B`` onto ``n/B`` processors (a
``sqrt(n/B) x sqrt(n/B)`` subgrid in Z-order).  A blocked scan then runs

1. a free local prefix sum inside every block (local compute costs nothing
   in the model),
2. the Section IV.C energy-optimal scan over the ``n/B`` block totals,
3. a free local fix-up adding each block's exclusive prefix.

Costs: the grid shrinks by ``B``, so energy drops to ``Θ(n/B)`` and distance
to ``Θ(sqrt(n/B))`` while depth stays ``O(log(n/B))`` — the block size is a
pure win for communication at the price of processor count (and of the O(B)
sequential local work the model does not charge).  The ablation bench
``bench_ablation_blocked_scan.py`` sweeps ``B`` and verifies the 1/B energy
law, quantifying how much communication a "fatter" PE buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.geometry import Region
from ..machine.machine import SpatialMachine
from .ops import ADD, Monoid
from .scan import ScanResult, scan
from .validate import check_finite_values

__all__ = ["blocked_scan", "BlockedScanResult", "blocks_region"]


@dataclass
class BlockedScanResult:
    """Result of a blocked scan.

    ``prefix`` is the full inclusive prefix over all ``n`` logical elements
    (NumPy array in input order); ``block_scan`` is the underlying spatial
    scan over block totals, whose TrackedArrays carry the measured metadata.
    """

    prefix: np.ndarray
    block_scan: ScanResult

    def max_depth(self) -> int:
        return self.block_scan.inclusive.max_depth()

    def max_dist(self) -> int:
        return self.block_scan.inclusive.max_dist()


def blocks_region(n: int, block: int, row: int = 0, col: int = 0) -> Region:
    """The square subgrid hosting ``n/block`` blocks (must be a power of 4)."""
    if n % block:
        raise ValueError(f"block size {block} does not divide n={n}")
    nblocks = n // block
    side = 1
    while side * side < nblocks:
        side *= 2
    if side * side != nblocks:
        raise ValueError(f"n/block = {nblocks} must be a power of 4")
    return Region(row, col, side, side)


def blocked_scan(
    machine: SpatialMachine,
    values: np.ndarray,
    block: int,
    monoid: Monoid = ADD,
    region: Region | None = None,
) -> BlockedScanResult:
    """Inclusive prefix-``monoid`` of ``values`` with ``block`` words per PE.

    ``values`` is a 1-D array whose length is ``block * 4^k``; consecutive
    runs of ``block`` elements live on one processor.  With ``block == 1``
    this degenerates to the plain Section IV.C scan.

    Fault-transparent: the prefix array is bit-identical under any
    :class:`~repro.machine.FaultPlan`; recovery only inflates costs.
    """
    values = np.asarray(values, dtype=np.float64)
    check_finite_values(machine, values, "blocked_scan input")
    n = len(values)
    if region is None:
        region = blocks_region(n, block)
    nblocks = n // block
    chunks = values.reshape(nblocks, block)

    if monoid.op is np.add:
        local = np.cumsum(chunks, axis=1)
    elif monoid.op is np.maximum:
        local = np.maximum.accumulate(chunks, axis=1)
    elif monoid.op is np.minimum:
        local = np.minimum.accumulate(chunks, axis=1)
    else:
        local = np.empty_like(chunks)
        local[:, 0] = chunks[:, 0]
        for j in range(1, block):
            local[:, j] = monoid(local[:, j - 1], chunks[:, j])

    totals = machine.place_zorder(local[:, -1].copy(), region)
    with machine.phase("blocked_scan"):
        block_scan = scan(machine, totals, region, monoid)

    carry = block_scan.exclusive.payload.reshape(nblocks, 1)
    if monoid.op in (np.add, np.maximum, np.minimum):
        prefix = monoid(np.broadcast_to(carry, local.shape), local)
    else:
        prefix = np.empty_like(local)
        for j in range(block):
            prefix[:, j] = monoid(carry[:, 0], local[:, j])
    return BlockedScanResult(prefix=prefix.reshape(n), block_scan=block_scan)
