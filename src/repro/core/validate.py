"""Strict-mode input guards shared by the core entry points.

The fault/recovery layer (see ``docs/FAULTS.md``) keeps every primitive
*result-transparent*: retries, detours, and dead-cell sparing change the
measured costs but never the returned values.  That guarantee relies on
payload arithmetic being well-defined, so in strict mode
(``SpatialMachine(strict=True)``) the entry points that ingest raw value
arrays reject NaN up front with an actionable error instead of letting it
propagate through scans and comparators as silent garbage.

``inf`` is deliberately allowed — the sorters and selection use it as
legitimate padding (see ``tests/test_sort_infinities``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_finite_values", "check_symmetric_adjacency"]


def check_finite_values(machine, values: np.ndarray, what: str) -> None:
    """Reject NaN entries of ``values`` when ``machine`` is strict.

    ``what`` names the argument in the error (e.g. ``"sort_values input"``)
    so the failure points at the caller's data, not at machine internals.
    """
    if not getattr(machine, "strict", False):
        return
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.floating):
        return
    bad = np.isnan(values)
    if bad.any():
        idx = int(np.flatnonzero(bad.reshape(-1))[0])
        raise ValueError(
            f"{what} contains NaN (first at flat index {idx}); strict mode "
            f"rejects NaN payloads because they poison comparators and "
            f"prefix sums — filter or impute them before placement"
        )


def check_symmetric_adjacency(matrix, what: str = "adjacency") -> None:
    """Reject structurally asymmetric adjacency matrices — always, not just in
    strict mode.

    The undirected graph algorithms (min-label propagation, BFS relaxation)
    assume every edge is stored in both directions; on directed input they
    silently converge to wrong labels/distances, so asymmetry is a hard
    input error rather than a strict-mode nicety.  ``matrix`` is anything
    with ``rows``/``cols``/``n`` attributes (a
    :class:`~repro.spmv.coo.COOMatrix`); only the sparsity *structure* is
    checked, values may be asymmetric weights.
    """
    rows = np.asarray(matrix.rows, dtype=np.int64)
    cols = np.asarray(matrix.cols, dtype=np.int64)
    n = np.int64(matrix.n)
    forward = np.sort(rows * n + cols)
    backward = np.sort(cols * n + rows)
    if not np.array_equal(forward, backward):
        missing = np.setdiff1d(forward, backward, assume_unique=False)
        first = int(missing[0]) if len(missing) else int(forward[0])
        i, j = divmod(first, int(n))
        raise ValueError(
            f"{what} is not symmetric: edge ({i}, {j}) has no reverse entry; "
            f"undirected graph algorithms need every edge stored in both "
            f"directions — symmetrize the matrix (e.g. A + A.T) first"
        )
