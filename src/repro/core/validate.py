"""Strict-mode input guards shared by the core entry points.

The fault/recovery layer (see ``docs/FAULTS.md``) keeps every primitive
*result-transparent*: retries, detours, and dead-cell sparing change the
measured costs but never the returned values.  That guarantee relies on
payload arithmetic being well-defined, so in strict mode
(``SpatialMachine(strict=True)``) the entry points that ingest raw value
arrays reject NaN up front with an actionable error instead of letting it
propagate through scans and comparators as silent garbage.

``inf`` is deliberately allowed — the sorters and selection use it as
legitimate padding (see ``tests/test_sort_infinities``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_finite_values"]


def check_finite_values(machine, values: np.ndarray, what: str) -> None:
    """Reject NaN entries of ``values`` when ``machine`` is strict.

    ``what`` names the argument in the error (e.g. ``"sort_values input"``)
    so the failure points at the caller's data, not at machine internals.
    """
    if not getattr(machine, "strict", False):
        return
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.floating):
        return
    bad = np.isnan(values)
    if bad.any():
        idx = int(np.flatnonzero(bad.reshape(-1))[0])
        raise ValueError(
            f"{what} contains NaN (first at flat index {idx}); strict mode "
            f"rejects NaN payloads because they poison comparators and "
            f"prefix sums — filter or impute them before placement"
        )
