"""Graph-analytics workload subsystem (see ``docs/GRAPHS.md``).

Three layers:

* :mod:`repro.graphs.generators` — seeded workload graphs (R-MAT, 2D grid,
  power-law configuration model) as validated symmetric COO adjacencies;
* :mod:`repro.graphs.algorithms` — connected components, BFS, and PageRank
  as iterated SpMV/scan compositions on the machine, one
  ``machine.phase("round_###")`` span per iteration;
* :mod:`repro.graphs.reference` — independent host oracles the property
  tests and conformance sweeps compare against.
"""

from .algorithms import (
    GraphConvergenceError,
    PageRankResult,
    bfs_distances,
    connected_components,
    degree_table,
    iteration_costs,
    pagerank,
)
from .generators import (
    GENERATORS,
    generate_graph,
    grid2d_coo,
    powerlaw_coo,
    rmat_coo,
)
from .reference import bfs_reference, cc_reference, pagerank_reference

__all__ = [
    "GraphConvergenceError",
    "PageRankResult",
    "bfs_distances",
    "connected_components",
    "degree_table",
    "iteration_costs",
    "pagerank",
    "GENERATORS",
    "generate_graph",
    "grid2d_coo",
    "powerlaw_coo",
    "rmat_coo",
    "bfs_reference",
    "cc_reference",
    "pagerank_reference",
]
