"""Pure-numpy/host oracles for the machine graph algorithms.

These deliberately do **not** share code paths with
:mod:`repro.graphs.algorithms`: connected components and BFS use classic
flood-fill/frontier traversal over adjacency lists (a different algorithm,
so agreement is evidence rather than tautology), while the PageRank oracle
replays the exact update rule with dense numpy reductions in place of
machine SpMV/scan rounds.

Comparison contract (used by the property tests and CI sweeps):

* ``cc_reference`` / ``bfs_reference`` agree **bit-exactly** with the
  machine versions — min-propagation is carried out in exact arithmetic on
  both sides;
* ``pagerank_reference`` agrees up to floating-point reassociation (the
  machine reduces in tree order, numpy sequentially), so compare with
  ``np.allclose``-style tolerances.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..spmv.coo import COOMatrix
from .algorithms import PageRankResult

__all__ = ["cc_reference", "bfs_reference", "pagerank_reference"]


def _adjacency_lists(adjacency: COOMatrix) -> list[np.ndarray]:
    """Per-vertex neighbor arrays from the (symmetric) COO structure."""
    order = np.argsort(adjacency.rows, kind="stable")
    rows = np.asarray(adjacency.rows)[order]
    cols = np.asarray(adjacency.cols)[order]
    starts = np.searchsorted(rows, np.arange(adjacency.n + 1))
    return [cols[starts[v] : starts[v + 1]] for v in range(adjacency.n)]


def cc_reference(adjacency: COOMatrix) -> np.ndarray:
    """Component labels (minimum vertex id per component) by flood fill."""
    n = adjacency.n
    labels = np.arange(n, dtype=np.int64)
    adj = _adjacency_lists(adjacency)
    seen = np.zeros(n, dtype=bool)
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        stack = [start]
        component = [start]
        while stack:
            v = stack.pop()
            for w in adj[v]:
                if not seen[w]:
                    seen[w] = True
                    stack.append(int(w))
                    component.append(int(w))
        # vertices are visited in ascending start order, so `start` is the
        # minimum id of its component
        labels[component] = start
    return labels


def bfs_reference(adjacency: COOMatrix, source: int) -> np.ndarray:
    """Hop distances from ``source`` by frontier BFS (``inf`` unreachable)."""
    n = adjacency.n
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    adj = _adjacency_lists(adjacency)
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in adj[v]:
            if np.isinf(dist[w]):
                dist[w] = dist[v] + 1.0
                queue.append(int(w))
    return dist


def pagerank_reference(
    adjacency: COOMatrix,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_rounds: int = 50,
) -> PageRankResult:
    """Replay of the machine PageRank update rule with numpy reductions."""
    n = adjacency.n
    ranks = np.full(n, 1.0 / n)
    if adjacency.nnz == 0:
        return PageRankResult(ranks=ranks, rounds=0, converged=True, residual=0.0)
    degrees = np.zeros(n)
    np.add.at(degrees, adjacency.rows, adjacency.vals)
    walk_vals = adjacency.vals / degrees[adjacency.cols]
    rounds = 0
    converged = False
    residual = np.inf
    for r in range(max_rounds):
        y = np.zeros(n)
        np.add.at(y, adjacency.rows, walk_vals * ranks[adjacency.cols])
        outflow = float(y.sum())
        dangling = max(0.0, 1.0 - outflow)
        mid = (1.0 - damping) / n + damping * y + damping * dangling / n
        new_ranks = mid / float(mid.sum())
        residual = float(np.max(np.abs(new_ranks - ranks)))
        ranks = new_ranks
        rounds = r + 1
        if residual <= tol:
            converged = True
            break
    return PageRankResult(ranks=ranks, rounds=rounds, converged=converged, residual=residual)
