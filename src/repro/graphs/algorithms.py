"""Graph analytics as iterated SpMV/scan compositions on the spatial machine.

The paper motivates its primitives with graph workloads (SpMV "is central
to graph algorithms"); this module composes them into the classic trio,
each one a loop of semiring :func:`~repro.spmv.spmv.spmv_spatial` rounds:

* :func:`connected_components` — min-label propagation over the
  (MIN, select-right) semiring: ``x_i <- min(x_i, min_{j~i} x_j)``;
* :func:`bfs_distances` — BFS relaxation over the (MIN, +1) semiring:
  ``d_i <- min(d_i, 1 + min_{j~i} d_j)``;
* :func:`pagerank` — power iteration ``r <- (1-d)/n + d W r`` with the
  column-stochastic walk matrix, dangling-mass teleport, and a *scalar scan
  normalization*: the per-round total is computed on the machine with
  :func:`~repro.core.scan.scan_any` rather than trusted host-side.

Every iteration runs inside its own ``machine.phase("round_###")`` span
nested under the algorithm's phase, so the :class:`~repro.machine.CostTree`
attributes energy/depth round by round and the per-iteration rows sum
exactly to the flat :class:`~repro.machine.MachineStats` counters (the
tree's root-inclusive invariant).  Each round costs Θ(m^{3/2}) energy and
polylog depth (Theorem VIII.2), which the ``graph`` benchmark suite fits
empirically.

Fixed-point loops stop on convergence; the round cap (default ``n + 1``,
always enough for label propagation and BFS on a *symmetric* adjacency) is
a hard error when exhausted — adjacency symmetry is validated up front via
:func:`repro.core.validate.check_symmetric_adjacency`, so hitting the cap
means the input violated the model, not that the answer is "almost done".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ops import ADD, MIN
from ..core.scan import scan_any
from ..core.validate import check_symmetric_adjacency
from ..machine.machine import SpatialMachine
from ..machine.metrics import CostTree
from ..spmv.coo import COOMatrix
from ..spmv.spmv import spmv_spatial

__all__ = [
    "GraphConvergenceError",
    "PageRankResult",
    "connected_components",
    "bfs_distances",
    "pagerank",
    "degree_table",
    "iteration_costs",
]

#: per-round phase name template (zero-padded so tree order is round order)
ROUND_PHASE = "round_{:03d}"


class GraphConvergenceError(RuntimeError):
    """An iterated graph algorithm exhausted its round cap before reaching a
    fixed point."""

    def __init__(self, algo: str, rounds: int, hint: str) -> None:
        super().__init__(f"{algo} did not converge within {rounds} round(s); {hint}")
        self.algo = algo
        self.rounds = rounds


def _round_cap(max_rounds: int | None, n: int, algo: str) -> int:
    cap = (n + 1) if max_rounds is None else int(max_rounds)
    if cap < 1:
        raise ValueError(f"{algo} needs max_rounds >= 1, got {max_rounds}")
    return cap


def connected_components(
    machine: SpatialMachine,
    adjacency: COOMatrix,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Component labels (the minimum vertex id in each component).

    Min-label propagation until a fixed point: each round is one
    (MIN, select-right) semiring SpMV plus a local element-wise min with the
    current labels, so a graph with maximum component diameter D converges
    in at most D + 1 rounds.  The default cap ``n + 1`` always suffices on
    validated symmetric input; exhausting an explicit smaller ``max_rounds``
    raises :class:`GraphConvergenceError` instead of returning wrong labels.
    """
    check_symmetric_adjacency(adjacency, "connected_components adjacency")
    n = adjacency.n
    labels = np.arange(n, dtype=np.float64)
    if adjacency.nnz == 0:
        return labels.astype(np.int64)
    cap = _round_cap(max_rounds, n, "connected_components")
    with machine.phase("cc"):
        for r in range(cap):
            with machine.phase(ROUND_PHASE.format(r)):
                y = spmv_spatial(
                    machine,
                    adjacency,
                    labels,
                    combine=MIN,
                    multiply=lambda a, x: x,
                )
            new_labels = np.minimum(labels, y.payload)
            if np.array_equal(new_labels, labels):
                return labels.astype(np.int64)
            labels = new_labels
    raise GraphConvergenceError(
        "connected_components",
        cap,
        "labels were still shrinking — raise max_rounds (the default n + 1 "
        "cap always converges on symmetric adjacency)",
    )


def bfs_distances(
    machine: SpatialMachine,
    adjacency: COOMatrix,
    source: int,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Hop distances from ``source`` (``inf`` for unreachable vertices).

    Each round relaxes ``d_i <- min(d_i, 1 + min_{j~i} d_j)`` with one
    (MIN, +1)-semiring SpMV; the fixed point is reached after
    eccentricity(source) + 1 rounds.  Round-cap semantics match
    :func:`connected_components`.
    """
    check_symmetric_adjacency(adjacency, "bfs_distances adjacency")
    n = adjacency.n
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    if adjacency.nnz == 0:
        return dist
    cap = _round_cap(max_rounds, n, "bfs_distances")
    with machine.phase("bfs"):
        for r in range(cap):
            with machine.phase(ROUND_PHASE.format(r)):
                y = spmv_spatial(
                    machine,
                    adjacency,
                    dist,
                    combine=MIN,
                    multiply=lambda a, x: x + 1.0,
                )
            new_dist = np.minimum(dist, y.payload)
            if np.array_equal(new_dist, dist):
                return dist
            dist = new_dist
    raise GraphConvergenceError(
        "bfs_distances",
        cap,
        "distances were still relaxing — raise max_rounds (the default "
        "n + 1 cap always converges on symmetric adjacency)",
    )


@dataclass(frozen=True)
class PageRankResult:
    """Outcome of a :func:`pagerank` run."""

    ranks: np.ndarray
    rounds: int
    converged: bool
    residual: float


def pagerank(
    machine: SpatialMachine,
    adjacency: COOMatrix,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_rounds: int = 50,
) -> PageRankResult:
    """PageRank by power iteration: ADD-semiring SpMV rounds with scalar
    scan normalization and dangling-mass teleport.

    The walk matrix ``W`` divides each adjacency entry by its column's
    (weighted) degree — degrees are themselves measured on the machine with
    one ADD-semiring SpMV over the all-ones vector (the ``degrees`` phase).
    Every round then computes ``y = W r`` (one SpMV), measures the surviving
    outflow with a machine-side scan (mass lost to dangling vertices
    teleports uniformly), applies teleport ``(1 - damping)/n``, and
    re-normalizes by a second scalar scan total.

    Stops when ``max|r' - r| <= tol`` or after ``max_rounds`` rounds; unlike
    the fixed-point algorithms, a tolerance miss is reported via
    ``converged=False`` rather than raised — power iteration improves
    monotonically, so the final iterate is still the best estimate (pass
    ``tol=0.0`` to run exactly ``max_rounds`` rounds).
    """
    check_symmetric_adjacency(adjacency, "pagerank adjacency")
    if not 0.0 <= damping < 1.0:
        raise ValueError(f"damping must be in [0, 1), got {damping}")
    if max_rounds < 1:
        raise ValueError(f"pagerank needs max_rounds >= 1, got {max_rounds}")
    n = adjacency.n
    ranks = np.full(n, 1.0 / n)
    if adjacency.nnz == 0:
        return PageRankResult(ranks=ranks, rounds=0, converged=True, residual=0.0)

    with machine.phase("pagerank"):
        with machine.phase("degrees"):
            degrees = spmv_spatial(machine, adjacency, np.ones(n), combine=ADD).payload.copy()
        walk = COOMatrix(
            adjacency.rows,
            adjacency.cols,
            adjacency.vals / degrees[adjacency.cols],
            n,
        )
        rounds = 0
        converged = False
        residual = np.inf
        for r in range(max_rounds):
            with machine.phase(ROUND_PHASE.format(r)):
                y = spmv_spatial(machine, walk, ranks, combine=ADD)
                with machine.phase("normalize"):
                    outflow = float(scan_any(machine, y.payload)[-1])
                    dangling = max(0.0, 1.0 - outflow)
                    mid = (1.0 - damping) / n + damping * y.payload + damping * dangling / n
                    total = float(scan_any(machine, mid)[-1])
            new_ranks = mid / total
            residual = float(np.max(np.abs(new_ranks - ranks)))
            ranks = new_ranks
            rounds = r + 1
            if residual <= tol:
                converged = True
                break
    return PageRankResult(ranks=ranks, rounds=rounds, converged=converged, residual=residual)


def degree_table(machine: SpatialMachine, adjacency: COOMatrix) -> np.ndarray:
    """Vertex degrees: one ADD-semiring SpMV with the all-ones vector."""
    ones = np.ones(adjacency.n)
    with machine.phase("degrees"):
        y = spmv_spatial(machine, adjacency, ones, combine=ADD)
    return np.rint(y.payload).astype(np.int64)


def iteration_costs(tree: CostTree, algo: str) -> list[dict]:
    """Per-round cost rows of one algorithm run, in round order.

    Reads the ``round_###`` spans nested under phase ``algo`` ("cc", "bfs"
    or "pagerank") out of the machine's :class:`CostTree`; each row carries
    the round index plus that span's *inclusive* energy/messages and the
    depth/distance high-water marks observed during the round.
    """
    node = tree.node(algo)
    if node is None:
        return []
    rows = []
    for name in sorted(node.children):
        if not name.startswith("round_"):
            continue
        inc = node.children[name].inclusive_cost()
        rows.append(
            {
                "round": int(name.split("_", 1)[1]),
                "energy": inc["energy"],
                "messages": inc["messages"],
                "max_depth": inc["max_depth"],
                "max_distance": inc["max_distance"],
            }
        )
    return rows
