"""Seeded graph generators for the graph-analytics workload suite.

Every generator returns a validated **symmetric, loop-free, unit-weight**
:class:`~repro.spmv.coo.COOMatrix` adjacency — the input contract of the
iterated-SpMV algorithms in :mod:`repro.graphs.algorithms` (min-label
propagation and BFS silently produce wrong answers on directed input, so
symmetry is checked at construction *and* again at algorithm entry via
:func:`repro.core.validate.check_symmetric_adjacency`).

Three workload families cover the paper's "SpMV is central to graph
algorithms" motivation from different ends of the irregularity spectrum:

* :func:`rmat_coo` — Kronecker/R-MAT recursive quadrant sampling
  (Graph500-style skewed degrees, small diameter);
* :func:`grid2d_coo` — the 2D mesh (regular degrees, Θ(√n) diameter, the
  worst case for round counts);
* :func:`powerlaw_coo` — a configuration-model graph with a power-law
  degree sequence (hub-dominated traffic, the profiler stress case).

All randomness flows through the explicit ``rng`` (the repo-wide
determinism contract), so a ``(kind, n, seed)`` triple fully identifies a
graph across the runner cache, the service, and CI baselines.
"""

from __future__ import annotations

import numpy as np

from ..core.validate import check_symmetric_adjacency
from ..spmv.coo import COOMatrix

__all__ = [
    "GENERATORS",
    "rmat_coo",
    "grid2d_coo",
    "powerlaw_coo",
    "generate_graph",
]


def _symmetric_adjacency(rows: np.ndarray, cols: np.ndarray, n: int) -> COOMatrix:
    """Symmetrize, drop self-loops, deduplicate, and set unit weights.

    An empty edge set degenerates to the single edge ``(0, 1)`` so the SpMV
    entry region is never empty (mirrors :func:`graph_adjacency_coo`).
    """
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    if len(rows) == 0:
        rows = np.array([0], dtype=np.int64)
        cols = np.array([min(1, n - 1)], dtype=np.int64)
    both_r = np.concatenate([rows, cols])
    both_c = np.concatenate([cols, rows])
    key = np.unique(both_r * np.int64(n) + both_c)
    mat = COOMatrix(key // n, key % n, np.ones(len(key)), n)
    check_symmetric_adjacency(mat, "generated adjacency")
    return mat


def rmat_coo(
    n: int,
    rng: np.random.Generator,
    edge_factor: int = 4,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> COOMatrix:
    """R-MAT recursive-quadrant sampler (Chakrabarti et al. / Graph500).

    Draws ``edge_factor * n`` directed edges by descending ``ceil(log2 n)``
    levels of the adjacency matrix, choosing a quadrant per level with
    probabilities ``(a, b, c, 1-a-b-c)``; endpoints outside ``[0, n)`` (when
    ``n`` is not a power of two) are folded back with a modulo.  The result
    is symmetrized and deduplicated, so the realized edge count is an upper
    bound — skewed quadrant weights produce the heavy-tailed degrees and
    small diameter typical of social/web graphs.
    """
    if n < 2:
        raise ValueError(f"rmat needs n >= 2, got {n}")
    if not 0.0 < a + b + c < 1.0:
        raise ValueError(f"rmat quadrant probabilities must sum below 1, got {a + b + c}")
    scale = max(1, int(np.ceil(np.log2(n))))
    nedges = max(1, edge_factor * n)
    rows = np.zeros(nedges, dtype=np.int64)
    cols = np.zeros(nedges, dtype=np.int64)
    for _ in range(scale):
        u = rng.random(nedges)
        row_bit = (u >= a + b).astype(np.int64)
        col_bit = ((u >= a) & (u < a + b) | (u >= a + b + c)).astype(np.int64)
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit
    return _symmetric_adjacency(rows % n, cols % n, n)


def grid2d_coo(n: int) -> COOMatrix:
    """The ``side x side`` 2D mesh graph (``n = side**2`` vertices).

    Deterministic — no rng parameter on purpose: the mesh is the
    fixed-topology baseline whose Θ(√n) diameter maximizes the round count
    of label propagation and BFS.
    """
    side = int(np.sqrt(n))
    if side * side != n or n < 4:
        raise ValueError(f"grid2d needs a perfect-square n >= 4, got {n}")
    idx = np.arange(n, dtype=np.int64).reshape(side, side)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    rows = np.concatenate([right[0], down[0]])
    cols = np.concatenate([right[1], down[1]])
    return _symmetric_adjacency(rows, cols, n)


def powerlaw_coo(
    n: int,
    rng: np.random.Generator,
    gamma: float = 2.5,
    min_degree: int = 1,
) -> COOMatrix:
    """Configuration-model graph with a power-law degree sequence.

    Degrees are drawn by inverse-CDF sampling ``deg ~ min_degree *
    u^{-1/(gamma-1)}`` (capped at ``n - 1``), half-edge stubs are shuffled
    and paired, then self-loops and multi-edges are discarded — the standard
    erased configuration model.  ``gamma`` around 2-3 gives the hub-heavy
    shape that stresses segmented broadcasts with long same-column runs.
    """
    if n < 2:
        raise ValueError(f"powerlaw needs n >= 2, got {n}")
    if gamma <= 1.0:
        raise ValueError(f"powerlaw exponent must exceed 1, got {gamma}")
    u = rng.random(n)
    raw = np.floor(min_degree * u ** (-1.0 / (gamma - 1.0))).astype(np.int64)
    degrees = np.minimum(raw, n - 1)
    if degrees.sum() % 2:
        degrees[int(np.argmax(degrees))] += 1 if degrees.max() < n - 1 else -1
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = len(stubs) // 2
    return _symmetric_adjacency(stubs[:half], stubs[half : 2 * half], n)


def _rmat(n: int, rng: np.random.Generator) -> COOMatrix:
    return rmat_coo(n, rng)


def _grid(n: int, rng: np.random.Generator) -> COOMatrix:
    return grid2d_coo(n)


def _powerlaw(n: int, rng: np.random.Generator) -> COOMatrix:
    return powerlaw_coo(n, rng)


#: generator kind -> ``fn(n, rng) -> COOMatrix`` (the bench/CLI dispatch table)
GENERATORS = {
    "rmat": _rmat,
    "grid": _grid,
    "powerlaw": _powerlaw,
}


def generate_graph(kind: str, n: int, rng: np.random.Generator) -> COOMatrix:
    """Materialize one named workload graph on ``n`` vertices."""
    try:
        fn = GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown graph generator {kind!r}; have {', '.join(GENERATORS)}"
        ) from None
    return fn(n, rng)
