"""PRAM substrate and its Spatial Computer simulation (paper, Section VII)."""

from .pram import NO_ACCESS, ConflictError, PRAMProgram, run_reference
from .programs import (
    FanInMaxCRCW,
    ListRankingCRCW,
    PrefixDoublingScanEREW,
    RandomConcurrentProgram,
    RandomExclusiveProgram,
    SpMVCRCW,
    TreeSumEREW,
)
from .simulate import SimulationLayout, simulate, simulate_crcw, simulate_erew

__all__ = [
    "NO_ACCESS",
    "ConflictError",
    "PRAMProgram",
    "run_reference",
    "FanInMaxCRCW",
    "ListRankingCRCW",
    "RandomConcurrentProgram",
    "RandomExclusiveProgram",
    "PrefixDoublingScanEREW",
    "SpMVCRCW",
    "TreeSumEREW",
    "SimulationLayout",
    "simulate",
    "simulate_crcw",
    "simulate_erew",
]
