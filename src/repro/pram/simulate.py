"""Spatial Computer simulation of PRAM programs (paper, Section VII).

PRAM processors live in a ``sqrt(p) x sqrt(p)`` subgrid (Z-order indexed);
the shared memory cells in a ``sqrt(m) x sqrt(m)`` subgrid next to it
(row-major indexed).

* **EREW** (Lemma VII.1): every access is a direct request/reply message
  pair, ``O(1)`` depth and ``O(sqrt(p) + sqrt(m))`` distance per step, so a
  ``T``-step program costs ``O(p (sqrt(p)+sqrt(m)) T)`` energy, ``O(T)``
  depth, ``O((sqrt(p)+sqrt(m)) T)`` distance.

* **CRCW** (Lemma VII.2): concurrency is resolved by *sorting*.  Reads: sort
  ``(cell, pid)`` tuples with the energy-optimal 2D Mergesort, let each run's
  leader fetch the cell, spread the value with a segmented broadcast (a
  parallel scan), sort back by pid and deliver.  Writes: sort ``(cell, pid)``
  and let each run's leader (the lowest pid — the deterministic "arbitrary"
  winner) perform the store.  Depth grows to ``O(T log^3 p)``; energy and
  distance match the EREW bound.

Both simulators thread every processor's dependency chain through a *token*
tracked array, so measured depth reflects "step t+1 waits for step t".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.scan import segmented_broadcast
from ..core.sorting.mergesort2d import mergesort_2d
from ..machine.geometry import Region
from ..machine.machine import SpatialMachine, TrackedArray
from ..machine.zorder import zorder_coords
from .pram import NO_ACCESS, PRAMProgram, _check_exclusive

__all__ = [
    "SimulationLayout",
    "simulate_erew",
    "simulate_crcw",
    "simulate",
    "pad_processors",
]


class _PaddedProgram(PRAMProgram):
    """Wrap a program with idle processors so p fills a power-of-4 square.

    Idle processors never read or write; the wrapped program's state arrays
    are views into a prefix of the padded ones.
    """

    def __init__(self, inner: PRAMProgram, target: int) -> None:
        if target < inner.processors:
            raise ValueError("target below the program's processor count")
        self.inner = inner
        self.processors = target
        self.memory_cells = inner.memory_cells
        self.steps = inner.steps
        self._p = inner.processors

    def initial_memory(self) -> np.ndarray:
        return self.inner.initial_memory()

    def initial_state(self) -> dict[str, np.ndarray]:
        return self.inner.initial_state()

    def read_addrs(self, t, state):
        addrs = np.full(self.processors, NO_ACCESS, dtype=np.int64)
        addrs[: self._p] = self.inner.read_addrs(t, state)
        return addrs

    def step(self, t, state, read_values):
        waddr_inner, wval_inner = self.inner.step(t, state, read_values[: self._p])
        waddr = np.full(self.processors, NO_ACCESS, dtype=np.int64)
        wval = np.zeros(self.processors)
        waddr[: self._p] = waddr_inner
        wval[: self._p] = wval_inner
        return waddr, wval


def pad_processors(program: PRAMProgram) -> PRAMProgram:
    """Pad a program with idle processors up to the next power of 4
    (what :func:`simulate_crcw` needs).  Returns the program unchanged if it
    already fits."""
    target = 1
    while target < program.processors:
        target *= 4
    if target == program.processors:
        return program
    return _PaddedProgram(program, target)


@dataclass(frozen=True)
class SimulationLayout:
    """Where the simulated processors and memory live on the grid."""

    proc_region: Region
    mem_region: Region

    @classmethod
    def default(cls, p: int, m: int) -> "SimulationLayout":
        ps = 1
        while ps * ps < p:
            ps *= 2
        ms = 1
        while ms * ms < m:
            ms *= 2
        return cls(
            proc_region=Region(0, 0, ps, ps),
            mem_region=Region(0, ps, ms, ms),
        )


class _SimState:
    """Shared bookkeeping for both simulation flavours."""

    def __init__(
        self, machine: SpatialMachine, program: PRAMProgram, layout: SimulationLayout | None
    ) -> None:
        p, m = program.processors, program.memory_cells
        self.machine = machine
        self.program = program
        self.layout = layout or SimulationLayout.default(p, m)
        pr, pc = zorder_coords(self.layout.proc_region)
        self.proc_rows, self.proc_cols = pr[:p], pc[:p]
        self.mem_rows, self.mem_cols = self.layout.mem_region.rowmajor_coords(m)
        self.memory = machine.place(
            np.asarray(program.initial_memory(), dtype=np.float64),
            self.mem_rows,
            self.mem_cols,
        )
        # token = each processor's dependency chain carrier
        self.token = machine.place(
            np.arange(p, dtype=np.float64), self.proc_rows, self.proc_cols
        )
        self.state = program.initial_state()

    def update_token(self, idx: np.ndarray, arrived: TrackedArray) -> None:
        self.token.depth[idx] = np.maximum(self.token.depth[idx], arrived.depth)
        self.token.dist[idx] = np.maximum(self.token.dist[idx], arrived.dist)

    def commit_writes(self, waddr: np.ndarray, messages: TrackedArray, widx: np.ndarray) -> None:
        self.memory.payload[waddr] = messages.payload
        self.memory.depth[waddr] = messages.depth
        self.memory.dist[waddr] = messages.dist
        del widx  # kept for symmetry with callers


def simulate_erew(
    machine: SpatialMachine,
    program: PRAMProgram,
    layout: SimulationLayout | None = None,
) -> tuple[TrackedArray, dict[str, np.ndarray]]:
    """Lemma VII.1: direct request/reply simulation of an EREW program.

    Raises :class:`~repro.pram.pram.ConflictError` if the program is not
    actually exclusive.  Returns the final memory (a tracked array at the
    memory subgrid) and the processors' final private state.
    """
    sim = _SimState(machine, program, layout)
    p = program.processors
    with machine.phase("pram_erew"):
        for t in range(program.steps):
            raddr = np.asarray(program.read_addrs(t, sim.state), dtype=np.int64)
            _check_exclusive(raddr, "read", t)
            vals = np.full(p, np.nan)
            reading = np.nonzero(raddr != NO_ACCESS)[0]
            if len(reading):
                addr = raddr[reading]
                with machine.phase("read"):
                    # request: processor -> memory cell
                    req = machine.send(
                        sim.token[reading], sim.mem_rows[addr], sim.mem_cols[addr]
                    )
                    # reply: cell value (depends on its last write and the request)
                    reply = sim.memory[addr].combined_with(
                        req, payload=sim.memory.payload[addr]
                    )
                    back = machine.send(
                        reply, sim.proc_rows[reading], sim.proc_cols[reading]
                    )
                vals[reading] = back.payload
                sim.update_token(reading, back)

            waddr, wval = program.step(t, sim.state, vals)
            waddr = np.asarray(waddr, dtype=np.int64)
            wval = np.asarray(wval, dtype=np.float64)
            _check_exclusive(waddr, "write", t)
            writing = np.nonzero(waddr != NO_ACCESS)[0]
            if len(writing):
                addr = waddr[writing]
                with machine.phase("write"):
                    msg = machine.send(
                        sim.token[writing].with_payload(wval[writing]),
                        sim.mem_rows[addr],
                        sim.mem_cols[addr],
                    )
                sim.commit_writes(addr, msg, writing)
    return sim.memory, sim.state


def _sorted_tuples(
    machine: SpatialMachine,
    sim: _SimState,
    addr: np.ndarray,
    extra: np.ndarray | None,
) -> TrackedArray:
    """Sort (cell, pid[, value]) tuples over the processor subgrid.

    Non-participating processors contribute ``(+inf, pid)`` sentinels so the
    sorter has one wire per cell; sentinels sort to the back.
    """
    p = sim.program.processors
    region = sim.layout.proc_region
    k = np.where(addr != NO_ACCESS, addr.astype(np.float64), np.inf)
    cols = [k, np.arange(p, dtype=np.float64)]
    if extra is not None:
        cols.append(extra)
    payload = np.stack(cols, axis=1)
    ta = sim.token.with_payload(payload)
    # the sorter wants row-major entry order over the full square
    full = region.size
    if full > p:
        pad_rows, pad_cols = region.rowmajor_coords(full)
        # processors sit on the Z-order cells == all cells; p == full required
        raise ValueError("processor count must fill its square region")
    order = region.rowmajor_index(ta.rows, ta.cols)
    ta = ta[np.argsort(order, kind="stable")]
    return mergesort_2d(machine, ta, region, key_cols=2)


def _leaders(machine: SpatialMachine, sorted_t: TrackedArray) -> tuple[np.ndarray, TrackedArray]:
    """Flag the first tuple of each equal-cell run via a neighbour message."""
    n = len(sorted_t)
    shifted = machine.send(sorted_t[: n - 1], sorted_t.rows[1:], sorted_t.cols[1:])
    flags = np.ones(n, dtype=bool)
    flags[1:] = sorted_t.payload[1:, 0] != shifted.payload[:, 0]
    informed = sorted_t.copy()
    informed.depth[1:] = np.maximum(informed.depth[1:], shifted.depth)
    informed.dist[1:] = np.maximum(informed.dist[1:], shifted.dist)
    return flags, informed


def simulate_crcw(
    machine: SpatialMachine,
    program: PRAMProgram,
    layout: SimulationLayout | None = None,
) -> tuple[TrackedArray, dict[str, np.ndarray]]:
    """Lemma VII.2: sort-based simulation of a CRCW program.

    Concurrent reads are served once per cell and spread by a segmented
    broadcast; concurrent writes are resolved to the lowest pid.  Programs
    whose processor count is not a power of 4 are padded with idle
    processors (:func:`pad_processors`) so the sorters have one wire per
    cell of the processor subgrid.
    """
    program = pad_processors(program)
    sim = _SimState(machine, program, layout)
    p = program.processors
    region = sim.layout.proc_region
    if region.size != p:
        raise ValueError("layout's processor region does not fit the (padded) program")
    zr, zc = zorder_coords(region)

    for t in range(program.steps):
        # ---------------- read substep ----------------
        raddr = np.asarray(program.read_addrs(t, sim.state), dtype=np.int64)
        vals = np.full(p, np.nan)
        if (raddr != NO_ACCESS).any():
            srt = _sorted_tuples(machine, sim, raddr, None)
            flags, informed = _leaders(machine, srt)
            real = informed.payload[:, 0] != np.inf
            fetch = np.nonzero(flags & real)[0]
            cells = informed.payload[fetch, 0].astype(np.int64)
            req = machine.send(
                informed[fetch], sim.mem_rows[cells], sim.mem_cols[cells]
            )
            reply = sim.memory[cells].combined_with(
                req, payload=sim.memory.payload[cells]
            )
            back = machine.send(reply, informed.rows[fetch], informed.cols[fetch])
            # value column: leaders hold the fetched value, others a hole
            carried = np.full(p, np.nan)
            carried[fetch] = back.payload
            with_val = informed.with_payload(
                np.concatenate([informed.payload, carried[:, None]], axis=1)
            )
            with_val.depth[fetch] = np.maximum(with_val.depth[fetch], back.depth)
            with_val.dist[fetch] = np.maximum(with_val.dist[fetch], back.dist)
            # segmented broadcast along the sorted order (permute to Z first)
            zed = machine.send(with_val, zr, zc)
            spread = segmented_broadcast(
                machine, flags.astype(np.float64), zed.with_payload(zed.payload[:, 2]), region
            )
            tuples_iv = zed.combined_with(
                spread,
                payload=np.stack([zed.payload[:, 1], spread.payload], axis=1),
            )
            # sort by pid and deliver: pid i's tuple lands on Z-position i
            order = region.rowmajor_index(tuples_iv.rows, tuples_iv.cols)
            tuples_iv = tuples_iv[np.argsort(order, kind="stable")]
            by_pid = mergesort_2d(machine, tuples_iv, region, key_cols=1)
            delivered = machine.send(by_pid, zr, zc)
            pid = np.rint(delivered.payload[:, 0]).astype(np.int64)
            vals[pid] = delivered.payload[:, 1]
            sim.update_token(pid, delivered)
            reading = raddr != NO_ACCESS
            vals[~reading] = np.nan

        # ---------------- compute + write substep ----------------
        waddr, wval = program.step(t, sim.state, vals)
        waddr = np.asarray(waddr, dtype=np.int64)
        wval = np.asarray(wval, dtype=np.float64)
        if (waddr != NO_ACCESS).any():
            srt = _sorted_tuples(machine, sim, waddr, wval.astype(np.float64))
            flags, informed = _leaders(machine, srt)
            real = informed.payload[:, 0] != np.inf
            win = np.nonzero(flags & real)[0]
            cells = informed.payload[win, 0].astype(np.int64)
            msg = machine.send(
                informed[win].with_payload(informed.payload[win, 2]),
                sim.mem_rows[cells],
                sim.mem_cols[cells],
            )
            sim.commit_writes(cells, msg, win)
    return sim.memory, sim.state


def simulate(
    machine: SpatialMachine,
    program: PRAMProgram,
    mode: str = "EREW",
    layout: SimulationLayout | None = None,
) -> tuple[TrackedArray, dict[str, np.ndarray]]:
    """Dispatch to :func:`simulate_erew` or :func:`simulate_crcw`."""
    if mode == "EREW":
        return simulate_erew(machine, program, layout)
    if mode == "CRCW":
        return simulate_crcw(machine, program, layout)
    raise ValueError(f"unknown PRAM mode {mode!r}")
