"""Ready-made PRAM programs (substrate workloads for Section VII).

* :class:`TreeSumEREW` — parallel reduction: ``log p`` rounds of pairwise
  adds over the memory array; strictly exclusive accesses.
* :class:`PrefixDoublingScanEREW` — Hillis-Steele prefix sum by pointer
  doubling (work-inefficient but exclusive and ``log n`` steps).
* :class:`FanInMaxCRCW` — every processor reads the *same* cell (stress for
  the concurrent-read machinery) and the winners write back concurrently
  (stress for arbitrary-write resolution).
* :class:`SpMVCRCW` — the Section VIII baseline: one processor per non-zero
  reads ``x[col]`` (concurrent reads on shared columns), forms the product,
  then a segmented pointer-jumping sum per row; row leaders store the output.
"""

from __future__ import annotations

import numpy as np

from .pram import NO_ACCESS, PRAMProgram

__all__ = [
    "TreeSumEREW",
    "PrefixDoublingScanEREW",
    "FanInMaxCRCW",
    "SpMVCRCW",
    "ListRankingCRCW",
    "RandomExclusiveProgram",
    "RandomConcurrentProgram",
]


class TreeSumEREW(PRAMProgram):
    """Sum ``values`` with a binary reduction tree; result in cell 0.

    Round ``t``: processor ``i < p / 2^{t+1}`` reads cell ``i + p/2^{t+1}``
    and adds it into its accumulator, then writes the accumulator to cell
    ``i``.  All reads and writes are exclusive.
    """

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        p = len(values)
        if p & (p - 1):
            raise ValueError("TreeSumEREW needs a power-of-two input")
        self.values = values
        self.processors = p
        self.memory_cells = p
        self.steps = int(np.log2(p)) if p > 1 else 0

    def initial_memory(self) -> np.ndarray:
        return self.values.copy()

    def initial_state(self) -> dict[str, np.ndarray]:
        return {"acc": self.values.copy()}

    def read_addrs(self, t: int, state: dict[str, np.ndarray]) -> np.ndarray:
        p = self.processors
        half = p >> (t + 1)
        addrs = np.full(p, NO_ACCESS, dtype=np.int64)
        i = np.arange(half)
        addrs[i] = i + half
        return addrs

    def step(self, t, state, read_values):
        p = self.processors
        half = p >> (t + 1)
        state["acc"][:half] += read_values[:half]
        waddr = np.full(p, NO_ACCESS, dtype=np.int64)
        waddr[:half] = np.arange(half)
        return waddr, state["acc"]


class PrefixDoublingScanEREW(PRAMProgram):
    """Hillis-Steele inclusive prefix sum: cell ``i`` ends as ``sum(x[:i+1])``.

    Round ``t``: processor ``i >= 2^t`` reads cell ``i - 2^t`` (exclusive:
    distinct sources) and adds it into its accumulator, writing back to cell
    ``i``.
    """

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        p = len(values)
        if p & (p - 1):
            raise ValueError("PrefixDoublingScanEREW needs a power-of-two input")
        self.values = values
        self.processors = p
        self.memory_cells = p
        self.steps = int(np.log2(p)) if p > 1 else 0

    def initial_memory(self) -> np.ndarray:
        return self.values.copy()

    def initial_state(self) -> dict[str, np.ndarray]:
        return {"acc": self.values.copy()}

    def read_addrs(self, t, state):
        p = self.processors
        off = 1 << t
        addrs = np.full(p, NO_ACCESS, dtype=np.int64)
        i = np.arange(off, p)
        addrs[i] = i - off
        return addrs

    def step(self, t, state, read_values):
        p = self.processors
        off = 1 << t
        state["acc"][off:] += read_values[off:]
        waddr = np.full(p, NO_ACCESS, dtype=np.int64)
        waddr[off:] = np.arange(off, p)
        return waddr, state["acc"]


class FanInMaxCRCW(PRAMProgram):
    """All processors read cell 0, then every processor whose private value
    beats it writes its value there (arbitrary CRCW, lowest pid wins).

    After round ``r`` cell 0 holds the ``r``-th left-to-right record of the
    value sequence, so ``rounds = #records`` reaches the maximum (``O(log p)``
    in expectation for random inputs).  A single round already exercises
    p-way concurrent reads and concurrent writes.
    """

    @staticmethod
    def records_needed(values: np.ndarray) -> int:
        """Number of rounds until cell 0 holds ``values.max()``."""
        best = -np.inf
        count = 0
        for v in values:
            if v > best:
                best = v
                count += 1
        return count

    def __init__(self, values: np.ndarray, rounds: int = 2) -> None:
        self.values = np.asarray(values, dtype=np.float64)
        self.processors = len(self.values)
        self.memory_cells = 1
        self.steps = rounds

    def initial_memory(self) -> np.ndarray:
        return np.array([-np.inf])

    def initial_state(self) -> dict[str, np.ndarray]:
        return {"v": self.values.copy()}

    def read_addrs(self, t, state):
        return np.zeros(self.processors, dtype=np.int64)

    def step(self, t, state, read_values):
        beats = state["v"] > read_values
        waddr = np.where(beats, 0, NO_ACCESS).astype(np.int64)
        return waddr, state["v"]


class SpMVCRCW(PRAMProgram):
    """The paper's Section VIII PRAM baseline for ``y = A x``.

    One processor per non-zero (entries pre-sorted by row).  Memory layout:
    ``x`` in cells ``[0, n)``, per-entry partial sums in ``[n, n+nnz)``,
    outputs ``y`` in ``[n+nnz, 2n+nnz)``.

    Step 0: processor ``e`` reads ``x[col_e]`` — *concurrent* reads whenever a
    column has several non-zeros — and stores ``A_e * x[col_e]``.
    Steps 1..log(nnz): segmented pointer jumping within each row's run, every
    access exclusive.  Final step: the first entry of each row writes the row
    sum to the output cell.
    """

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        n: int,
        x: np.ndarray,
    ) -> None:
        order = np.lexsort((cols, rows))
        self.rows = np.asarray(rows, dtype=np.int64)[order]
        self.cols = np.asarray(cols, dtype=np.int64)[order]
        self.vals = np.asarray(vals, dtype=np.float64)[order]
        self.n = n
        self.x = np.asarray(x, dtype=np.float64)
        nnz = len(self.vals)
        self.nnz = nnz
        self.processors = nnz
        self.memory_cells = 2 * n + nnz
        self.jump_rounds = max(1, int(np.ceil(np.log2(max(nnz, 2)))))
        self.steps = 1 + self.jump_rounds + 1
        # row run boundaries, known statically to each processor
        self.row_start = np.concatenate([[True], self.rows[1:] != self.rows[:-1]])

    def initial_memory(self) -> np.ndarray:
        mem = np.zeros(self.memory_cells)
        mem[: self.n] = self.x
        return mem

    def initial_state(self) -> dict[str, np.ndarray]:
        return {"acc": np.zeros(self.nnz)}

    def read_addrs(self, t, state):
        e = np.arange(self.nnz)
        if t == 0:
            return self.cols.copy()
        if t <= self.jump_rounds:
            off = 1 << (t - 1)
            partner = e + off
            addrs = np.full(self.nnz, NO_ACCESS, dtype=np.int64)
            ok = partner < self.nnz
            same_row = np.zeros(self.nnz, dtype=bool)
            same_row[ok] = self.rows[partner[ok]] == self.rows[e[ok]]
            addrs[same_row] = self.n + partner[same_row]
            return addrs
        return np.full(self.nnz, NO_ACCESS, dtype=np.int64)

    def step(self, t, state, read_values):
        e = np.arange(self.nnz)
        if t == 0:
            state["acc"] = self.vals * read_values
            return (self.n + e).astype(np.int64), state["acc"]
        if t <= self.jump_rounds:
            got = ~np.isnan(read_values)
            state["acc"][got] += read_values[got]
            return (self.n + e).astype(np.int64), state["acc"]
        # final step: row leaders publish
        waddr = np.where(
            self.row_start, self.n + self.nnz + self.rows, NO_ACCESS
        ).astype(np.int64)
        return waddr, state["acc"]


class ListRankingCRCW(PRAMProgram):
    """List ranking by pointer jumping — the canonical PRAM irregular kernel.

    Input: a successor array describing a linked list (the tail points to
    itself).  Memory layout: successor cells in ``[0, p)``, rank cells in
    ``[p, 2p)``.  Each jumping round is two steps:

    * even step: read ``rank[s_i]``, fold it into the private rank, write
      ``rank[i]``;
    * odd step: read ``succ[s_i]``, jump ``s_i``, write ``succ[i]``.

    Once several pointers hit the tail they *concurrently read* the tail's
    cells, so the program needs the CRCW machinery — a natural stress for
    Lemma VII.2's sort-based reads.  After ``ceil(log2 p)`` rounds every
    ``rank[i]`` holds the hop distance to the tail.
    """

    def __init__(self, successor: np.ndarray) -> None:
        successor = np.asarray(successor, dtype=np.int64)
        p = len(successor)
        if ((successor < 0) | (successor >= p)).any():
            raise ValueError("successor indices out of range")
        self.successor = successor
        self.processors = p
        self.memory_cells = 2 * p
        self.rounds = max(1, int(np.ceil(np.log2(max(p, 2)))))
        self.steps = 2 * self.rounds

    def initial_memory(self) -> np.ndarray:
        mem = np.zeros(2 * self.processors)
        mem[: self.processors] = self.successor.astype(np.float64)
        mem[self.processors :] = (self.successor != np.arange(self.processors)).astype(
            np.float64
        )
        return mem

    def initial_state(self) -> dict[str, np.ndarray]:
        is_tail = self.successor == np.arange(self.processors)
        return {
            "s": self.successor.copy(),
            "r": (~is_tail).astype(np.float64),
        }

    def read_addrs(self, t, state):
        p = self.processors
        i = np.arange(p)
        moving = state["s"] != i
        if t % 2 == 0:  # read the successor's rank
            return np.where(moving, p + state["s"], NO_ACCESS).astype(np.int64)
        return np.where(moving, state["s"], NO_ACCESS).astype(np.int64)

    def step(self, t, state, read_values):
        p = self.processors
        i = np.arange(p)
        if t % 2 == 0:
            got = ~np.isnan(read_values)
            state["r"][got] += read_values[got]
            return (p + i).astype(np.int64), state["r"]
        got = ~np.isnan(read_values)
        state["s"][got] = read_values[got].astype(np.int64)
        return i.astype(np.int64), state["s"].astype(np.float64)


class RandomExclusiveProgram(PRAMProgram):
    """A randomized but conflict-free program for equivalence testing.

    Every step reads through one random permutation and writes through
    another, folding the read value into a private accumulator — exclusive
    by construction, with dense irregular traffic.  Used by the tests to
    check the spatial EREW simulation against the reference VM on arbitrary
    access patterns.
    """

    def __init__(self, p: int, steps: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        self.processors = p
        self.memory_cells = p
        self.steps = steps
        self.read_perms = [rng.permutation(p) for _ in range(steps)]
        self.write_perms = [rng.permutation(p) for _ in range(steps)]
        self.init = rng.standard_normal(p)

    def initial_memory(self) -> np.ndarray:
        return self.init.copy()

    def initial_state(self) -> dict[str, np.ndarray]:
        return {"acc": np.zeros(self.processors)}

    def read_addrs(self, t, state):
        return self.read_perms[t].astype(np.int64)

    def step(self, t, state, read_values):
        state["acc"] = 0.5 * state["acc"] + read_values
        return self.write_perms[t].astype(np.int64), state["acc"].copy()


class RandomConcurrentProgram(PRAMProgram):
    """A randomized CRCW program with deliberate read/write collisions.

    Each step reads from a random address vector drawn from a *small* cell
    pool (forcing concurrent reads) and writes to another (forcing
    concurrent writes, resolved to the lowest pid).  The accumulator update
    is deterministic, so the spatial CRCW simulation can be property-tested
    against the reference VM on arbitrarily conflicted traffic.
    """

    def __init__(self, p: int, steps: int, seed: int, pool: int | None = None) -> None:
        rng = np.random.default_rng(seed)
        self.processors = p
        self.memory_cells = p
        self.steps = steps
        pool = pool or max(2, p // 4)
        self.read_addrs_all = [rng.integers(0, pool, p) for _ in range(steps)]
        self.write_addrs_all = [rng.integers(0, pool, p) for _ in range(steps)]
        self.init = rng.standard_normal(p)

    def initial_memory(self) -> np.ndarray:
        return self.init.copy()

    def initial_state(self) -> dict[str, np.ndarray]:
        return {"acc": np.arange(self.processors, dtype=np.float64)}

    def read_addrs(self, t, state):
        return self.read_addrs_all[t].astype(np.int64)

    def step(self, t, state, read_values):
        state["acc"] = 0.25 * state["acc"] + read_values
        return self.write_addrs_all[t].astype(np.int64), state["acc"].copy()
