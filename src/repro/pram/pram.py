"""A synchronous PRAM virtual machine (substrate for Section VII).

The paper simulates PRAM algorithms on the spatial model; to *measure* those
simulations we first need runnable PRAM programs.  A
:class:`PRAMProgram` describes one: ``p`` processors advance through ``T``
synchronous steps, each step being a read phase (every processor may read one
memory cell), a local compute phase, and a write phase (every processor may
write one cell).

The interface is vectorized — one NumPy call per phase over all processors —
following the HPC-Python guidance; per-processor state lives in a dict of
arrays managed by the program.

:func:`run_reference` executes a program against plain NumPy memory with
EREW/CRCW conflict policing.  It is the functional oracle the spatial
simulations (:mod:`repro.pram.simulate`) are tested against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["PRAMProgram", "StepAccess", "run_reference", "ConflictError"]

NO_ACCESS = -1


class ConflictError(RuntimeError):
    """An EREW program issued a concurrent read or write."""


@dataclass
class StepAccess:
    """One step's declared memory traffic (``NO_ACCESS`` = no access)."""

    read_addrs: np.ndarray
    write_addrs: np.ndarray
    write_values: np.ndarray


class PRAMProgram(ABC):
    """A synchronous PRAM program over ``processors`` procs / ``memory_cells``
    cells running for ``steps`` steps."""

    #: number of processors
    processors: int
    #: number of shared memory cells
    memory_cells: int
    #: number of synchronous steps
    steps: int

    @abstractmethod
    def initial_memory(self) -> np.ndarray:
        """Initial contents of the shared memory (length ``memory_cells``)."""

    @abstractmethod
    def initial_state(self) -> dict[str, np.ndarray]:
        """Per-processor private state (dict of length-``processors`` arrays)."""

    @abstractmethod
    def read_addrs(self, t: int, state: dict[str, np.ndarray]) -> np.ndarray:
        """Cell each processor reads at step ``t`` (``NO_ACCESS`` = none)."""

    @abstractmethod
    def step(
        self, t: int, state: dict[str, np.ndarray], read_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Local compute: mutate ``state``; return (write_addrs, write_values).

        ``read_values[i]`` is NaN where processor ``i`` did not read.
        """


def _check_exclusive(addrs: np.ndarray, kind: str, t: int) -> None:
    used = addrs[addrs != NO_ACCESS]
    if len(np.unique(used)) != len(used):
        raise ConflictError(f"concurrent {kind} at step {t} in EREW mode")


def run_reference(
    program: PRAMProgram, mode: str = "EREW"
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Run the program on plain NumPy memory (the functional oracle).

    ``mode`` is ``"EREW"`` (conflicts raise :class:`ConflictError`) or
    ``"CRCW"`` (concurrent reads allowed; on write conflicts the lowest
    processor id wins — the *arbitrary* CRCW made deterministic).
    Returns the final memory and processor state.
    """
    if mode not in ("EREW", "CRCW"):
        raise ValueError(f"unknown PRAM mode {mode!r}")
    memory = np.asarray(program.initial_memory(), dtype=np.float64).copy()
    if len(memory) != program.memory_cells:
        raise ValueError("initial_memory size mismatch")
    state = program.initial_state()

    for t in range(program.steps):
        raddr = np.asarray(program.read_addrs(t, state), dtype=np.int64)
        if mode == "EREW":
            _check_exclusive(raddr, "read", t)
        vals = np.full(program.processors, np.nan)
        reading = raddr != NO_ACCESS
        vals[reading] = memory[raddr[reading]]

        waddr, wval = program.step(t, state, vals)
        waddr = np.asarray(waddr, dtype=np.int64)
        wval = np.asarray(wval, dtype=np.float64)
        if mode == "EREW":
            _check_exclusive(waddr, "write", t)
            writing = waddr != NO_ACCESS
            memory[waddr[writing]] = wval[writing]
        else:
            # arbitrary CRCW, lowest pid wins: apply writes from high pid to
            # low pid so the lowest lands last
            writing = np.nonzero(waddr != NO_ACCESS)[0][::-1]
            memory[waddr[writing]] = wval[writing]
    return memory, state
