"""The request-scoped trace context and its wire format.

One context travels as a single HTTP header, ``X-Repro-Trace``, in the
W3C-traceparent shape::

    00-<trace_id: 32 hex>-<span_id: 16 hex>-<flags: 2 hex>

``trace_id`` names the whole distributed request; ``span_id`` names the
sender's current span, which the receiver records as its parent.  Flags are
``01`` (sampled) or ``00``; the all-zero ids are invalid, as in the W3C
spec.  Parsing is strict but total: anything malformed yields ``None`` and
the receiver simply starts a fresh trace-less request — a bad header must
never fail a request.

Determinism: the serving tier's tests and the chaos harness need traces that
are pure functions of their seeds.  :func:`deterministic_trace_id` and
:func:`deterministic_span_id` derive ids from arbitrary seed material via
sha256, so the load generator can mint the id for request ``i`` of seed
``s`` without any shared state (matching the repo-wide ``_stable_hash``
discipline in :mod:`repro.service.fleet`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

__all__ = [
    "TRACE_HEADER",
    "TRACE_HEADER_LOWER",
    "TraceContext",
    "deterministic_span_id",
    "deterministic_trace_id",
]

TRACE_HEADER = "X-Repro-Trace"
#: the header name as it appears in parsed (lower-cased) header dicts
TRACE_HEADER_LOWER = "x-repro-trace"

_VERSION = "00"
_HEXDIGITS = frozenset("0123456789abcdefABCDEF")


def _is_hex(value: str) -> bool:
    return bool(value) and all(c in _HEXDIGITS for c in value)


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace: (trace id, sender span id, sampled)."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def header_value(self) -> str:
        flags = "01" if self.sampled else "00"
        return f"{_VERSION}-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def parse(cls, value: str | None) -> TraceContext | None:
        """Parse a header value; ``None`` on anything malformed."""
        if not value or not isinstance(value, str):
            return None
        parts = value.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, flags = parts
        if version != _VERSION or len(trace_id) != 32 or len(span_id) != 16 or len(flags) != 2:
            return None
        if not (_is_hex(trace_id) and _is_hex(span_id) and _is_hex(flags)):
            return None
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id=trace_id.lower(), span_id=span_id.lower(), sampled=flags != "00")

    def child(self, span_id: str) -> TraceContext:
        """The context a child span propagates further downstream."""
        return replace(self, span_id=span_id)


def deterministic_trace_id(*parts: object) -> str:
    """A 32-hex trace id that is a pure function of ``parts``."""
    material = "|".join(str(p) for p in parts)
    return hashlib.sha256(f"repro-trace:{material}".encode()).hexdigest()[:32]


def deterministic_span_id(*parts: object) -> str:
    """A 16-hex span id that is a pure function of ``parts``."""
    material = "|".join(str(p) for p in parts)
    return hashlib.sha256(f"repro-span:{material}".encode()).hexdigest()[:16]
